// ClusterRunner — drives ConsensusProcess stacks over any Transport with one
// thread per process. This is how the engines run outside the simulator.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "consensus/process.hpp"
#include "ops/admin.hpp"
#include "transport/transport.hpp"

namespace dex::transport {

struct RunnerOptions {
  std::chrono::milliseconds recv_timeout{10};
  std::chrono::milliseconds deadline{10'000};
  /// Coalesce all same-destination messages of one outbox flush into a
  /// single Transport::send_batch call (one wire frame on batching
  /// transports). Receivers still see individual messages.
  bool batch = false;
  /// Optional ops plane (not owned; must outlive the call). run_cluster
  /// publishes a live "cluster" var (processes, halted, decided) to it.
  ops::AdminServer* admin = nullptr;
};

struct RunnerResult {
  std::vector<std::optional<Decision>> decisions;  // per process
  bool all_halted = false;

  [[nodiscard]] bool all_decided() const;
  [[nodiscard]] bool agreement() const;
};

/// Drives one process until it halts or the deadline passes. Blocking; meant
/// to be called from a dedicated thread.
void drive_process(ConsensusProcess& proc, Transport& transport, Value proposal,
                   const RunnerOptions& opts);

/// Runs a full cluster of stacks over the given transports (one thread per
/// process) and collects the decisions.
RunnerResult run_cluster(std::vector<std::unique_ptr<ConsensusProcess>>& procs,
                         std::vector<std::unique_ptr<Transport>>& transports,
                         const std::vector<Value>& proposals,
                         const RunnerOptions& opts = {});

}  // namespace dex::transport
