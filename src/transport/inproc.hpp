// In-process transport: n endpoints connected by thread-safe mailboxes.
// The cheapest way to run the protocol stacks under real concurrency (one
// thread per process, true interleavings) without sockets.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "metrics/metrics.hpp"
#include "transport/transport.hpp"

namespace dex::transport {

/// A bounded-ish MPSC mailbox. Senders never block (consensus traffic is
/// small); the receiver blocks with timeout.
class Mailbox {
 public:
  void push(Incoming item);
  std::optional<Incoming> pop(std::chrono::milliseconds timeout);
  void close();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Incoming> items_;
  bool closed_ = false;
};

class InProcNetwork;

class InProcTransport final : public Transport {
 public:
  InProcTransport(InProcNetwork* net, ProcessId self) : net_(net), self_(self) {}

  void send(ProcessId dst, Message msg) override;
  std::optional<Incoming> recv(std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::size_t n() const override;
  [[nodiscard]] ProcessId self() const override { return self_; }

 private:
  InProcNetwork* net_;
  ProcessId self_;
};

/// Owns the mailboxes; hands out one Transport per endpoint.
/// When a metrics registry is attached, every deliver() is counted as
/// transport_messages_total / transport_bytes_total with
/// {transport="inproc", msg_kind=...} (bytes = payload bytes; in-process
/// links have no wire framing).
class InProcNetwork {
 public:
  explicit InProcNetwork(std::size_t n,
                         metrics::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] std::unique_ptr<InProcTransport> endpoint(ProcessId i);
  [[nodiscard]] std::size_t n() const { return mailboxes_.size(); }

  void deliver(ProcessId src, ProcessId dst, Message msg);
  Mailbox& mailbox(ProcessId i);
  void shutdown();

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  metrics::Counter* m_msgs_[3] = {nullptr, nullptr, nullptr};  // by MsgKind
  metrics::Counter* m_bytes_[3] = {nullptr, nullptr, nullptr};
};

}  // namespace dex::transport
