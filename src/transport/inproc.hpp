// In-process transport: n endpoints connected by thread-safe mailboxes.
// The cheapest way to run the protocol stacks under real concurrency (one
// thread per process, true interleavings) without sockets.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "metrics/metrics.hpp"
#include "transport/transport.hpp"

namespace dex::transport {

/// Occupancy statistics of one Mailbox (snapshot under the mailbox lock).
struct MailboxStats {
  std::size_t depth = 0;       ///< current queue length
  std::size_t high_water = 0;  ///< max queue length ever observed
  std::uint64_t dropped = 0;   ///< pushes rejected because the box was closed
  /// Pushes admitted while the queue was already at/above the soft cap. The
  /// cap never rejects traffic (consensus links are reliable); it marks when
  /// a receiver falls behind its senders.
  std::uint64_t soft_cap_exceeded = 0;
};

/// A bounded-ish MPSC mailbox. Senders never block (consensus traffic is
/// small); the receiver blocks with timeout. A soft cap of 0 means uncapped.
class Mailbox {
 public:
  explicit Mailbox(std::size_t soft_cap = 0) : soft_cap_(soft_cap) {}

  void push(Incoming item);
  std::optional<Incoming> pop(std::chrono::milliseconds timeout);
  void close();

  /// Wire the mailbox into a metrics registry (all pointers optional; must
  /// outlive the mailbox). depth is exported as a gauge on every push/pop.
  void attach_metrics(metrics::Gauge* depth, metrics::Counter* dropped,
                      metrics::Counter* soft_cap_exceeded);

  [[nodiscard]] MailboxStats stats() const;
  [[nodiscard]] std::size_t soft_cap() const { return soft_cap_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Incoming> items_;
  bool closed_ = false;
  std::size_t soft_cap_;
  MailboxStats stats_;
  metrics::Gauge* m_depth_ = nullptr;
  metrics::Counter* m_dropped_ = nullptr;
  metrics::Counter* m_soft_cap_ = nullptr;
};

class InProcNetwork;

class InProcTransport final : public Transport {
 public:
  InProcTransport(InProcNetwork* net, ProcessId self) : net_(net), self_(self) {}

  void send(ProcessId dst, Message msg) override;
  /// Coalesces into a BatchFrame and round-trips it through the wire codec,
  /// so the in-process path exercises exactly the bytes TCP would carry.
  void send_batch(ProcessId dst, std::vector<Message> msgs) override;
  std::optional<Incoming> recv(std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::size_t n() const override;
  [[nodiscard]] ProcessId self() const override { return self_; }

 private:
  InProcNetwork* net_;
  ProcessId self_;
};

/// Owns the mailboxes; hands out one Transport per endpoint.
/// When a metrics registry is attached, every deliver() is counted as
/// transport_messages_total / transport_bytes_total with
/// {transport="inproc", msg_kind=...} (bytes = payload bytes; in-process
/// links have no wire framing).
class InProcNetwork {
 public:
  explicit InProcNetwork(std::size_t n,
                         metrics::MetricsRegistry* metrics = nullptr,
                         std::size_t mailbox_soft_cap = 0);

  [[nodiscard]] std::unique_ptr<InProcTransport> endpoint(ProcessId i);
  [[nodiscard]] std::size_t n() const { return mailboxes_.size(); }

  void deliver(ProcessId src, ProcessId dst, Message msg);
  /// Deliver an encoded wire frame (bare Message or BatchFrame): decoded with
  /// decode_wire and fanned into dst's mailbox one message at a time.
  /// Malformed frames are dropped, as a TCP reader would drop them.
  void deliver_wire(ProcessId src, ProcessId dst,
                    std::span<const std::byte> frame);
  Mailbox& mailbox(ProcessId i);
  void shutdown();

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  metrics::Counter* m_msgs_[3] = {nullptr, nullptr, nullptr};  // by MsgKind
  metrics::Counter* m_bytes_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_batches_ = nullptr;
  metrics::Counter* m_batch_bytes_ = nullptr;
};

}  // namespace dex::transport
