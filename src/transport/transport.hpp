// Transport abstraction for real (non-simulated) deployments.
//
// A Transport is one process's handle onto the network: unicast send plus a
// blocking receive with timeout. The same ConsensusProcess objects that run
// under the simulator run over any Transport via ClusterRunner.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "consensus/message.hpp"

namespace dex::transport {

struct Incoming {
  ProcessId src = kNoProcess;
  Message msg;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Unicast to dst. Must be callable from the owner's driver thread.
  virtual void send(ProcessId dst, Message msg) = 0;

  /// Unicast several messages to one destination. Transports that frame a
  /// wire (TCP, the in-process codec path) coalesce them into one BatchFrame
  /// packet; the default falls back to per-message send(). Receivers always
  /// see individual messages — batching never changes recv() semantics.
  virtual void send_batch(ProcessId dst, std::vector<Message> msgs) {
    for (Message& m : msgs) send(dst, std::move(m));
  }

  /// Next inbound message, or nullopt on timeout / shutdown.
  virtual std::optional<Incoming> recv(std::chrono::milliseconds timeout) = 0;

  [[nodiscard]] virtual std::size_t n() const = 0;
  [[nodiscard]] virtual ProcessId self() const = 0;

  /// Broadcast: deliver to every process including self. The default
  /// unicasts a copy per destination (cheap — Message payloads are shared
  /// bytes); wire transports override it to encode the frame once and write
  /// the same buffer to every peer.
  virtual void broadcast(const Message& msg) {
    for (std::size_t d = 0; d < n(); ++d) {
      send(static_cast<ProcessId>(d), msg);
    }
  }
};

}  // namespace dex::transport
