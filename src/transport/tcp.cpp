#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dex::transport {

namespace {
constexpr std::uint32_t kMagic = 0x44455843;  // "DEXC"
constexpr std::uint32_t kMaxFrame = 1u << 24;

bool write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  while (len > 0) {
    const ssize_t w = ::send(fd, p, len, MSG_NOSIGNAL);
    if (w <= 0) return false;
    p += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::byte*>(data);
  while (len > 0) {
    const ssize_t r = ::recv(fd, p, len, 0);
    if (r <= 0) return false;
    p += r;
    len -= static_cast<std::size_t>(r);
  }
  return true;
}

void put_u32(std::byte* out, std::uint32_t v) {
  out[0] = static_cast<std::byte>(v & 0xff);
  out[1] = static_cast<std::byte>((v >> 8) & 0xff);
  out[2] = static_cast<std::byte>((v >> 16) & 0xff);
  out[3] = static_cast<std::byte>((v >> 24) & 0xff);
}

std::uint32_t get_u32(const std::byte* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}
}  // namespace

TcpTransport::TcpTransport(TcpConfig cfg) : cfg_(std::move(cfg)) {
  DEX_ENSURE(cfg_.n > 0);
  DEX_ENSURE(cfg_.self >= 0 && static_cast<std::size_t>(cfg_.self) < cfg_.n);
  peers_.resize(cfg_.n);
  for (auto& p : peers_) p = std::make_unique<Peer>();
  if (cfg_.metrics != nullptr) {
    metrics::MetricsRegistry& reg = *cfg_.metrics;
    for (const MsgKind k : {MsgKind::kPlain, MsgKind::kIdbInit, MsgKind::kIdbEcho}) {
      const metrics::Labels labels{{"transport", "tcp"},
                                   {"msg_kind", msg_kind_name(k)}};
      const auto ki = static_cast<std::size_t>(k);
      m_sent_[ki] = &reg.counter("transport_messages_sent_total", labels);
      m_sent_bytes_[ki] = &reg.counter("transport_bytes_sent_total", labels);
      m_recv_[ki] = &reg.counter("transport_messages_received_total", labels);
      m_recv_bytes_[ki] = &reg.counter("transport_bytes_received_total", labels);
    }
    m_batches_sent_ =
        &reg.counter("transport_batches_sent_total", {{"transport", "tcp"}});
    m_batches_recv_ =
        &reg.counter("transport_batches_received_total", {{"transport", "tcp"}});
    m_peers_ = &reg.gauge("transport_peers_connected", {{"transport", "tcp"}});
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::start() {
  // Listen socket.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.base_port + cfg_.self));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("bind() failed on port " +
                             std::to_string(cfg_.base_port + cfg_.self));
  }
  if (::listen(listen_fd_, static_cast<int>(cfg_.n)) != 0) {
    throw std::runtime_error("listen() failed");
  }
  acceptor_ = std::thread([this] { accept_loop(); });

  // Outbound connections to higher-numbered peers.
  const auto deadline = std::chrono::steady_clock::now() + cfg_.connect_deadline;
  for (std::size_t j = static_cast<std::size_t>(cfg_.self) + 1; j < cfg_.n; ++j) {
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw std::runtime_error("socket() failed");
      sockaddr_in peer{};
      peer.sin_family = AF_INET;
      peer.sin_port = htons(static_cast<std::uint16_t>(cfg_.base_port + j));
      if (::inet_pton(AF_INET, cfg_.host.c_str(), &peer.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad host " + cfg_.host);
      }
      if (::connect(fd, reinterpret_cast<sockaddr*>(&peer), sizeof(peer)) == 0) break;
      ::close(fd);
      if (std::chrono::steady_clock::now() > deadline) {
        throw std::runtime_error("connect deadline to peer " + std::to_string(j));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    set_nodelay(fd);
    // Hello frame: our id.
    std::byte hello[4];
    put_u32(hello, static_cast<std::uint32_t>(cfg_.self));
    if (!write_all(fd, hello, sizeof(hello))) {
      ::close(fd);
      throw std::runtime_error("hello write failed");
    }
    setup_peer(static_cast<ProcessId>(j), fd);
  }

  // Wait for inbound connections from lower-numbered peers.
  const std::size_t expected = cfg_.n - 1;
  while (connected_.load() < expected) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw std::runtime_error("timed out waiting for inbound peers");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void TcpTransport::accept_loop() {
  while (!stopping_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    set_nodelay(fd);
    std::byte hello[4];
    if (!read_all(fd, hello, sizeof(hello))) {
      ::close(fd);
      continue;
    }
    const auto peer_id = static_cast<ProcessId>(get_u32(hello));
    if (peer_id < 0 || static_cast<std::size_t>(peer_id) >= cfg_.n ||
        peer_id == cfg_.self) {
      ::close(fd);
      continue;
    }
    setup_peer(peer_id, fd);
  }
}

void TcpTransport::setup_peer(ProcessId peer_id, int fd) {
  Peer& p = *peers_[static_cast<std::size_t>(peer_id)];
  {
    const std::scoped_lock lock(p.write_mu);
    if (p.fd >= 0) {  // duplicate connection; keep the first
      ::close(fd);
      return;
    }
    p.fd = fd;
  }
  p.reader = std::thread([this, peer_id] { reader_loop(peer_id); });
  metrics::set(m_peers_, static_cast<double>(connected_.fetch_add(1) + 1));
}

void TcpTransport::reader_loop(ProcessId peer_id) {
  Peer& p = *peers_[static_cast<std::size_t>(peer_id)];
  const int fd = p.fd;
  for (;;) {
    std::byte header[12];
    if (!read_all(fd, header, sizeof(header))) break;
    if (get_u32(header) != kMagic) {
      DEX_LOG(kWarn, "tcp") << "bad magic from peer " << peer_id;
      break;
    }
    const std::uint32_t len = get_u32(header + 4);
    const std::uint32_t crc = get_u32(header + 8);
    if (len > kMaxFrame) {
      DEX_LOG(kWarn, "tcp") << "oversized frame from peer " << peer_id;
      break;
    }
    std::vector<std::byte> payload(len);
    if (len > 0 && !read_all(fd, payload.data(), len)) break;
    if (crc32(payload) != crc) {
      DEX_LOG(kWarn, "tcp") << "crc mismatch from peer " << peer_id;
      break;
    }
    try {
      std::vector<Message> msgs = decode_wire(payload);
      const bool batched = BatchFrame::is_batch(payload);
      if (batched) metrics::inc(m_batches_recv_);
      // Recorded from this per-peer reader thread: each reader owns a private
      // ring in the flight recorder, so this is contention-free.
      if (trace::on()) {
        if (batched) {
          trace::instant("net", "batch.recv",
                         {.proc = cfg_.self,
                          .peer = peer_id,
                          .a = static_cast<std::int64_t>(msgs.size()),
                          .b = static_cast<std::int64_t>(payload.size())});
        } else if (!msgs.empty()) {
          trace::instant("net", "recv",
                         {.proc = cfg_.self,
                          .peer = peer_id,
                          .instance = msgs.front().instance,
                          .tag = msgs.front().tag,
                          .a = static_cast<std::int64_t>(msgs.front().kind),
                          .b = static_cast<std::int64_t>(payload.size())});
        }
      }
      for (Message& msg : msgs) {
        if (const auto ki = static_cast<std::size_t>(msg.kind); ki < 3) {
          metrics::inc(m_recv_[ki]);
          // Bare frames carry the 12-byte header; a batch's framing overhead
          // is attributed per message by its share of the encoded bytes.
          metrics::inc(m_recv_bytes_[ki], batched
                                              ? msg.encoded_size()
                                              : sizeof(header) + payload.size());
        }
        inbox_.push(Incoming{peer_id, std::move(msg)});
      }
    } catch (const DecodeError&) {
      // Byzantine content; drop the frame but keep the stream.
    }
  }
}

void TcpTransport::write_frame(Peer& peer, const std::vector<std::byte>& payload) {
  std::byte header[12];
  put_u32(header, kMagic);
  put_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
  put_u32(header + 8, crc32(payload));
  const std::scoped_lock lock(peer.write_mu);
  if (peer.fd < 0) return;
  if (!write_all(peer.fd, header, sizeof(header)) ||
      (!payload.empty() && !write_all(peer.fd, payload.data(), payload.size()))) {
    DEX_LOG(kWarn, "tcp") << "write failed";
  }
}

void TcpTransport::send(ProcessId dst, Message msg) {
  if (dst == cfg_.self) {
    inbox_.push(Incoming{cfg_.self, std::move(msg)});
    return;
  }
  if (dst < 0 || static_cast<std::size_t>(dst) >= cfg_.n) return;
  const std::vector<std::byte> encoded = msg.to_bytes();
  if (const auto ki = static_cast<std::size_t>(msg.kind); ki < 3) {
    metrics::inc(m_sent_[ki]);
    metrics::inc(m_sent_bytes_[ki], 12 + encoded.size());  // header + body
  }
  if (trace::on()) {
    trace::instant("net", "send",
                   {.proc = cfg_.self,
                    .peer = dst,
                    .instance = msg.instance,
                    .tag = msg.tag,
                    .a = static_cast<std::int64_t>(msg.kind),
                    .b = static_cast<std::int64_t>(12 + encoded.size())});
  }
  write_frame(*peers_[static_cast<std::size_t>(dst)], encoded);
}

void TcpTransport::send_batch(ProcessId dst, std::vector<Message> msgs) {
  if (msgs.empty()) return;
  if (dst == cfg_.self) {
    for (Message& m : msgs) inbox_.push(Incoming{cfg_.self, std::move(m)});
    return;
  }
  if (dst < 0 || static_cast<std::size_t>(dst) >= cfg_.n) return;
  if (msgs.size() == 1) {
    send(dst, std::move(msgs.front()));
    return;
  }
  BatchFrame frame;
  frame.messages = std::move(msgs);
  const std::vector<std::byte> encoded = frame.to_bytes();
  metrics::inc(m_batches_sent_);
  if (trace::on()) {
    trace::instant("net", "batch.send",
                   {.proc = cfg_.self,
                    .peer = dst,
                    .a = static_cast<std::int64_t>(frame.messages.size()),
                    .b = static_cast<std::int64_t>(12 + encoded.size())});
  }
  for (const Message& m : frame.messages) {
    if (const auto ki = static_cast<std::size_t>(m.kind); ki < 3) {
      metrics::inc(m_sent_[ki]);
      metrics::inc(m_sent_bytes_[ki], m.encoded_size());
    }
  }
  write_frame(*peers_[static_cast<std::size_t>(dst)], encoded);
}

void TcpTransport::broadcast(const Message& msg) {
  // Encode exactly once for all n−1 peers; each write_frame reuses the same
  // buffer (the old path re-encoded per destination: O(n) encodes + copies).
  const std::shared_ptr<const std::vector<std::byte>> frame = msg.wire_frame();
  const auto ki = static_cast<std::size_t>(msg.kind);
  if (trace::on()) {
    trace::instant("net", "send",
                   {.proc = cfg_.self,
                    .peer = kBroadcastDst,
                    .instance = msg.instance,
                    .tag = msg.tag,
                    .a = static_cast<std::int64_t>(msg.kind),
                    .b = static_cast<std::int64_t>(12 + frame->size()),
                    .c = static_cast<std::int64_t>(cfg_.n - 1)});
  }
  for (std::size_t d = 0; d < cfg_.n; ++d) {
    if (static_cast<ProcessId>(d) == cfg_.self) {
      inbox_.push(Incoming{cfg_.self, msg});  // payload bytes shared, not cloned
      continue;
    }
    if (ki < 3) {
      metrics::inc(m_sent_[ki]);
      metrics::inc(m_sent_bytes_[ki], 12 + frame->size());  // header + body
    }
    write_frame(*peers_[d], *frame);
  }
}

std::optional<Incoming> TcpTransport::recv(std::chrono::milliseconds timeout) {
  return inbox_.pop(timeout);
}

void TcpTransport::shutdown() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& p : peers_) {
    int fd;
    {
      const std::scoped_lock lock(p->write_mu);
      fd = p->fd;
      p->fd = -1;
    }
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    if (p->reader.joinable()) p->reader.join();
  }
  inbox_.close();
}

}  // namespace dex::transport
