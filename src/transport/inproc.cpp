#include "transport/inproc.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace dex::transport {

void Mailbox::push(Incoming item) {
  {
    const std::scoped_lock lock(mu_);
    if (closed_) {
      ++stats_.dropped;
      metrics::inc(m_dropped_);
      return;
    }
    items_.push_back(std::move(item));
    stats_.depth = items_.size();
    stats_.high_water = std::max(stats_.high_water, stats_.depth);
    if (soft_cap_ != 0 && stats_.depth > soft_cap_) {
      ++stats_.soft_cap_exceeded;
      metrics::inc(m_soft_cap_);
    }
    metrics::set(m_depth_, static_cast<double>(stats_.depth));
  }
  cv_.notify_one();
}

std::optional<Incoming> Mailbox::pop(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  if (!cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; })) {
    return std::nullopt;
  }
  if (items_.empty()) return std::nullopt;  // closed
  Incoming item = std::move(items_.front());
  items_.pop_front();
  stats_.depth = items_.size();
  metrics::set(m_depth_, static_cast<double>(stats_.depth));
  return item;
}

void Mailbox::close() {
  {
    const std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Mailbox::attach_metrics(metrics::Gauge* depth, metrics::Counter* dropped,
                             metrics::Counter* soft_cap_exceeded) {
  const std::scoped_lock lock(mu_);
  m_depth_ = depth;
  m_dropped_ = dropped;
  m_soft_cap_ = soft_cap_exceeded;
}

MailboxStats Mailbox::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

InProcNetwork::InProcNetwork(std::size_t n, metrics::MetricsRegistry* metrics,
                             std::size_t mailbox_soft_cap) {
  DEX_ENSURE(n > 0);
  mailboxes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(mailbox_soft_cap));
  }
  if (metrics != nullptr) {
    for (const MsgKind k : {MsgKind::kPlain, MsgKind::kIdbInit, MsgKind::kIdbEcho}) {
      const metrics::Labels labels{{"transport", "inproc"},
                                   {"msg_kind", msg_kind_name(k)}};
      m_msgs_[static_cast<std::size_t>(k)] =
          &metrics->counter("transport_messages_total", labels);
      m_bytes_[static_cast<std::size_t>(k)] =
          &metrics->counter("transport_bytes_total", labels);
    }
    m_batches_ = &metrics->counter("transport_batches_total",
                                   {{"transport", "inproc"}});
    m_batch_bytes_ = &metrics->counter("transport_batch_bytes_total",
                                       {{"transport", "inproc"}});
    metrics::Counter& dropped = metrics->counter(
        "transport_mailbox_dropped_total", {{"transport", "inproc"}});
    metrics::Counter& exceeded = metrics->counter(
        "transport_mailbox_soft_cap_exceeded_total", {{"transport", "inproc"}});
    for (std::size_t i = 0; i < n; ++i) {
      metrics::Gauge& depth = metrics->gauge(
          "transport_mailbox_depth",
          {{"transport", "inproc"}, {"endpoint", std::to_string(i)}});
      mailboxes_[i]->attach_metrics(&depth, &dropped, &exceeded);
    }
  }
}

std::unique_ptr<InProcTransport> InProcNetwork::endpoint(ProcessId i) {
  DEX_ENSURE(i >= 0 && static_cast<std::size_t>(i) < mailboxes_.size());
  return std::make_unique<InProcTransport>(this, i);
}

Mailbox& InProcNetwork::mailbox(ProcessId i) {
  DEX_ENSURE(i >= 0 && static_cast<std::size_t>(i) < mailboxes_.size());
  return *mailboxes_[static_cast<std::size_t>(i)];
}

void InProcNetwork::deliver(ProcessId src, ProcessId dst, Message msg) {
  if (dst < 0 || static_cast<std::size_t>(dst) >= mailboxes_.size()) return;
  if (const auto ki = static_cast<std::size_t>(msg.kind); ki < 3) {
    metrics::inc(m_msgs_[ki]);
    metrics::inc(m_bytes_[ki], msg.payload.size());
  }
  if (trace::on()) {
    trace::instant("net", "deliver",
                   {.proc = dst,
                    .peer = src,
                    .instance = msg.instance,
                    .tag = msg.tag,
                    .a = static_cast<std::int64_t>(msg.kind),
                    .b = static_cast<std::int64_t>(msg.payload.size())});
  }
  mailboxes_[static_cast<std::size_t>(dst)]->push(Incoming{src, std::move(msg)});
}

void InProcNetwork::deliver_wire(ProcessId src, ProcessId dst,
                                 std::span<const std::byte> frame) {
  if (dst < 0 || static_cast<std::size_t>(dst) >= mailboxes_.size()) return;
  std::vector<Message> msgs;
  try {
    msgs = decode_wire(frame);
  } catch (const DecodeError&) {
    return;  // a broken frame never reaches the receiver
  }
  if (BatchFrame::is_batch(frame)) {
    metrics::inc(m_batches_);
    metrics::inc(m_batch_bytes_, frame.size());
  }
  for (Message& msg : msgs) deliver(src, dst, std::move(msg));
}

void InProcNetwork::shutdown() {
  for (auto& mb : mailboxes_) mb->close();
}

void InProcTransport::send(ProcessId dst, Message msg) {
  net_->deliver(self_, dst, std::move(msg));
}

void InProcTransport::send_batch(ProcessId dst, std::vector<Message> msgs) {
  if (msgs.empty()) return;
  if (msgs.size() == 1) {
    send(dst, std::move(msgs.front()));
    return;
  }
  BatchFrame frame;
  frame.messages = std::move(msgs);
  net_->deliver_wire(self_, dst, frame.to_bytes());
}

std::optional<Incoming> InProcTransport::recv(std::chrono::milliseconds timeout) {
  return net_->mailbox(self_).pop(timeout);
}

std::size_t InProcTransport::n() const { return net_->n(); }

}  // namespace dex::transport
