#include "transport/inproc.hpp"

#include "common/assert.hpp"

namespace dex::transport {

void Mailbox::push(Incoming item) {
  {
    const std::scoped_lock lock(mu_);
    if (closed_) return;
    items_.push_back(std::move(item));
  }
  cv_.notify_one();
}

std::optional<Incoming> Mailbox::pop(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  if (!cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; })) {
    return std::nullopt;
  }
  if (items_.empty()) return std::nullopt;  // closed
  Incoming item = std::move(items_.front());
  items_.pop_front();
  return item;
}

void Mailbox::close() {
  {
    const std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

InProcNetwork::InProcNetwork(std::size_t n, metrics::MetricsRegistry* metrics) {
  DEX_ENSURE(n > 0);
  mailboxes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  if (metrics != nullptr) {
    for (const MsgKind k : {MsgKind::kPlain, MsgKind::kIdbInit, MsgKind::kIdbEcho}) {
      const metrics::Labels labels{{"transport", "inproc"},
                                   {"msg_kind", msg_kind_name(k)}};
      m_msgs_[static_cast<std::size_t>(k)] =
          &metrics->counter("transport_messages_total", labels);
      m_bytes_[static_cast<std::size_t>(k)] =
          &metrics->counter("transport_bytes_total", labels);
    }
  }
}

std::unique_ptr<InProcTransport> InProcNetwork::endpoint(ProcessId i) {
  DEX_ENSURE(i >= 0 && static_cast<std::size_t>(i) < mailboxes_.size());
  return std::make_unique<InProcTransport>(this, i);
}

Mailbox& InProcNetwork::mailbox(ProcessId i) {
  DEX_ENSURE(i >= 0 && static_cast<std::size_t>(i) < mailboxes_.size());
  return *mailboxes_[static_cast<std::size_t>(i)];
}

void InProcNetwork::deliver(ProcessId src, ProcessId dst, Message msg) {
  if (dst < 0 || static_cast<std::size_t>(dst) >= mailboxes_.size()) return;
  if (const auto ki = static_cast<std::size_t>(msg.kind); ki < 3) {
    metrics::inc(m_msgs_[ki]);
    metrics::inc(m_bytes_[ki], msg.payload.size());
  }
  mailboxes_[static_cast<std::size_t>(dst)]->push(Incoming{src, std::move(msg)});
}

void InProcNetwork::shutdown() {
  for (auto& mb : mailboxes_) mb->close();
}

void InProcTransport::send(ProcessId dst, Message msg) {
  net_->deliver(self_, dst, std::move(msg));
}

std::optional<Incoming> InProcTransport::recv(std::chrono::milliseconds timeout) {
  return net_->mailbox(self_).pop(timeout);
}

std::size_t InProcTransport::n() const { return net_->n(); }

}  // namespace dex::transport
