// TCP transport: a full mesh of framed, CRC-checked connections.
//
// Topology: every node listens on base_port + id; node i initiates the
// connection to node j exactly when i < j, and identifies itself with a hello
// frame, so each unordered pair shares one duplex socket. Self-sends bypass
// the network. One reader thread per peer socket feeds a shared mailbox.
//
// Wire format per frame:
//   u32 magic ("DEXC") | u32 payload length | u32 crc32(payload) | payload
// The payload is either a bare encoded Message or a BatchFrame (send_batch);
// the two are distinguished by the first payload byte. A frame that fails
// any check kills the connection (a Byzantine peer can send garbage
// *content*, but framing errors indicate a broken stream).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "transport/inproc.hpp"  // reuses Mailbox
#include "transport/transport.hpp"

namespace dex::transport {

struct TcpConfig {
  std::size_t n = 0;
  ProcessId self = kNoProcess;
  std::uint16_t base_port = 9400;
  std::string host = "127.0.0.1";
  /// How long start() keeps retrying peer connections.
  std::chrono::milliseconds connect_deadline{10'000};
  /// Optional metrics sink (not owned; must outlive the transport). Exports
  /// wire traffic per MsgKind ({transport="tcp", msg_kind=...}): framed
  /// bytes are 12-byte header + encoded message. Self-sends bypass the
  /// network and are not counted.
  metrics::MetricsRegistry* metrics = nullptr;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpConfig cfg);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds, accepts and connects until the full mesh is up (or throws
  /// std::runtime_error on deadline/socket failure). Call once before use.
  void start();

  void send(ProcessId dst, Message msg) override;
  /// Coalesces the messages into one BatchFrame carried by a single framed
  /// write (one header + crc for the whole batch).
  void send_batch(ProcessId dst, std::vector<Message> msgs) override;
  /// Encodes the message once (Message::wire_frame) and writes the identical
  /// buffer to every peer; self-delivery bypasses the network as in send().
  void broadcast(const Message& msg) override;
  std::optional<Incoming> recv(std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::size_t n() const override { return cfg_.n; }
  [[nodiscard]] ProcessId self() const override { return cfg_.self; }

  void shutdown();

 private:
  struct Peer {
    int fd = -1;
    std::mutex write_mu;
    std::thread reader;
  };

  void accept_loop();
  void reader_loop(ProcessId peer_id);
  void setup_peer(ProcessId peer_id, int fd);
  void write_frame(Peer& peer, const std::vector<std::byte>& payload);

  TcpConfig cfg_;
  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Peer>> peers_;  // index = ProcessId; self unused
  Mailbox inbox_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> connected_{0};

  // Exported series, resolved once at construction (null when disabled).
  // Counters are indexed by MsgKind.
  metrics::Counter* m_sent_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_sent_bytes_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_recv_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_recv_bytes_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_batches_sent_ = nullptr;
  metrics::Counter* m_batches_recv_ = nullptr;
  metrics::Gauge* m_peers_ = nullptr;
};

}  // namespace dex::transport
