#include "transport/runner.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace dex::transport {

bool RunnerResult::all_decided() const {
  for (const auto& d : decisions) {
    if (!d.has_value()) return false;
  }
  return true;
}

bool RunnerResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& d : decisions) {
    if (!d.has_value()) continue;
    if (seen.has_value() && *seen != d->value) return false;
    seen = d->value;
  }
  return true;
}

namespace {
void flush_outbox(ConsensusProcess& proc, Transport& transport, bool batch) {
  if (!batch) {
    for (Outgoing& out : proc.drain_outbox()) {
      if (out.dst == kBroadcastDst) {
        transport.broadcast(out.msg);
      } else {
        transport.send(out.dst, std::move(out.msg));
      }
    }
    return;
  }
  // Group this flush per destination (broadcasts fan into every destination,
  // preserving order) and hand each group to the transport as one batch.
  const std::size_t n = transport.n();
  std::vector<std::vector<Message>> per_dst(n);
  for (Outgoing& out : proc.drain_outbox()) {
    if (out.dst == kBroadcastDst) {
      for (std::size_t d = 0; d < n; ++d) per_dst[d].push_back(out.msg);
    } else if (out.dst >= 0 && static_cast<std::size_t>(out.dst) < n) {
      per_dst[static_cast<std::size_t>(out.dst)].push_back(std::move(out.msg));
    }
  }
  for (std::size_t d = 0; d < n; ++d) {
    if (per_dst[d].empty()) continue;
    transport.send_batch(static_cast<ProcessId>(d), std::move(per_dst[d]));
  }
}
}  // namespace

void drive_process(ConsensusProcess& proc, Transport& transport, Value proposal,
                   const RunnerOptions& opts) {
  const auto deadline = std::chrono::steady_clock::now() + opts.deadline;
  proc.propose(proposal);
  flush_outbox(proc, transport, opts.batch);
  while (!proc.halted() && std::chrono::steady_clock::now() < deadline) {
    if (auto in = transport.recv(opts.recv_timeout)) {
      proc.on_packet(in->src, in->msg);
      flush_outbox(proc, transport, opts.batch);
    }
  }
}

namespace {
/// Live cluster progress published to the ops plane. The provider callback
/// outlives run_cluster (the admin server keeps it), so the state is shared
/// and every field is an atomic.
struct ClusterState {
  std::atomic<std::size_t> processes{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<std::size_t> decided{0};

  [[nodiscard]] std::string json() const {
    std::string out = "{\"processes\":" + std::to_string(processes.load());
    out.append(",\"finished\":").append(std::to_string(finished.load()));
    out.append(",\"decided\":").append(std::to_string(decided.load()));
    out.push_back('}');
    return out;
  }
};
}  // namespace

RunnerResult run_cluster(std::vector<std::unique_ptr<ConsensusProcess>>& procs,
                         std::vector<std::unique_ptr<Transport>>& transports,
                         const std::vector<Value>& proposals,
                         const RunnerOptions& opts) {
  DEX_ENSURE(procs.size() == transports.size());
  DEX_ENSURE(procs.size() == proposals.size());

  std::shared_ptr<ClusterState> state;
  if (opts.admin != nullptr) {
    state = std::make_shared<ClusterState>();
    state->processes.store(procs.size());
    opts.admin->register_var("cluster", [state] { return state->json(); });
  }

  std::vector<std::thread> threads;
  threads.reserve(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    threads.emplace_back([&, state, i] {
      drive_process(*procs[i], *transports[i], proposals[i], opts);
      if (state != nullptr) {
        state->finished.fetch_add(1);
        if (procs[i]->decision().has_value()) state->decided.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  RunnerResult result;
  result.all_halted = true;
  for (const auto& p : procs) {
    result.decisions.push_back(p->decision());
    result.all_halted = result.all_halted && p->halted();
  }
  return result;
}

}  // namespace dex::transport
