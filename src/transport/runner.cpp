#include "transport/runner.hpp"

#include "common/assert.hpp"

namespace dex::transport {

bool RunnerResult::all_decided() const {
  for (const auto& d : decisions) {
    if (!d.has_value()) return false;
  }
  return true;
}

bool RunnerResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& d : decisions) {
    if (!d.has_value()) continue;
    if (seen.has_value() && *seen != d->value) return false;
    seen = d->value;
  }
  return true;
}

namespace {
void flush_outbox(ConsensusProcess& proc, Transport& transport) {
  for (Outgoing& out : proc.drain_outbox()) {
    if (out.dst == kBroadcastDst) {
      transport.broadcast(out.msg);
    } else {
      transport.send(out.dst, std::move(out.msg));
    }
  }
}
}  // namespace

void drive_process(ConsensusProcess& proc, Transport& transport, Value proposal,
                   const RunnerOptions& opts) {
  const auto deadline = std::chrono::steady_clock::now() + opts.deadline;
  proc.propose(proposal);
  flush_outbox(proc, transport);
  while (!proc.halted() && std::chrono::steady_clock::now() < deadline) {
    if (auto in = transport.recv(opts.recv_timeout)) {
      proc.on_packet(in->src, in->msg);
      flush_outbox(proc, transport);
    }
  }
}

RunnerResult run_cluster(std::vector<std::unique_ptr<ConsensusProcess>>& procs,
                         std::vector<std::unique_ptr<Transport>>& transports,
                         const std::vector<Value>& proposals,
                         const RunnerOptions& opts) {
  DEX_ENSURE(procs.size() == transports.size());
  DEX_ENSURE(procs.size() == proposals.size());

  std::vector<std::thread> threads;
  threads.reserve(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    threads.emplace_back([&, i] {
      drive_process(*procs[i], *transports[i], proposals[i], opts);
    });
  }
  for (auto& th : threads) th.join();

  RunnerResult result;
  result.all_halted = true;
  for (const auto& p : procs) {
    result.decisions.push_back(p->decision());
    result.all_halted = result.all_halted && p->halted();
  }
  return result;
}

}  // namespace dex::transport
