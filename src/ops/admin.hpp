// AdminServer — the embedded ops plane: a dependency-free, poll()-driven
// HTTP/1.0 server on a loopback port that answers diagnostics queries about
// the live process.
//
//   GET /metrics       Prometheus text from the configured registry/snapshot
//   GET /healthz       liveness ("ok" while the server thread runs)
//   GET /readyz        readiness (503 until the app's ready() callback flips)
//   GET /vars          JSON: build info, uptime, registered app vars
//   GET /trace/chrome  flight-recorder snapshot as Chrome trace-event JSON
//   GET /trace/jsonl   flight-recorder snapshot as JSONL
//   GET /logs/level    current log level + format
//   PUT /logs/level    retarget DEX_LOG_LEVEL at runtime (body: "debug", ...)
//
// Off by default and zero steady-state cost: nothing is spawned or bound
// until start(); a constructed-but-not-started server is a few words of
// memory, and its running() probe is one relaxed atomic load (bench_hotpath
// asserts this stays in the noise). The server is single-threaded — one
// poll() loop owns the listen socket and every connection — and serves one
// request per connection (Connection: close), which keeps it immune to
// slow-loris-style accumulation beyond its small connection cap.
//
// Handlers run on the admin thread. Everything they read must therefore be
// thread-safe: metrics instruments are atomics behind a mutexed registry,
// the tracer snapshots under its own lock, and app-published vars either go
// through set_var() (value stored under the server's mutex — the safe choice
// for single-threaded hosts like the simulator) or register_var() (callback
// invoked on the admin thread — for callees that are themselves
// thread-safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "metrics/metrics.hpp"
#include "ops/http.hpp"

namespace dex::ops {

/// Build identity baked in at compile time (DEX_GIT_REV) — the same rev the
/// bench BENCH_*.json files carry, so every surface names its binary.
struct BuildInfo {
  std::string rev;      // short git revision, or "unknown"
  std::string version;  // project version
};
[[nodiscard]] BuildInfo build_info();

struct AdminConfig {
  /// TCP port to bind; 0 picks an ephemeral port (tests). Loopback only by
  /// default — this is a diagnostics plane, not a public API.
  std::uint16_t port = 0;
  std::string bind = "127.0.0.1";
  /// Registry the server decorates with dex_build_info / dex_uptime_seconds
  /// and scrapes for /metrics. Optional.
  metrics::MetricsRegistry* registry = nullptr;
  /// Extra snapshot source merged over the registry's (e.g. dexsim's
  /// cross-trial aggregate). Runs on the admin thread — must be thread-safe.
  std::function<metrics::MetricsSnapshot()> snapshot;
  /// Readiness probe for /readyz; default ready. Runs on the admin thread.
  std::function<bool()> ready;
};

class AdminServer {
 public:
  explicit AdminServer(AdminConfig cfg);
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds the socket and spawns the serving thread. Throws std::runtime_error
  /// when the port cannot be bound.
  void start();
  /// Stops the thread and closes every socket. Idempotent.
  void stop();

  /// True between start() and stop(). One relaxed atomic load.
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// The bound port (resolves port 0 to the ephemeral pick). 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Publish a JSON value (object/array/string/number — inserted verbatim)
  /// under `name` in /vars. Thread-safe; last write wins.
  void set_var(const std::string& name, std::string json_value);
  /// Publish a computed JSON value; `provider` runs on the admin thread per
  /// scrape and must be thread-safe. Overrides any set_var of the same name.
  void register_var(const std::string& name,
                    std::function<std::string()> provider);

  /// Route one request to its endpoint handler (the socket loop calls this;
  /// tests call it directly for socket-free coverage).
  [[nodiscard]] http::Response handle(const http::Request& req);

  [[nodiscard]] double uptime_seconds() const;
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  [[nodiscard]] std::string vars_json();
  [[nodiscard]] metrics::MetricsSnapshot merged_snapshot();

  AdminConfig cfg_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
  std::uint64_t start_ns_ = 0;

  mutable std::mutex vars_mu_;
  std::map<std::string, std::string> static_vars_;
  std::map<std::string, std::function<std::string()>> var_providers_;
};

/// Parses an admin-port value ("8080"): 1..65535, or 0 for an ephemeral
/// port. nullopt for garbage.
[[nodiscard]] std::optional<std::uint16_t> parse_admin_port(
    std::string_view value);

/// Applies DEX_ADMIN (a port number). nullopt when unset or invalid; an
/// invalid value logs one warning. DEX_ADMIN_BIND overrides the bind address
/// via admin_bind_from_env().
[[nodiscard]] std::optional<std::uint16_t> admin_port_from_env();
/// DEX_ADMIN_BIND, defaulting to loopback.
[[nodiscard]] std::string admin_bind_from_env();

}  // namespace dex::ops
