// Minimal HTTP/1.0 plumbing for the embedded admin endpoint: an incremental
// request parser and a response renderer that are pure byte-shufflers (no
// sockets — unit-testable in isolation), plus a tiny blocking loopback client
// shared by dexctl and the ops tests so neither needs curl.
//
// Scope is deliberately narrow: GET/PUT, Content-Length bodies, Connection:
// close semantics (one request per connection), no chunked encoding, no TLS.
// That is exactly what a loopback diagnostics port needs and nothing more.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace dex::ops::http {

struct Request {
  std::string method;   // "GET", "PUT", ...
  std::string target;   // request target as sent, e.g. "/metrics?x=1"
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;

  /// `target` with any query string stripped ("/metrics?x=1" -> "/metrics").
  [[nodiscard]] std::string path() const;
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::map<std::string, std::string> extra_headers;  // e.g. {"Allow","GET"}
};

/// Canonical reason phrase for the status codes the admin plane emits.
const char* status_text(int status);

/// Serializes a response as HTTP/1.0 with Content-Length and
/// Connection: close.
[[nodiscard]] std::string render(const Response& resp);

/// Incremental request parser: feed() bytes as they arrive; kDone exposes the
/// request, kError carries the status to answer with (400 malformed,
/// 413 too large). Oversize requests are rejected at `max_bytes` total.
class RequestParser {
 public:
  enum class State { kHeaders, kBody, kDone, kError };

  explicit RequestParser(std::size_t max_bytes = 64 * 1024)
      : max_bytes_(max_bytes) {}

  State feed(std::string_view data);
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const Request& request() const { return req_; }
  [[nodiscard]] int error_status() const { return error_status_; }

 private:
  State fail(int status) {
    error_status_ = status;
    return state_ = State::kError;
  }
  State parse_headers();

  std::size_t max_bytes_;
  std::string buf_;
  std::size_t body_needed_ = 0;
  Request req_;
  State state_ = State::kHeaders;
  int error_status_ = 400;
};

/// Blocking one-shot HTTP client (loopback diagnostics use). Resolves `host`
/// ("127.0.0.1", "localhost" or any dotted quad), sends one request, reads to
/// EOF and parses the status line. nullopt on connect/transport failure.
struct FetchResult {
  int status = 0;
  std::string body;
  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }
};
std::optional<FetchResult> fetch(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& path, const std::string& body = "",
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

}  // namespace dex::ops::http
