#include "ops/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace dex::ops::http {

namespace {

std::string lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string Request::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render(const Response& resp) {
  std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                    status_text(resp.status) + "\r\n";
  out.append("Content-Type: ").append(resp.content_type).append("\r\n");
  out.append("Content-Length: ")
      .append(std::to_string(resp.body.size()))
      .append("\r\n");
  for (const auto& [k, v] : resp.extra_headers) {
    out.append(k).append(": ").append(v).append("\r\n");
  }
  out.append("Connection: close\r\n\r\n");
  out.append(resp.body);
  return out;
}

RequestParser::State RequestParser::feed(std::string_view data) {
  if (state_ == State::kDone || state_ == State::kError) return state_;
  if (buf_.size() + data.size() > max_bytes_) return fail(413);
  buf_.append(data);
  if (state_ == State::kHeaders) {
    const std::size_t end = buf_.find("\r\n\r\n");
    if (end == std::string::npos) return state_;
    const State s = parse_headers();
    if (s == State::kError) return s;
    buf_.erase(0, end + 4);
    state_ = State::kBody;
  }
  if (state_ == State::kBody) {
    if (buf_.size() < body_needed_) return state_;
    req_.body = buf_.substr(0, body_needed_);
    state_ = State::kDone;
  }
  return state_;
}

RequestParser::State RequestParser::parse_headers() {
  // Request line: METHOD SP TARGET SP HTTP/x.y
  std::size_t pos = 0;
  const std::size_t eol = buf_.find("\r\n");
  const std::string_view line(buf_.data(), eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return fail(400);
  req_.method = std::string(line.substr(0, sp1));
  req_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  req_.version = std::string(trim(line.substr(sp2 + 1)));
  if (req_.method.empty() || req_.target.empty() ||
      req_.version.rfind("HTTP/", 0) != 0) {
    return fail(400);
  }
  pos = eol + 2;
  // Header fields until the blank line.
  while (true) {
    const std::size_t next = buf_.find("\r\n", pos);
    const std::string_view hline(buf_.data() + pos, next - pos);
    if (hline.empty()) break;
    const std::size_t colon = hline.find(':');
    if (colon == std::string_view::npos) return fail(400);
    req_.headers[lower(trim(hline.substr(0, colon)))] =
        std::string(trim(hline.substr(colon + 1)));
    pos = next + 2;
  }
  const auto it = req_.headers.find("content-length");
  if (it != req_.headers.end()) {
    char* endp = nullptr;
    const unsigned long long n = std::strtoull(it->second.c_str(), &endp, 10);
    if (endp == it->second.c_str() || *endp != '\0' || n > max_bytes_) {
      return fail(n > max_bytes_ ? 413 : 400);
    }
    body_needed_ = static_cast<std::size_t>(n);
  }
  return State::kBody;
}

std::optional<FetchResult> fetch(const std::string& host, std::uint16_t port,
                                 const std::string& method,
                                 const std::string& path,
                                 const std::string& body,
                                 std::chrono::milliseconds timeout) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) return std::nullopt;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  std::string req = method + " " + path + " HTTP/1.0\r\n";
  req.append("Host: ").append(ip).append("\r\n");
  if (!body.empty() || method == "PUT") {
    req.append("Content-Length: ").append(std::to_string(body.size()))
        .append("\r\n");
  }
  req.append("Connection: close\r\n\r\n").append(body);
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Status line: HTTP/1.x SP CODE SP reason.
  if (raw.rfind("HTTP/", 0) != 0) return std::nullopt;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos) return std::nullopt;
  FetchResult out;
  out.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end != std::string::npos) out.body = raw.substr(hdr_end + 4);
  return out;
}

}  // namespace dex::ops::http
