#include "ops/admin.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "metrics/export.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

#ifndef DEX_GIT_REV
#define DEX_GIT_REV "unknown"
#endif
#ifndef DEX_VERSION
#define DEX_VERSION "0.0.0"
#endif

namespace dex::ops {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

constexpr std::size_t kMaxConnections = 32;
constexpr int kPollMs = 50;  // stop-flag latency bound

http::Response json_response(int status, std::string body) {
  http::Response resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

http::Response error_response(int status, std::string_view detail) {
  std::string body = "{\"error\":";
  body.append(json_quote(std::string(detail)));
  body.append("}\n");
  return json_response(status, std::move(body));
}

http::Response method_not_allowed(const char* allow) {
  http::Response resp = error_response(405, "method not allowed");
  resp.extra_headers["Allow"] = allow;
  return resp;
}

}  // namespace

BuildInfo build_info() { return {DEX_GIT_REV, DEX_VERSION}; }

AdminServer::AdminServer(AdminConfig cfg) : cfg_(std::move(cfg)) {
  // Decorate the registry up front so /metrics carries the build identity
  // even through the socket-free handle() path (tests, future in-proc use).
  if (cfg_.registry != nullptr) {
    const BuildInfo info = build_info();
    cfg_.registry
        ->gauge("dex_build_info", {{"rev", info.rev}, {"version", info.version}})
        .set(1.0);
    cfg_.registry->gauge("dex_uptime_seconds").set(0.0);
  }
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::start() {
  if (running_.load(std::memory_order_relaxed)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("admin: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (inet_pton(AF_INET, cfg_.bind.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("admin: bad bind address '" + cfg_.bind + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("admin: cannot listen on " + cfg_.bind + ":" +
                             std::to_string(cfg_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  set_nonblocking(listen_fd_);
  start_ns_ = steady_ns();

  stopping_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  DEX_LOG(kInfo, "admin") << "listening on " << cfg_.bind << ":" << bound_port_;
}

void AdminServer::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_relaxed);
}

double AdminServer::uptime_seconds() const {
  if (start_ns_ == 0) return 0.0;
  return static_cast<double>(steady_ns() - start_ns_) / 1e9;
}

void AdminServer::set_var(const std::string& name, std::string json_value) {
  const std::scoped_lock lock(vars_mu_);
  static_vars_[name] = std::move(json_value);
}

void AdminServer::register_var(const std::string& name,
                               std::function<std::string()> provider) {
  const std::scoped_lock lock(vars_mu_);
  var_providers_[name] = std::move(provider);
}

metrics::MetricsSnapshot AdminServer::merged_snapshot() {
  metrics::MetricsSnapshot snap;
  if (cfg_.registry != nullptr) {
    cfg_.registry->gauge("dex_uptime_seconds").set(uptime_seconds());
    snap.merge(cfg_.registry->snapshot());
  }
  if (cfg_.snapshot) snap.merge(cfg_.snapshot());
  return snap;
}

std::string AdminServer::vars_json() {
  const BuildInfo info = build_info();
  std::string out = "{\n  \"build\": {\"rev\": ";
  out.append(json_quote(info.rev));
  out.append(", \"version\": ");
  out.append(json_quote(info.version));
  out.append("},\n  \"uptime_seconds\": ");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", uptime_seconds());
  out.append(buf);
  out.append(",\n  \"admin\": {\"port\": ");
  out.append(std::to_string(bound_port_));
  out.append(", \"requests_served\": ");
  out.append(std::to_string(requests_served()));
  out.append("}");

  // Providers override same-named static vars; both render verbatim (the
  // publisher owns JSON validity).
  std::map<std::string, std::string> merged;
  {
    const std::scoped_lock lock(vars_mu_);
    merged = static_vars_;
    for (const auto& [name, provider] : var_providers_) {
      merged[name] = provider ? provider() : "null";
    }
  }
  for (const auto& [name, value] : merged) {
    out.append(",\n  ");
    out.append(json_quote(name));
    out.append(": ");
    out.append(value.empty() ? "null" : value);
  }
  out.append("\n}\n");
  return out;
}

http::Response AdminServer::handle(const http::Request& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = req.path();
  const bool is_get = req.method == "GET";
  const bool is_put = req.method == "PUT";

  if (path == "/" || path == "/help") {
    if (!is_get) return method_not_allowed("GET");
    http::Response resp;
    resp.body =
        "dex admin endpoints:\n"
        "  GET /metrics       Prometheus text\n"
        "  GET /healthz       liveness\n"
        "  GET /readyz        readiness\n"
        "  GET /vars          JSON process vars\n"
        "  GET /trace/chrome  Chrome trace-event JSON snapshot\n"
        "  GET /trace/jsonl   JSONL trace snapshot\n"
        "  GET /logs/level    current log level\n"
        "  PUT /logs/level    set log level (body: trace|debug|info|warn|error|off)\n";
    return resp;
  }
  if (path == "/metrics") {
    if (!is_get) return method_not_allowed("GET");
    http::Response resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = metrics::to_prometheus(merged_snapshot());
    return resp;
  }
  if (path == "/healthz") {
    if (!is_get) return method_not_allowed("GET");
    http::Response resp;
    resp.body = "ok\n";
    return resp;
  }
  if (path == "/readyz") {
    if (!is_get) return method_not_allowed("GET");
    const bool ready = !cfg_.ready || cfg_.ready();
    http::Response resp;
    resp.status = ready ? 200 : 503;
    resp.body = ready ? "ready\n" : "not ready\n";
    return resp;
  }
  if (path == "/vars") {
    if (!is_get) return method_not_allowed("GET");
    return json_response(200, vars_json());
  }
  if (path == "/trace/chrome") {
    if (!is_get) return method_not_allowed("GET");
    return json_response(
        200, trace::to_chrome_json(trace::Tracer::global().snapshot()));
  }
  if (path == "/trace/jsonl") {
    if (!is_get) return method_not_allowed("GET");
    http::Response resp;
    resp.content_type = "application/x-ndjson";
    resp.body = trace::to_jsonl(trace::Tracer::global().snapshot());
    return resp;
  }
  if (path == "/logs/level") {
    if (is_get) {
      std::string body = "{\"level\":\"";
      body.append(log_level_name(log_level()));
      body.append("\",\"format\":\"");
      body.append(log_format() == LogFormat::kJson ? "json" : "text");
      body.append("\"}\n");
      return json_response(200, std::move(body));
    }
    if (is_put) {
      std::string want = req.body;
      while (!want.empty() &&
             (want.back() == '\n' || want.back() == '\r' || want.back() == ' ')) {
        want.pop_back();
      }
      // Accept both the bare name ("debug") and {"level":"debug"}.
      const std::size_t key = want.find("\"level\"");
      if (key != std::string::npos) {
        const std::size_t open = want.find('"', want.find(':', key));
        const std::size_t close =
            open == std::string::npos ? std::string::npos
                                      : want.find('"', open + 1);
        if (close == std::string::npos) return error_response(400, "bad body");
        want = want.substr(open + 1, close - open - 1);
      }
      const auto level = log_level_from_name(want);
      if (!level.has_value()) {
        return error_response(400, "unknown level '" + want + "'");
      }
      set_log_level(*level);
      DEX_LOG(kInfo, "admin") << "log level set to " << log_level_name(*level);
      std::string body = "{\"level\":\"";
      body.append(log_level_name(*level));
      body.append("\"}\n");
      return json_response(200, std::move(body));
    }
    return method_not_allowed("GET, PUT");
  }
  return error_response(404, "not found");
}

void AdminServer::serve_loop() {
  struct Conn {
    int fd = -1;
    http::RequestParser parser;
    std::string out;
    std::size_t sent = 0;
    bool writing = false;
  };
  std::vector<Conn> conns;

  const auto close_conn = [&conns](std::size_t i) {
    ::close(conns[i].fd);
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
  };

  while (!stopping_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns) {
      fds.push_back({c.fd, static_cast<short>(c.writing ? POLLOUT : POLLIN), 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), kPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;

    // Connections accepted below have no pollfd entry this round; remember
    // how many were actually polled so the walk stays inside `fds`.
    const std::size_t polled = conns.size();

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (conns.size() >= kMaxConnections) {
          ::close(fd);
          continue;
        }
        set_nonblocking(fd);
        Conn c;
        c.fd = fd;
        conns.push_back(std::move(c));
      }
    }

    // Walk backwards so close_conn()'s erase cannot skip an entry.
    for (std::size_t i = polled; i-- > 0;) {
      const short rev = fds[i + 1].revents;
      Conn& c = conns[i];
      if ((rev & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !c.writing) {
        close_conn(i);
        continue;
      }
      if (!c.writing && (rev & POLLIN) != 0) {
        char buf[4096];
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n == 0) {
          close_conn(i);
          continue;
        }
        if (n < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK) close_conn(i);
          continue;
        }
        const auto state =
            c.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        if (state == http::RequestParser::State::kDone) {
          c.out = http::render(handle(c.parser.request()));
          c.writing = true;
        } else if (state == http::RequestParser::State::kError) {
          c.out = http::render(
              error_response(c.parser.error_status(), "malformed request"));
          c.writing = true;
        }
      } else if (c.writing && (rev & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        const ssize_t n =
            ::send(c.fd, c.out.data() + c.sent, c.out.size() - c.sent, 0);
        if (n < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK) close_conn(i);
          continue;
        }
        c.sent += static_cast<std::size_t>(n);
        if (c.sent >= c.out.size()) close_conn(i);
      }
    }
  }
  for (const Conn& c : conns) ::close(c.fd);
  conns.clear();
}

std::optional<std::uint16_t> parse_admin_port(std::string_view value) {
  if (value.empty()) return std::nullopt;
  std::uint32_t port = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return std::nullopt;
  }
  return static_cast<std::uint16_t>(port);
}

std::optional<std::uint16_t> admin_port_from_env() {
  const char* value = std::getenv("DEX_ADMIN");
  if (value == nullptr) return std::nullopt;
  const auto port = parse_admin_port(value);
  if (!port.has_value()) {
    warn_bad_env("DEX_ADMIN", value, "a TCP port number (0..65535)");
  }
  return port;
}

std::string admin_bind_from_env() {
  const char* value = std::getenv("DEX_ADMIN_BIND");
  return value == nullptr ? "127.0.0.1" : value;
}

}  // namespace dex::ops
