// Deterministic, seedable random number generation.
//
// The simulator and all randomized protocols use these generators instead of
// <random> engines so that runs are bit-for-bit reproducible across
// platforms and standard-library implementations (libstdc++ and libc++
// disagree on distribution algorithms, not on engines — so we also provide
// our own distributions).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace dex {

/// SplitMix64 — used to seed Xoshiro and for cheap stateless mixing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a 64-bit value (one SplitMix64 step). Handy for deriving
/// per-entity seeds from a master seed without sharing generator state.
std::uint64_t mix64(std::uint64_t x);

/// Xoshiro256** — the library's workhorse PRNG. Fast, high quality, tiny.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double p_true = 0.5);

  /// Exponentially distributed double with the given mean (> 0).
  double next_exponential(double mean);

  /// Log-normal: exp(N(mu, sigma)).
  double next_lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller (polar form, deterministic).
  double next_normal();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    DEX_ENSURE(!v.empty());
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Derive an independent child generator (e.g. one per simulated process).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dex
