// Lightweight runtime contract checks.
//
// DEX_ENSURE is used for programmer-error invariants that must hold in all
// build types (the cost is negligible next to message handling). Violations
// throw dex::ContractViolation so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dex {

/// Thrown when an internal invariant or precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace dex

#define DEX_ENSURE(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::dex::detail::contract_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DEX_ENSURE_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) ::dex::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
