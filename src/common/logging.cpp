#include "common/logging.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace dex {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_name(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (upper == log_level_name(level)) return level;
  }
  return std::nullopt;
}

std::optional<LogLevel> init_log_level_from_env() {
  const char* value = std::getenv("DEX_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  const auto level = log_level_from_name(value);
  if (level.has_value()) set_log_level(*level);
  return level;
}

std::optional<int> parse_trace_level(const char* value) {
  if (value == nullptr) return std::nullopt;
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "0" || lower == "off" || lower == "false" || lower == "no") return 0;
  if (lower == "1" || lower == "on" || lower == "true" || lower == "yes") return 1;
  if (lower == "2" || lower == "verbose" || lower == "full") return 2;
  return std::nullopt;
}

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg) {
  std::string line;
  line.reserve(msg.size() + component.size() + 16);
  line.append("[");
  line.append(log_level_name(level));
  line.append("] ");
  line.append(component);
  line.append(": ");
  line.append(msg);
  line.push_back('\n');
  const std::scoped_lock lock(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace dex
