#include "common/logging.hpp"

#include <cstdio>
#include <mutex>
#include <string>

namespace dex {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg) {
  std::string line;
  line.reserve(msg.size() + component.size() + 16);
  line.append("[");
  line.append(log_level_name(level));
  line.append("] ");
  line.append(component);
  line.append(": ");
  line.append(msg);
  line.push_back('\n');
  const std::scoped_lock lock(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace dex
