#include "common/logging.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/json.hpp"

namespace dex {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogFormat> g_format{LogFormat::kText};
std::mutex g_emit_mutex;
std::function<void(std::string_view)> g_sink;  // guarded by g_emit_mutex

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_name(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (upper == log_level_name(level)) return level;
  }
  return std::nullopt;
}

void warn_bad_env(const char* var, std::string_view value,
                  std::string_view expected) {
  DEX_LOG(kWarn, "env") << "ignoring " << var << "='" << value
                        << "' (expected: " << expected << ")";
}

std::optional<LogLevel> init_log_level_from_env() {
  const char* value = std::getenv("DEX_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  const auto level = log_level_from_name(value);
  if (level.has_value()) {
    set_log_level(*level);
  } else {
    warn_bad_env("DEX_LOG_LEVEL", value, "trace|debug|info|warn|error|off");
  }
  return level;
}

LogFormat log_format() { return g_format.load(std::memory_order_relaxed); }
void set_log_format(LogFormat format) {
  g_format.store(format, std::memory_order_relaxed);
}

std::optional<LogFormat> log_format_from_name(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "text") return LogFormat::kText;
  if (lower == "json") return LogFormat::kJson;
  return std::nullopt;
}

std::optional<LogFormat> init_log_format_from_env() {
  const char* value = std::getenv("DEX_LOG_FORMAT");
  if (value == nullptr) return std::nullopt;
  const auto format = log_format_from_name(value);
  if (format.has_value()) {
    set_log_format(*format);
  } else {
    warn_bad_env("DEX_LOG_FORMAT", value, "text|json");
  }
  return format;
}

std::optional<int> parse_trace_level(const char* value) {
  if (value == nullptr) return std::nullopt;
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "0" || lower == "off" || lower == "false" || lower == "no") return 0;
  if (lower == "1" || lower == "on" || lower == "true" || lower == "yes") return 1;
  if (lower == "2" || lower == "verbose" || lower == "full") return 2;
  return std::nullopt;
}

void set_log_sink(std::function<void(std::string_view)> sink) {
  const std::scoped_lock lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace detail {
namespace {

void format_text(std::string& line, LogLevel level, std::string_view component,
                 std::string_view msg, const LogCtx* ctx) {
  line.append("[");
  line.append(log_level_name(level));
  line.append("] ");
  line.append(component);
  line.append(": ");
  line.append(msg);
  if (ctx != nullptr) {
    std::string fields;
    if (ctx->proc != kNoProcess) {
      fields.append(fields.empty() ? "" : " ");
      fields.append("proc=").append(std::to_string(ctx->proc));
    }
    if (ctx->instance >= 0) {
      fields.append(fields.empty() ? "" : " ");
      fields.append("instance=").append(std::to_string(ctx->instance));
    }
    if (ctx->slot >= 0) {
      fields.append(fields.empty() ? "" : " ");
      fields.append("slot=").append(std::to_string(ctx->slot));
    }
    if (ctx->path != nullptr) {
      fields.append(fields.empty() ? "" : " ");
      fields.append("path=").append(ctx->path);
    }
    if (!ctx->span.empty()) {
      fields.append(fields.empty() ? "" : " ");
      fields.append("span=").append(ctx->span);
    }
    if (!fields.empty()) line.append(" {").append(fields).append("}");
  }
  line.push_back('\n');
}

void format_json(std::string& line, LogLevel level, std::string_view component,
                 std::string_view msg, const LogCtx* ctx) {
  line.append("{\"ts_ms\":").append(std::to_string(wall_ms()));
  line.append(",\"level\":\"").append(log_level_name(level)).append("\"");
  line.append(",\"component\":");
  line.append(json_quote(component));
  line.append(",\"msg\":");
  line.append(json_quote(msg));
  if (ctx != nullptr) {
    if (ctx->proc != kNoProcess) {
      line.append(",\"proc\":").append(std::to_string(ctx->proc));
    }
    if (ctx->instance >= 0) {
      line.append(",\"instance_id\":").append(std::to_string(ctx->instance));
    }
    if (ctx->slot >= 0) {
      line.append(",\"slot\":").append(std::to_string(ctx->slot));
    }
    if (ctx->path != nullptr) {
      line.append(",\"path\":");
      line.append(json_quote(ctx->path));
    }
    if (!ctx->span.empty()) {
      line.append(",\"span_id\":");
      line.append(json_quote(ctx->span));
    }
  }
  line.append("}\n");
}

}  // namespace

void log_emit(LogLevel level, std::string_view component, std::string_view msg,
              const LogCtx* ctx) {
  std::string line;
  line.reserve(msg.size() + component.size() + 48);
  if (log_format() == LogFormat::kJson) {
    format_json(line, level, component, msg, ctx);
  } else {
    format_text(line, level, component, msg, ctx);
  }
  const std::scoped_lock lock(g_emit_mutex);
  if (g_sink) {
    g_sink(line);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace dex
