// Minimal JSON string escaping, shared by the hand-rolled emitters (metrics
// exporter, structured log lines, ops /vars endpoint). Escapes the two
// mandatory characters (backslash, double quote) plus control characters;
// everything else passes through byte-for-byte, so UTF-8 input stays UTF-8.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace dex {

inline void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      case '\r': out.append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
}

[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_json_escaped(out, s);
  return out;
}

/// `"escaped"` — the quoted JSON string literal for `s`.
[[nodiscard]] inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  append_json_escaped(out, s);
  out.push_back('"');
  return out;
}

}  // namespace dex
