// Streaming statistics for bench/metric reporting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dex {

/// Exact-quantile accumulator. Stores all samples; fine for bench scale
/// (simulations produce at most a few million samples per run).
///
/// Every statistic is total: on an empty histogram min/max/mean/stddev/sum
/// and quantile all return 0.0 (so exporters and benches never trip on a
/// series that received no samples), and quantile() clamps q into [0, 1].
class Histogram {
 public:
  void add(double sample);
  void merge(const Histogram& other);
  /// Pre-size the sample store (hot bench loops add millions of samples).
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Nearest-rank quantile; q is clamped into [0, 1] (NaN reads as 0).
  [[nodiscard]] double quantile(double q) const;

  /// "n=..., mean=..., p50=..., p99=..., max=..." one-liner.
  [[nodiscard]] std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  double sum_sq_ = 0;
};

/// Counts occurrences of discrete outcomes (e.g. decision paths).
class Counter {
 public:
  void add(const std::string& key, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t get(const std::string& key) const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] double fraction(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& entries() const {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dex
