// Streaming statistics for bench/metric reporting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dex {

/// Exact-quantile accumulator. Stores all samples; fine for bench scale
/// (simulations produce at most a few million samples per run).
class Histogram {
 public:
  void add(double sample);
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// q in [0, 1]; nearest-rank quantile.
  [[nodiscard]] double quantile(double q) const;

  /// "n=..., mean=..., p50=..., p99=..., max=..." one-liner.
  [[nodiscard]] std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  double sum_sq_ = 0;
};

/// Counts occurrences of discrete outcomes (e.g. decision paths).
class Counter {
 public:
  void add(const std::string& key, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t get(const std::string& key) const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] double fraction(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& entries() const {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dex
