// Byte-level serialization for wire messages.
//
// A tiny hand-rolled codec: little-endian fixed-width integers, LEB128
// varints for lengths, and length-prefixed strings/vectors. Every Reader
// operation is bounds-checked and reports failure through DecodeError so a
// malformed frame from a Byzantine peer can never read out of bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dex {

/// Thrown by Reader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends encoded values to a growable byte buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  /// Encoded byte length of varint(v) without writing it (frame sizing).
  [[nodiscard]] static std::size_t varint_size(std::uint64_t v);
  void boolean(bool v);
  void bytes(std::span<const std::byte> data);          // raw, no length prefix
  void str(std::string_view s);                         // varint length + bytes

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& encode_elem) {
    varint(v.size());
    for (const T& e : v) encode_elem(*this, e);
  }

  [[nodiscard]] std::span<const std::byte> view() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Consumes encoded values from a byte span. Does not own the data.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  /// Next byte without consuming it (frame-kind dispatch); nullopt at end.
  [[nodiscard]] std::optional<std::uint8_t> peek_u8() const;
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::uint64_t varint();
  bool boolean();
  std::string str();
  /// Raw bytes (caller knows the length).
  std::span<const std::byte> bytes(std::size_t len);

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_elem, std::size_t max_elems = 1u << 20) {
    const std::uint64_t count = varint();
    if (count > max_elems) throw DecodeError("vector length exceeds limit");
    std::vector<T> out;
    // Each element consumes at least one input byte, so a declared count
    // beyond remaining() is a lie — clamp the reservation to what the input
    // can hold; the per-element decodes still fail cleanly on truncation.
    out.reserve(static_cast<std::size_t>(
        count < remaining() ? count : remaining()));
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(decode_elem(*this));
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace dex
