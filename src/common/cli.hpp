// A small command-line argument parser for the tools and examples.
//
// Supports --flag, --key value and --key=value forms, typed accessors with
// defaults, required arguments, and an auto-generated usage string. No
// external dependencies, no global state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dex {

class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& what) : std::runtime_error(what) {}
};

class Cli {
 public:
  /// Declares an option (for the usage string). Declaring is optional —
  /// undeclared options still parse — but declared ones show in usage() and
  /// unknown options are rejected when strict mode is on.
  Cli& option(std::string name, std::string help, std::string default_desc = "");

  /// Parses argv. Throws CliError on malformed input or (in strict mode)
  /// unknown options.
  void parse(int argc, const char* const* argv, bool strict = true);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t num(const std::string& name,
                                 std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t unsigned_num(const std::string& name,
                                           std::uint64_t fallback) const;
  [[nodiscard]] double real(const std::string& name, double fallback) const;
  [[nodiscard]] bool flag(const std::string& name) const { return has(name); }

  /// Positional (non --option) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Decl {
    std::string name;
    std::string help;
    std::string default_desc;
  };
  std::vector<Decl> decls_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dex
