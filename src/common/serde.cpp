#include "common/serde.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

namespace dex {

namespace {
template <typename T>
void put_le(std::vector<std::byte>& buf, T v) {
  static_assert(std::is_integral_v<T> || std::is_floating_point_v<T>);
  std::array<std::byte, sizeof(T)> raw;
  std::memcpy(raw.data(), &v, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    std::reverse(raw.begin(), raw.end());
  }
  buf.insert(buf.end(), raw.begin(), raw.end());
}
}  // namespace

void Writer::u8(std::uint8_t v) { put_le(buf_, v); }
void Writer::u16(std::uint16_t v) { put_le(buf_, v); }
void Writer::u32(std::uint32_t v) { put_le(buf_, v); }
void Writer::u64(std::uint64_t v) { put_le(buf_, v); }
void Writer::i32(std::int32_t v) { put_le(buf_, static_cast<std::uint32_t>(v)); }
void Writer::i64(std::int64_t v) { put_le(buf_, static_cast<std::uint64_t>(v)); }
void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<std::byte>(v));
}

std::size_t Writer::varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::bytes(std::span<const std::byte> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::str(std::string_view s) {
  varint(s.size());
  bytes(std::as_bytes(std::span(s.data(), s.size())));
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

namespace {
template <typename T>
T get_le(std::span<const std::byte> data, std::size_t pos) {
  std::array<std::byte, sizeof(T)> raw;
  std::memcpy(raw.data(), data.data() + pos, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    std::reverse(raw.begin(), raw.end());
  }
  T v;
  std::memcpy(&v, raw.data(), sizeof(T));
  return v;
}
}  // namespace

std::optional<std::uint8_t> Reader::peek_u8() const {
  if (remaining() == 0) return std::nullopt;
  return get_le<std::uint8_t>(data_, pos_);
}

std::uint8_t Reader::u8() {
  need(1);
  const auto v = get_le<std::uint8_t>(data_, pos_);
  pos_ += 1;
  return v;
}
std::uint16_t Reader::u16() {
  need(2);
  const auto v = get_le<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}
std::uint32_t Reader::u32() {
  need(4);
  const auto v = get_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}
std::uint64_t Reader::u64() {
  need(8);
  const auto v = get_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}
std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }
double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const auto b = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift == 63 && (b & 0x7e) != 0) throw DecodeError("varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw DecodeError("varint too long");
  }
}

bool Reader::boolean() {
  const auto v = u8();
  if (v > 1) throw DecodeError("invalid boolean");
  return v == 1;
}

std::string Reader::str() {
  const std::uint64_t len = varint();
  if (len > remaining()) throw DecodeError("string length exceeds input");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

std::span<const std::byte> Reader::bytes(std::size_t len) {
  need(len);
  auto out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

}  // namespace dex
