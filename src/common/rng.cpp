#include "common/rng.hpp"

#include <cmath>

namespace dex {

std::uint64_t mix64(std::uint64_t x) { return SplitMix64(x).next(); }

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Xoshiro must not start from the all-zero state; SplitMix64 makes that
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DEX_ENSURE_MSG(bound > 0, "next_below requires bound > 0");
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  DEX_ENSURE(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t off = (span == 0) ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
}

double Rng::next_double() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_exponential(double mean) {
  DEX_ENSURE(mean > 0);
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal() {
  // Polar Box-Muller; discard the second variate for determinism simplicity.
  for (;;) {
    const double u = 2.0 * next_double() - 1.0;
    const double v = 2.0 * next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::next_lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * next_normal());
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace dex
