// A minimal JSON document model and recursive-descent parser, shared by every
// in-tree consumer of our own JSON surfaces (metrics exporter round-trips,
// scenario-genome reproducer files, ops /vars probes). Handles objects,
// arrays, strings, numbers, bool and null; string escapes match what
// common/json.hpp emits (\uXXXX only for ASCII control characters). Not a
// general-purpose JSON library — it reads what this repo writes.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dex::json {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }

  /// Member access with a descriptive error (objects only).
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True when `key` exists on this object.
  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::kObject && obj.count(key) > 0;
  }

  // Typed accessors with defaults for optional members.
  [[nodiscard]] double num_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback) const;
};

/// Parses one JSON document; trailing non-whitespace is an error.
/// Throws ParseError with the byte offset on malformed input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace dex::json
