#include "common/cli.hpp"

#include <algorithm>
#include <sstream>
#include <string_view>

namespace dex {

Cli& Cli::option(std::string name, std::string help, std::string default_desc) {
  decls_.push_back({std::move(name), std::move(help), std::move(default_desc)});
  return *this;
}

void Cli::parse(int argc, const char* const* argv, bool strict) {
  auto declared = [&](const std::string& name) {
    return std::any_of(decls_.begin(), decls_.end(),
                       [&](const Decl& d) { return d.name == name; });
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
      has_value = true;
    }
    if (name.empty()) throw CliError("empty option name");
    if (strict && !decls_.empty() && !declared(name)) {
      throw CliError("unknown option --" + name);
    }
    values_[name] = has_value ? value : "";
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::str(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() || it->second.empty() ? fallback : it->second;
}

std::int64_t Cli::num(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const auto v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw CliError("trailing junk in --" + name);
    return v;
  } catch (const std::invalid_argument&) {
    throw CliError("--" + name + " expects an integer, got '" + it->second + "'");
  } catch (const std::out_of_range&) {
    throw CliError("--" + name + " out of range");
  }
}

std::uint64_t Cli::unsigned_num(const std::string& name,
                                std::uint64_t fallback) const {
  const auto v = num(name, static_cast<std::int64_t>(fallback));
  if (v < 0) throw CliError("--" + name + " must be non-negative");
  return static_cast<std::uint64_t>(v);
}

double Cli::real(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw CliError("trailing junk in --" + name);
    return v;
  } catch (const std::invalid_argument&) {
    throw CliError("--" + name + " expects a number, got '" + it->second + "'");
  }
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& d : decls_) {
    os << "  --" << d.name;
    if (!d.default_desc.empty()) os << " <" << d.default_desc << ">";
    os << "\n      " << d.help << "\n";
  }
  return os.str();
}

}  // namespace dex
