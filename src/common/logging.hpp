// Minimal leveled, thread-safe logger.
//
// The library is quiet by default (kWarn); examples and benches raise the
// level explicitly. Log lines go to stderr so program output stays clean.
//
// Two output formats (DEX_LOG_FORMAT=text|json):
//   text  [INFO] sim: decided value=7 {proc=0 instance=3 path=one_step}
//   json  {"ts_ms":…,"level":"INFO","component":"sim","msg":"decided value=7",
//          "proc":0,"instance":3,"path":"one_step"}
// The JSON mode emits exactly one object per line so log shippers need no
// framing, and the optional correlation fields (LogCtx) carry the same
// proc / instance_id / slot / path / span identifiers the metrics series and
// trace events use — a decide can be joined across all three surfaces.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace dex {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold. Messages below it are formatted lazily (not at all).
LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

/// Inverse of log_level_name (case-insensitive); nullopt for unknown names.
std::optional<LogLevel> log_level_from_name(std::string_view name);

/// Applies the DEX_LOG_LEVEL environment variable (e.g. DEX_LOG_LEVEL=debug)
/// so tools and tests can raise verbosity without code changes. Returns the
/// level applied, or nullopt when the variable is unset or unrecognized (the
/// current level is left untouched; an unrecognized value logs one warning).
std::optional<LogLevel> init_log_level_from_env();

/// Output format of emitted log lines. kText is the human default; kJson
/// emits one JSON object per line for machine ingestion.
enum class LogFormat : int { kText = 0, kJson };

LogFormat log_format();
void set_log_format(LogFormat format);

/// Inverse of the DEX_LOG_FORMAT contract ("text" | "json", case-insensitive);
/// nullopt for unknown names.
std::optional<LogFormat> log_format_from_name(std::string_view name);

/// Applies the DEX_LOG_FORMAT environment variable (text | json). Returns the
/// format applied, or nullopt when unset/unrecognized (one warning on a bad
/// value, format untouched).
std::optional<LogFormat> init_log_format_from_env();

/// Parses a DEX_TRACE value into a tracing level: 0 (off), 1 (on) or
/// 2 (verbose, adds per-message engine events). Accepts the numerals and the
/// case-insensitive aliases off/false/no, on/true/yes, verbose/full; nullopt
/// (level untouched) for nullptr or anything else. The tracing layer applies
/// the result via dex::trace::init_from_env() — parsing lives here so the
/// environment contract sits next to DEX_LOG_LEVEL's.
std::optional<int> parse_trace_level(const char* value);

/// Emits the single standard warning for an unrecognized environment-variable
/// value ("env: ignoring VAR='value' (expected: …)"). Shared by the
/// DEX_LOG_LEVEL / DEX_LOG_FORMAT / DEX_TRACE / DEX_ADMIN appliers so every
/// bad value is diagnosed the same way instead of being silently dropped.
void warn_bad_env(const char* var, std::string_view value,
                  std::string_view expected);

/// Correlation fields attached to a log line (all optional; unset fields are
/// omitted from the output). `instance` doubles as the SMR slot id when the
/// line is about a slot; `span` matches the trace exporters' async-span id
/// ("p<proc>/i<instance>/t<tag>/<name>") so a line can name its span.
struct LogCtx {
  ProcessId proc = kNoProcess;
  std::int64_t instance = -1;  // consensus instance id (== slot for SMR)
  std::int64_t slot = -1;      // SMR slot, when distinct from instance
  const char* path = nullptr;  // decision path label (one_step | two_step | …)
  std::string span;            // trace span correlation id; empty = unset
};

/// Test hook: redirect emitted lines (the fully formatted line, including the
/// trailing newline) into `sink` instead of stderr; nullptr restores stderr.
/// The sink runs under the emit mutex — keep it fast.
void set_log_sink(std::function<void(std::string_view)> sink);

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg,
              const LogCtx* ctx = nullptr);

/// Accumulates one log line via operator<< and emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(LogLevel level, std::string_view component, LogCtx ctx)
      : level_(level), component_(component), ctx_(std::move(ctx)),
        has_ctx_(true) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    log_emit(level_, component_, os_.str(), has_ctx_ ? &ctx_ : nullptr);
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  LogCtx ctx_;
  bool has_ctx_ = false;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dex

// Usage: DEX_LOG(kInfo, "sim") << "delivered " << n << " packets";
#define DEX_LOG(level, component)                       \
  if (::dex::LogLevel::level < ::dex::log_level()) {    \
  } else                                                \
    ::dex::detail::LogLine(::dex::LogLevel::level, (component))

// Correlated variant; the third argument is a LogCtx designated initializer
// (variadic so its commas survive the preprocessor):
//   DEX_LOG_CTX(kInfo, "sim", {.proc = p, .instance = id, .path = "one_step"})
//       << "decided value=" << v;
#define DEX_LOG_CTX(level, component, ...)              \
  if (::dex::LogLevel::level < ::dex::log_level()) {    \
  } else                                                \
    ::dex::detail::LogLine(::dex::LogLevel::level, (component), \
                           ::dex::LogCtx __VA_ARGS__)
