// Minimal leveled, thread-safe logger.
//
// The library is quiet by default (kWarn); examples and benches raise the
// level explicitly. Log lines go to stderr so program output stays clean.
#pragma once

#include <atomic>
#include <optional>
#include <sstream>
#include <string_view>

namespace dex {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold. Messages below it are formatted lazily (not at all).
LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

/// Inverse of log_level_name (case-insensitive); nullopt for unknown names.
std::optional<LogLevel> log_level_from_name(std::string_view name);

/// Applies the DEX_LOG_LEVEL environment variable (e.g. DEX_LOG_LEVEL=debug)
/// so tools and tests can raise verbosity without code changes. Returns the
/// level applied, or nullopt when the variable is unset or unrecognized (the
/// current level is left untouched).
std::optional<LogLevel> init_log_level_from_env();

/// Parses a DEX_TRACE value into a tracing level: 0 (off), 1 (on) or
/// 2 (verbose, adds per-message engine events). Accepts the numerals and the
/// case-insensitive aliases off/false/no, on/true/yes, verbose/full; nullopt
/// (level untouched) for nullptr or anything else. The tracing layer applies
/// the result via dex::trace::init_from_env() — parsing lives here so the
/// environment contract sits next to DEX_LOG_LEVEL's.
std::optional<int> parse_trace_level(const char* value);

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg);

/// Accumulates one log line via operator<< and emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dex

// Usage: DEX_LOG(kInfo, "sim") << "delivered " << n << " packets";
#define DEX_LOG(level, component)                       \
  if (::dex::LogLevel::level < ::dex::log_level()) {    \
  } else                                                \
    ::dex::detail::LogLine(::dex::LogLevel::level, (component))
