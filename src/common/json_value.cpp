#include "common/json_value.hpp"

#include <cctype>
#include <cstdlib>

namespace dex::json {

const Value& Value::at(const std::string& key) const {
  const auto it = obj.find(key);
  if (type != Type::kObject || it == obj.end()) {
    throw ParseError("json: missing key '" + key + "'");
  }
  return it->second;
}

double Value::num_or(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  return at(key).number;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  return at(key).boolean;
}

std::string Value::str_or(const std::string& key,
                          const std::string& fallback) const {
  if (!has(key)) return fallback;
  return at(key).str;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.type = Value::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.type = Value::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return Value{};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // \uXXXX — our own emitters only produce these for ASCII control
            // characters, so the low byte is the character.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
            c = static_cast<char>(code);
            break;
          }
          default: fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      v.obj.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace dex::json
