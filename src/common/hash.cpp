#include "common/hash.hpp"

#include <array>

namespace dex {

std::uint64_t fnv1a64(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) {
  return fnv1a64(std::as_bytes(std::span(s.data(), s.size())));
}

namespace {
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? (0xedb88320U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
constexpr auto kCrcTable = make_crc_table();
}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffU;
  for (const std::byte b : data) {
    c = kCrcTable[(c ^ static_cast<std::uint32_t>(b)) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

}  // namespace dex
