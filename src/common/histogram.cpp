#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dex {

void Histogram::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sum_sq_ += sample * sample;
  sorted_valid_ = false;
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_valid_ = false;
}

void Histogram::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.front();
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.empty()) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  // Clamp instead of asserting: a NaN or out-of-range q from arithmetic on
  // degenerate inputs reads as the nearest valid quantile, never UB.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted_.size()) - 1,
                       std::floor(q * static_cast<double>(sorted_.size()))));
  return sorted_[idx];
}

std::string Histogram::summary() const {
  if (samples_.empty()) return "n=0";
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << quantile(0.5)
     << " p90=" << quantile(0.9) << " p99=" << quantile(0.99)
     << " max=" << max();
  return os.str();
}

void Counter::add(const std::string& key, std::uint64_t delta) {
  counts_[key] += delta;
  total_ += delta;
}

std::uint64_t Counter::get(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t Counter::total() const { return total_; }

double Counter::fraction(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(get(key)) / static_cast<double>(total_);
}

}  // namespace dex
