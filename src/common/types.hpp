// Fundamental type aliases shared across the DEX library.
#pragma once

#include <cstdint>
#include <limits>

namespace dex {

/// Identifier of a process in the system Pi = {p_0, ..., p_{n-1}}.
/// The paper indexes from 1; we index from 0 throughout the code base.
using ProcessId = std::int32_t;

/// A proposal value. The consensus core agrees on opaque 64-bit values;
/// applications that need richer payloads (e.g. the SMR substrate) agree on
/// a digest and disseminate the payload out of band.
using Value = std::int64_t;

/// Sentinel used by container code where "no process" is needed.
inline constexpr ProcessId kNoProcess = -1;

/// Simulated time in nanoseconds (discrete-event simulator clock).
using SimTime = std::uint64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Identifies one consensus instance (e.g. an SMR slot).
using InstanceId = std::uint64_t;

}  // namespace dex
