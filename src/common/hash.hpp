// Non-cryptographic hashing used for framing checksums and digests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace dex {

/// FNV-1a 64-bit — stable digest for application payloads (SMR commands).
std::uint64_t fnv1a64(std::span<const std::byte> data);
std::uint64_t fnv1a64(std::string_view s);

/// CRC-32 (IEEE 802.3 polynomial, reflected) — frame integrity on the wire.
std::uint32_t crc32(std::span<const std::byte> data);

}  // namespace dex
