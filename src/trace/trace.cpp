#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/logging.hpp"

namespace dex::trace {

namespace detail {
std::atomic<int> g_level{kOff};
}  // namespace detail

const char* event_phase(EventKind k) {
  switch (k) {
    case EventKind::kSpanBegin: return "b";
    case EventKind::kSpanEnd: return "e";
    case EventKind::kInstant: return "i";
  }
  return "?";
}

Tracer::Tracer() {
  wall_origin_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::set_level(int level) {
  const int clamped = std::clamp(level, static_cast<int>(kOff),
                                 static_cast<int>(kVerbose));
  level_.store(clamped, std::memory_order_relaxed);
  detail::g_level.store(clamped, std::memory_order_relaxed);
}

std::uint64_t Tracer::now() const {
  if (clock_.load(std::memory_order_relaxed) == Clock::kVirtual) {
    return vnow_.load(std::memory_order_relaxed);
  }
  const auto t = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return t - wall_origin_ns_;
}

Tracer::ThreadLog& Tracer::local() {
  // The raw cached pointer stays valid for the thread's lifetime: logs_ only
  // grows and reset() never removes entries, and the tracer is a process-wide
  // singleton.
  thread_local ThreadLog* cached = nullptr;
  if (cached != nullptr) return *cached;
  const std::scoped_lock lock(mu_);
  auto log = std::make_shared<ThreadLog>();
  log->ring.resize(capacity_);
  log->tid = static_cast<std::uint32_t>(logs_.size());
  logs_.push_back(log);
  cached = log.get();
  return *cached;
}

void Tracer::record(EventKind kind, const char* cat, const char* name,
                    const Args& args) {
  record_at(now(), kind, cat, name, args);
}

void Tracer::record_at(std::uint64_t t_ns, EventKind kind, const char* cat,
                       const char* name, const Args& args) {
  if (level_.load(std::memory_order_relaxed) == kOff) return;
  ThreadLog& log = local();
  if (log.ring.empty()) return;
  Event ev;
  ev.t = t_ns;
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.kind = kind;
  ev.tid = log.tid;
  ev.cat = cat;
  ev.name = name;
  ev.proc = args.proc;
  ev.peer = args.peer;
  ev.instance = args.instance;
  ev.tag = args.tag;
  ev.a = args.a;
  ev.b = args.b;
  ev.c = args.c;
  if (log.count >= log.ring.size()) dropped_.fetch_add(1, std::memory_order_relaxed);
  log.ring[log.count % log.ring.size()] = ev;
  ++log.count;
}

void Tracer::reset(std::size_t thread_capacity) {
  const std::scoped_lock lock(mu_);
  if (thread_capacity != 0) capacity_ = thread_capacity;
  for (const auto& log : logs_) {
    log->count = 0;
    if (log->ring.size() != capacity_) log->ring.assign(capacity_, Event{});
  }
  seq_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  vnow_.store(0, std::memory_order_relaxed);
}

std::vector<Event> Tracer::snapshot() const {
  std::vector<Event> out;
  {
    const std::scoped_lock lock(mu_);
    for (const auto& log : logs_) {
      const std::size_t cap = log->ring.size();
      if (cap == 0 || log->count == 0) continue;
      const std::uint64_t kept = std::min<std::uint64_t>(log->count, cap);
      // Oldest surviving slot first: when wrapped that is count % cap.
      const std::uint64_t first = log->count - kept;
      for (std::uint64_t i = 0; i < kept; ++i) {
        out.push_back(log->ring[(first + i) % cap]);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    if (x.t != y.t) return x.t < y.t;
    return x.seq < y.seq;
  });
  return out;
}

std::size_t Tracer::thread_count() const {
  const std::scoped_lock lock(mu_);
  return logs_.size();
}

void span_begin(const char* cat, const char* name, const Args& args) {
  Tracer::global().record(EventKind::kSpanBegin, cat, name, args);
}

void span_end(const char* cat, const char* name, const Args& args) {
  Tracer::global().record(EventKind::kSpanEnd, cat, name, args);
}

void instant(const char* cat, const char* name, const Args& args) {
  Tracer::global().record(EventKind::kInstant, cat, name, args);
}

void instant_at(std::uint64_t t_ns, const char* cat, const char* name,
                const Args& args) {
  Tracer::global().record_at(t_ns, EventKind::kInstant, cat, name, args);
}

int init_from_env() {
  const char* value = std::getenv("DEX_TRACE");
  if (value == nullptr) return -1;
  const auto level = parse_trace_level(value);
  if (!level.has_value()) {
    warn_bad_env("DEX_TRACE", value, "off|on|verbose (or 0|1|2)");
    return -1;
  }
  Tracer::global().set_level(*level);
  return *level;
}

}  // namespace dex::trace
