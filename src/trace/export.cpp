#include "trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace dex::trace {

namespace {

/// Synthetic Chrome pid for events not owned by a process (host layer).
constexpr int kHostPid = 9999;

int chrome_pid(ProcessId proc) {
  return proc >= 0 ? static_cast<int>(proc) : kHostPid;
}

void append_escaped(std::string& out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// ns → µs with fixed millisecond-of-a-µs precision; deterministic.
void append_ts_us(std::string& out, std::uint64_t t_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t_ns / 1000,
                static_cast<unsigned>(t_ns % 1000));
  out += buf;
}

void append_common_args(std::string& out, const Event& e) {
  const ArgLabels al = arg_labels(e.cat, e.name);
  out += "\"peer\":";
  append_i64(out, e.peer);
  out += ",\"instance\":";
  append_u64(out, e.instance);
  out += ",\"tag\":";
  append_u64(out, e.tag);
  out += ",\"seq\":";
  append_u64(out, e.seq);
  out += ",\"";
  append_escaped(out, al.a);
  out += "\":";
  append_i64(out, e.a);
  out += ",\"";
  append_escaped(out, al.b);
  out += "\":";
  append_i64(out, e.b);
  out += ",\"";
  append_escaped(out, al.c);
  out += "\":";
  append_i64(out, e.c);
}

}  // namespace

ArgLabels arg_labels(const char* cat, const char* name) {
  struct Row {
    const char* cat;
    const char* name;
    ArgLabels labels;
  };
  static constexpr Row kRows[] = {
      {"sim", "deliver", {"msg_kind", "bytes", "origin"}},
      {"sim", "decide", {"value", "path", "uc_rounds"}},
      {"dex", "propose", {"value", "b", "c"}},
      {"dex", "instance", {"value", "path", "steps"}},
      {"dex", "fallback", {"value", "path", "uc_rounds"}},
      {"dex", "j1.threshold", {"count", "b", "c"}},
      {"dex", "j2.threshold", {"count", "b", "c"}},
      {"dex", "c1.hit", {"value", "count", "c"}},
      {"dex", "c2.hit", {"value", "count", "c"}},
      {"dex", "j1.set", {"value", "count", "c"}},
      {"dex", "j2.set", {"value", "count", "c"}},
      {"dex", "uc.propose", {"value", "b", "c"}},
      {"dex", "uc.decide", {"value", "uc_rounds", "c"}},
      {"idb", "round", {"votes", "bytes", "c"}},
      {"idb", "init", {"bytes", "b", "c"}},
      {"idb", "echo", {"amplified", "bytes", "c"}},
      {"idb", "accept", {"votes", "bytes", "c"}},
      {"smr", "slot", {"value", "path", "c"}},
      {"smr", "submit", {"value", "b", "c"}},
      {"smr", "hole", {"committed", "expected", "c"}},
      {"net", "send", {"msg_kind", "bytes", "c"}},
      {"net", "recv", {"msg_kind", "bytes", "c"}},
      {"net", "deliver", {"msg_kind", "bytes", "c"}},
      {"net", "batch.send", {"count", "bytes", "c"}},
      {"net", "batch.recv", {"count", "bytes", "c"}},
  };
  for (const Row& r : kRows) {
    if (std::strcmp(r.cat, cat) == 0 && std::strcmp(r.name, name) == 0) {
      return r.labels;
    }
  }
  return ArgLabels{"a", "b", "c"};
}

std::string to_chrome_json(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Track metadata: one process_name record per distinct pid, in pid order.
  std::vector<int> pids;
  for (const Event& e : events) {
    const int pid = chrome_pid(e.proc);
    bool seen = false;
    for (const int p : pids) seen = seen || p == pid;
    if (!seen) pids.push_back(pid);
  }
  std::sort(pids.begin(), pids.end());
  bool first = true;
  for (const int pid : pids) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_i64(out, pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    if (pid == kHostPid) {
      out += "host";
    } else {
      out += "replica ";
      append_i64(out, pid);
    }
    out += "\"}}";
  }

  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat);
    out += "\",\"ph\":\"";
    out += event_phase(e.kind);
    out += "\",\"pid\":";
    append_i64(out, chrome_pid(e.proc));
    out += ",\"tid\":";
    append_u64(out, e.tid);
    out += ",\"ts\":";
    append_ts_us(out, e.t);
    if (e.kind == EventKind::kInstant) {
      out += ",\"s\":\"t\"";
    } else {
      // Async span id: pairs a begin with its end across interleavings.
      out += ",\"id\":\"p";
      append_i64(out, e.proc);
      out += "/i";
      append_u64(out, e.instance);
      out += "/t";
      append_u64(out, e.tag);
      out += "/";
      append_escaped(out, e.name);
      out += "\"";
    }
    out += ",\"args\":{";
    append_common_args(out, e);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string to_jsonl(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 140);
  for (const Event& e : events) {
    out += "{\"t\":";
    append_u64(out, e.t);
    out += ",\"seq\":";
    append_u64(out, e.seq);
    out += ",\"ph\":\"";
    out += event_phase(e.kind);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat);
    out += "\",\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"proc\":";
    append_i64(out, e.proc);
    out += ",\"peer\":";
    append_i64(out, e.peer);
    out += ",\"instance\":";
    append_u64(out, e.instance);
    out += ",\"tag\":";
    append_u64(out, e.tag);
    out += ",\"a\":";
    append_i64(out, e.a);
    out += ",\"b\":";
    append_i64(out, e.b);
    out += ",\"c\":";
    append_i64(out, e.c);
    out += ",\"tid\":";
    append_u64(out, e.tid);
    out += "}\n";
  }
  return out;
}

}  // namespace dex::trace
