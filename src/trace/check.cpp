#include "trace/check.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

// Header-only protocol constants (MsgKind values, channel masks); no link
// dependency on dex_consensus.
#include "consensus/decision.hpp"
#include "consensus/message.hpp"

namespace dex::trace {

namespace {

bool is(const Event& e, const char* cat, const char* name) {
  return std::strcmp(e.cat, cat) == 0 && std::strcmp(e.name, name) == 0;
}

// Delivery bookkeeping keys. For echoes the key scopes a broadcast slot:
// (receiver, instance, origin, tag).
using ProcInst = std::pair<ProcessId, InstanceId>;
struct SlotKey {
  ProcessId proc;
  InstanceId instance;
  ProcessId origin;
  std::uint64_t tag;
  bool operator<(const SlotKey& o) const {
    return std::tie(proc, instance, origin, tag) <
           std::tie(o.proc, o.instance, o.origin, o.tag);
  }
};

}  // namespace

CheckResult check_causal_invariants(std::vector<Event> events,
                                    const CheckConfig& cfg) {
  CheckResult res;
  if (cfg.n == 0) {
    res.ok = false;
    res.violations.push_back("check config: n must be set");
    return res;
  }
  std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    if (x.t != y.t) return x.t < y.t;
    return x.seq < y.seq;
  });

  const std::size_t quorum = cfg.n - cfg.t;          // n−t
  const std::size_t amplify = cfg.n - 2 * cfg.t;     // n−2t

  // Distinct senders delivered to (proc, instance), any kind / plain-proposal
  // channel only, and distinct echo senders per slot.
  std::map<ProcInst, std::set<ProcessId>> delivered;
  std::map<ProcInst, std::set<ProcessId>> plain_proposals;
  std::map<SlotKey, std::set<ProcessId>> echoes;
  std::set<SlotKey> init_seen;

  auto fail = [&res](const Event& e, const std::string& what) {
    std::ostringstream os;
    os << what << " (t=" << e.t << "ns seq=" << e.seq << " proc=" << e.proc
       << " instance=" << e.instance << ")";
    res.violations.push_back(os.str());
    res.ok = false;
  };

  for (const Event& e : events) {
    if (is(e, "sim", "deliver")) {
      // a = MsgKind, b = payload bytes, c = origin, peer = sender.
      const ProcInst pk{e.proc, e.instance};
      delivered[pk].insert(e.peer);
      const auto kind = static_cast<MsgKind>(e.a);
      if (kind == MsgKind::kPlain &&
          (chan::channel(e.tag) == chan::kDexProposalPlain ||
           chan::channel(e.tag) == chan::kBoscoVote ||
           chan::channel(e.tag) == chan::kCrashProp)) {
        // Every one-step protocol in the suite (DEX plain channel, BOSCO
        // votes, the crash baseline's proposals) justifies its step-1 decide
        // with these; I2 is about step-1 traffic, not one algorithm's tag.
        plain_proposals[pk].insert(e.peer);
      } else if (kind == MsgKind::kIdbInit) {
        // The true origin of an init is its network sender (the engines
        // ignore a claimed origin field for inits).
        init_seen.insert(SlotKey{e.proc, e.instance, e.peer, e.tag});
      } else if (kind == MsgKind::kIdbEcho) {
        echoes[SlotKey{e.proc, e.instance, static_cast<ProcessId>(e.c), e.tag}]
            .insert(e.peer);
      }
      continue;
    }

    if (is(e, "idb", "echo")) {
      // peer = origin; a = 1 when triggered by amplification.
      ++res.echoes_checked;
      const SlotKey key{e.proc, e.instance, e.peer, e.tag};
      const auto it = echoes.find(key);
      const std::size_t echo_count = it == echoes.end() ? 0 : it->second.size();
      if (init_seen.count(key) == 0 && echo_count < amplify) {
        std::ostringstream os;
        os << "I3 echo-justified: echo for origin " << e.peer
           << " without init and with only " << echo_count << " < " << amplify
           << " echo deliveries";
        fail(e, os.str());
      }
      continue;
    }

    if (is(e, "idb", "accept")) {
      ++res.accepts_checked;
      const SlotKey key{e.proc, e.instance, e.peer, e.tag};
      const auto it = echoes.find(key);
      const std::size_t echo_count = it == echoes.end() ? 0 : it->second.size();
      if (echo_count < quorum) {
        std::ostringstream os;
        os << "I4 accept-quorum: accepted origin " << e.peer << " with only "
           << echo_count << " < " << quorum << " echo deliveries";
        fail(e, os.str());
      }
      continue;
    }

    if (is(e, "sim", "decide")) {
      // a = value, b = DecisionPath, c = underlying-consensus rounds.
      ++res.decides_checked;
      // The decider's own proposal never crosses the wire: every one-step
      // engine registers its own value at propose() time (its broadcast copy
      // to self may still be in flight when the quorum fills). Credit the
      // decider as one sender unless its self-delivery already arrived.
      const ProcInst pk{e.proc, e.instance};
      const auto it = delivered.find(pk);
      const std::size_t ndel =
          (it == delivered.end() ? 0 : it->second.size()) +
          ((it == delivered.end() || it->second.count(e.proc) == 0) ? 1 : 0);
      if (ndel < quorum) {
        std::ostringstream os;
        os << "I1 decide-quorum: decide after deliveries from only " << ndel
           << " < " << quorum << " distinct senders";
        fail(e, os.str());
      }
      if (static_cast<DecisionPath>(e.b) == DecisionPath::kOneStep) {
        ++res.one_step_decides;
        const auto pit = plain_proposals.find(pk);
        const std::size_t nprop =
            (pit == plain_proposals.end() ? 0 : pit->second.size()) +
            ((pit == plain_proposals.end() ||
              pit->second.count(e.proc) == 0)
                 ? 1
                 : 0);
        if (nprop < quorum) {
          std::ostringstream os;
          os << "I2 one-step-at-1: one-step decide with only " << nprop
             << " < " << quorum << " plain proposal deliveries";
          fail(e, os.str());
        }
      }
      continue;
    }
  }

  return res;
}

}  // namespace dex::trace
