// Process-wide causal tracing: spans and point events recorded into a
// per-thread ring-buffer flight recorder.
//
// Design goals, in order:
//   1. ~Free when disabled. Every hook is guarded by `trace::on(level)` — a
//      single relaxed atomic load and a predictable branch — and the whole
//      layer compiles down to nothing under -DDEX_TRACE_ENABLED=0.
//   2. Safe in transport threads. Each recording thread owns a private ring
//      buffer registered once under a mutex; steady-state writes touch only
//      thread-local state plus one relaxed fetch_add for the global sequence
//      number, so `TcpTransport` reader loops can record without contention.
//   3. Flight recorder semantics. Rings overwrite their oldest events when
//      full (the drop count is kept), so tracing a long run keeps the recent
//      past — the part you want when something goes wrong — at bounded memory.
//   4. Deterministic in simulation. With the clock in virtual mode the
//      simulator drives timestamps, and the single-threaded event loop makes
//      the (t, seq) order — and therefore every export — bit-for-bit
//      reproducible for a given seed.
//
// Event names and categories are string *literals* by contract: the recorder
// stores the pointers, never copies, so a hook costs no allocation. The span
// taxonomy and per-name argument schema live in docs/protocol.md §9.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"

// Compile-time gate: -DDEX_TRACE_ENABLED=0 turns every hook into dead code.
#ifndef DEX_TRACE_ENABLED
#define DEX_TRACE_ENABLED 1
#endif

namespace dex::trace {

/// Runtime verbosity. kOff records nothing; kOn records spans and the O(1)
/// per-instance/per-slot instants; kVerbose adds per-message engine events.
enum Level : int { kOff = 0, kOn = 1, kVerbose = 2 };

enum class EventKind : std::uint8_t { kSpanBegin = 0, kSpanEnd = 1, kInstant = 2 };

/// Chrome trace-event phase letter ("b"/"e"/"i") for a kind.
const char* event_phase(EventKind k);

/// One recorded event. Plain data; `name` and `cat` point at string literals.
/// The generic args a/b/c are interpreted per event name (docs/protocol.md §9)
/// — e.g. a "sim.deliver" carries {a = msg kind, b = payload bytes,
/// c = origin} while a "sim.decide" carries {a = value, b = path,
/// c = underlying rounds}.
struct Event {
  std::uint64_t t = 0;    // ns; virtual or wall per the tracer's clock mode
  std::uint64_t seq = 0;  // global record order (merge key across threads)
  EventKind kind = EventKind::kInstant;
  std::uint32_t tid = 0;  // recording thread, in registration order
  const char* cat = "";
  const char* name = "";
  ProcessId proc = kNoProcess;  // the acting process (track in the export)
  ProcessId peer = kNoProcess;  // counterpart (src of a deliver, dst of a send)
  InstanceId instance = 0;
  std::uint64_t tag = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

/// Optional fields of a record call, for designated-initializer call sites:
///   trace::instant("sim", "deliver", {.proc = dst, .peer = src, ...});
struct Args {
  ProcessId proc = kNoProcess;
  ProcessId peer = kNoProcess;
  InstanceId instance = 0;
  std::uint64_t tag = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

namespace detail {
/// The global recording level. Namespace-scope (no init guard): hooks pay one
/// relaxed load, nothing else, when tracing is off.
extern std::atomic<int> g_level;
}  // namespace detail

#if DEX_TRACE_ENABLED
/// The hook gate: true when the global tracer records at `level`.
inline bool on(int level = kOn) noexcept {
  return detail::g_level.load(std::memory_order_relaxed) >= level;
}
#else
constexpr bool on(int = kOn) noexcept { return false; }
#endif

/// The flight recorder. One process-wide instance (`global()`); every
/// recording thread lazily registers a private ring on first use.
class Tracer {
 public:
  enum class Clock : std::uint8_t { kWall = 0, kVirtual = 1 };

  static Tracer& global();

  /// Set the recording level (kOff disables). Mirrored into the hook gate.
  void set_level(int level);
  [[nodiscard]] int level() const {
    return level_.load(std::memory_order_relaxed);
  }

  /// Wall (steady_clock since tracer construction) vs virtual (simulator-
  /// driven) timestamps. Switch while quiesced.
  void set_clock(Clock c) { clock_.store(c, std::memory_order_relaxed); }
  [[nodiscard]] Clock clock() const {
    return clock_.load(std::memory_order_relaxed);
  }
  /// Advance the virtual clock (the simulator calls this per event).
  void set_virtual_now(std::uint64_t t_ns) {
    vnow_.store(t_ns, std::memory_order_relaxed);
  }
  /// Current timestamp under the active clock mode.
  [[nodiscard]] std::uint64_t now() const;

  /// Record at now(). `kind`/`cat`/`name` positional, the rest via Args.
  void record(EventKind kind, const char* cat, const char* name, const Args& args);
  /// Record with an explicit timestamp (sim hooks that know the event time).
  void record_at(std::uint64_t t_ns, EventKind kind, const char* cat,
                 const char* name, const Args& args);

  /// Drop all recorded events and restart the sequence counter. When
  /// `thread_capacity` is nonzero the per-thread ring size is changed too
  /// (existing and future rings). Callers must quiesce recording threads.
  void reset(std::size_t thread_capacity = 0);

  /// Merged copy of every thread's ring, sorted by (t, seq). Intended at
  /// quiescence (end of run); concurrent writers may tear the newest slots.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Events lost to ring wrap-around since the last reset().
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Threads that have recorded at least once since process start.
  [[nodiscard]] std::size_t thread_count() const;

  static constexpr std::size_t kDefaultThreadCapacity = 1u << 16;

 private:
  Tracer();

  struct ThreadLog {
    std::vector<Event> ring;
    std::uint64_t count = 0;  // monotonic; ring index is count % ring.size()
    std::uint32_t tid = 0;
  };

  ThreadLog& local();

  std::atomic<int> level_{kOff};
  std::atomic<Clock> clock_{Clock::kWall};
  std::atomic<std::uint64_t> vnow_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t wall_origin_ns_ = 0;

  mutable std::mutex mu_;  // guards logs_ (registration, reset, snapshot)
  std::size_t capacity_ = kDefaultThreadCapacity;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
};

// --- hook helpers (the only API most call sites use) -----------------------
// All of them early-return when recording is off; call sites still guard with
// `if (trace::on())` so the argument evaluation itself is skipped.

void span_begin(const char* cat, const char* name, const Args& args);
void span_end(const char* cat, const char* name, const Args& args);
void instant(const char* cat, const char* name, const Args& args);
/// Explicit-timestamp variants for the simulator (virtual event times).
void instant_at(std::uint64_t t_ns, const char* cat, const char* name,
                const Args& args);

/// Applies the DEX_TRACE environment variable (parsed by
/// dex::parse_trace_level in common/logging.hpp) to the global tracer.
/// Returns the level applied, or a negative value when unset/unrecognized.
int init_from_env();

}  // namespace dex::trace
