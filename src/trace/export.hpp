// Trace exporters: Chrome trace-event JSON (loads in Perfetto / chrome://
// tracing) and JSONL (one event per line, for scripts and byte-equality
// determinism tests).
//
// Both formats are fully deterministic functions of the event list: integer
// fields are printed as integers and the only floating-point field (Chrome's
// `ts`, in microseconds) is formatted with a fixed "%.3f", so equal snapshots
// produce byte-identical output.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dex::trace {

/// Chrome trace-event JSON. One track ("process") per ProcessId; events with
/// proc == kNoProcess land on a synthetic "host" track. Span begin/end pairs
/// are emitted as async events ("b"/"e") whose id encodes
/// (name, proc, instance, tag), so nested per-instance spans pair up even
/// when interleaved. Generic args a/b/c are labelled per event name (the
/// schema of docs/protocol.md §9).
[[nodiscard]] std::string to_chrome_json(const std::vector<Event>& events);

/// One JSON object per line, integer fields only, stable key order.
[[nodiscard]] std::string to_jsonl(const std::vector<Event>& events);

/// Human-oriented argument labels for an event name; always three entries
/// (falls back to "a"/"b"/"c"). Shared by the exporters and documented in
/// docs/protocol.md §9.
struct ArgLabels {
  const char* a;
  const char* b;
  const char* c;
};
[[nodiscard]] ArgLabels arg_labels(const char* cat, const char* name);

}  // namespace dex::trace
