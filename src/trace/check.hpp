// Causal-invariant checker for recorded traces.
//
// Replays a snapshot in (t, seq) order and verifies that every protocol-level
// effect is justified by previously delivered messages:
//
//   I1 decide-quorum    — a decide at process p for instance k is preceded by
//                         deliveries from ≥ n−t distinct senders to p in k.
//   I2 one-step-at-1    — a one-step decide is justified by ≥ n−t distinct
//                         *plain proposal* deliveries alone (step 1 traffic;
//                         no echoes were needed).
//   I3 echo-justified   — an IDB echo sent by p for (origin, tag) is preceded
//                         by the matching init delivery or by ≥ n−2t distinct
//                         echo deliveries (the amplification rule).
//   I4 accept-quorum    — an IDB acceptance at p for (origin, tag) is
//                         preceded by ≥ n−t distinct echo deliveries.
//
// The checker is deliberately independent of the engines: it re-derives the
// thresholds from the trace alone, so a bug that both mis-decides and
// mis-reports would still trip it as long as deliveries are recorded by the
// simulator (which does not consult engine state).
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dex::trace {

struct CheckConfig {
  std::size_t n = 0;
  std::size_t t = 0;
};

struct CheckResult {
  bool ok = true;
  std::vector<std::string> violations;
  std::size_t decides_checked = 0;
  std::size_t one_step_decides = 0;
  std::size_t echoes_checked = 0;
  std::size_t accepts_checked = 0;
};

/// Verifies I1–I4 over `events` (any order; sorted internally by (t, seq)).
[[nodiscard]] CheckResult check_causal_invariants(std::vector<Event> events,
                                                  const CheckConfig& cfg);

}  // namespace dex::trace
