// The campaign oracle: runs one genome through the deterministic simulator
// with tracing on, then judges the execution.
//
// Which oracles apply depends on the genome's fault envelope (see
// sim/faults.hpp for the soundness argument):
//   - Agreement & Unanimity: always, unless payload corruption is on
//     (corruption forges correct-sender traffic beyond the t budget).
//   - I1–I4 causal invariants (trace/check.hpp): whenever the run is a real
//     message-passing execution — the checker keys on envelope fields the
//     corruptor never touches, so corruption is fine, but the idealized
//     oracle UC (genome oracle_uc) delivers decisions out of band and is
//     exempt.
//   - Termination: only for "clean" genomes (no drop/corrupt/partition/
//     crash window); everything else is asynchrony-legal message loss.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/genome.hpp"
#include "trace/check.hpp"

namespace dex::check {

struct RunVerdict {
  bool ok = true;
  /// Human-readable oracle failures ("agreement: ...", "invariant: I2 ...").
  std::vector<std::string> failures;
  trace::CheckResult invariants;

  /// Coverage signature: a hash of the run's behavioural shape (decision-path
  /// mix, invariant-checker event counts, packet volume buckets). Two runs
  /// with the same signature exercised the protocol the same way; a fresh
  /// signature makes the genome corpus-worthy.
  std::uint64_t coverage = 0;

  // Per-run shape, for reports.
  std::size_t correct = 0;
  std::size_t decided = 0;
  std::size_t one_step = 0;
  std::size_t two_step = 0;
  std::size_t via_underlying = 0;
  std::uint64_t packets = 0;
  std::uint64_t injected_faults = 0;
};

/// Runs `g` and applies every oracle its fault envelope allows. Deterministic:
/// the same genome always yields the same verdict. Uses the process-global
/// tracer — do not call concurrently.
RunVerdict run_genome(const Genome& g);

}  // namespace dex::check
