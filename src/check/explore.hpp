// Bounded exhaustive explorer for tiny worlds.
//
// Where the fuzzer samples delivery schedules, the explorer enumerates them:
// it drives the protocol stacks directly (no delay model — delivery order IS
// the search dimension) and walks every asynchronous interleaving of message
// deliveries with depth-first search, applying the same oracles as the
// fuzzer at every complete schedule.
//
// Soundness of the reductions:
//   - State hashing: a stack is a deterministic function of its delivery
//     history, so the vector of per-destination delivered-sequence hashes
//     identifies the global state (including the derived pending set). A
//     revisited key proves the subtree was already walked from an identical
//     state.
//   - Symmetry: two pending packets with identical (src, dst, envelope) are
//     interchangeable; delivering either yields the same successor, so only
//     one is branched on per node.
//   - reorder_window > 0 additionally restricts each destination to the
//     oldest `window` packets queued for it — a bounded-reordering network.
//     This is a true bound (schedules outside it are not explored); window 0
//     means full asynchrony.
//
// Worlds are rebuilt by replaying the choice prefix for every node — engines
// have no snapshot/rollback, and at n <= 7 replay is cheaper than adding one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/factory.hpp"
#include "consensus/view.hpp"
#include "metrics/metrics.hpp"

namespace dex::check {

struct ExploreOptions {
  Algorithm algorithm = Algorithm::kCrashOneStep;
  std::size_t n = 4;
  std::size_t t = 1;
  /// Input vector (size n); entries of silent processes are ignored.
  InputVector input;
  /// The highest `silent` ids never start and never send — the canonical
  /// f = t crash fault for the exhaustive sweep.
  std::size_t silent = 1;
  /// Node budget; the sweep reports truncated=true when it is exhausted.
  std::uint64_t max_states = 200'000;
  /// Per-destination reordering bound (0 = full asynchrony).
  std::size_t reorder_window = 0;
  /// Planted-bug switch (catch-the-bug tests).
  std::size_t debug_quorum_skew = 0;
  /// Keep at most this many violation reports (each includes the schedule).
  std::size_t max_violations = 5;
  /// Optional sink for check_states_explored / check_schedules_total.
  metrics::MetricsRegistry* metrics = nullptr;
};

struct ExploreReport {
  std::uint64_t states = 0;     // DFS nodes visited (after dedup check)
  std::uint64_t deduped = 0;    // nodes pruned by the state hash
  std::uint64_t schedules = 0;  // complete delivery schedules (leaves)
  bool truncated = false;       // max_states exhausted
  bool ok = true;
  std::uint64_t violating_schedules = 0;
  /// First max_violations reports, each with the choice prefix that
  /// reproduces the schedule.
  std::vector<std::string> violations;
};

/// Enumerates all delivery schedules under the options' bounds. Uses the
/// process-global tracer — do not call concurrently.
ExploreReport explore(const ExploreOptions& opt);

}  // namespace dex::check
