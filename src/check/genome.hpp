// Scenario genome — the unit of search for the verification plane.
//
// A genome is a complete, self-describing recipe for one simulated consensus
// execution: algorithm and sizing, input shape, Byzantine strategy mix,
// network delay model, link faults, partitions, crash–recovery windows and
// the RNG seed. Everything the run needs is in the genome, so a failing one
// serialized to JSON is a total reproducer (`dexsim --repro g.json` or
// `dexcheck --repro g.json` replays it bit-for-bit).
//
// The fuzzer samples genomes at random, mutates interesting ones
// (coverage-guided) and shrinks failing ones field-by-field; all three
// operations live here next to the representation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json_value.hpp"
#include "common/rng.hpp"
#include "consensus/factory.hpp"
#include "harness/experiment.hpp"
#include "sim/faults.hpp"

namespace dex::check {

struct Genome {
  std::uint64_t seed = 1;
  Algorithm algorithm = Algorithm::kDexFreq;
  std::size_t n = 13;
  std::size_t t = 2;

  // Input vector (mirrors dexsim's --input family; generated from `seed`).
  std::string input_shape = "unanimous";  // unanimous|margin|privileged|split|random|skewed
  std::size_t margin = 5;                 // for margin
  std::size_t count = 7;                  // for privileged/split
  double p_common = 0.9;                  // for skewed

  // Fault plan (src/byz strategies via the harness).
  harness::FaultKind fault_kind = harness::FaultKind::kSilent;
  std::size_t fault_count = 0;
  std::size_t wake_after = 4;  // delayed-equivocate trigger
  bool random_placement = false;

  // Network shape.
  std::string delay = "uniform";  // constant|uniform|exponential|heavytail|skewed|gst
  double slow_factor = 4.0;       // for skewed (process 0 is the slow one)
  std::uint64_t gst_ms = 40;      // for gst
  std::uint64_t jitter_ms = 2;
  bool batch = false;
  bool oracle_uc = false;

  // Link faults (sim/faults.hpp). All-zero = the clean historical schedule.
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;

  // At most one partition window and one crash window per genome — enough to
  // hit the interesting interleavings while keeping shrinking simple.
  bool has_partition = false;
  std::uint64_t part_from_ms = 0;
  std::uint64_t part_until_ms = 20;
  std::size_t part_cut = 1;  // size of the minority group {0..part_cut-1}
  bool has_crash = false;
  std::size_t crash_who = 0;
  std::uint64_t crash_from_ms = 0;
  std::uint64_t crash_until_ms = 15;

  /// Planted-bug switch (DexConfig::debug_quorum_skew) — set only by the
  /// catch-the-bug tests; never sampled or mutated, and never shrunk away.
  std::size_t debug_quorum_skew = 0;

  /// Clamps every field into a valid, runnable configuration (n at least the
  /// algorithm minimum, fault_count <= t, windows ordered, ...).
  void normalize();

  /// Liveness oracles only apply when nothing may legally withhold a message
  /// forever: no drops, no corruption, no partition, no crash window.
  [[nodiscard]] bool clean() const {
    return drop == 0 && corrupt == 0 && !has_partition && !has_crash;
  }
  /// Corrupted payloads forge correct-sender traffic beyond the t-Byzantine
  /// budget, so agreement/unanimity oracles do not apply (I1–I4 still do).
  [[nodiscard]] bool corrupting() const { return corrupt > 0; }

  /// Uniformly random valid genome (seed is left for the caller to assign).
  static Genome sample(Rng& rng);
  /// Tweaks 1–3 random fields in place, then normalizes.
  void mutate(Rng& rng);

  [[nodiscard]] std::string to_json() const;
  static Genome from_json(const json::Value& doc);
  static Genome from_json_text(std::string_view text);

  /// One-line human summary for reports and log lines.
  [[nodiscard]] std::string describe() const;
};

/// Algorithm spellings shared with dexsim's --algo flag.
std::optional<Algorithm> parse_algorithm(const std::string& name);

/// Builds the harness config a genome describes (input vector, delay model,
/// fault plan, windows). The caller wires sinks (trace/metrics/admin) itself.
harness::ExperimentConfig to_experiment(const Genome& g);

}  // namespace dex::check
