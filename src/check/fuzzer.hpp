// Coverage-guided scenario fuzzer.
//
// Campaign loop (AFL in miniature, over scenario genomes instead of byte
// buffers): sample a fresh genome or mutate a corpus member, run it through
// the oracle, and keep genomes whose coverage signature is new. A failing
// genome is shrunk field-by-field (greedy passes, re-running after every
// candidate reduction) to a minimal reproducer that still fails.
//
// Everything is deterministic in FuzzOptions::seed: the same options always
// produce the same campaigns, the same failures and the same shrunk genomes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "check/genome.hpp"
#include "check/oracle.hpp"
#include "metrics/metrics.hpp"
#include "ops/admin.hpp"

namespace dex::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t campaigns = 1000;
  /// Probability of mutating a corpus member instead of sampling fresh
  /// (applies once the corpus is non-empty).
  double mutate_bias = 0.5;
  std::size_t corpus_cap = 256;
  /// Max oracle runs each shrink may spend (0 disables shrinking).
  std::size_t shrink_budget = 150;
  /// Planted-bug switch copied into every campaign genome (catch-the-bug
  /// tests and dexcheck --inject-bug).
  std::size_t debug_quorum_skew = 0;
  /// Optional sinks (not owned; must outlive the call).
  metrics::MetricsRegistry* metrics = nullptr;
  ops::AdminServer* admin = nullptr;
  /// Called for every failing campaign as it is found (before shrinking).
  std::function<void(const Genome&, const RunVerdict&)> on_failure;
};

struct FuzzFailure {
  Genome genome;   // as found by the campaign
  Genome shrunk;   // minimized, still failing
  std::vector<std::string> failures;  // oracle report of the original
  std::vector<std::string> shrunk_failures;
  std::size_t campaign = 0;
  std::size_t shrink_runs = 0;
};

struct FuzzReport {
  std::size_t campaigns = 0;
  std::size_t runs = 0;        // campaigns + shrink re-runs
  std::size_t failures = 0;
  std::size_t signatures = 0;  // distinct coverage signatures observed
  std::size_t corpus = 0;      // corpus size at exit
  std::vector<FuzzFailure> failing;

  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// Runs the campaign loop. Uses the process-global tracer (via run_genome) —
/// do not call concurrently.
FuzzReport run_fuzz(const FuzzOptions& opt);

/// Greedy genome minimization: tries field-reduction candidates (zero the
/// fault knobs, drop windows, shrink n toward the algorithm minimum, simplify
/// input/delay, ...) and keeps each one that still fails. `runs_used` counts
/// oracle invocations. Exposed for tests.
Genome shrink_genome(const Genome& failing, std::size_t budget,
                     std::size_t* runs_used);

}  // namespace dex::check
