#include "check/fuzzer.hpp"

#include <set>

namespace dex::check {

namespace {

/// One shrink candidate: returns the reduced genome, or nullopt when it does
/// not apply (already minimal in that dimension). Ordered most-drastic first
/// so the big reductions are tried before the fine-grained ones.
using Reduction = std::optional<Genome> (*)(const Genome&);

std::optional<Genome> drop_link_faults(const Genome& g) {
  if (g.drop == 0 && g.duplicate == 0 && g.reorder == 0 && g.corrupt == 0) {
    return std::nullopt;
  }
  Genome out = g;
  out.drop = out.duplicate = out.reorder = out.corrupt = 0;
  return out;
}

std::optional<Genome> drop_partition(const Genome& g) {
  if (!g.has_partition) return std::nullopt;
  Genome out = g;
  out.has_partition = false;
  return out;
}

std::optional<Genome> drop_crash(const Genome& g) {
  if (!g.has_crash) return std::nullopt;
  Genome out = g;
  out.has_crash = false;
  return out;
}

std::optional<Genome> drop_byz(const Genome& g) {
  if (g.fault_count == 0) return std::nullopt;
  Genome out = g;
  out.fault_count = 0;
  return out;
}

std::optional<Genome> halve_byz(const Genome& g) {
  if (g.fault_count < 2) return std::nullopt;
  Genome out = g;
  out.fault_count /= 2;
  return out;
}

std::optional<Genome> simplify_fault_kind(const Genome& g) {
  if (g.fault_count == 0 || g.fault_kind == harness::FaultKind::kSilent) {
    return std::nullopt;
  }
  Genome out = g;
  out.fault_kind = harness::FaultKind::kSilent;
  return out;
}

std::optional<Genome> simplify_input(const Genome& g) {
  if (g.input_shape == "unanimous") return std::nullopt;
  Genome out = g;
  out.input_shape = "unanimous";
  return out;
}

std::optional<Genome> simplify_delay(const Genome& g) {
  if (g.delay == "constant") return std::nullopt;
  Genome out = g;
  out.delay = "constant";
  return out;
}

std::optional<Genome> drop_jitter(const Genome& g) {
  if (g.jitter_ms == 0) return std::nullopt;
  Genome out = g;
  out.jitter_ms = 0;
  return out;
}

std::optional<Genome> drop_batch(const Genome& g) {
  if (!g.batch) return std::nullopt;
  Genome out = g;
  out.batch = false;
  return out;
}

std::optional<Genome> drop_oracle_uc(const Genome& g) {
  if (!g.oracle_uc) return std::nullopt;
  Genome out = g;
  out.oracle_uc = false;
  return out;
}

std::optional<Genome> lower_t(const Genome& g) {
  if (g.t <= 1 || g.fault_count > g.t - 1) return std::nullopt;
  Genome out = g;
  out.t -= 1;
  return out;
}

std::optional<Genome> min_n(const Genome& g) {
  const std::size_t floor_n = algorithm_min_n(g.algorithm, g.t);
  if (g.n <= floor_n) return std::nullopt;
  Genome out = g;
  out.n = floor_n;
  return out;
}

std::optional<Genome> dec_n(const Genome& g) {
  if (g.n <= algorithm_min_n(g.algorithm, g.t)) return std::nullopt;
  Genome out = g;
  out.n -= 1;
  return out;
}

std::optional<Genome> drop_placement(const Genome& g) {
  if (!g.random_placement) return std::nullopt;
  Genome out = g;
  out.random_placement = false;
  return out;
}

constexpr Reduction kReductions[] = {
    drop_link_faults, drop_partition,  drop_crash,     drop_byz,
    halve_byz,        simplify_fault_kind, simplify_input, simplify_delay,
    drop_jitter,      drop_batch,      drop_oracle_uc, drop_placement,
    lower_t,          min_n,           dec_n,
};

std::string progress_var(std::size_t done, std::size_t total,
                         std::size_t failures, std::size_t corpus,
                         std::size_t signatures, const char* status) {
  std::string out = "{\"campaigns\":" + std::to_string(done);
  out.append(",\"total\":").append(std::to_string(total));
  out.append(",\"failures\":").append(std::to_string(failures));
  out.append(",\"corpus\":").append(std::to_string(corpus));
  out.append(",\"signatures\":").append(std::to_string(signatures));
  out.append(",\"status\":\"").append(status).append("\"}");
  return out;
}

}  // namespace

Genome shrink_genome(const Genome& failing, std::size_t budget,
                     std::size_t* runs_used) {
  Genome best = failing;
  std::size_t runs = 0;
  bool progressed = true;
  // Greedy fixpoint: sweep the reduction list until a full pass changes
  // nothing (or the budget runs out). Accept any candidate that still fails —
  // the shrunk genome may fail differently, which is fine: smaller is the
  // goal, the oracle re-derives the report.
  while (progressed && runs < budget) {
    progressed = false;
    for (const Reduction reduce : kReductions) {
      if (runs >= budget) break;
      auto candidate = reduce(best);
      if (!candidate.has_value()) continue;
      candidate->normalize();
      ++runs;
      if (!run_genome(*candidate).ok) {
        best = *candidate;
        progressed = true;
      }
    }
  }
  if (runs_used != nullptr) *runs_used += runs;
  return best;
}

FuzzReport run_fuzz(const FuzzOptions& opt) {
  FuzzReport report;
  Rng rng(mix64(opt.seed ^ 0xf022e12dULL));

  metrics::Counter* m_campaigns = nullptr;
  metrics::Counter* m_runs = nullptr;
  metrics::Counter* m_failures = nullptr;
  metrics::Gauge* m_corpus = nullptr;
  metrics::Gauge* m_signatures = nullptr;
  if (opt.metrics != nullptr) {
    m_campaigns = &opt.metrics->counter("check_campaigns_total");
    m_runs = &opt.metrics->counter("check_runs_total");
    m_failures = &opt.metrics->counter("check_failures_total");
    m_corpus = &opt.metrics->gauge("check_corpus_size");
    m_signatures = &opt.metrics->gauge("check_signatures");
  }

  std::vector<Genome> corpus;
  std::set<std::uint64_t> signatures;

  for (std::size_t c = 0; c < opt.campaigns; ++c) {
    Genome g;
    if (!corpus.empty() && rng.next_bool(opt.mutate_bias)) {
      g = corpus[rng.next_below(corpus.size())];
      g.mutate(rng);
    } else {
      g = Genome::sample(rng);
    }
    // Every campaign gets a unique deterministic seed; the sampling stream
    // and the run seed stay independent so shrinking never shifts sampling.
    g.seed = mix64(opt.seed ^ (0x5eedULL + c));
    g.debug_quorum_skew = opt.debug_quorum_skew;
    g.normalize();

    const RunVerdict verdict = run_genome(g);
    ++report.campaigns;
    ++report.runs;
    metrics::inc(m_campaigns);
    metrics::inc(m_runs);

    if (signatures.insert(verdict.coverage).second) {
      corpus.push_back(g);
      if (corpus.size() > opt.corpus_cap) {
        // Evict a random member; the signature set still remembers the
        // behaviour, so re-finding it does not re-add a duplicate.
        corpus[rng.next_below(corpus.size())] = corpus.back();
        corpus.pop_back();
      }
    }

    if (!verdict.ok) {
      ++report.failures;
      metrics::inc(m_failures);
      if (opt.on_failure) opt.on_failure(g, verdict);
      FuzzFailure f;
      f.genome = g;
      f.failures = verdict.failures;
      f.campaign = c;
      f.shrunk = opt.shrink_budget > 0
                     ? shrink_genome(g, opt.shrink_budget, &f.shrink_runs)
                     : g;
      f.shrunk_failures = run_genome(f.shrunk).failures;
      ++f.shrink_runs;
      report.runs += f.shrink_runs;
      metrics::inc(m_runs, f.shrink_runs);
      report.failing.push_back(std::move(f));
    }

    if (m_corpus != nullptr) m_corpus->set(static_cast<double>(corpus.size()));
    if (m_signatures != nullptr) {
      m_signatures->set(static_cast<double>(signatures.size()));
    }
    if (opt.admin != nullptr && (c % 25 == 0 || c + 1 == opt.campaigns)) {
      opt.admin->set_var("check", progress_var(c + 1, opt.campaigns,
                                               report.failures, corpus.size(),
                                               signatures.size(), "running"));
    }
  }

  report.signatures = signatures.size();
  report.corpus = corpus.size();
  if (opt.admin != nullptr) {
    opt.admin->set_var("check", progress_var(report.campaigns, opt.campaigns,
                                             report.failures, report.corpus,
                                             report.signatures, "done"));
  }
  return report;
}

}  // namespace dex::check
