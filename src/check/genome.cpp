#include "check/genome.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <sstream>

#include "common/json.hpp"
#include "consensus/condition/input_gen.hpp"
#include "sim/delay_model.hpp"

namespace dex::check {

namespace {

constexpr std::array<Algorithm, 6> kAlgorithms = {
    Algorithm::kDexFreq,      Algorithm::kDexPrv,       Algorithm::kBoscoWeak,
    Algorithm::kBoscoStrong,  Algorithm::kCrashOneStep, Algorithm::kUnderlyingOnly};

constexpr std::array<const char*, 6> kShapes = {
    "unanimous", "margin", "privileged", "split", "random", "skewed"};

constexpr std::array<const char*, 6> kDelays = {
    "constant", "uniform", "exponential", "heavytail", "skewed", "gst"};

constexpr std::array<harness::FaultKind, 7> kFaultKinds = {
    harness::FaultKind::kSilent,     harness::FaultKind::kCrashMid,
    harness::FaultKind::kEquivocate, harness::FaultKind::kFixedValue,
    harness::FaultKind::kNoise,      harness::FaultKind::kUcSaboteur,
    harness::FaultKind::kDelayedEquivocate};

template <typename T, std::size_t N>
bool contains(const std::array<T, N>& xs, const T& x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

bool contains_str(const std::array<const char*, 6>& xs, const std::string& x) {
  for (const char* s : xs) {
    if (x == s) return true;
  }
  return false;
}

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

void append_kv(std::string& out, const char* key, const std::string& val,
               bool quoted, bool first = false) {
  if (!first) out.push_back(',');
  out.append("\"").append(key).append("\":");
  if (quoted) {
    out.append(json_quote(val));
  } else {
    out.append(val);
  }
}

std::string fmt(double x) {
  std::ostringstream os;
  os << x;
  return os.str();
}

}  // namespace

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  if (name == "crash") return Algorithm::kCrashOneStep;  // CLI shorthand
  for (const Algorithm a : kAlgorithms) {
    if (name == algorithm_name(a)) return a;
  }
  return std::nullopt;
}

void Genome::normalize() {
  if (!contains(kAlgorithms, algorithm)) algorithm = Algorithm::kDexFreq;
  t = std::clamp<std::size_t>(t, 1, 3);
  fault_count = std::min(fault_count, t);
  const std::size_t min_n = algorithm_min_n(algorithm, t);
  n = std::clamp<std::size_t>(std::max(n, min_n), min_n, min_n + 12);
  if (!contains_str(kShapes, input_shape)) input_shape = "unanimous";
  margin = std::clamp<std::size_t>(margin, 1, n);
  // margin == n-1 is structurally infeasible (the leftover entry is always a
  // runner-up of count 1) — margin_input() rejects it, so round up to n.
  if (n > 1 && margin == n - 1) margin = n;
  count = std::clamp<std::size_t>(count, 1, n);
  p_common = clamp01(p_common);
  if (!contains(kFaultKinds, fault_kind)) fault_kind = harness::FaultKind::kSilent;
  wake_after = std::clamp<std::size_t>(wake_after, 1, 4 * n);
  if (!contains_str(kDelays, delay)) delay = "uniform";
  slow_factor = std::clamp(slow_factor, 1.0, 32.0);
  gst_ms = std::clamp<std::uint64_t>(gst_ms, 1, 500);
  jitter_ms = std::min<std::uint64_t>(jitter_ms, 50);
  drop = clamp01(drop);
  duplicate = clamp01(duplicate);
  reorder = clamp01(reorder);
  corrupt = clamp01(corrupt);
  if (has_partition) {
    part_cut = std::clamp<std::size_t>(part_cut, 1, n - 1);
    if (part_until_ms <= part_from_ms) part_until_ms = part_from_ms + 1;
    part_until_ms = std::min<std::uint64_t>(part_until_ms, part_from_ms + 1000);
  }
  if (has_crash) {
    crash_who = std::min(crash_who, n - 1);
    if (crash_until_ms <= crash_from_ms) crash_until_ms = crash_from_ms + 1;
    crash_until_ms = std::min<std::uint64_t>(crash_until_ms, crash_from_ms + 1000);
  }
}

Genome Genome::sample(Rng& rng) {
  Genome g;
  g.algorithm = kAlgorithms[rng.next_below(kAlgorithms.size())];
  g.t = 1 + rng.next_below(2);
  g.n = algorithm_min_n(g.algorithm, g.t) + rng.next_below(4);
  g.input_shape = kShapes[rng.next_below(kShapes.size())];
  g.margin = 1 + rng.next_below(g.n);
  g.count = 1 + rng.next_below(g.n);
  g.p_common = 0.5 + 0.5 * rng.next_double();
  g.fault_kind = kFaultKinds[rng.next_below(kFaultKinds.size())];
  g.fault_count = rng.next_below(g.t + 1);
  g.wake_after = 1 + rng.next_below(2 * g.n);
  g.random_placement = rng.next_bool(0.3);
  g.delay = kDelays[rng.next_below(kDelays.size())];
  g.slow_factor = 1.0 + rng.next_double() * 8.0;
  g.gst_ms = 5 + rng.next_below(80);
  g.jitter_ms = rng.next_below(6);
  g.batch = rng.next_bool(0.2);
  g.oracle_uc = rng.next_bool(0.15);
  g.drop = rng.next_bool(0.35) ? 0.25 * rng.next_double() : 0.0;
  g.duplicate = rng.next_bool(0.35) ? 0.25 * rng.next_double() : 0.0;
  g.reorder = rng.next_bool(0.35) ? 0.5 * rng.next_double() : 0.0;
  g.corrupt = rng.next_bool(0.15) ? 0.05 * rng.next_double() : 0.0;
  g.has_partition = rng.next_bool(0.25);
  g.part_from_ms = rng.next_below(10);
  g.part_until_ms = g.part_from_ms + 1 + rng.next_below(40);
  g.part_cut = 1 + rng.next_below(g.n > 1 ? g.n - 1 : 1);
  g.has_crash = rng.next_bool(0.25);
  g.crash_who = rng.next_below(g.n);
  g.crash_from_ms = rng.next_below(10);
  g.crash_until_ms = g.crash_from_ms + 1 + rng.next_below(30);
  g.normalize();
  return g;
}

void Genome::mutate(Rng& rng) {
  const std::size_t edits = 1 + rng.next_below(3);
  for (std::size_t e = 0; e < edits; ++e) {
    switch (rng.next_below(18)) {
      case 0: algorithm = kAlgorithms[rng.next_below(kAlgorithms.size())]; break;
      case 1: n += rng.next_below(3); break;
      case 2: t = 1 + rng.next_below(2); break;
      case 3: input_shape = kShapes[rng.next_below(kShapes.size())]; break;
      case 4: margin = 1 + rng.next_below(n); break;
      case 5: count = 1 + rng.next_below(n); break;
      case 6:
        fault_kind = kFaultKinds[rng.next_below(kFaultKinds.size())];
        break;
      case 7: fault_count = rng.next_below(t + 1); break;
      case 8: delay = kDelays[rng.next_below(kDelays.size())]; break;
      case 9: jitter_ms = rng.next_below(6); break;
      case 10: batch = !batch; break;
      case 11: drop = rng.next_bool(0.5) ? 0.25 * rng.next_double() : 0.0; break;
      case 12:
        duplicate = rng.next_bool(0.5) ? 0.25 * rng.next_double() : 0.0;
        break;
      case 13: reorder = rng.next_bool(0.5) ? 0.5 * rng.next_double() : 0.0; break;
      case 14:
        corrupt = rng.next_bool(0.3) ? 0.05 * rng.next_double() : 0.0;
        break;
      case 15:
        has_partition = !has_partition;
        part_cut = 1 + rng.next_below(n > 1 ? n - 1 : 1);
        break;
      case 16:
        has_crash = !has_crash;
        crash_who = rng.next_below(n);
        break;
      default: wake_after = 1 + rng.next_below(2 * n); break;
    }
  }
  normalize();
}

std::string Genome::to_json() const {
  std::string out = "{";
  // Seed is serialized as a STRING: JSON numbers round-trip through double,
  // which silently rounds 64-bit seeds above 2^53 and breaks byte-identical
  // replay (`dexsim --repro`).
  append_kv(out, "seed", std::to_string(seed), true, /*first=*/true);
  append_kv(out, "algo", algorithm_name(algorithm), true);
  append_kv(out, "n", std::to_string(n), false);
  append_kv(out, "t", std::to_string(t), false);
  append_kv(out, "input", input_shape, true);
  append_kv(out, "margin", std::to_string(margin), false);
  append_kv(out, "count", std::to_string(count), false);
  append_kv(out, "p_common", fmt(p_common), false);
  append_kv(out, "fault_kind", harness::fault_kind_name(fault_kind), true);
  append_kv(out, "faults", std::to_string(fault_count), false);
  append_kv(out, "wake_after", std::to_string(wake_after), false);
  append_kv(out, "random_placement", random_placement ? "true" : "false", false);
  append_kv(out, "delay", delay, true);
  append_kv(out, "slow_factor", fmt(slow_factor), false);
  append_kv(out, "gst_ms", std::to_string(gst_ms), false);
  append_kv(out, "jitter_ms", std::to_string(jitter_ms), false);
  append_kv(out, "batch", batch ? "true" : "false", false);
  append_kv(out, "oracle_uc", oracle_uc ? "true" : "false", false);
  append_kv(out, "drop", fmt(drop), false);
  append_kv(out, "duplicate", fmt(duplicate), false);
  append_kv(out, "reorder", fmt(reorder), false);
  append_kv(out, "corrupt", fmt(corrupt), false);
  append_kv(out, "partition", has_partition ? "true" : "false", false);
  append_kv(out, "part_from_ms", std::to_string(part_from_ms), false);
  append_kv(out, "part_until_ms", std::to_string(part_until_ms), false);
  append_kv(out, "part_cut", std::to_string(part_cut), false);
  append_kv(out, "crash", has_crash ? "true" : "false", false);
  append_kv(out, "crash_who", std::to_string(crash_who), false);
  append_kv(out, "crash_from_ms", std::to_string(crash_from_ms), false);
  append_kv(out, "crash_until_ms", std::to_string(crash_until_ms), false);
  append_kv(out, "quorum_skew", std::to_string(debug_quorum_skew), false);
  out.push_back('}');
  return out;
}

Genome Genome::from_json(const json::Value& doc) {
  if (!doc.is_object()) throw json::ParseError("genome: not a JSON object");
  Genome g;
  // Accept both the canonical string form (exact) and a bare number (legacy,
  // lossy above 2^53).
  const std::string seed_text = doc.str_or("seed", "");
  g.seed = seed_text.empty()
               ? static_cast<std::uint64_t>(doc.num_or("seed", 1))
               : std::strtoull(seed_text.c_str(), nullptr, 10);
  const std::string algo = doc.str_or("algo", "dex-freq");
  const auto parsed = parse_algorithm(algo);
  if (!parsed) throw json::ParseError("genome: unknown algo '" + algo + "'");
  g.algorithm = *parsed;
  g.n = static_cast<std::size_t>(doc.num_or("n", 13));
  g.t = static_cast<std::size_t>(doc.num_or("t", 2));
  g.input_shape = doc.str_or("input", "unanimous");
  g.margin = static_cast<std::size_t>(doc.num_or("margin", 5));
  g.count = static_cast<std::size_t>(doc.num_or("count", 7));
  g.p_common = doc.num_or("p_common", 0.9);
  const std::string fk = doc.str_or("fault_kind", "silent");
  const auto kind = harness::parse_fault_kind(fk);
  if (!kind) throw json::ParseError("genome: unknown fault_kind '" + fk + "'");
  g.fault_kind = *kind;
  g.fault_count = static_cast<std::size_t>(doc.num_or("faults", 0));
  g.wake_after = static_cast<std::size_t>(doc.num_or("wake_after", 4));
  g.random_placement = doc.bool_or("random_placement", false);
  g.delay = doc.str_or("delay", "uniform");
  g.slow_factor = doc.num_or("slow_factor", 4.0);
  g.gst_ms = static_cast<std::uint64_t>(doc.num_or("gst_ms", 40));
  g.jitter_ms = static_cast<std::uint64_t>(doc.num_or("jitter_ms", 2));
  g.batch = doc.bool_or("batch", false);
  g.oracle_uc = doc.bool_or("oracle_uc", false);
  g.drop = doc.num_or("drop", 0.0);
  g.duplicate = doc.num_or("duplicate", 0.0);
  g.reorder = doc.num_or("reorder", 0.0);
  g.corrupt = doc.num_or("corrupt", 0.0);
  g.has_partition = doc.bool_or("partition", false);
  g.part_from_ms = static_cast<std::uint64_t>(doc.num_or("part_from_ms", 0));
  g.part_until_ms = static_cast<std::uint64_t>(doc.num_or("part_until_ms", 20));
  g.part_cut = static_cast<std::size_t>(doc.num_or("part_cut", 1));
  g.has_crash = doc.bool_or("crash", false);
  g.crash_who = static_cast<std::size_t>(doc.num_or("crash_who", 0));
  g.crash_from_ms = static_cast<std::uint64_t>(doc.num_or("crash_from_ms", 0));
  g.crash_until_ms = static_cast<std::uint64_t>(doc.num_or("crash_until_ms", 15));
  g.debug_quorum_skew = static_cast<std::size_t>(doc.num_or("quorum_skew", 0));
  g.normalize();
  return g;
}

Genome Genome::from_json_text(std::string_view text) {
  return from_json(json::parse(text));
}

std::string Genome::describe() const {
  std::ostringstream os;
  os << algorithm_name(algorithm) << " n=" << n << " t=" << t << " input="
     << input_shape << " faults=" << fault_count << "("
     << harness::fault_kind_name(fault_kind) << ") delay=" << delay
     << " seed=" << seed;
  if (drop > 0) os << " drop=" << drop;
  if (duplicate > 0) os << " dup=" << duplicate;
  if (reorder > 0) os << " reorder=" << reorder;
  if (corrupt > 0) os << " corrupt=" << corrupt;
  if (has_partition) os << " partition";
  if (has_crash) os << " crash=p" << crash_who;
  if (debug_quorum_skew > 0) os << " SKEW=" << debug_quorum_skew;
  return os.str();
}

harness::ExperimentConfig to_experiment(const Genome& g) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = g.algorithm;
  cfg.n = g.n;
  cfg.t = g.t;
  cfg.seed = g.seed;

  // Input vector — same shapes as dexsim, drawn from a genome-derived stream
  // so the vector is a pure function of the genome.
  Rng in_rng(mix64(g.seed ^ 0x1f0c411aULL));
  if (g.input_shape == "unanimous") {
    cfg.input = unanimous_input(g.n, 0);
  } else if (g.input_shape == "margin") {
    cfg.input = margin_input(g.n, g.margin, 0, in_rng);
  } else if (g.input_shape == "privileged") {
    cfg.input = privileged_input(g.n, 0, g.count, in_rng);
  } else if (g.input_shape == "split") {
    cfg.input = split_input(g.n, 0, g.count, 1);
  } else if (g.input_shape == "random") {
    cfg.input = random_input(g.n, in_rng, {.domain = 4});
  } else {  // skewed
    std::vector<Value> v(g.n);
    for (auto& e : v) {
      e = in_rng.next_bool(g.p_common) ? 0
                                       : static_cast<Value>(in_rng.next_below(4));
    }
    cfg.input = InputVector(std::move(v));
  }

  cfg.faults.kind = g.fault_kind;
  cfg.faults.count = g.fault_count;
  cfg.faults.wake_after = g.wake_after;
  cfg.faults.random_placement = g.random_placement;

  if (g.delay == "constant") {
    cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  } else if (g.delay == "uniform") {
    cfg.delay = std::make_shared<sim::UniformDelay>(1'000'000, 10'000'000);
  } else if (g.delay == "exponential") {
    cfg.delay = std::make_shared<sim::ExponentialDelay>(500'000, 4'000'000.0);
  } else if (g.delay == "heavytail") {
    cfg.delay = std::make_shared<sim::LogNormalDelay>(500'000, 14.5, 1.0);
  } else if (g.delay == "skewed") {
    cfg.delay = std::make_shared<sim::SkewedDelay>(
        std::make_shared<sim::UniformDelay>(1'000'000, 10'000'000),
        std::set<ProcessId>{0}, g.slow_factor);
  } else {  // gst
    cfg.delay = std::make_shared<sim::GstDelay>(
        std::make_shared<sim::LogNormalDelay>(500'000, 14.5, 1.0),
        std::make_shared<sim::ConstantDelay>(1'000'000),
        static_cast<SimTime>(g.gst_ms) * 1'000'000);
  }
  cfg.start_jitter = static_cast<SimTime>(g.jitter_ms) * 1'000'000;
  cfg.batch = g.batch;
  cfg.use_oracle_uc = g.oracle_uc;

  cfg.link_faults.drop = g.drop;
  cfg.link_faults.duplicate = g.duplicate;
  cfg.link_faults.reorder = g.reorder;
  cfg.link_faults.corrupt = g.corrupt;
  if (g.has_partition) {
    sim::Partition p;
    p.from = static_cast<SimTime>(g.part_from_ms) * 1'000'000;
    p.until = static_cast<SimTime>(g.part_until_ms) * 1'000'000;
    p.group.assign(g.n, 0);
    for (std::size_t i = 0; i < g.part_cut && i < g.n; ++i) p.group[i] = 1;
    cfg.partitions.push_back(std::move(p));
  }
  if (g.has_crash) {
    sim::CrashWindow w;
    w.who = static_cast<ProcessId>(g.crash_who);
    w.from = static_cast<SimTime>(g.crash_from_ms) * 1'000'000;
    w.until = static_cast<SimTime>(g.crash_until_ms) * 1'000'000;
    cfg.crashes.push_back(w);
  }
  cfg.debug_quorum_skew = g.debug_quorum_skew;

  // A bounded, fuzzing-friendly budget: big enough for every clean run in
  // the sampled envelope, small enough that a pathological genome cannot
  // stall a campaign.
  cfg.max_events = 2'000'000;
  return cfg;
}

}  // namespace dex::check
