#include "check/oracle.hpp"

#include <sstream>

namespace dex::check {

namespace {

std::uint64_t bucket_log2(std::uint64_t x) {
  std::uint64_t b = 0;
  while (x > 1) {
    x >>= 1;
    ++b;
  }
  return b;
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) { return mix64(h ^ v); }

}  // namespace

RunVerdict run_genome(const Genome& g) {
  harness::ExperimentConfig cfg = to_experiment(g);
  cfg.capture_trace = true;

  const auto r = harness::run_experiment(cfg);

  RunVerdict v;
  v.correct = r.correct;
  v.decided = r.decided;
  v.one_step = r.one_step;
  v.two_step = r.two_step;
  v.via_underlying = r.via_underlying;
  v.packets = r.stats.packets_delivered;
  v.injected_faults = r.stats.faults.total();

  auto fail = [&v](const std::string& what) {
    v.failures.push_back(what);
    v.ok = false;
  };

  if (!g.corrupting()) {
    if (!r.agreement()) {
      std::ostringstream os;
      os << "agreement: correct processes decided different values";
      for (std::size_t i = 0; i < r.stats.decisions.size(); ++i) {
        const auto& rec = r.stats.decisions[i];
        if (rec.has_value() && r.faulty.count(static_cast<ProcessId>(i)) == 0) {
          os << " p" << i << "=" << rec->decision.value;
        }
      }
      fail(os.str());
    }
    if (const auto u = harness::unanimous_correct_value(cfg.input, r.faulty)) {
      for (std::size_t i = 0; i < r.stats.decisions.size(); ++i) {
        const auto& rec = r.stats.decisions[i];
        if (!rec.has_value() || r.faulty.count(static_cast<ProcessId>(i)) > 0) {
          continue;
        }
        if (rec->decision.value != *u) {
          std::ostringstream os;
          os << "unanimity: all correct proposed " << *u << " but p" << i
             << " decided " << rec->decision.value;
          fail(os.str());
          break;
        }
      }
    }
  }

  if (g.clean()) {
    if (r.stats.hit_event_limit) {
      fail("termination: event limit hit on a clean genome");
    } else if (!r.all_decided()) {
      std::ostringstream os;
      os << "termination: only " << r.decided << "/" << r.correct
         << " correct processes decided on a clean genome";
      fail(os.str());
    }
  }

  // The zero-degrading oracle UC delivers decisions out of band (no wire
  // traffic), which legitimately breaks I1's decide-quorum premise — the
  // causal invariants only apply to real message-passing executions.
  if (!g.oracle_uc) {
    v.invariants =
        trace::check_causal_invariants(r.trace_events, {.n = g.n, .t = g.t});
    for (const auto& violation : v.invariants.violations) {
      fail("invariant: " + violation);
    }
  }

  // Behavioural signature for the coverage map. Counts that grow with n are
  // folded exactly (path mix is the interesting axis); volumes are bucketed
  // so noise does not make every run look novel.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h = fold(h, static_cast<std::uint64_t>(g.algorithm));
  h = fold(h, v.one_step);
  h = fold(h, v.two_step);
  h = fold(h, v.via_underlying);
  h = fold(h, v.correct - v.decided);
  h = fold(h, v.invariants.one_step_decides);
  h = fold(h, bucket_log2(v.invariants.echoes_checked + 1));
  h = fold(h, bucket_log2(v.invariants.accepts_checked + 1));
  h = fold(h, bucket_log2(v.packets + 1));
  h = fold(h, bucket_log2(v.injected_faults + 1));
  h = fold(h, r.stats.hit_event_limit ? 1 : 0);
  h = fold(h, r.stats.max_steps());
  v.coverage = h;
  return v;
}

}  // namespace dex::check
