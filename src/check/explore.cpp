#include "check/explore.hpp"

#include <functional>
#include <optional>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "harness/experiment.hpp"
#include "trace/check.hpp"
#include "trace/trace.hpp"

namespace dex::check {

namespace {

/// A fallback that never speaks and never decides — an arbitrarily slow
/// underlying consensus, which full asynchrony permits. The explorer's tiny
/// worlds sit below the randomized UC's n > 5t bound, and a real fallback
/// would square the schedule space; with the inert one, explorer scenarios
/// must terminate via the fast path (the leaf termination oracle enforces
/// exactly that).
class InertUc final : public UnderlyingConsensus {
 public:
  void propose(Value) override {}
  void on_plain(ProcessId, const Message&) override {}
  void on_idb(const IdbDelivery&) override {}
  [[nodiscard]] std::optional<Value> decision() const override {
    return std::nullopt;
  }
  [[nodiscard]] std::uint32_t rounds_used() const override { return 0; }
  [[nodiscard]] std::uint32_t logical_steps() const override { return 0; }
  [[nodiscard]] bool halted() const override { return true; }
  [[nodiscard]] std::string name() const override { return "inert"; }
};

std::uint64_t fold(std::uint64_t h, std::uint64_t v) { return mix64(h ^ v); }

std::uint64_t hash_message(ProcessId src, ProcessId dst, const Message& m) {
  std::uint64_t h = 0xc0ffee;
  h = fold(h, static_cast<std::uint64_t>(src) + 1);
  h = fold(h, static_cast<std::uint64_t>(dst) + 1);
  h = fold(h, static_cast<std::uint64_t>(m.kind));
  h = fold(h, m.instance);
  h = fold(h, m.tag);
  h = fold(h, static_cast<std::uint64_t>(m.origin) + 7);
  for (const std::byte b : m.payload) {
    h = fold(h, static_cast<std::uint64_t>(b));
  }
  return h;
}

struct Packet {
  ProcessId src;
  ProcessId dst;
  Message msg;
};

/// One concrete world, rebuilt per DFS node by replaying a choice prefix.
/// Emits the same "sim"/"deliver" and "sim"/"decide" trace instants as the
/// simulator so trace::check_causal_invariants applies unchanged.
class World {
 public:
  explicit World(const ExploreOptions& opt) : opt_(opt) {
    trace::Tracer::global().reset();
    trace::Tracer::global().set_virtual_now(0);
    procs_.resize(opt.n);
    decide_emitted_.assign(opt.n, false);
    dst_hash_.assign(opt.n, 0x5eedULL);
    for (std::size_t i = 0; i < opt.n; ++i) {
      if (silent(static_cast<ProcessId>(i))) continue;
      StackConfig sc;
      sc.n = opt.n;
      sc.t = opt.t;
      sc.self = static_cast<ProcessId>(i);
      sc.instance = 0;
      sc.debug_quorum_skew = opt.debug_quorum_skew;
      procs_[i] = make_stack(opt.algorithm, sc, /*privileged=*/0,
                             [](const StackConfig&, IdbEngine*, Outbox*) {
                               return std::make_unique<InertUc>();
                             });
    }
    for (std::size_t i = 0; i < opt.n; ++i) {
      if (procs_[i] == nullptr) continue;
      procs_[i]->propose(opt.input[i]);
      pump(static_cast<ProcessId>(i));
      note_decide(static_cast<ProcessId>(i));
    }
  }

  [[nodiscard]] bool silent(ProcessId p) const {
    return static_cast<std::size_t>(p) >= opt_.n - opt_.silent;
  }

  /// Deliverable pending indices after the reorder-window bound and the
  /// identical-packet symmetry reduction.
  [[nodiscard]] std::vector<std::size_t> choices() const {
    std::vector<std::size_t> out;
    std::set<std::uint64_t> seen;
    std::vector<std::size_t> queued_ahead(opt_.n, 0);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const Packet& p = pending_[i];
      const std::size_t pos = queued_ahead[static_cast<std::size_t>(p.dst)]++;
      if (opt_.reorder_window > 0 && pos >= opt_.reorder_window) continue;
      if (seen.insert(hash_message(p.src, p.dst, p.msg)).second) {
        out.push_back(i);
      }
    }
    return out;
  }

  void deliver_pending(std::size_t idx) {
    DEX_ENSURE(idx < pending_.size());
    Packet p = std::move(pending_[idx]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(idx));
    deliver_now(p.src, p.dst, p.msg);
    pump(p.dst);
  }

  /// Global state key: the per-destination delivered-sequence hashes. Each
  /// stack is a deterministic function of its delivery sequence, and the
  /// pending set is determined by the union of all histories, so equal keys
  /// mean an identical world.
  [[nodiscard]] std::uint64_t state_key() const {
    std::uint64_t h = 0xd3c5ULL;
    for (std::size_t i = 0; i < dst_hash_.size(); ++i) {
      h = fold(h, fold(dst_hash_[i], i));
    }
    return h;
  }

  [[nodiscard]] bool complete() const { return pending_.empty(); }

  [[nodiscard]] const std::vector<std::unique_ptr<ConsensusProcess>>& procs()
      const {
    return procs_;
  }

 private:
  void pump(ProcessId i) {
    auto& proc = procs_[static_cast<std::size_t>(i)];
    if (proc == nullptr) return;
    for (;;) {
      auto out = proc->drain_outbox();
      if (out.empty()) return;
      for (auto& o : out) {
        if (o.dst == kBroadcastDst) {
          for (std::size_t d = 0; d < opt_.n; ++d) {
            route(i, static_cast<ProcessId>(d), o.msg);
          }
        } else {
          route(i, o.dst, std::move(o.msg));
        }
      }
    }
  }

  void route(ProcessId src, ProcessId dst, Message msg) {
    if (dst == src) {
      // Self deliveries are instantaneous in the simulator's model too; they
      // are not a scheduling choice.
      deliver_now(src, dst, msg);
      return;
    }
    if (silent(dst)) return;  // nobody home; drop
    pending_.push_back(Packet{src, dst, std::move(msg)});
  }

  void deliver_now(ProcessId src, ProcessId dst, const Message& msg) {
    ++vtime_;
    trace::Tracer::global().set_virtual_now(vtime_);
    if (trace::on()) {
      trace::instant_at(vtime_, "sim", "deliver",
                        {.proc = dst,
                         .peer = src,
                         .instance = msg.instance,
                         .tag = msg.tag,
                         .a = static_cast<std::int64_t>(msg.kind),
                         .b = static_cast<std::int64_t>(msg.payload.size()),
                         .c = msg.origin});
    }
    auto& h = dst_hash_[static_cast<std::size_t>(dst)];
    h = fold(h, hash_message(src, dst, msg));
    auto& proc = procs_[static_cast<std::size_t>(dst)];
    proc->on_packet(src, msg);
    proc->poll();
    note_decide(dst);
  }

  void note_decide(ProcessId i) {
    auto& proc = procs_[static_cast<std::size_t>(i)];
    if (decide_emitted_[static_cast<std::size_t>(i)]) return;
    const auto& d = proc->decision();
    if (!d.has_value()) return;
    decide_emitted_[static_cast<std::size_t>(i)] = true;
    if (trace::on()) {
      trace::instant_at(vtime_, "sim", "decide",
                        {.proc = i,
                         .instance = proc->instance(),
                         .a = d->value,
                         .b = static_cast<std::int64_t>(d->path),
                         .c = static_cast<std::int64_t>(d->uc_rounds)});
    }
  }

  const ExploreOptions& opt_;
  std::vector<std::unique_ptr<ConsensusProcess>> procs_;
  std::vector<Packet> pending_;
  std::vector<std::uint64_t> dst_hash_;
  std::vector<bool> decide_emitted_;
  std::uint64_t vtime_ = 0;
};

std::string schedule_string(const std::vector<std::size_t>& prefix) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (i > 0) os << ",";
    os << prefix[i];
  }
  os << "]";
  return os.str();
}

/// Leaf oracles: termination (only for unanimous inputs — there the fast
/// path must decide despite the inert fallback), agreement, unanimity and
/// the I1–I4 causal invariants over the schedule's trace.
std::vector<std::string> judge_leaf(const World& w, const ExploreOptions& opt) {
  std::vector<std::string> failures;
  std::optional<Value> common;
  std::optional<Value> unanimous;
  bool mixed_input = false;
  for (std::size_t i = 0; i < opt.n - opt.silent; ++i) {
    if (unanimous.has_value() && *unanimous != opt.input[i]) mixed_input = true;
    unanimous = opt.input[i];
  }
  for (std::size_t i = 0; i < opt.n; ++i) {
    const auto& proc = w.procs()[i];
    if (proc == nullptr) continue;
    const auto& d = proc->decision();
    if (!d.has_value()) {
      // With a contested input the fast path may legitimately defer to the
      // fallback — which is inert here — so termination is only owed when the
      // correct processes propose unanimously (the fast path must then fire).
      if (!mixed_input) {
        failures.push_back("termination: p" + std::to_string(i) +
                           " undecided at schedule end");
      }
      continue;
    }
    if (common.has_value() && *common != d->value) {
      failures.push_back("agreement: p" + std::to_string(i) + " decided " +
                         std::to_string(d->value) + " != " +
                         std::to_string(*common));
    }
    common = d->value;
    if (!mixed_input && unanimous.has_value() && d->value != *unanimous) {
      failures.push_back("unanimity: p" + std::to_string(i) + " decided " +
                         std::to_string(d->value) + " but all correct proposed " +
                         std::to_string(*unanimous));
    }
  }
  const auto inv = trace::check_causal_invariants(
      trace::Tracer::global().snapshot(), {.n = opt.n, .t = opt.t});
  for (const auto& violation : inv.violations) {
    failures.push_back("invariant: " + violation);
  }
  return failures;
}

}  // namespace

ExploreReport explore(const ExploreOptions& opt) {
  ExploreReport report;
  DEX_ENSURE_MSG(opt.input.size() == opt.n, "explore: input size != n");
  DEX_ENSURE_MSG(opt.silent <= opt.t, "explore: silent faults exceed t");
  DEX_ENSURE_MSG(opt.algorithm != Algorithm::kUnderlyingOnly,
                 "explore: underlying-only has no fast path to explore");
  // With the inert fallback the crash baseline needs only its own n > 3t plus
  // the identical-broadcast n > 4t (the stack always embeds an IDB engine);
  // every other algorithm's own bound already dominates. The smallest world
  // is therefore n = 4t+1 = 5 at t = 1 — n = 4 is structurally excluded.
  const std::size_t structural_min =
      opt.algorithm == Algorithm::kCrashOneStep
          ? 4 * opt.t + 1
          : algorithm_min_n(opt.algorithm, opt.t);
  DEX_ENSURE_MSG(opt.n >= structural_min,
                 "explore: n below the world's structural minimum");

  metrics::Counter* m_states = nullptr;
  metrics::Counter* m_schedules = nullptr;
  if (opt.metrics != nullptr) {
    m_states = &opt.metrics->counter("check_states_explored");
    m_schedules = &opt.metrics->counter("check_schedules_total");
  }

  // The checker needs deliver/decide instants; raise the tracer for the
  // sweep, switch it to the virtual clock, restore everything afterwards.
  auto& tracer = trace::Tracer::global();
  const int prev_level = tracer.level();
  const auto prev_clock = tracer.clock();
  if (prev_level < trace::kOn) tracer.set_level(trace::kOn);
  tracer.set_clock(trace::Tracer::Clock::kVirtual);

  std::set<std::uint64_t> seen;
  std::vector<std::size_t> prefix;

  std::function<void()> dfs = [&] {
    if (report.states >= opt.max_states) {
      report.truncated = true;
      return;
    }
    World w(opt);
    for (const std::size_t idx : prefix) w.deliver_pending(idx);
    ++report.states;
    metrics::inc(m_states);
    if (!seen.insert(w.state_key()).second) {
      ++report.deduped;
      return;
    }
    const auto cs = w.choices();
    if (cs.empty()) {
      ++report.schedules;
      metrics::inc(m_schedules);
      const auto failures = judge_leaf(w, opt);
      if (!failures.empty()) {
        report.ok = false;
        ++report.violating_schedules;
        if (report.violations.size() < opt.max_violations) {
          for (const auto& f : failures) {
            report.violations.push_back("schedule " + schedule_string(prefix) +
                                        ": " + f);
          }
        }
      }
      return;
    }
    for (const std::size_t c : cs) {
      prefix.push_back(c);
      dfs();
      prefix.pop_back();
      if (report.truncated) return;
    }
  };
  dfs();

  tracer.reset();
  tracer.set_clock(prev_clock);
  tracer.set_level(prev_level);
  return report;
}

}  // namespace dex::check
