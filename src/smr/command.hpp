// Commands for the replicated-state-machine substrate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dex::smr {

/// A client command. Replicas agree on command *digests* (the consensus
/// Value); bodies travel on the dissemination channel.
struct Command {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  std::string op;

  /// Stable 64-bit digest (FNV-1a over the canonical encoding).
  [[nodiscard]] Value digest() const;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static Command from_bytes(std::span<const std::byte> data);

  bool operator==(const Command&) const = default;
};

/// Digest of the reserved no-op command (proposed by replicas with an empty
/// pending queue so a slot can still make progress).
inline constexpr Value kNoopDigest = 0;

}  // namespace dex::smr
