#include "smr/replica.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace dex::smr {

namespace {
/// Byzantine traffic may name arbitrary instances; bound how far ahead of the
/// committed prefix we are willing to allocate slot state.
constexpr InstanceId kSlotWindow = 16;
}  // namespace

Replica::Replica(const ReplicaConfig& cfg, std::shared_ptr<const ConditionPair> pair)
    : cfg_(cfg), pair_(std::move(pair)) {
  DEX_ENSURE(pair_ != nullptr);
  DEX_ENSURE(cfg_.n == pair_->n() && cfg_.t == pair_->t());
  if (cfg_.metrics.enabled()) {
    for (const DecisionPath p : {DecisionPath::kOneStep, DecisionPath::kTwoStep,
                                 DecisionPath::kUnderlying}) {
      m_commits_[static_cast<std::size_t>(p)] = cfg_.metrics.counter(
          "smr_commits_total", {{"path", decision_path_metric_label(p)}});
    }
    m_holes_ = cfg_.metrics.counter("smr_holes_total");
    m_submitted_ = cfg_.metrics.counter("smr_commands_submitted_total");
    m_slot_latency_ = cfg_.metrics.histogram("smr_slot_latency_ms");
    m_pending_ = cfg_.metrics.gauge("smr_pending_commands");
  }
}

Replica::Slot& Replica::open_slot(InstanceId s) {
  auto it = slots_.find(s);
  if (it != slots_.end()) return it->second;

  StackConfig sc;
  sc.n = cfg_.n;
  sc.t = cfg_.t;
  sc.self = cfg_.self;
  sc.instance = s;
  sc.coin_seed = mix64(cfg_.coin_seed ^ s);
  sc.metrics = cfg_.metrics;
  Slot slot;
  slot.stack = std::make_unique<DexStack>(sc, pair_);
  if (cfg_.clock) slot.opened_at = cfg_.clock();
  return slots_.emplace(s, std::move(slot)).first->second;
}

void Replica::submit(const Command& cmd) {
  const Value d = cmd.digest();
  metrics::inc(m_submitted_);
  bodies_.try_emplace(d, cmd);
  if (committed_digests_.count(d) == 0 && pending_set_.insert(d).second) {
    pending_.push_back(d);
    metrics::set(m_pending_, static_cast<double>(pending_.size()));
  }
  if (next_slot_ < cfg_.max_slots) propose_if_ready(next_slot_);
}

void Replica::propose_if_ready(InstanceId s) {
  if (s >= cfg_.max_slots) return;
  Slot& slot = open_slot(s);
  if (slot.proposed) return;

  // A replica proposes only real commands. Liveness does not need filler
  // proposals: whoever proposes a digest also disseminates its body below, so
  // every correct replica eventually holds a pending command for the slot and
  // joins in — and an idle system stays quiet.
  if (pending_.empty()) return;
  const Value d = pending_.front();

  slot.proposed = true;
  slot.stack->propose(d);
  // Disseminate the body so every replica can propose/apply the command.
  const auto it = bodies_.find(d);
  if (it != bodies_.end()) {
    Message m;
    m.kind = MsgKind::kPlain;
    m.instance = s;
    m.tag = chan::kSmrDissem;
    m.payload = it->second.to_bytes();
    dissem_outbox_.broadcast(std::move(m));
  }
}

void Replica::start() {
  if (!pending_.empty()) propose_if_ready(0);
}

void Replica::on_packet(ProcessId src, const Message& msg) {
  if (msg.kind == MsgKind::kPlain && chan::channel(msg.tag) == chan::kSmrDissem) {
    try {
      const Command cmd = Command::from_bytes(msg.payload);
      const Value d = cmd.digest();
      bodies_.try_emplace(d, cmd);
      if (committed_digests_.count(d) == 0 && pending_set_.insert(d).second) {
        pending_.push_back(d);
      }
      propose_if_ready(next_slot_);
    } catch (const DecodeError&) {
    }
    harvest_decisions();
    return;
  }

  const InstanceId s = msg.instance;
  if (s >= cfg_.max_slots || s > next_slot_ + kSlotWindow) return;
  Slot& slot = open_slot(s);
  slot.stack->on_packet(src, msg);
  propose_if_ready(s);
  harvest_decisions();
}

void Replica::harvest_decisions() {
  for (auto& [s, slot] : slots_) {
    if (slot.committed || decided_.count(s) > 0) continue;
    if (const auto& d = slot.stack->decision()) decided_.emplace(s, *d);
  }
  try_commit();
}

void Replica::try_commit() {
  while (true) {
    const auto it = decided_.find(next_slot_);
    if (it == decided_.end()) return;
    const Decision d = it->second;
    decided_.erase(it);

    LogEntry entry;
    entry.slot = next_slot_;
    entry.digest = d.value;
    entry.path = d.path;
    if (d.value != kNoopDigest && committed_digests_.insert(d.value).second) {
      const auto body = bodies_.find(d.value);
      if (body != bodies_.end()) {
        entry.command = body->second;
      } else {
        metrics::inc(m_holes_);
        DEX_LOG(kWarn, "smr") << "r" << cfg_.self << " slot " << next_slot_
                              << " committed unknown digest " << d.value;
      }
      // Drop from the pending queue if we were going to propose it.
      if (pending_set_.erase(d.value) > 0) {
        for (auto q = pending_.begin(); q != pending_.end(); ++q) {
          if (*q == d.value) {
            pending_.erase(q);
            break;
          }
        }
        metrics::set(m_pending_, static_cast<double>(pending_.size()));
      }
    }
    Slot& committed_slot = slots_[next_slot_];
    committed_slot.committed = true;
    metrics::inc(m_commits_[static_cast<std::size_t>(d.path)]);
    if (m_slot_latency_ != nullptr && cfg_.clock) {
      const SimTime now = cfg_.clock();
      const SimTime dur = now >= committed_slot.opened_at
                              ? now - committed_slot.opened_at
                              : 0;
      m_slot_latency_->observe(static_cast<double>(dur) / 1e6);
    }
    log_.push_back(std::move(entry));
    ++next_slot_;
    if (!pending_.empty() && next_slot_ < cfg_.max_slots) {
      propose_if_ready(next_slot_);
    }
  }
}

std::vector<Outgoing> Replica::drain() {
  std::vector<Outgoing> out = dissem_outbox_.drain();
  for (auto& [s, slot] : slots_) {
    auto more = slot.stack->drain_outbox();
    out.insert(out.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  }
  return out;
}

}  // namespace dex::smr
