#include "smr/replica.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dex::smr {

namespace {
/// Byzantine traffic may name arbitrary instances; bound how far ahead of the
/// committed prefix we are willing to allocate slot state.
constexpr InstanceId kSlotWindow = 16;

HostConfig make_host_config(const ReplicaConfig& cfg) {
  HostConfig hc;
  hc.max_instances = cfg.max_slots;
  hc.admission_window = kSlotWindow;
  hc.metrics = cfg.metrics;
  return hc;
}
}  // namespace

Replica::Replica(const ReplicaConfig& cfg, std::shared_ptr<const ConditionPair> pair)
    : cfg_(cfg),
      pair_(std::move(pair)),
      host_(make_host_config(cfg_), [this](InstanceId s) {
        StackConfig sc;
        sc.n = cfg_.n;
        sc.t = cfg_.t;
        sc.self = cfg_.self;
        sc.instance = s;
        sc.coin_seed = mix64(cfg_.coin_seed ^ s);
        sc.metrics = cfg_.metrics;
        return std::make_unique<DexStack>(sc, pair_);
      }) {
  DEX_ENSURE(pair_ != nullptr);
  DEX_ENSURE(cfg_.n == pair_->n() && cfg_.t == pair_->t());
  if (cfg_.metrics.enabled()) {
    for (const DecisionPath p : {DecisionPath::kOneStep, DecisionPath::kTwoStep,
                                 DecisionPath::kUnderlying}) {
      m_commits_[static_cast<std::size_t>(p)] = cfg_.metrics.counter(
          "smr_commits_total", {{"path", decision_path_metric_label(p)}});
    }
    m_holes_ = cfg_.metrics.counter("smr_holes_total");
    m_submitted_ = cfg_.metrics.counter("smr_commands_submitted_total");
    m_slot_latency_ = cfg_.metrics.histogram("smr_slot_latency_ms");
    m_pending_ = cfg_.metrics.gauge("smr_pending_commands");
    m_live_ = cfg_.metrics.gauge("smr_live_instances");
    m_live_peak_ = cfg_.metrics.gauge("smr_live_instances_peak");
  }
}

ConsensusProcess* Replica::open_slot(InstanceId s) {
  ConsensusProcess* stack = host_.open(s);
  // The slot may have been opened by the packet router before we get here;
  // stamp the meta on first sight either way (same callback, same clock).
  if (stack != nullptr && meta_.count(s) == 0) {
    SlotMeta& meta = meta_[s];
    if (cfg_.clock) meta.opened_at = cfg_.clock();
    if (trace::on()) {
      trace::span_begin("smr", "slot", {.proc = cfg_.self, .instance = s});
    }
    export_live_gauges();
  }
  return stack;
}

void Replica::export_live_gauges() {
  metrics::set(m_live_, static_cast<double>(host_.live_count()));
  metrics::set(m_live_peak_, static_cast<double>(host_.live_high_water()));
}

void Replica::submit(const Command& cmd) {
  const Value d = cmd.digest();
  metrics::inc(m_submitted_);
  if (trace::on()) trace::instant("smr", "submit", {.proc = cfg_.self, .a = d});
  bodies_.try_emplace(d, cmd);
  if (committed_digests_.count(d) == 0 && pending_set_.insert(d).second) {
    pending_.push_back(d);
    metrics::set(m_pending_, static_cast<double>(pending_.size()));
  }
  if (next_slot_ < cfg_.max_slots) propose_open_window();
}

std::optional<Value> Replica::digest_for_proposal() const {
  if (pending_.empty()) return std::nullopt;
  if (cfg_.window <= 1) return pending_.front();
  for (const Value d : pending_) {
    bool assigned = false;
    for (const auto& [s, meta] : meta_) {
      if (meta.assigned == d) {
        assigned = true;
        break;
      }
    }
    if (!assigned) return d;
  }
  return std::nullopt;
}

void Replica::propose_if_ready(InstanceId s) {
  if (s >= cfg_.max_slots) return;
  if (const auto it = meta_.find(s); it != meta_.end() && it->second.proposed) {
    return;
  }

  // A replica proposes only real commands. Liveness does not need filler
  // proposals: whoever proposes a digest also disseminates its body below, so
  // every correct replica eventually holds a pending command for the slot and
  // joins in — and an idle system stays quiet. With nothing to propose we
  // also don't open the slot: the packet router opens slots that carry real
  // traffic, so an eager open here would only pin an idle engine set.
  const auto d = digest_for_proposal();
  if (!d.has_value()) return;

  ConsensusProcess* stack = open_slot(s);
  if (stack == nullptr) return;
  SlotMeta& meta = meta_[s];
  if (meta.proposed) return;
  meta.proposed = true;
  meta.assigned = *d;
  stack->propose(*d);
  // Disseminate the body so every replica can propose/apply the command.
  const auto it = bodies_.find(*d);
  if (it != bodies_.end()) {
    Message m;
    m.kind = MsgKind::kPlain;
    m.instance = s;
    m.tag = chan::kSmrDissem;
    m.payload = it->second.to_bytes();
    dissem_outbox_.broadcast(std::move(m));
  }
}

void Replica::propose_open_window() {
  propose_if_ready(next_slot_);
  const std::size_t window = std::max<std::size_t>(cfg_.window, 1);
  const InstanceId hi =
      std::min<InstanceId>(cfg_.max_slots, next_slot_ + window);
  for (InstanceId s = next_slot_ + 1; s < hi; ++s) {
    if (!digest_for_proposal().has_value()) break;
    propose_if_ready(s);
  }
}

void Replica::start() {
  if (!pending_.empty()) propose_open_window();
}

void Replica::on_packet(ProcessId src, const Message& msg) {
  if (msg.kind == MsgKind::kPlain && chan::channel(msg.tag) == chan::kSmrDissem) {
    try {
      const Command cmd = Command::from_bytes(msg.payload);
      const Value d = cmd.digest();
      bodies_.try_emplace(d, cmd);
      if (committed_digests_.count(d) == 0 && pending_set_.insert(d).second) {
        pending_.push_back(d);
      }
      propose_open_window();
    } catch (const DecodeError&) {
    }
    harvest_decisions();
    return;
  }

  if (!host_.route(src, msg)) return;
  propose_if_ready(msg.instance);
  harvest_decisions();
}

void Replica::harvest_decisions() {
  host_.for_each_live([this](InstanceId s, ConsensusProcess& stack) {
    if (decided_.count(s) > 0 || committed_live_.count(s) > 0) return;
    if (const auto& d = stack.decision()) decided_.emplace(s, *d);
  });
  try_commit();
  gc_halted();
}

void Replica::gc_halted() {
  // Garbage-collect committed slots whose stacks have halted: the host
  // releases the engines (DEX, underlying consensus, evidence), keeping an
  // echo husk whose wire behaviour is identical, so laggards still receive
  // the identical-broadcast echoes they need. Halt — n−t DECIDE
  // confirmations — guarantees the underlying consensus itself is finished
  // for every correct process, so the engines can go.
  bool any = false;
  for (auto it = committed_live_.begin(); it != committed_live_.end();) {
    ConsensusProcess* stack = host_.find(*it);
    if (stack != nullptr && !stack->halted()) {
      ++it;
      continue;
    }
    if (stack != nullptr) host_.retire(*it);
    it = committed_live_.erase(it);
    any = true;
  }
  if (any) export_live_gauges();
}

void Replica::try_commit() {
  while (true) {
    const auto it = decided_.find(next_slot_);
    if (it == decided_.end()) return;
    const Decision d = it->second;
    decided_.erase(it);

    LogEntry entry;
    entry.slot = next_slot_;
    entry.digest = d.value;
    entry.path = d.path;
    if (d.value != kNoopDigest && committed_digests_.insert(d.value).second) {
      const auto body = bodies_.find(d.value);
      if (body != bodies_.end()) {
        entry.command = body->second;
      } else {
        metrics::inc(m_holes_);
        if (trace::on()) {
          trace::instant("smr", "hole",
                         {.proc = cfg_.self, .instance = next_slot_,
                          .a = d.value});
        }
        DEX_LOG(kWarn, "smr") << "r" << cfg_.self << " slot " << next_slot_
                              << " committed unknown digest " << d.value;
      }
      // Drop from the pending queue if we were going to propose it.
      if (pending_set_.erase(d.value) > 0) {
        for (auto q = pending_.begin(); q != pending_.end(); ++q) {
          if (*q == d.value) {
            pending_.erase(q);
            break;
          }
        }
        metrics::set(m_pending_, static_cast<double>(pending_.size()));
      }
    }
    metrics::inc(m_commits_[static_cast<std::size_t>(d.path)]);
    DEX_LOG_CTX(kInfo, "smr",
                {.proc = cfg_.self,
                 .instance = static_cast<std::int64_t>(next_slot_),
                 .slot = static_cast<std::int64_t>(next_slot_),
                 .path = decision_path_metric_label(d.path)})
        << "committed digest " << d.value;
    const auto meta = meta_.find(next_slot_);
    // Only slots we opened ourselves carry a span begin (open_slot); a slot
    // committed purely from remote traffic gets no smr span.
    if (meta != meta_.end() && trace::on()) {
      trace::span_end("smr", "slot",
                      {.proc = cfg_.self, .instance = next_slot_,
                       .a = d.value, .b = static_cast<std::int64_t>(d.path)});
    }
    if (m_slot_latency_ != nullptr && cfg_.clock && meta != meta_.end()) {
      const SimTime now = cfg_.clock();
      const SimTime dur =
          now >= meta->second.opened_at ? now - meta->second.opened_at : 0;
      m_slot_latency_->observe(static_cast<double>(dur) / 1e6);
    }
    log_.push_back(std::move(entry));
    // Release the slot's digest assignment (a digest this slot carried but
    // did not commit becomes proposable for a later slot). The rest of the
    // meta — notably the proposed flag — persists: late traffic may still
    // activate this slot, and it must not re-propose. The stack itself lives
    // on until it halts — see gc_halted().
    if (meta != meta_.end()) meta->second.assigned.reset();
    committed_live_.insert(next_slot_);
    ++next_slot_;
    host_.set_floor(next_slot_);
    export_live_gauges();
    if (!pending_.empty() && next_slot_ < cfg_.max_slots) {
      propose_open_window();
    }
  }
}

std::vector<Outgoing> Replica::drain() {
  std::vector<Outgoing> out = dissem_outbox_.drain();
  auto more = host_.drain();
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
  return out;
}

std::string Replica::vars_json() const {
  std::string out = "{\"self\":" + std::to_string(cfg_.self);
  out.append(",\"window\":").append(std::to_string(cfg_.window));
  out.append(",\"next_slot\":").append(std::to_string(next_slot_));
  out.append(",\"pending\":").append(std::to_string(pending_.size()));
  out.append(",\"committed\":").append(std::to_string(log_.size()));
  out.append(",\"live_instances\":").append(std::to_string(live_instances()));
  out.append(",\"live_instances_peak\":")
      .append(std::to_string(live_instances_peak()));
  out.append(",\"host\":").append(host_.vars_json());
  out.push_back('}');
  return out;
}

}  // namespace dex::smr
