// Replica — state-machine replication over per-slot DEX consensus instances.
//
// The paper's §1.1 motivation: replicated servers agree on the processing
// order of client requests; with no contention every server proposes the same
// request and DEX commits it in one communication step. Each log slot runs
// one DexStack (instance id = slot). Slots are decided strictly in order.
//
// Flow per slot: when slot s becomes active (s == 0, or slot s-1 decided, or
// traffic for s arrives) a replica with a non-empty pending queue proposes
// its oldest pending digest and broadcasts the command body on the
// dissemination channel. Replicas with empty queues stay quiet — they join
// the slot as soon as any proposer's dissemination hands them a command, so
// liveness needs no filler proposals and an idle system sends nothing. When
// a slot decides a digest whose body is known the command is applied; an
// unknown digest (possible only with Byzantine proposers) commits as a hole,
// so the log never deadlocks.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/condition/pair.hpp"
#include "consensus/dex/dex_stack.hpp"
#include "metrics/metrics.hpp"
#include "sim/actor.hpp"
#include "smr/command.hpp"

namespace dex::smr {

struct ReplicaConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcessId self = kNoProcess;
  std::uint64_t coin_seed = 0x5312u;
  /// Stop opening new slots after this many (benches bound their runs).
  std::size_t max_slots = 64;
  /// Optional metrics scope (smr_* series; also handed to each slot's DEX
  /// stack). Disabled by default.
  metrics::MetricsScope metrics;
  /// Host clock for slot-latency measurement (e.g. [&sim]{ return sim.now(); }).
  /// Latency is only exported when both metrics and clock are provided.
  std::function<SimTime()> clock;
};

/// One committed log entry.
struct LogEntry {
  InstanceId slot = 0;
  Value digest = 0;
  std::optional<Command> command;  // nullopt for no-op or unresolved digest
  DecisionPath path = DecisionPath::kUnderlying;
};

class Replica final : public sim::Actor {
 public:
  Replica(const ReplicaConfig& cfg, std::shared_ptr<const ConditionPair> pair);

  /// Hand a client command to this replica (the host models client broadcast
  /// by calling this on every replica, with per-replica arrival skew).
  void submit(const Command& cmd);

  // sim::Actor
  void start() override;
  void on_packet(ProcessId src, const Message& msg) override;
  [[nodiscard]] std::vector<Outgoing> drain() override;

  [[nodiscard]] const std::vector<LogEntry>& log() const { return log_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] InstanceId next_slot() const { return next_slot_; }

 private:
  struct Slot {
    std::unique_ptr<DexStack> stack;
    bool proposed = false;
    bool committed = false;
    SimTime opened_at = 0;  // host clock when the slot was opened
  };

  /// The condition pair must be rebuilt per slot? No — pairs are stateless;
  /// one shared instance serves every slot.
  Slot& open_slot(InstanceId s);
  void propose_if_ready(InstanceId s);
  void harvest_decisions();
  void try_commit();

  ReplicaConfig cfg_;
  std::shared_ptr<const ConditionPair> pair_;

  std::map<InstanceId, Slot> slots_;
  InstanceId next_slot_ = 0;  // lowest undecided slot
  std::deque<Value> pending_;           // FIFO of digests awaiting commitment
  std::set<Value> pending_set_;
  std::map<Value, Command> bodies_;     // digest → command body
  std::set<Value> committed_digests_;
  std::map<InstanceId, Decision> decided_;  // decided but not yet applied
  std::vector<LogEntry> log_;
  Outbox dissem_outbox_;  // command-body broadcasts

  // Exported series, resolved once at construction (null when disabled).
  // Commit counters are indexed by DecisionPath.
  metrics::Counter* m_commits_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_holes_ = nullptr;
  metrics::Counter* m_submitted_ = nullptr;
  metrics::HistogramMetric* m_slot_latency_ = nullptr;
  metrics::Gauge* m_pending_ = nullptr;
};

}  // namespace dex::smr
