// Replica — state-machine replication over per-slot DEX consensus instances.
//
// The paper's §1.1 motivation: replicated servers agree on the processing
// order of client requests; with no contention every server proposes the same
// request and DEX commits it in one communication step. Each log slot runs
// one DexStack (instance id = slot), multiplexed over this endpoint by a
// ConsensusHost: the host owns the instance table, demultiplexes inbound
// envelopes by slot, and garbage-collects decided slots — once a committed
// slot's stack halts its engines are released (an echo husk with identical
// wire behaviour remains), so a long-running log holds O(window) live
// engine sets instead of one per slot ever.
//
// Slots commit strictly in order; proposing is pipelined. With window W, up
// to W slots at and above the committed prefix run concurrently, each
// carrying a distinct pending digest (W = 1 reproduces the sequential
// propose-when-previous-decides flow byte for byte).
//
// GC point: a committed slot's stack is retired once it reports halted() —
// the protocol's own quiescence signal (n−t DECIDE confirmations, after
// which every correct process can finish from the relayed DECIDEs alone).
// Retiring at commit time would be premature: laggards may still need this
// replica's participation in the underlying-consensus rounds.
//
// Flow per slot: when slot s becomes active (within the window, or traffic
// for s arrives) a replica with a non-empty pending queue proposes a pending
// digest and broadcasts the command body on the dissemination channel.
// Replicas with empty queues stay quiet — they join the slot as soon as any
// proposer's dissemination hands them a command, so liveness needs no filler
// proposals and an idle system sends nothing. When a slot decides a digest
// whose body is known the command is applied; an unknown digest (possible
// only with Byzantine proposers) commits as a hole, so the log never
// deadlocks.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/condition/pair.hpp"
#include "consensus/dex/dex_stack.hpp"
#include "consensus/host.hpp"
#include "metrics/metrics.hpp"
#include "sim/actor.hpp"
#include "smr/command.hpp"

namespace dex::smr {

struct ReplicaConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcessId self = kNoProcess;
  std::uint64_t coin_seed = 0x5312u;
  /// Stop opening new slots after this many (benches bound their runs).
  std::size_t max_slots = 64;
  /// Pipelining window W: up to W slots at and above the committed prefix
  /// run concurrently (propose out of order, commit strictly in order).
  /// W = 1 is the sequential flow.
  std::size_t window = 1;
  /// Optional metrics scope (smr_* series; also handed to each slot's DEX
  /// stack and the instance host). Disabled by default.
  metrics::MetricsScope metrics;
  /// Host clock for slot-latency measurement (e.g. [&sim]{ return sim.now(); }).
  /// Latency is only exported when both metrics and clock are provided.
  std::function<SimTime()> clock;
};

/// One committed log entry.
struct LogEntry {
  InstanceId slot = 0;
  Value digest = 0;
  std::optional<Command> command;  // nullopt for no-op or unresolved digest
  DecisionPath path = DecisionPath::kUnderlying;
};

class Replica final : public sim::Actor {
 public:
  Replica(const ReplicaConfig& cfg, std::shared_ptr<const ConditionPair> pair);

  /// Hand a client command to this replica (the host models client broadcast
  /// by calling this on every replica, with per-replica arrival skew).
  void submit(const Command& cmd);

  // sim::Actor
  void start() override;
  void on_packet(ProcessId src, const Message& msg) override;
  [[nodiscard]] std::vector<Outgoing> drain() override;

  [[nodiscard]] const std::vector<LogEntry>& log() const { return log_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] InstanceId next_slot() const { return next_slot_; }
  /// Currently live (undecided or uncommitted) consensus instances.
  [[nodiscard]] std::size_t live_instances() const { return host_.live_count(); }
  /// Most simultaneously-live instances ever (GC acceptance checks).
  [[nodiscard]] std::size_t live_instances_peak() const {
    return host_.live_high_water();
  }

  /// JSON object for the ops plane's /vars: slot window, queue depths, the
  /// commit log length and the host's instance table. NOT thread-safe — take
  /// snapshots from the replica's own thread (AdminServer::set_var).
  [[nodiscard]] std::string vars_json() const;

 private:
  /// Per-slot bookkeeping the host doesn't carry. The proposed flag persists
  /// past commit (late traffic must not re-trigger a proposal); the digest
  /// assignment is released at commit time.
  struct SlotMeta {
    bool proposed = false;
    std::optional<Value> assigned;  // digest this replica proposed here
    SimTime opened_at = 0;          // host clock when the slot was opened
  };

  /// Open (or find) slot s via the host; stamps opened_at on first open.
  /// Returns nullptr when the host refuses the id (inadmissible).
  ConsensusProcess* open_slot(InstanceId s);
  /// Digest this replica would propose for slot s, honouring the pipelining
  /// mode: W = 1 always offers the oldest pending digest (the sequential
  /// flow); W > 1 offers the oldest digest not already assigned to another
  /// in-flight slot, so concurrent slots carry distinct commands.
  [[nodiscard]] std::optional<Value> digest_for_proposal() const;
  void propose_if_ready(InstanceId s);
  /// Propose into every ready slot of the window [next_slot_, next_slot_+W).
  void propose_open_window();
  void harvest_decisions();
  void try_commit();
  /// Retire committed slots whose stacks have reached protocol quiescence.
  void gc_halted();
  void export_live_gauges();

  ReplicaConfig cfg_;
  std::shared_ptr<const ConditionPair> pair_;

  ConsensusHost host_;
  std::map<InstanceId, SlotMeta> meta_;
  InstanceId next_slot_ = 0;  // lowest undecided slot
  std::deque<Value> pending_;           // FIFO of digests awaiting commitment
  std::set<Value> pending_set_;
  std::map<Value, Command> bodies_;     // digest → command body
  std::set<Value> committed_digests_;
  std::map<InstanceId, Decision> decided_;  // decided but not yet applied
  std::set<InstanceId> committed_live_;  // committed, awaiting halt for GC
  std::vector<LogEntry> log_;
  Outbox dissem_outbox_;  // command-body broadcasts

  // Exported series, resolved once at construction (null when disabled).
  // Commit counters are indexed by DecisionPath.
  metrics::Counter* m_commits_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_holes_ = nullptr;
  metrics::Counter* m_submitted_ = nullptr;
  metrics::HistogramMetric* m_slot_latency_ = nullptr;
  metrics::Gauge* m_pending_ = nullptr;
  metrics::Gauge* m_live_ = nullptr;
  metrics::Gauge* m_live_peak_ = nullptr;
};

}  // namespace dex::smr
