#include "smr/command.hpp"

#include "common/hash.hpp"
#include "common/serde.hpp"

namespace dex::smr {

std::vector<std::byte> Command::to_bytes() const {
  Writer w(op.size() + 16);
  w.u32(client);
  w.u64(seq);
  w.str(op);
  return std::move(w).take();
}

Command Command::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  Command c;
  c.client = r.u32();
  c.seq = r.u64();
  c.op = r.str();
  if (!r.done()) throw DecodeError("trailing bytes in Command");
  return c;
}

Value Command::digest() const {
  const auto bytes = to_bytes();
  auto d = static_cast<Value>(fnv1a64(bytes));
  if (d == kNoopDigest) d = 1;  // keep the no-op digest reserved
  return d;
}

}  // namespace dex::smr
