// Factory for the protocol stacks the evaluation compares (Table 1).
#pragma once

#include <memory>
#include <string>

#include "consensus/process.hpp"
#include "consensus/stack_base.hpp"

namespace dex {

enum class Algorithm {
  kDexFreq,      // DEX with the frequency-based pair (n > 6t)
  kDexPrv,       // DEX with the privileged-value pair (n > 5t)
  kBoscoWeak,    // BOSCO, weakly one-step guarantee regime (n > 5t)
  kBoscoStrong,  // BOSCO, strongly one-step guarantee regime (n > 7t)
  kCrashOneStep, // Brasileiro et al., crash model (n > 3t; UC needs n > 5t)
  kUnderlyingOnly,  // no fast path: propose directly to the underlying consensus
};

const char* algorithm_name(Algorithm a);

/// Smallest n the algorithm's guarantees require at resilience t.
std::size_t algorithm_min_n(Algorithm a, std::size_t t);

/// Builds a full stack. `privileged` is only used by kDexPrv.
std::unique_ptr<ConsensusProcess> make_stack(Algorithm a, const StackConfig& cfg,
                                             Value privileged = 0);

/// Same, with a custom underlying-consensus factory (tests and the
/// zero-degrading-oracle experiments).
std::unique_ptr<ConsensusProcess> make_stack(Algorithm a, const StackConfig& cfg,
                                             Value privileged,
                                             UcFactory uc_factory);

/// A stack that skips every fast path and simply runs the underlying
/// consensus — the "no expedition" baseline.
class UnderlyingOnlyStack final : public StackBase {
 public:
  explicit UnderlyingOnlyStack(const StackConfig& cfg);
  UnderlyingOnlyStack(const StackConfig& cfg, UcFactory uc_factory);

  void propose(Value v) override;
  [[nodiscard]] const std::optional<Decision>& decision() const override {
    return decision_;
  }
  [[nodiscard]] std::uint32_t logical_steps() const override;
  [[nodiscard]] bool halted() const override;
  [[nodiscard]] std::string algorithm() const override { return "underlying-only"; }

 protected:
  void handle_plain(ProcessId, const Message&) override {}
  void handle_idb(const IdbDelivery&) override {}
  void check_uc_decision() override;

 private:
  std::optional<Decision> decision_;
};

}  // namespace dex
