#include "consensus/host.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace dex {

ConsensusHost::ConsensusHost(HostConfig cfg, StackFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {
  DEX_ENSURE(factory_ != nullptr);
  if (cfg_.metrics.enabled()) {
    m_opened_ = cfg_.metrics.counter("host_instances_opened_total");
    m_retired_ = cfg_.metrics.counter("host_instances_retired_total");
    m_dropped_ = cfg_.metrics.counter("host_packets_dropped_total");
    m_live_ = cfg_.metrics.gauge("host_live_instances");
  }
}

bool ConsensusHost::admissible(InstanceId id) const {
  return id < cfg_.max_instances && id <= floor_ + cfg_.admission_window;
}

ConsensusProcess* ConsensusHost::open(InstanceId id) {
  const auto it = instances_.find(id);
  if (it != instances_.end()) return it->second.stack.get();
  if (!admissible(id)) return nullptr;
  auto stack = factory_(id);
  DEX_ENSURE(stack != nullptr);
  ConsensusProcess* raw = stack.get();
  instances_.emplace(id, Entry{std::move(stack), false});
  ++live_count_;
  live_high_water_ = std::max(live_high_water_, live_count_);
  metrics::inc(m_opened_);
  metrics::set(m_live_, static_cast<double>(live_count_));
  if (trace::on()) {
    trace::instant("host", "open",
                   {.proc = raw->self(), .instance = id,
                    .a = static_cast<std::int64_t>(live_count_)});
  }
  return raw;
}

ConsensusProcess* ConsensusHost::find(InstanceId id) {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.stack.get();
}

bool ConsensusHost::route(ProcessId src, const Message& msg) {
  ConsensusProcess* stack = open(msg.instance);
  if (stack == nullptr) {
    ++dropped_;
    metrics::inc(m_dropped_);
    if (trace::on()) {
      trace::instant("host", "drop",
                     {.peer = src, .instance = msg.instance, .tag = msg.tag,
                      .a = static_cast<std::int64_t>(msg.kind)});
    }
    return false;
  }
  stack->on_packet(src, msg);
  return true;
}

std::vector<Outgoing> ConsensusHost::drain() {
  std::vector<Outgoing> out;
  for (auto& [id, entry] : instances_) {
    auto more = entry.stack->drain_outbox();
    out.insert(out.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  }
  return out;
}

std::optional<Decision> ConsensusHost::decision(InstanceId id) const {
  const auto it = instances_.find(id);
  if (it == instances_.end()) return std::nullopt;
  return it->second.stack->decision();
}

void ConsensusHost::retire(InstanceId id) {
  const auto it = instances_.find(id);
  if (it == instances_.end() || it->second.husk) return;
  DEX_ENSURE_MSG(it->second.stack->decision().has_value(),
                 "retiring an undecided instance");
  it->second.stack->release_decided_state();
  it->second.husk = true;
  --live_count_;
  metrics::inc(m_retired_);
  metrics::set(m_live_, static_cast<double>(live_count_));
  if (trace::on()) {
    trace::instant("host", "retire",
                   {.proc = it->second.stack->self(), .instance = id,
                    .a = static_cast<std::int64_t>(live_count_)});
  }
}

void ConsensusHost::for_each_live(
    const std::function<void(InstanceId, ConsensusProcess&)>& fn) {
  for (auto& [id, entry] : instances_) {
    if (!entry.husk) fn(id, *entry.stack);
  }
}

void ConsensusHost::set_floor(InstanceId floor) {
  floor_ = std::max(floor_, floor);
}

std::string ConsensusHost::vars_json(std::size_t max_listed) const {
  std::string out = "{\"floor\":" + std::to_string(floor_);
  out.append(",\"live\":").append(std::to_string(live_count_));
  out.append(",\"live_peak\":").append(std::to_string(live_high_water_));
  out.append(",\"retired\":").append(std::to_string(retired_count()));
  out.append(",\"dropped_packets\":").append(std::to_string(dropped_));
  out.append(",\"instance_count\":").append(std::to_string(instances_.size()));
  out.append(",\"instances\":[");
  // Newest instances are the interesting ones on a long-lived host; skip the
  // committed prefix when the table exceeds the cap.
  std::size_t skip =
      instances_.size() > max_listed ? instances_.size() - max_listed : 0;
  bool first = true;
  for (const auto& [id, entry] : instances_) {
    if (skip > 0) {
      --skip;
      continue;
    }
    const auto decision = entry.stack->decision();
    const char* phase = entry.husk             ? "husk"
                        : !decision.has_value() ? "open"
                        : entry.stack->halted() ? "halted"
                                                : "decided";
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"id\":").append(std::to_string(id));
    out.append(",\"phase\":\"").append(phase).append("\"");
    if (decision.has_value()) {
      out.append(",\"path\":\"")
          .append(decision_path_metric_label(decision->path))
          .append("\"");
    }
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

}  // namespace dex
