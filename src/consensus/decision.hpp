// Decision records with path accounting.
//
// Benches reproduce the paper's step-count claims from these records: which
// mechanism fired (one-step, two-step, underlying fallback) and how many
// rounds the underlying consensus needed.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace dex {

enum class DecisionPath : std::uint8_t {
  kOneStep = 0,     // Figure 1 line 8 — P1(J1) fired
  kTwoStep = 1,     // Figure 1 line 17 — P2(J2) fired
  kUnderlying = 2,  // Figure 1 line 21 — adopted from the underlying consensus
};

inline const char* decision_path_name(DecisionPath p) {
  switch (p) {
    case DecisionPath::kOneStep: return "one-step";
    case DecisionPath::kTwoStep: return "two-step";
    case DecisionPath::kUnderlying: return "underlying";
  }
  return "?";
}

/// Metrics label value for a path (underscored, Prometheus-friendly); the
/// exported series look like dex_decisions_total{path="one_step"}.
inline const char* decision_path_metric_label(DecisionPath p) {
  switch (p) {
    case DecisionPath::kOneStep: return "one_step";
    case DecisionPath::kTwoStep: return "two_step";
    case DecisionPath::kUnderlying: return "underlying";
  }
  return "?";
}

struct Decision {
  Value value = 0;
  DecisionPath path = DecisionPath::kUnderlying;
  /// Rounds the underlying consensus ran before this process decided
  /// (0 for fast-path decisions).
  std::uint32_t uc_rounds = 0;

  bool operator==(const Decision&) const = default;
};

}  // namespace dex
