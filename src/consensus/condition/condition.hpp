// Conditions and condition sequences — the adaptive condition-based
// framework of §2.3/§3.
//
// A condition is a set of input vectors. A condition sequence
// (C_0, C_1, ..., C_t) with C_k ⊇ C_{k+1} captures adaptiveness: C_k is the
// set of inputs for which the fast path is guaranteed when the *actual*
// number of faults is at most k.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "consensus/view.hpp"

namespace dex {

/// A condition: a (possibly huge) set of input vectors, represented by its
/// membership predicate.
class Condition {
 public:
  virtual ~Condition() = default;
  [[nodiscard]] virtual bool contains(const InputVector& input) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// The frequency-based condition C^freq_d = { I | #1st(I) − #2nd(I) > d }.
/// Known to be d-legal [Mostefaoui et al.].
class FreqCondition final : public Condition {
 public:
  explicit FreqCondition(std::size_t d) : d_(d) {}
  [[nodiscard]] bool contains(const InputVector& input) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t d() const { return d_; }

 private:
  std::size_t d_;
};

/// The privileged-value condition C^prv(m)_d = { I | #m(I) > d }. The
/// privileged value m (e.g. Commit in atomic commitment) is known a priori.
class PrivilegedCondition final : public Condition {
 public:
  PrivilegedCondition(Value m, std::size_t d) : m_(m), d_(d) {}
  [[nodiscard]] bool contains(const InputVector& input) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Value privileged_value() const { return m_; }
  [[nodiscard]] std::size_t d() const { return d_; }

 private:
  Value m_;
  std::size_t d_;
};

/// A condition sequence (C_0, ..., C_t). Construction checks the adaptiveness
/// shape only through `max_valid_faults`; the concrete sequences built by the
/// library are monotone by construction (d grows with k).
class ConditionSequence {
 public:
  ConditionSequence() = default;
  explicit ConditionSequence(std::vector<std::shared_ptr<const Condition>> conds)
      : conds_(std::move(conds)) {}

  [[nodiscard]] std::size_t length() const { return conds_.size(); }
  [[nodiscard]] const Condition& at(std::size_t k) const { return *conds_.at(k); }
  [[nodiscard]] bool contains(const InputVector& input, std::size_t k) const {
    return conds_.at(k)->contains(input);
  }

  /// The largest k with I ∈ C_k, or nullopt if I ∉ C_0. Because C_k ⊇ C_{k+1},
  /// the fast path fires iff the actual fault count f ≤ max_valid_faults(I).
  [[nodiscard]] std::optional<std::size_t> max_valid_faults(
      const InputVector& input) const;

 private:
  std::vector<std::shared_ptr<const Condition>> conds_;
};

}  // namespace dex
