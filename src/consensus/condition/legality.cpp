#include "consensus/condition/legality.hpp"

#include <sstream>

#include "consensus/condition/input_gen.hpp"

namespace dex {

LegalityChecker::LegalityChecker(const ConditionPair& pair, Rng rng,
                                 LegalityCheckOptions opts)
    : pair_(pair), rng_(rng), opts_(opts) {}

InputVector LegalityChecker::sample_input() {
  const std::size_t n = pair_.n();
  const InputGenOptions gen{.domain = opts_.domain};
  // Bias toward the shapes the conditions care about, so that samples
  // regularly land inside C1_k / C2_k and the implications get exercised
  // with a true antecedent.
  Value privileged = 0;
  if (const auto* prv = dynamic_cast<const PrivilegedPair*>(&pair_)) {
    privileged = prv->privileged_value();
  }
  const double roll = rng_.next_double();
  if (roll < 0.10) {
    return unanimous_input(n, static_cast<Value>(rng_.next_below(opts_.domain)));
  }
  if (roll < 0.50) {
    // Any feasible margin (margins of exactly n−1 do not exist).
    std::size_t margin = 1 + static_cast<std::size_t>(rng_.next_below(n));
    if (margin == n - 1) margin = n;
    return margin_input(n, margin, privileged, rng_, gen);
  }
  if (roll < 0.80) {
    const auto count = static_cast<std::size_t>(rng_.next_below(n + 1));
    return privileged_input(n, privileged, count, rng_, gen);
  }
  return random_input(n, rng_, gen);
}

std::optional<LegalityViolation> LegalityChecker::check_lt1() {
  const std::size_t t = pair_.t();
  const InputGenOptions gen{.domain = opts_.domain};
  for (std::size_t s = 0; s < opts_.samples_per_criterion; ++s) {
    const auto k = static_cast<std::size_t>(rng_.next_below(t + 1));
    const InputVector input = sample_input();
    if (!pair_.s1().contains(input, k)) continue;
    const View j = perturbed_view(input, k, rng_, 0.5, gen);
    if (!pair_.p1(j)) {
      std::ostringstream os;
      os << "I=" << input.to_string() << " in C1_" << k << ", J=" << j.to_string()
         << " with dist<=k but P1(J) is false";
      return LegalityViolation{"LT1", os.str()};
    }
  }
  return std::nullopt;
}

std::optional<LegalityViolation> LegalityChecker::check_lt2() {
  const std::size_t t = pair_.t();
  const InputGenOptions gen{.domain = opts_.domain};
  for (std::size_t s = 0; s < opts_.samples_per_criterion; ++s) {
    const auto k = static_cast<std::size_t>(rng_.next_below(t + 1));
    const InputVector input = sample_input();
    if (!pair_.s2().contains(input, k)) continue;
    const View j = perturbed_view(input, k, rng_, 0.5, gen);
    if (!pair_.p2(j)) {
      std::ostringstream os;
      os << "I=" << input.to_string() << " in C2_" << k << ", J=" << j.to_string()
         << " with dist<=k but P2(J) is false";
      return LegalityViolation{"LT2", os.str()};
    }
  }
  return std::nullopt;
}

std::optional<LegalityViolation> LegalityChecker::check_la3() {
  const std::size_t t = pair_.t();
  const InputGenOptions gen{.domain = opts_.domain};
  for (std::size_t s = 0; s < opts_.samples_per_criterion; ++s) {
    const InputVector input = sample_input();
    const auto bottoms = static_cast<std::size_t>(rng_.next_below(t + 1));
    const View j = masked_view(input, bottoms, rng_);
    if (j.known_count() == 0 || !pair_.p1(j)) continue;
    // I' differs from I in at most t entries (the Byzantine entries); J' is
    // any view of I' with at most t bottoms.
    const InputVector input2 = mutated_input(input, t, rng_, gen);
    const auto bottoms2 = static_cast<std::size_t>(rng_.next_below(t + 1));
    const View j2 = masked_view(input2, bottoms2, rng_);
    if (j2.known_count() == 0) continue;
    if (pair_.f(j) != pair_.f(j2)) {
      std::ostringstream os;
      os << "P1 holds on J=" << j.to_string() << " (I=" << input.to_string()
         << ") but F(J)=" << pair_.f(j) << " != F(J')=" << pair_.f(j2)
         << " for J'=" << j2.to_string() << " (I'=" << input2.to_string() << ")";
      return LegalityViolation{"LA3", os.str()};
    }
  }
  return std::nullopt;
}

std::optional<LegalityViolation> LegalityChecker::check_la4() {
  const std::size_t t = pair_.t();
  for (std::size_t s = 0; s < opts_.samples_per_criterion; ++s) {
    const InputVector input = sample_input();
    const auto bottoms = static_cast<std::size_t>(rng_.next_below(t + 1));
    const View j = masked_view(input, bottoms, rng_);
    if (j.known_count() == 0 || !pair_.p2(j)) continue;
    // J' is another view of the SAME vector I (identical broadcast gives all
    // processes consistent per-sender values).
    const auto bottoms2 = static_cast<std::size_t>(rng_.next_below(t + 1));
    const View j2 = masked_view(input, bottoms2, rng_);
    if (j2.known_count() == 0) continue;
    if (pair_.f(j) != pair_.f(j2)) {
      std::ostringstream os;
      os << "P2 holds on J=" << j.to_string() << " but F(J)=" << pair_.f(j)
         << " != F(J')=" << pair_.f(j2) << " for sibling view J'=" << j2.to_string()
         << " of I=" << input.to_string();
      return LegalityViolation{"LA4", os.str()};
    }
  }
  return std::nullopt;
}

std::optional<LegalityViolation> LegalityChecker::check_lu5() {
  const std::size_t n = pair_.n();
  const std::size_t t = pair_.t();
  for (std::size_t s = 0; s < opts_.samples_per_criterion; ++s) {
    // Build a view where one value a exceeds t occurrences and every other
    // value stays <= t (the shape arising when all correct processes propose
    // a and only Byzantine entries differ). LU5 demands F(J) = a.
    Value a = static_cast<Value>(rng_.next_below(opts_.domain));
    if (const auto* prv = dynamic_cast<const PrivilegedPair*>(&pair_);
        prv != nullptr && rng_.next_bool(0.5)) {
      a = prv->privileged_value();
    }
    const std::size_t count_a =
        t + 1 + static_cast<std::size_t>(rng_.next_below(n - t));
    View j(n);
    std::size_t filled = 0;
    for (; filled < count_a; ++filled) j.set(filled, a);
    // Spread the remainder so no other value exceeds t; leave up to t ⊥s.
    const auto bottoms = static_cast<std::size_t>(
        rng_.next_below(std::min(t, n - count_a) + 1));
    std::size_t other = 0, used_of_other = 0;
    for (std::size_t i = filled; i < n - bottoms; ++i) {
      Value v = static_cast<Value>(opts_.domain + other);  // distinct from a
      j.set(i, v);
      if (++used_of_other >= t) {
        ++other;
        used_of_other = 0;
      }
    }
    if (pair_.f(j) != a) {
      std::ostringstream os;
      os << "J=" << j.to_string() << " has #" << a << "(J)=" << count_a
         << " > t with all others <= t, but F(J)=" << pair_.f(j);
      return LegalityViolation{"LU5", os.str()};
    }
  }
  return std::nullopt;
}

std::optional<LegalityViolation> LegalityChecker::check_all() {
  if (auto v = check_lt1()) return v;
  if (auto v = check_lt2()) return v;
  if (auto v = check_la3()) return v;
  if (auto v = check_la4()) return v;
  if (auto v = check_lu5()) return v;
  return std::nullopt;
}

}  // namespace dex
