#include "consensus/condition/condition.hpp"

#include <sstream>

namespace dex {

bool FreqCondition::contains(const InputVector& input) const {
  // Single pass over the vector — no View materialization. Hot in the
  // exhaustive input-space sweeps (bench_coverage_exact).
  const FreqStats s = FreqStats::of(input);
  if (s.empty()) return false;
  return s.margin() > d_;
}

std::string FreqCondition::describe() const {
  std::ostringstream os;
  os << "C^freq_" << d_ << " = { I | #1st(I) - #2nd(I) > " << d_ << " }";
  return os.str();
}

bool PrivilegedCondition::contains(const InputVector& input) const {
  // Direct count over the vector: O(n), allocation-free.
  std::size_t c = 0;
  for (const Value v : input.values()) {
    if (v == m_) ++c;
  }
  return c > d_;
}

std::string PrivilegedCondition::describe() const {
  std::ostringstream os;
  os << "C^prv(" << m_ << ")_" << d_ << " = { I | #" << m_ << "(I) > " << d_ << " }";
  return os.str();
}

std::optional<std::size_t> ConditionSequence::max_valid_faults(
    const InputVector& input) const {
  std::optional<std::size_t> best;
  for (std::size_t k = 0; k < conds_.size(); ++k) {
    if (conds_[k]->contains(input)) {
      best = k;
    } else {
      break;  // monotone: C_k ⊇ C_{k+1}
    }
  }
  return best;
}

}  // namespace dex
