// Randomized verification of the legality criteria (§3.2).
//
// A condition-sequence pair is legal when its (P1, P2, F) satisfy LT1, LT2,
// LA3, LA4 and LU5. The paper proves these analytically for P_freq and P_prv
// (Theorems 1 and 2); this checker searches for counterexamples by sampling,
// which both property-tests the implementations and lets users sanity-check
// custom pairs before plugging them into DEX.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "consensus/condition/pair.hpp"

namespace dex {

/// A found counterexample, with enough context to reproduce it.
struct LegalityViolation {
  std::string criterion;  // "LT1", "LT2", "LA3", "LA4", "LU5"
  std::string detail;
};

struct LegalityCheckOptions {
  std::size_t samples_per_criterion = 2000;
  std::size_t domain = 6;
};

/// Samples adversarial (I, J, J', k) constellations per criterion and checks
/// the pair's predicates against them.
class LegalityChecker {
 public:
  LegalityChecker(const ConditionPair& pair, Rng rng,
                  LegalityCheckOptions opts = {});

  /// Each returns the first violation found, or nullopt.
  std::optional<LegalityViolation> check_lt1();
  std::optional<LegalityViolation> check_lt2();
  std::optional<LegalityViolation> check_la3();
  std::optional<LegalityViolation> check_la4();
  std::optional<LegalityViolation> check_lu5();

  /// Runs all five; returns the first violation, or nullopt if legal as far
  /// as sampling can tell.
  std::optional<LegalityViolation> check_all();

 private:
  /// Samples an input vector biased toward condition membership (mixes
  /// margin/privileged/random shapes so both pairs get meaningful coverage).
  InputVector sample_input();

  const ConditionPair& pair_;
  Rng rng_;
  LegalityCheckOptions opts_;
};

}  // namespace dex
