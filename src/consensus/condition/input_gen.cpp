#include "consensus/condition/input_gen.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dex {

InputVector random_input(std::size_t n, Rng& rng, const InputGenOptions& opts) {
  DEX_ENSURE(opts.domain >= 1);
  std::vector<Value> v(n);
  for (auto& e : v) e = static_cast<Value>(rng.next_below(opts.domain));
  return InputVector(std::move(v));
}

InputVector unanimous_input(std::size_t n, Value v) {
  return InputVector::uniform(n, v);
}

InputVector margin_input(std::size_t n, std::size_t margin, Value top, Rng& rng,
                         const InputGenOptions& opts) {
  DEX_ENSURE_MSG(margin >= 1 && margin <= n, "margin must be in [1, n]");
  // A margin of exactly n−1 cannot exist: if the top value fills n−1 entries
  // the single remaining entry forms a runner-up of count 1.
  DEX_ENSURE_MSG(margin != n - 1 || n == 1, "margin n-1 is infeasible");
  DEX_ENSURE(opts.domain >= 3);

  if (margin == n) return unanimous_input(n, top);

  // Two-party contested shape: c1 = floor((n+m)/2) entries of `top`,
  // c2 = c1 − m of a runner-up, and at most one filler entry of a third value
  // (needs c2 >= 1, guaranteed by margin <= n−2).
  const std::size_t c1 = (n + margin) / 2;
  const std::size_t c2 = c1 - margin;
  const std::size_t fill = n - c1 - c2;
  DEX_ENSURE(fill <= 1);

  // Runner-up and filler values distinct from `top` and from each other.
  Value runner = top;
  while (runner == top) runner = static_cast<Value>(rng.next_below(opts.domain));
  Value filler = top;
  while (filler == top || filler == runner) {
    filler = static_cast<Value>(rng.next_below(opts.domain));
  }

  std::vector<Value> v;
  v.reserve(n);
  v.insert(v.end(), c1, top);
  v.insert(v.end(), c2, runner);
  v.insert(v.end(), fill, filler);
  rng.shuffle(v);
  return InputVector(std::move(v));
}

InputVector privileged_input(std::size_t n, Value m, std::size_t count_m, Rng& rng,
                             const InputGenOptions& opts) {
  DEX_ENSURE(count_m <= n);
  DEX_ENSURE(opts.domain >= 2);
  std::vector<Value> v;
  v.reserve(n);
  v.insert(v.end(), count_m, m);
  // Round-robin over the domain excluding m; only #m matters to C^prv.
  std::size_t next = 0;
  while (v.size() < n) {
    auto candidate = static_cast<Value>(next % opts.domain);
    ++next;
    if (candidate == m) continue;
    v.push_back(candidate);
  }
  rng.shuffle(v);
  return InputVector(std::move(v));
}

InputVector split_input(std::size_t n, Value a, std::size_t count_a, Value b) {
  DEX_ENSURE(count_a <= n);
  DEX_ENSURE(a != b || count_a == n);
  std::vector<Value> v;
  v.reserve(n);
  v.insert(v.end(), count_a, a);
  v.insert(v.end(), n - count_a, b);
  return InputVector(std::move(v));
}

View perturbed_view(const InputVector& input, std::size_t perturb, Rng& rng,
                    double bottom_bias, const InputGenOptions& opts) {
  View j = input.as_view();
  if (perturb == 0) return j;
  std::vector<std::size_t> idx(input.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  const std::size_t count =
      static_cast<std::size_t>(rng.next_below(std::min(perturb, input.size()) + 1));
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.next_bool(bottom_bias)) {
      j.clear(idx[i]);
    } else {
      j.set(idx[i], static_cast<Value>(rng.next_below(opts.domain)));
    }
  }
  return j;
}

View masked_view(const InputVector& input, std::size_t bottoms, Rng& rng) {
  DEX_ENSURE(bottoms <= input.size());
  View j = input.as_view();
  std::vector<std::size_t> idx(input.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  for (std::size_t i = 0; i < bottoms; ++i) j.clear(idx[i]);
  return j;
}

InputVector mutated_input(const InputVector& input, std::size_t changes, Rng& rng,
                          const InputGenOptions& opts) {
  std::vector<Value> v = input.values();
  std::vector<std::size_t> idx(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  const std::size_t count =
      static_cast<std::size_t>(rng.next_below(std::min(changes, v.size()) + 1));
  for (std::size_t i = 0; i < count; ++i) {
    v[idx[i]] = static_cast<Value>(rng.next_below(opts.domain));
  }
  return InputVector(std::move(v));
}

}  // namespace dex
