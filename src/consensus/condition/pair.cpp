#include "consensus/condition/pair.hpp"

#include "common/assert.hpp"

namespace dex {

ConditionPair::ConditionPair(std::size_t n, std::size_t t) : n_(n), t_(t) {
  DEX_ENSURE_MSG(n >= 1, "need at least one process");
}

void ConditionPair::set_sequences(ConditionSequence s1, ConditionSequence s2) {
  s1_ = std::move(s1);
  s2_ = std::move(s2);
}

namespace {
/// Builds (C_{base+step*0}, ..., C_{base+step*t}) for a condition factory.
template <typename MakeCond>
ConditionSequence build_sequence(std::size_t t, MakeCond&& make) {
  std::vector<std::shared_ptr<const Condition>> conds;
  conds.reserve(t + 1);
  for (std::size_t k = 0; k <= t; ++k) conds.push_back(make(k));
  return ConditionSequence(std::move(conds));
}
}  // namespace

FrequencyPair::FrequencyPair(std::size_t n, std::size_t t) : ConditionPair(n, t) {
  DEX_ENSURE_MSG(n >= min_processes(t), "frequency pair requires n > 6t");
  set_sequences(
      build_sequence(t,
                     [&](std::size_t k) {
                       return std::make_shared<const FreqCondition>(4 * t + 2 * k);
                     }),
      build_sequence(t, [&](std::size_t k) {
        return std::make_shared<const FreqCondition>(2 * t + 2 * k);
      }));
}

// p1/p2/f read the view's incrementally maintained stats: O(1) and
// allocation-free per evaluation, which DEX performs on every reception
// once |J| ≥ n−t.
bool FrequencyPair::p1(const View& j) const {
  const FreqStats& s = j.freq();
  return !s.empty() && s.margin() > 4 * t_;
}

bool FrequencyPair::p2(const View& j) const {
  const FreqStats& s = j.freq();
  return !s.empty() && s.margin() > 2 * t_;
}

Value FrequencyPair::f(const View& j) const {
  const FreqStats& s = j.freq();
  DEX_ENSURE_MSG(!s.empty(), "F is undefined on the all-⊥ view");
  return *s.first();
}

PrivilegedPair::PrivilegedPair(std::size_t n, std::size_t t, Value privileged)
    : ConditionPair(n, t), m_(privileged) {
  DEX_ENSURE_MSG(n >= min_processes(t), "privileged pair requires n > 5t");
  set_sequences(
      build_sequence(t,
                     [&](std::size_t k) {
                       return std::make_shared<const PrivilegedCondition>(m_, 3 * t + k);
                     }),
      build_sequence(t, [&](std::size_t k) {
        return std::make_shared<const PrivilegedCondition>(m_, 2 * t + k);
      }));
}

bool PrivilegedPair::p1(const View& j) const { return j.count_of(m_) > 3 * t_; }

bool PrivilegedPair::p2(const View& j) const { return j.count_of(m_) > 2 * t_; }

Value PrivilegedPair::f(const View& j) const {
  if (j.count_of(m_) > t_) return m_;
  const FreqStats& s = j.freq();
  DEX_ENSURE_MSG(!s.empty(), "F is undefined on the all-⊥ view");
  return *s.first();
}

std::shared_ptr<const ConditionPair> make_frequency_pair(std::size_t n,
                                                         std::size_t t) {
  return std::make_shared<const FrequencyPair>(n, t);
}

std::shared_ptr<const ConditionPair> make_privileged_pair(std::size_t n,
                                                          std::size_t t,
                                                          Value privileged) {
  return std::make_shared<const PrivilegedPair>(n, t, privileged);
}

}  // namespace dex
