#include "consensus/condition/analytics.hpp"

#include "common/assert.hpp"

namespace dex {

CoverageCurve estimate_coverage(const ConditionSequence& seq, const InputSource& source,
                                std::size_t samples, Rng& rng) {
  CoverageCurve curve;
  curve.coverage.assign(seq.length(), 0.0);
  if (samples == 0) return curve;
  std::vector<std::size_t> hits(seq.length(), 0);
  for (std::size_t s = 0; s < samples; ++s) {
    const InputVector input = source(rng);
    for (std::size_t k = 0; k < seq.length(); ++k) {
      if (seq.contains(input, k)) {
        ++hits[k];
      } else {
        break;  // monotone sequence: containment fails for all larger k too
      }
    }
  }
  for (std::size_t k = 0; k < seq.length(); ++k) {
    curve.coverage[k] = static_cast<double>(hits[k]) / static_cast<double>(samples);
  }
  return curve;
}

PairCoverage estimate_pair_coverage(const ConditionPair& pair, const InputSource& source,
                                    std::size_t samples, Rng& rng) {
  PairCoverage pc;
  pc.one_step = estimate_coverage(pair.s1(), source, samples, rng);
  pc.two_step = estimate_coverage(pair.s2(), source, samples, rng);
  return pc;
}

InputSource skewed_source(std::size_t n, double p_common, Value common_value,
                          std::size_t domain) {
  return [=](Rng& rng) {
    std::vector<Value> v(n);
    for (auto& e : v) {
      e = rng.next_bool(p_common) ? common_value
                                  : static_cast<Value>(rng.next_below(domain));
    }
    return InputVector(std::move(v));
  };
}

void enumerate_inputs(std::size_t n, std::size_t domain,
                      const std::function<void(const InputVector&)>& fn) {
  DEX_ENSURE(domain >= 1);
  double total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= static_cast<double>(domain);
  DEX_ENSURE_MSG(total <= 50e6, "input space too large to enumerate");

  std::vector<Value> v(n, 0);
  InputVector input(v);
  for (;;) {
    fn(input);
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < n) {
      if (static_cast<std::size_t>(++input[pos]) < domain) break;
      input[pos] = 0;
      ++pos;
    }
    if (pos == n) return;
  }
}

CoverageCurve exact_coverage(const ConditionSequence& seq, std::size_t n,
                             std::size_t domain) {
  CoverageCurve curve;
  curve.coverage.assign(seq.length(), 0.0);
  std::vector<std::uint64_t> hits(seq.length(), 0);
  std::uint64_t total = 0;
  enumerate_inputs(n, domain, [&](const InputVector& input) {
    ++total;
    for (std::size_t k = 0; k < seq.length(); ++k) {
      if (seq.contains(input, k)) {
        ++hits[k];
      } else {
        break;
      }
    }
  });
  for (std::size_t k = 0; k < seq.length(); ++k) {
    curve.coverage[k] =
        static_cast<double>(hits[k]) / static_cast<double>(total);
  }
  return curve;
}

double exact_fraction(std::size_t n, std::size_t domain,
                      const std::function<bool(const InputVector&)>& pred) {
  std::uint64_t hits = 0, total = 0;
  enumerate_inputs(n, domain, [&](const InputVector& input) {
    ++total;
    if (pred(input)) ++hits;
  });
  return static_cast<double>(hits) / static_cast<double>(total);
}

InputSource uniform_source(std::size_t n, std::size_t domain) {
  return [=](Rng& rng) {
    std::vector<Value> v(n);
    for (auto& e : v) e = static_cast<Value>(rng.next_below(domain));
    return InputVector(std::move(v));
  };
}

InputSource binary_contention_source(std::size_t n, double p_a, Value a, Value b) {
  return [=](Rng& rng) {
    std::vector<Value> v(n);
    for (auto& e : v) e = rng.next_bool(p_a) ? a : b;
    return InputVector(std::move(v));
  };
}

}  // namespace dex
