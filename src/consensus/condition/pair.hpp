// Condition-sequence pairs (S1, S2) and their associated decision machinery
// (P1, P2, F) — §2.4 and §3.2-3.4.
//
// S1 identifies inputs that allow a ONE-step decision and S2 inputs that
// allow a TWO-step decision, both adaptively in the actual fault count k.
// A pair is *legal* when predicates P1, P2 and selection function F exist
// satisfying LT1, LT2, LA3, LA4 and LU5; the two concrete pairs here are the
// paper's Theorems 1 and 2.
#pragma once

#include <memory>
#include <string>

#include "consensus/condition/condition.hpp"
#include "consensus/view.hpp"

namespace dex {

/// A legal condition-sequence pair plus its (P1, P2, F) instantiation.
/// Engines evaluate only p1/p2/f on views; the sequences s1/s2 exist for
/// analytics and for verifying the adaptiveness guarantees in tests.
class ConditionPair {
 public:
  /// n = number of processes, t = resilience bound. Concrete pairs check
  /// n >= min_processes(t) at construction.
  ConditionPair(std::size_t n, std::size_t t);
  virtual ~ConditionPair() = default;

  ConditionPair(const ConditionPair&) = delete;
  ConditionPair& operator=(const ConditionPair&) = delete;

  /// P1(J): the view J justifies deciding F(J) in one communication step.
  [[nodiscard]] virtual bool p1(const View& j) const = 0;
  /// P2(J): the view J justifies deciding F(J) in two communication steps.
  [[nodiscard]] virtual bool p2(const View& j) const = 0;
  /// F(J): the decision value extracted from J. Requires |J| > 0.
  [[nodiscard]] virtual Value f(const View& j) const = 0;

  /// The one-step condition sequence S1 = (C1_0, ..., C1_t).
  [[nodiscard]] const ConditionSequence& s1() const { return s1_; }
  /// The two-step condition sequence S2 = (C2_0, ..., C2_t).
  [[nodiscard]] const ConditionSequence& s2() const { return s2_; }

  /// Smallest n for which this pair is meaningful at resilience t.
  [[nodiscard]] virtual std::size_t min_processes(std::size_t t) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t t() const { return t_; }

 protected:
  void set_sequences(ConditionSequence s1, ConditionSequence s2);

  std::size_t n_;
  std::size_t t_;

 private:
  ConditionSequence s1_;
  ConditionSequence s2_;
};

/// Frequency-based pair P_freq (§3.3, Theorem 1):
///   C1_k = C^freq_{4t+2k},  C2_k = C^freq_{2t+2k}
///   P1(J) ≡ margin(J) > 4t,  P2(J) ≡ margin(J) > 2t,  F(J) = 1st(J).
/// Requires n > 6t.
class FrequencyPair final : public ConditionPair {
 public:
  FrequencyPair(std::size_t n, std::size_t t);

  [[nodiscard]] bool p1(const View& j) const override;
  [[nodiscard]] bool p2(const View& j) const override;
  [[nodiscard]] Value f(const View& j) const override;
  [[nodiscard]] std::size_t min_processes(std::size_t t) const override {
    return 6 * t + 1;
  }
  [[nodiscard]] std::string name() const override { return "freq"; }
};

/// Privileged-value pair P_prv (§3.4, Theorem 2) for privileged value m:
///   C1_k = C^prv(m)_{3t+k},  C2_k = C^prv(m)_{2t+k}
///   P1(J) ≡ #m(J) > 3t,  P2(J) ≡ #m(J) > 2t,
///   F(J) = m if #m(J) > t, else the most frequent non-⊥ value of J.
/// Requires n > 5t.
class PrivilegedPair final : public ConditionPair {
 public:
  PrivilegedPair(std::size_t n, std::size_t t, Value privileged);

  [[nodiscard]] bool p1(const View& j) const override;
  [[nodiscard]] bool p2(const View& j) const override;
  [[nodiscard]] Value f(const View& j) const override;
  [[nodiscard]] std::size_t min_processes(std::size_t t) const override {
    return 5 * t + 1;
  }
  [[nodiscard]] std::string name() const override { return "prv"; }
  [[nodiscard]] Value privileged_value() const { return m_; }

 private:
  Value m_;
};

/// Convenience factories returning shared ownership (engines and analytics
/// share pairs freely).
std::shared_ptr<const ConditionPair> make_frequency_pair(std::size_t n, std::size_t t);
std::shared_ptr<const ConditionPair> make_privileged_pair(std::size_t n, std::size_t t,
                                                          Value privileged);

}  // namespace dex
