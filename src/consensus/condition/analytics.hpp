// Monte-Carlo condition-coverage analytics.
//
// Quantifies the paper's adaptiveness claim: for a given input distribution,
// what fraction of inputs lies inside C_k for each k? Fewer actual faults
// (smaller k) means a larger condition and thus more inputs on the fast path.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "consensus/condition/condition.hpp"
#include "consensus/condition/pair.hpp"

namespace dex {

/// Draws input vectors from some distribution (workload model).
using InputSource = std::function<InputVector(Rng&)>;

/// coverage[k] ≈ P(I ∈ C_k) under the given source.
struct CoverageCurve {
  std::vector<double> coverage;
};

CoverageCurve estimate_coverage(const ConditionSequence& seq, const InputSource& source,
                                std::size_t samples, Rng& rng);

/// Coverage of both sequences of a pair under one source.
struct PairCoverage {
  CoverageCurve one_step;   // S1: P(I ∈ C1_k)
  CoverageCurve two_step;   // S2: P(I ∈ C2_k)
};

PairCoverage estimate_pair_coverage(const ConditionPair& pair, const InputSource& source,
                                    std::size_t samples, Rng& rng);

/// Standard workload models used across benches.
/// Each process independently proposes the "common" value with probability
/// `p_common`, otherwise a uniform value from the domain. p_common → 1 models
/// the contention-free replicated-state-machine case from §1.1.
InputSource skewed_source(std::size_t n, double p_common, Value common_value,
                          std::size_t domain);

/// Uniformly random proposals over the domain.
InputSource uniform_source(std::size_t n, std::size_t domain);

/// Enumerates ALL input vectors in {0..domain-1}^n and invokes fn on each.
/// domain^n must stay laptop-sized (the caller's responsibility; the function
/// refuses more than ~50M vectors).
void enumerate_inputs(std::size_t n, std::size_t domain,
                      const std::function<void(const InputVector&)>& fn);

/// Exact coverage |{I : I ∈ C_k}| / domain^n for each k, by enumeration.
CoverageCurve exact_coverage(const ConditionSequence& seq, std::size_t n,
                             std::size_t domain);

/// Exact fraction of the input space for which a predicate holds.
double exact_fraction(std::size_t n, std::size_t domain,
                      const std::function<bool(const InputVector&)>& pred);

/// Exactly two competing values; `p_a` is the per-process probability of
/// proposing a. Models binary contention (e.g. two racing client requests).
InputSource binary_contention_source(std::size_t n, double p_a, Value a, Value b);

}  // namespace dex
