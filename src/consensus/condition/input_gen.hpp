// Input-vector generators used by property tests, the legality checker and
// the evaluation benches. Each generator produces inputs with a controlled
// relationship to the paper's conditions (exact frequency margin, exact
// privileged-value count, ...), which is what lets benches sweep "how good is
// the input" as an axis.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "consensus/view.hpp"

namespace dex {

/// All generators draw non-privileged values from [0, domain).
struct InputGenOptions {
  std::size_t domain = 8;
};

/// Uniformly random entries.
InputVector random_input(std::size_t n, Rng& rng, const InputGenOptions& opts = {});

/// All entries equal to v.
InputVector unanimous_input(std::size_t n, Value v);

/// An input whose frequency margin (#1st − #2nd) is exactly `margin`
/// (margin in [1, n]; margin == n means unanimous). The most frequent value
/// is `top`, positions are shuffled. The runner-up and filler values are
/// drawn from the domain excluding `top`.
InputVector margin_input(std::size_t n, std::size_t margin, Value top, Rng& rng,
                         const InputGenOptions& opts = {});

/// An input where the privileged value m appears exactly `count_m` times and
/// no other value reaches count_m (so analytics on C^prv are exact). Requires
/// a domain large enough to spread the remaining entries.
InputVector privileged_input(std::size_t n, Value m, std::size_t count_m, Rng& rng,
                             const InputGenOptions& opts = {});

/// Exactly `count_a` entries of value a, the rest value b (a two-value split —
/// the adversarial shape for frequency conditions).
InputVector split_input(std::size_t n, Value a, std::size_t count_a, Value b);

/// Derives a view from `input` by replacing up to `perturb` entries: each
/// chosen entry independently becomes ⊥ (probability bottom_bias) or a random
/// value. dist(view, input) <= perturb and the view has <= perturb ⊥ entries.
View perturbed_view(const InputVector& input, std::size_t perturb, Rng& rng,
                    double bottom_bias = 0.5, const InputGenOptions& opts = {});

/// Derives a view from `input` by ⊥-ing exactly `bottoms` random entries
/// (a view J with J ≤ I and |J| = n − bottoms).
View masked_view(const InputVector& input, std::size_t bottoms, Rng& rng);

/// Changes up to `changes` random entries of `input` to random other values
/// (used to build I' with dist(I, I') <= t for LA3 checks).
InputVector mutated_input(const InputVector& input, std::size_t changes, Rng& rng,
                          const InputGenOptions& opts = {});

}  // namespace dex
