#include "consensus/crash/onestep_crash.hpp"

#include "common/assert.hpp"

namespace dex {

OneStepCrashEngine::OneStepCrashEngine(std::size_t n, std::size_t t, ProcessId self,
                                       InstanceId instance, UnderlyingConsensus* uc,
                                       Outbox* outbox)
    : n_(n),
      t_(t),
      self_(self),
      instance_(instance),
      uc_(uc),
      outbox_(outbox),
      props_(n) {
  DEX_ENSURE(uc != nullptr && outbox != nullptr);
  DEX_ENSURE(self >= 0 && static_cast<std::size_t>(self) < n);
  DEX_ENSURE_MSG(n > 3 * t, "one-step crash consensus requires n > 3t");
}

void OneStepCrashEngine::propose(Value v) {
  if (started_) return;
  started_ = true;
  my_value_ = v;
  props_.set(static_cast<std::size_t>(self_), v);

  Message m;
  m.kind = MsgKind::kPlain;
  m.instance = instance_;
  m.tag = chan::kCrashProp;
  m.payload = ValuePayload{v}.to_bytes();
  outbox_->broadcast(std::move(m));
  evaluate_once();
}

void OneStepCrashEngine::on_prop(ProcessId src, Value v) {
  if (src < 0 || static_cast<std::size_t>(src) >= n_) return;
  const auto idx = static_cast<std::size_t>(src);
  if (props_.has(idx)) return;
  props_.set(idx, v);
  evaluate_once();
}

void OneStepCrashEngine::evaluate_once() {
  if (evaluated_ || !started_ || props_.known_count() < n_ - t_) return;
  evaluated_ = true;

  const FreqStats& s = props_.freq();
  if (!s.empty() && s.first_count() >= n_ - t_) {
    // All n−t received proposals agree.
    decision_ = Decision{*s.first(), DecisionPath::kOneStep, 0};
  }
  Value prop = my_value_;
  if (!s.empty() && s.first_count() >= n_ - 2 * t_) prop = *s.first();
  uc_->propose(prop);
}

void OneStepCrashEngine::on_uc_decided(Value v, std::uint32_t uc_rounds) {
  if (!decision_.has_value()) {
    decision_ = Decision{v, DecisionPath::kUnderlying, uc_rounds};
  }
}

CrashStack::CrashStack(const StackConfig& cfg)
    : CrashStack(cfg, default_uc_factory()) {}

CrashStack::CrashStack(const StackConfig& cfg, UcFactory uc_factory)
    : StackBase(cfg, std::move(uc_factory)) {
  engine_ = std::make_unique<OneStepCrashEngine>(cfg_.n, cfg_.t, cfg_.self,
                                                 cfg_.instance, uc_.get(), &outbox_);
}

void CrashStack::handle_plain(ProcessId src, const Message& msg) {
  if (chan::channel(msg.tag) != chan::kCrashProp) return;
  try {
    engine_->on_prop(src, ValuePayload::from_bytes(msg.payload).v);
  } catch (const DecodeError&) {
  }
}

void CrashStack::check_uc_decision() {
  if (uc_decision_seen_) return;
  if (const auto d = uc_->decision()) {
    uc_decision_seen_ = true;
    engine_->on_uc_decided(*d, uc_->rounds_used());
  }
}

std::uint32_t CrashStack::logical_steps() const {
  const auto& d = engine_->decision();
  if (!d.has_value()) return 0;
  switch (d->path) {
    case DecisionPath::kOneStep: return 1;
    case DecisionPath::kTwoStep: return 2;  // unreachable
    case DecisionPath::kUnderlying: return 1 + uc_->logical_steps();
  }
  return 0;
}

bool CrashStack::halted() const {
  return engine_->decision().has_value() && uc_->halted();
}

}  // namespace dex
