// One-step consensus for the CRASH failure model, after Brasileiro et al.
// ("Consensus in One Communication Step", 2001) — the Table 1 row for the
// crash-model ancestors of DEX.
//
//   upon Propose(v):
//     broadcast ⟨PROP, v⟩
//     wait until n−t PROP messages received          (evaluated ONCE)
//     if all n−t carry the same w → Decide(w)                        (1 step)
//     if at least n−2t carry the same w → v := w
//     UnderlyingConsensus.propose(v)
//
// Correct against crash faults with n > 3t. A Byzantine process can break
// its agreement (equivocating on the PROP channel splits one-step deciders
// from the fallback) — the library keeps this engine for the evaluation
// benches, which run it under crash-fault injection only, exactly as the
// model row in Table 1 prescribes. The shipped underlying consensus requires
// n > 5t, so bench configurations use that bound.
#pragma once

#include <memory>
#include <optional>

#include "consensus/decision.hpp"
#include "consensus/stack_base.hpp"
#include "consensus/view.hpp"

namespace dex {

class OneStepCrashEngine {
 public:
  OneStepCrashEngine(std::size_t n, std::size_t t, ProcessId self,
                     InstanceId instance, UnderlyingConsensus* uc, Outbox* outbox);

  void propose(Value v);
  void on_prop(ProcessId src, Value v);
  void on_uc_decided(Value v, std::uint32_t uc_rounds);

  [[nodiscard]] const std::optional<Decision>& decision() const { return decision_; }
  [[nodiscard]] const View& props() const { return props_; }

 private:
  void evaluate_once();

  std::size_t n_;
  std::size_t t_;
  ProcessId self_;
  InstanceId instance_;
  UnderlyingConsensus* uc_;
  Outbox* outbox_;

  bool started_ = false;
  bool evaluated_ = false;
  Value my_value_ = 0;
  View props_;
  std::optional<Decision> decision_;
};

class CrashStack final : public StackBase {
 public:
  explicit CrashStack(const StackConfig& cfg);
  CrashStack(const StackConfig& cfg, UcFactory uc_factory);

  void propose(Value v) override { engine_->propose(v); }
  [[nodiscard]] const std::optional<Decision>& decision() const override {
    return engine_->decision();
  }
  [[nodiscard]] std::uint32_t logical_steps() const override;
  [[nodiscard]] bool halted() const override;
  [[nodiscard]] std::string algorithm() const override { return "crash-onestep"; }

  [[nodiscard]] OneStepCrashEngine& engine() { return *engine_; }

 protected:
  void handle_plain(ProcessId src, const Message& msg) override;
  void handle_idb(const IdbDelivery&) override {}
  void check_uc_decision() override;

 private:
  std::unique_ptr<OneStepCrashEngine> engine_;
  bool uc_decision_seen_ = false;
};

}  // namespace dex
