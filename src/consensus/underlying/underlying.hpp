// The underlying consensus primitive assumed by the paper (§2.2).
//
// DEX (and the BOSCO / crash baselines) fall back to a consensus that
// guarantees Termination, Agreement and Unanimity but makes no timing
// promises — exactly the abstraction the paper assumes. The library ships
// two implementations:
//   * RandomizedConsensus — a real message-passing protocol (randomized.hpp)
//   * OracleConsensus     — a host-coordinated test double (oracle.hpp)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "consensus/idb/idb_engine.hpp"
#include "consensus/message.hpp"

namespace dex {

class UnderlyingConsensus {
 public:
  virtual ~UnderlyingConsensus() = default;

  /// UC_propose(v). Called at most once per instance by the host protocol.
  virtual void propose(Value v) = 0;

  /// Feed a plain-channel message addressed to the underlying consensus
  /// (channel chan::kUcDecide for the shipped implementation).
  virtual void on_plain(ProcessId src, const Message& msg) = 0;

  /// Feed an identical-broadcast delivery on channel chan::kUcPhase.
  virtual void on_idb(const IdbDelivery& delivery) = 0;

  /// UC_decide(v): set once the primitive has decided.
  [[nodiscard]] virtual std::optional<Value> decision() const = 0;

  /// Rounds executed up to the decision (0 if undecided / not round-based).
  [[nodiscard]] virtual std::uint32_t rounds_used() const = 0;

  /// Plain communication steps contributed by this primitive up to its
  /// decision (used for the benches' logical step accounting).
  [[nodiscard]] virtual std::uint32_t logical_steps() const = 0;

  /// True once the primitive will produce no further messages (safe to stop
  /// pumping this process).
  [[nodiscard]] virtual bool halted() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace dex
