// Common-coin abstraction for the randomized underlying consensus.
//
// The coin returns a process *index* for a round; a process then adopts the
// round-1 estimate it Id-delivered from that index (identical broadcast makes
// the adopted value consistent across every process that has it). A shared
// seed therefore yields a common coin with no shared state and no crypto —
// this is the library's documented substitution for a threshold-signature
// common-coin scheme (see DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dex {

class CoinSource {
 public:
  virtual ~CoinSource() = default;
  /// The process index suggested for (instance, round). For a common coin
  /// this must be identical at every correct process.
  [[nodiscard]] virtual ProcessId pick_index(InstanceId instance,
                                             std::uint32_t round) const = 0;
};

/// Deterministic pseudorandom index from (seed, instance, round): every
/// process constructed with the same seed computes the same index. Expected
/// O(1) extra rounds once the network has quiesced.
class SeededCommonCoin final : public CoinSource {
 public:
  SeededCommonCoin(std::uint64_t seed, std::size_t n);
  [[nodiscard]] ProcessId pick_index(InstanceId instance,
                                     std::uint32_t round) const override;

 private:
  std::uint64_t seed_;
  std::size_t n_;
};

/// Independent per-process coin (no shared seed). Termination is still
/// almost-sure but the expected round count is exponential in n — provided
/// for completeness and for demonstrating why common coins matter.
class LocalCoin final : public CoinSource {
 public:
  LocalCoin(std::uint64_t seed, std::size_t n);
  [[nodiscard]] ProcessId pick_index(InstanceId instance,
                                     std::uint32_t round) const override;

 private:
  mutable Rng rng_;
  std::size_t n_;
};

std::shared_ptr<const CoinSource> make_common_coin(std::uint64_t seed, std::size_t n);
std::shared_ptr<const CoinSource> make_local_coin(std::uint64_t seed, std::size_t n);

}  // namespace dex
