// OracleConsensus — a host-coordinated test double for the underlying
// consensus primitive.
//
// Unit tests of the DEX/BOSCO state machines want an underlying consensus
// with scriptable timing and trivially verifiable agreement. OracleConsensus
// forwards proposals to an OracleHub shared by all processes of an instance;
// once the hub has proposals from `quorum` distinct processes it fixes the
// decision (the most frequent proposal, largest-value tie-break — which
// satisfies Unanimity because correct processes dominate any quorum) and the
// host delivers it to every process, with whatever delay it likes.
//
// This is NOT a distributed protocol: it exists so tests can isolate the
// paper's algorithm from the fallback's message traffic. Production stacks
// use RandomizedConsensus.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/underlying/underlying.hpp"

namespace dex {

class OracleHub {
 public:
  /// quorum: proposals needed before the decision is fixed (use n - t).
  explicit OracleHub(std::size_t quorum) : quorum_(quorum) {}

  /// Ask to be notified (synchronously, from whatever context calls
  /// submit()) when the decision fixes. The host forwards to processes with
  /// its own scheduling/delays.
  void on_decision(std::function<void(Value)> cb) { callbacks_.push_back(std::move(cb)); }

  void submit(ProcessId from, Value v);

  [[nodiscard]] std::optional<Value> fixed() const { return decision_; }

 private:
  std::size_t quorum_;
  std::map<ProcessId, Value> proposals_;
  std::optional<Value> decision_;
  std::vector<std::function<void(Value)>> callbacks_;
};

class OracleConsensus final : public UnderlyingConsensus {
 public:
  OracleConsensus(ProcessId self, std::shared_ptr<OracleHub> hub);

  void propose(Value v) override;
  void on_plain(ProcessId, const Message&) override {}
  void on_idb(const IdbDelivery&) override {}

  /// The host calls this to deliver the hub's decision to this process.
  void deliver_decision(Value v);

  [[nodiscard]] std::optional<Value> decision() const override { return decision_; }
  [[nodiscard]] std::uint32_t rounds_used() const override { return decision_ ? 1 : 0; }
  [[nodiscard]] std::uint32_t logical_steps() const override { return decision_ ? 2 : 0; }
  [[nodiscard]] bool halted() const override { return decision_.has_value(); }
  [[nodiscard]] std::string name() const override { return "oracle"; }

 private:
  ProcessId self_;
  std::shared_ptr<OracleHub> hub_;
  std::optional<Value> decision_;
};

}  // namespace dex
