#include "consensus/underlying/randomized.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace dex {

RandomizedConsensus::RandomizedConsensus(RandomizedConsensusConfig cfg,
                                         std::shared_ptr<const CoinSource> coin,
                                         IdbEngine* idb, Outbox* outbox)
    : cfg_(cfg), coin_(std::move(coin)), idb_(idb), outbox_(outbox) {
  DEX_ENSURE_MSG(cfg_.n > 5 * cfg_.t, "randomized consensus requires n > 5t");
  DEX_ENSURE(cfg_.self >= 0 && static_cast<std::size_t>(cfg_.self) < cfg_.n);
  DEX_ENSURE(coin_ != nullptr && idb_ != nullptr && outbox_ != nullptr);
}

void RandomizedConsensus::send_phase(std::uint32_t round, std::uint8_t phase,
                                     std::optional<Value> v) {
  UcPhasePayload p;
  p.round = round;
  p.phase = phase;
  p.has_value = v.has_value();
  p.v = v.value_or(0);
  idb_->id_send(chan::uc_phase_tag(round, phase), p.to_bytes());
}

void RandomizedConsensus::propose(Value v) {
  if (proposed_ || halted_) return;
  proposed_ = true;
  est_ = v;
  round_ = 1;
  phase_ = 1;
  send_phase(1, 1, est_);
  advance();
}

RandomizedConsensus::PhaseView& RandomizedConsensus::view(std::uint32_t round,
                                                          std::uint8_t phase) {
  return views_[{round, phase}];
}

void RandomizedConsensus::on_idb(const IdbDelivery& delivery) {
  if (halted_) return;
  if (chan::channel(delivery.tag) != chan::kUcPhase) return;
  const auto seq = chan::seq(delivery.tag);
  const auto tag_round = static_cast<std::uint32_t>(seq >> 8);
  const auto tag_phase = static_cast<std::uint8_t>(seq & 0xff);
  if (tag_phase != 1 && tag_phase != 2) return;
  if (tag_round == 0 || tag_round > cfg_.max_rounds + 1) return;

  UcPhasePayload p;
  try {
    p = UcPhasePayload::from_bytes(delivery.payload);
  } catch (const DecodeError&) {
    return;  // Byzantine garbage
  }
  // The payload must agree with the broadcast tag, and EST votes must carry a
  // value (only AUX may vote ⊥).
  if (p.round != tag_round || p.phase != tag_phase) return;
  if (tag_phase == 1 && !p.has_value) return;

  auto& pv = view(tag_round, tag_phase);
  const std::optional<Value> vote =
      p.has_value ? std::optional<Value>(p.v) : std::nullopt;
  // IDB accepts once per (origin, tag), so this insert cannot conflict; keep
  // first-wins anyway for defence in depth.
  pv.votes.try_emplace(delivery.origin, vote);
  if (tag_round == 1 && tag_phase == 1) {
    round1_ests_.try_emplace(delivery.origin, p.v);
  }
  advance();
}

void RandomizedConsensus::on_plain(ProcessId src, const Message& msg) {
  if (halted_) return;
  if (chan::channel(msg.tag) != chan::kUcDecide) return;
  if (src < 0 || static_cast<std::size_t>(src) >= cfg_.n) return;
  Value v;
  try {
    v = ValuePayload::from_bytes(msg.payload).v;
  } catch (const DecodeError&) {
    return;
  }
  auto& senders = decide_senders_[v];
  senders.insert(src);
  // Fast-forward: t+1 matching DECIDEs contain at least one correct decider.
  if (!decision_.has_value() && senders.size() >= cfg_.t + 1) {
    decided_via_relay_ = true;
    decide(v, round_);
  }
  // Halt once n-t processes confirm the decision — from then on every correct
  // process can decide from the t+1 correct DECIDEs among them, so we may
  // safely stop participating in rounds.
  if (decision_.has_value() &&
      decide_senders_[*decision_].size() >= cfg_.n - cfg_.t) {
    halted_ = true;
  }
}

void RandomizedConsensus::decide(Value v, std::uint32_t round) {
  if (decision_.has_value()) return;
  decision_ = v;
  decide_round_ = round;
  est_ = v;
  if (!decide_broadcast_) {
    decide_broadcast_ = true;
    Message m;
    m.kind = MsgKind::kPlain;
    m.instance = cfg_.instance;
    m.tag = chan::kUcDecide;
    m.payload = ValuePayload{v}.to_bytes();
    outbox_->broadcast(std::move(m));
  }
}

void RandomizedConsensus::advance() {
  const std::size_t quorum = cfg_.n - cfg_.t;
  while (proposed_ && !halted_ && !gave_up_) {
    if (phase_ == 1) {
      auto& pv = view(round_, 1);
      if (pv.votes.size() < quorum) return;
      // Candidate: the unique value with more than (n+t)/2 EST votes, if any.
      std::map<Value, std::size_t> counts;
      for (const auto& [sender, vote] : pv.votes) {
        if (vote.has_value()) ++counts[*vote];
      }
      std::optional<Value> candidate;
      for (const auto& [val, c] : counts) {
        if (2 * c > cfg_.n + cfg_.t) {
          candidate = val;
          break;
        }
      }
      send_phase(round_, 2, candidate);
      phase_ = 2;
      continue;
    }

    // phase_ == 2
    auto& pv = view(round_, 2);
    if (pv.votes.size() < quorum) return;
    std::map<Value, std::size_t> counts;
    for (const auto& [sender, vote] : pv.votes) {
      if (vote.has_value()) ++counts[*vote];
    }
    std::optional<Value> top;
    std::size_t top_count = 0;
    for (const auto& [val, c] : counts) {
      if (c > top_count || (c == top_count && top.has_value() && val > *top)) {
        top = val;
        top_count = c;
      }
    }
    if (top.has_value() && top_count >= cfg_.n - 2 * cfg_.t) {
      decide(*top, round_);
      est_ = *top;
    } else if (top.has_value() && top_count >= cfg_.t + 1) {
      est_ = *top;
    } else {
      // Coin adoption: take the round-1 estimate of the coin's index if we
      // hold it (identical broadcast makes it consistent across holders).
      const ProcessId idx = coin_->pick_index(cfg_.instance, round_);
      const auto it = round1_ests_.find(idx);
      if (it != round1_ests_.end()) est_ = it->second;
    }

    ++round_;
    if (round_ > cfg_.max_rounds) {
      gave_up_ = true;
      DEX_LOG(kError, "uc") << "p" << cfg_.self << " gave up after "
                            << cfg_.max_rounds << " rounds";
      return;
    }
    phase_ = 1;
    send_phase(round_, 1, est_);
  }
}

std::uint32_t RandomizedConsensus::logical_steps() const {
  // Each round is two IDB broadcasts = four plain steps; a relay-decided
  // process paid one extra plain step for the DECIDE hop.
  return 4 * decide_round_ + (decided_via_relay_ ? 1 : 0);
}

}  // namespace dex
