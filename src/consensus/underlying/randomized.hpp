// RandomizedConsensus — a multivalued Ben-Or-style Byzantine consensus over
// identical broadcast, with a pluggable (common) coin.
//
// Requires n > 5t. All round messages travel via IDB, which removes
// per-message equivocation: every process observes the same value for a given
// (sender, round, phase). Each round has two phases:
//
//   Phase 1 (EST):  Id-send (EST, r, est). Wait for n-t ESTs. If some value w
//                   has more than (n+t)/2 occurrences, w becomes the round's
//                   *candidate* (at most one value can); Id-send (AUX, r, w),
//                   otherwise Id-send (AUX, r, ⊥).
//   Phase 2 (AUX):  Wait for n-t AUXs. Let u be the most frequent non-⊥ AUX
//                   value with count c.
//                     c >= n-2t  → decide u (and est := u)
//                     c >= t+1   → est := u
//                     otherwise  → est := round-1 EST of coin index (if held)
//
// Deciding processes broadcast DECIDE(u) on the plain channel and keep
// participating in rounds until they have collected DECIDE(u) from n-t
// distinct senders (so laggards never starve); t+1 matching DECIDEs are
// themselves sufficient to decide (fast-forward).
//
// Safety sketch (n >= 5t+1):
//  * Candidate uniqueness: two values above (n+t)/2 would need > n+t distinct
//    voters; there are only n and IDB pins one EST per sender per round.
//  * Same-round agreement: all non-⊥ AUX values of correct processes equal
//    the unique candidate; Byzantine senders add at most t to any other
//    value, below the t+1 adoption threshold.
//  * Persistence: a decision with c >= n-2t leaves every correct process with
//    at least n-4t >= t+1 u-AUXs in its own n-t view, so all correct set
//    est := u, making the next round unanimous and decided.
//  * Unanimity: if all correct propose v, every n-t view has >= n-2t >
//    (n+t)/2 v-ESTs, so round 1 decides v.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "consensus/underlying/coin.hpp"
#include "consensus/underlying/underlying.hpp"

namespace dex {

struct RandomizedConsensusConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcessId self = kNoProcess;
  InstanceId instance = 0;
  /// Safety valve against runaway executions (e.g. a miswired local coin in a
  /// hostile schedule). When hit, the engine stops emitting round messages
  /// and reports gave_up(); it never decides wrongly.
  std::uint32_t max_rounds = 1000;
};

class RandomizedConsensus final : public UnderlyingConsensus {
 public:
  RandomizedConsensus(RandomizedConsensusConfig cfg,
                      std::shared_ptr<const CoinSource> coin, IdbEngine* idb,
                      Outbox* outbox);

  void propose(Value v) override;
  void on_plain(ProcessId src, const Message& msg) override;
  void on_idb(const IdbDelivery& delivery) override;

  [[nodiscard]] std::optional<Value> decision() const override { return decision_; }
  [[nodiscard]] std::uint32_t rounds_used() const override { return decide_round_; }
  [[nodiscard]] std::uint32_t logical_steps() const override;
  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::string name() const override { return "randomized-benor"; }

  [[nodiscard]] bool gave_up() const { return gave_up_; }
  [[nodiscard]] std::uint32_t current_round() const { return round_; }

 private:
  struct PhaseView {
    /// Per-sender AUX/EST content; nullopt value = explicit ⊥ AUX vote.
    std::map<ProcessId, std::optional<Value>> votes;
  };

  void advance();
  void start_round(std::uint32_t round);
  void decide(Value v, std::uint32_t round);
  void send_phase(std::uint32_t round, std::uint8_t phase, std::optional<Value> v);
  PhaseView& view(std::uint32_t round, std::uint8_t phase);

  RandomizedConsensusConfig cfg_;
  std::shared_ptr<const CoinSource> coin_;
  IdbEngine* idb_;
  Outbox* outbox_;

  bool proposed_ = false;
  Value est_ = 0;
  std::uint32_t round_ = 0;   // current round (1-based once proposed)
  std::uint8_t phase_ = 0;    // phase we are *waiting on* (1 or 2)

  std::map<std::pair<std::uint32_t, std::uint8_t>, PhaseView> views_;
  /// Round-1 EST per sender — the coin's adoption pool.
  std::map<ProcessId, Value> round1_ests_;

  std::optional<Value> decision_;
  std::uint32_t decide_round_ = 0;
  bool decided_via_relay_ = false;
  bool decide_broadcast_ = false;
  /// DECIDE senders per value.
  std::map<Value, std::set<ProcessId>> decide_senders_;

  bool halted_ = false;
  bool gave_up_ = false;
};

}  // namespace dex
