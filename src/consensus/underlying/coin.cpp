#include "consensus/underlying/coin.hpp"

#include "common/assert.hpp"

namespace dex {

SeededCommonCoin::SeededCommonCoin(std::uint64_t seed, std::size_t n)
    : seed_(seed), n_(n) {
  DEX_ENSURE(n > 0);
}

ProcessId SeededCommonCoin::pick_index(InstanceId instance,
                                       std::uint32_t round) const {
  const std::uint64_t h =
      mix64(seed_ ^ mix64(instance) ^ (static_cast<std::uint64_t>(round) << 32 | round));
  return static_cast<ProcessId>(h % n_);
}

LocalCoin::LocalCoin(std::uint64_t seed, std::size_t n) : rng_(seed), n_(n) {
  DEX_ENSURE(n > 0);
}

ProcessId LocalCoin::pick_index(InstanceId, std::uint32_t) const {
  return static_cast<ProcessId>(rng_.next_below(n_));
}

std::shared_ptr<const CoinSource> make_common_coin(std::uint64_t seed, std::size_t n) {
  return std::make_shared<const SeededCommonCoin>(seed, n);
}

std::shared_ptr<const CoinSource> make_local_coin(std::uint64_t seed, std::size_t n) {
  return std::make_shared<const LocalCoin>(seed, n);
}

}  // namespace dex
