#include "consensus/underlying/oracle.hpp"

#include <algorithm>

namespace dex {

void OracleHub::submit(ProcessId from, Value v) {
  if (decision_.has_value()) return;
  proposals_.try_emplace(from, v);
  if (proposals_.size() < quorum_) return;
  // Most frequent proposal; ties toward the largest value (deterministic).
  std::map<Value, std::size_t> counts;
  for (const auto& [p, val] : proposals_) ++counts[val];
  Value best = counts.begin()->first;
  std::size_t best_count = 0;
  for (const auto& [val, c] : counts) {
    if (c >= best_count) {  // ascending value order → ties pick larger value
      best = val;
      best_count = c;
    }
  }
  decision_ = best;
  for (const auto& cb : callbacks_) cb(best);
}

OracleConsensus::OracleConsensus(ProcessId self, std::shared_ptr<OracleHub> hub)
    : self_(self), hub_(std::move(hub)) {}

void OracleConsensus::propose(Value v) {
  if (hub_) hub_->submit(self_, v);
}

void OracleConsensus::deliver_decision(Value v) {
  if (!decision_.has_value()) decision_ = v;
}

}  // namespace dex
