// Byzantine-evidence collection.
//
// The §2.1 model has reliable, non-corrupting links, so several observations
// a single correct process can make are *proof* of misbehavior:
//   * two different proposal values from one sender on the plain channel
//     (a correct process P-Sends its proposal exactly once),
//   * a plain-channel claim that contradicts the identical-broadcast delivery
//     for the same sender (a correct process Id-Sends the same value),
//   * an undecodable payload on a protocol channel.
// DexStack feeds its observations into an EvidenceCollector; applications can
// read the audit trail (e.g. to expel suspects at reconfiguration time).
// Evidence never influences the protocol itself — DEX's guarantees do not
// depend on detection.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dex {

enum class EvidenceKind : std::uint8_t {
  kDoublePlainClaim,     // two different plain-channel proposals
  kCrossChannelMismatch, // plain claim != identical-broadcast claim
  kMalformedPayload,     // undecodable bytes on a protocol channel
};

const char* evidence_kind_name(EvidenceKind k);

struct Evidence {
  EvidenceKind kind;
  ProcessId suspect = kNoProcess;
  /// The conflicting values, where applicable.
  std::optional<Value> first_value;
  std::optional<Value> second_value;

  [[nodiscard]] std::string to_string() const;
};

class EvidenceCollector {
 public:
  explicit EvidenceCollector(std::size_t n) : n_(n) {}

  /// A proposal value observed on the plain channel from `src`.
  void note_plain_claim(ProcessId src, Value v);
  /// A proposal value delivered through identical broadcast for `origin`.
  void note_idb_claim(ProcessId origin, Value v);
  /// An undecodable payload from `src`.
  void note_malformed(ProcessId src);

  [[nodiscard]] const std::vector<Evidence>& evidence() const { return evidence_; }
  [[nodiscard]] std::set<ProcessId> suspects() const;
  [[nodiscard]] bool clean() const { return evidence_.empty(); }

 private:
  void cross_check(ProcessId who);

  std::size_t n_;
  std::map<ProcessId, Value> plain_claims_;
  std::map<ProcessId, Value> idb_claims_;
  /// Deduplication: at most one evidence record per (suspect, kind).
  std::set<std::pair<ProcessId, EvidenceKind>> reported_;
  std::vector<Evidence> evidence_;
};

}  // namespace dex
