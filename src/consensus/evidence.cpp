#include "consensus/evidence.hpp"

#include <sstream>

namespace dex {

const char* evidence_kind_name(EvidenceKind k) {
  switch (k) {
    case EvidenceKind::kDoublePlainClaim: return "double-plain-claim";
    case EvidenceKind::kCrossChannelMismatch: return "cross-channel-mismatch";
    case EvidenceKind::kMalformedPayload: return "malformed-payload";
  }
  return "?";
}

std::string Evidence::to_string() const {
  std::ostringstream os;
  os << "p" << suspect << ": " << evidence_kind_name(kind);
  if (first_value.has_value() && second_value.has_value()) {
    os << " (" << *first_value << " vs " << *second_value << ")";
  }
  return os.str();
}

void EvidenceCollector::note_plain_claim(ProcessId src, Value v) {
  if (src < 0 || static_cast<std::size_t>(src) >= n_) return;
  const auto [it, inserted] = plain_claims_.try_emplace(src, v);
  if (!inserted && it->second != v &&
      reported_.insert({src, EvidenceKind::kDoublePlainClaim}).second) {
    evidence_.push_back(
        Evidence{EvidenceKind::kDoublePlainClaim, src, it->second, v});
  }
  cross_check(src);
}

void EvidenceCollector::note_idb_claim(ProcessId origin, Value v) {
  if (origin < 0 || static_cast<std::size_t>(origin) >= n_) return;
  idb_claims_.try_emplace(origin, v);
  cross_check(origin);
}

void EvidenceCollector::cross_check(ProcessId who) {
  const auto p = plain_claims_.find(who);
  const auto i = idb_claims_.find(who);
  if (p == plain_claims_.end() || i == idb_claims_.end()) return;
  if (p->second != i->second &&
      reported_.insert({who, EvidenceKind::kCrossChannelMismatch}).second) {
    evidence_.push_back(Evidence{EvidenceKind::kCrossChannelMismatch, who,
                                 p->second, i->second});
  }
}

void EvidenceCollector::note_malformed(ProcessId src) {
  if (src < 0 || static_cast<std::size_t>(src) >= n_) return;
  if (reported_.insert({src, EvidenceKind::kMalformedPayload}).second) {
    evidence_.push_back(Evidence{EvidenceKind::kMalformedPayload, src,
                                 std::nullopt, std::nullopt});
  }
}

std::set<ProcessId> EvidenceCollector::suspects() const {
  std::set<ProcessId> out;
  for (const auto& e : evidence_) out.insert(e.suspect);
  return out;
}

}  // namespace dex
