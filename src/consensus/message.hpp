// Wire messages shared by every protocol engine.
//
// All traffic is a single envelope type `Message` with three kinds:
//   kPlain    — ordinary point-to-point/broadcast payload (P-Send/P-Receive)
//   kIdbInit  — identical-broadcast (init, m) frame
//   kIdbEcho  — identical-broadcast (echo, m, origin) frame
// The `tag` routes a payload to its consumer (DEX proposal channel, an
// underlying-consensus phase, ...). Payload bytes are opaque to the envelope;
// each consumer defines a small payload struct with its own codec. Every
// decoder is bounds-checked: a malformed frame from a Byzantine peer yields
// DecodeError, never undefined behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace dex {

enum class MsgKind : std::uint8_t { kPlain = 0, kIdbInit = 1, kIdbEcho = 2 };

const char* msg_kind_name(MsgKind k);

/// Channel identifiers (upper bits of `tag`). The lower 32 bits are free for
/// per-channel sequencing (e.g. the underlying consensus packs round/phase).
namespace chan {
inline constexpr std::uint64_t kShift = 32;
inline constexpr std::uint64_t kDexProposalPlain = 1ULL << kShift;  // DEX P-send
inline constexpr std::uint64_t kDexProposalIdb = 2ULL << kShift;    // DEX Id-send
inline constexpr std::uint64_t kUcPhase = 3ULL << kShift;           // UC EST/AUX
inline constexpr std::uint64_t kUcDecide = 4ULL << kShift;          // UC decide relay
inline constexpr std::uint64_t kBoscoVote = 5ULL << kShift;         // BOSCO VOTE
inline constexpr std::uint64_t kCrashProp = 6ULL << kShift;         // crash baseline
inline constexpr std::uint64_t kSmrDissem = 7ULL << kShift;         // SMR payloads

/// Channel part of a tag.
constexpr std::uint64_t channel(std::uint64_t tag) {
  return tag & ~((1ULL << kShift) - 1);
}
/// Per-channel sequencing part of a tag.
constexpr std::uint64_t seq(std::uint64_t tag) {
  return tag & ((1ULL << kShift) - 1);
}
/// Tag for an underlying-consensus phase broadcast.
constexpr std::uint64_t uc_phase_tag(std::uint32_t round, std::uint8_t phase) {
  return kUcPhase | (static_cast<std::uint64_t>(round) << 8) | phase;
}
}  // namespace chan

/// The single envelope that travels on links.
struct Message {
  MsgKind kind = MsgKind::kPlain;
  InstanceId instance = 0;
  std::uint64_t tag = 0;
  /// For kIdbEcho: the process whose broadcast is being echoed. For kIdbInit
  /// the origin is the sender itself. Unused for kPlain.
  ProcessId origin = kNoProcess;
  std::vector<std::byte> payload;

  void encode(Writer& w) const;
  static Message decode(Reader& r);

  /// Full frame helpers (encode-to-buffer / decode-with-validation).
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static Message from_bytes(std::span<const std::byte> data);

  /// Exact byte length of to_bytes() without encoding (wire accounting).
  [[nodiscard]] std::size_t encoded_size() const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Message&) const = default;
};

/// A versioned batch frame: every same-destination message of one drain
/// coalesced into a single wire packet. Layout:
///   u8 marker (0xB5) | u8 version (1) | varint count |
///   count x (varint message-length | Message frame)
/// The marker cannot collide with a bare Message, whose first byte is a
/// MsgKind (0..2), so transports accept either on the same channel.
struct BatchFrame {
  static constexpr std::uint8_t kMarker = 0xB5;
  static constexpr std::uint8_t kVersion = 1;
  /// A Byzantine peer must not make us allocate unboundedly many envelopes.
  static constexpr std::uint64_t kMaxMessages = 4096;

  std::vector<Message> messages;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static BatchFrame from_bytes(std::span<const std::byte> data);

  [[nodiscard]] std::size_t encoded_size() const;

  /// True when `data` starts with the batch marker.
  [[nodiscard]] static bool is_batch(std::span<const std::byte> data);
};

/// Decode a wire payload that is either a bare Message or a BatchFrame;
/// returns the contained messages in order. Throws DecodeError as usual.
[[nodiscard]] std::vector<Message> decode_wire(std::span<const std::byte> data);

/// Exact BatchFrame::to_bytes() length for `msgs` without building the frame
/// (wire accounting in hosts that model batching without encoding).
[[nodiscard]] std::size_t batch_encoded_size(std::span<const Message> msgs);

/// A message queued for transmission. dst == kBroadcastDst fans out to all n
/// processes including the sender (engines rely on self-delivery so their own
/// entry appears in views and their own echoes count toward thresholds).
inline constexpr ProcessId kBroadcastDst = -2;

struct Outgoing {
  ProcessId dst = kBroadcastDst;
  Message msg;
};

/// Collects outgoing messages from the engines of one process; the host
/// (simulator, threaded cluster, TCP node) drains it after every callback.
class Outbox {
 public:
  void send(ProcessId dst, Message msg) { queue_.push_back({dst, std::move(msg)}); }
  void broadcast(Message msg) { queue_.push_back({kBroadcastDst, std::move(msg)}); }
  [[nodiscard]] std::vector<Outgoing> drain() {
    std::vector<Outgoing> out;
    out.swap(queue_);
    return out;
  }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  std::vector<Outgoing> queue_;
};

// ---------------------------------------------------------------------------
// Payloads
// ---------------------------------------------------------------------------

/// A bare value: DEX proposals, BOSCO votes, UC decide notifications, crash
/// baseline proposals.
struct ValuePayload {
  Value v = 0;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static ValuePayload from_bytes(std::span<const std::byte> data);
};

/// An underlying-consensus phase message. `has_value` is false for the ⊥
/// AUX vote (no candidate seen).
struct UcPhasePayload {
  std::uint32_t round = 0;
  std::uint8_t phase = 0;  // 1 = EST, 2 = AUX
  bool has_value = true;
  Value v = 0;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static UcPhasePayload from_bytes(std::span<const std::byte> data);
};

}  // namespace dex
