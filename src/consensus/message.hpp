// Wire messages shared by every protocol engine.
//
// All traffic is a single envelope type `Message` with three kinds:
//   kPlain    — ordinary point-to-point/broadcast payload (P-Send/P-Receive)
//   kIdbInit  — identical-broadcast (init, m) frame
//   kIdbEcho  — identical-broadcast (echo, m, origin) frame
// The `tag` routes a payload to its consumer (DEX proposal channel, an
// underlying-consensus phase, ...). Payload bytes are opaque to the envelope;
// each consumer defines a small payload struct with its own codec. Every
// decoder is bounds-checked: a malformed frame from a Byzantine peer yields
// DecodeError, never undefined behaviour.
//
// Payload bytes are shared, not cloned: `Payload` is a ref-counted immutable
// buffer, so the broadcast fan-out paths (Outbox drain → simulator event
// queue, transport per-destination sends, IDB echo storage) copy a pointer
// instead of the bytes. Mutation detaches first (copy-on-write), preserving
// value semantics for tests and Byzantine strategies that tamper with frames.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace dex {

/// Immutable shared payload bytes with copy-on-write mutation.
///
/// Copies share one heap buffer; `Message` therefore costs a refcount bump
/// per destination on fan-out instead of a payload clone. The mutating
/// accessors (assign/resize/non-const operator[]/begin) detach onto a private
/// copy first, so no holder ever observes another's writes.
class Payload {
 public:
  Payload() = default;
  Payload(std::vector<std::byte> bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<std::vector<std::byte>>(std::move(bytes))) {}
  explicit Payload(std::span<const std::byte> bytes)
      : data_(bytes.empty() ? nullptr
                            : std::make_shared<std::vector<std::byte>>(
                                  bytes.begin(), bytes.end())) {}

  [[nodiscard]] std::size_t size() const { return data_ ? data_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::byte* data() const {
    return data_ ? data_->data() : nullptr;
  }
  [[nodiscard]] std::span<const std::byte> span() const {
    return data_ ? std::span<const std::byte>(*data_)
                 : std::span<const std::byte>();
  }
  // NOLINTNEXTLINE(google-explicit-constructor): payloads decode via span APIs.
  operator std::span<const std::byte>() const { return span(); }
  /// Vector form for containers/comparisons keyed on byte strings.
  [[nodiscard]] const std::vector<std::byte>& vec() const {
    static const std::vector<std::byte> kEmpty;
    return data_ ? *data_ : kEmpty;
  }

  [[nodiscard]] std::byte operator[](std::size_t i) const { return (*data_)[i]; }
  [[nodiscard]] auto begin() const { return span().begin(); }
  [[nodiscard]] auto end() const { return span().end(); }

  /// How many holders share the buffer (introspection for tests/benches).
  [[nodiscard]] long use_count() const { return data_ ? data_.use_count() : 0; }

  // --- copy-on-write mutators ---
  std::byte& operator[](std::size_t i) { return mutate()[i]; }
  auto begin() { return mutate().begin(); }
  auto end() { return mutate().end(); }
  void assign(std::size_t count, std::byte b) {
    data_ = count == 0 ? nullptr
                       : std::make_shared<std::vector<std::byte>>(count, b);
  }
  template <typename It>
  void assign(It first, It last) {
    data_ = first == last
                ? nullptr
                : std::make_shared<std::vector<std::byte>>(first, last);
  }
  void resize(std::size_t n) {
    if (n == 0) {
      data_.reset();
      return;
    }
    mutate().resize(n);
  }
  void clear() { data_.reset(); }

  bool operator==(const Payload& o) const {
    return data_ == o.data_ || vec() == o.vec();
  }

 private:
  std::vector<std::byte>& mutate() {
    if (!data_) {
      data_ = std::make_shared<std::vector<std::byte>>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<std::vector<std::byte>>(*data_);
    }
    return *data_;
  }

  std::shared_ptr<std::vector<std::byte>> data_;
};

enum class MsgKind : std::uint8_t { kPlain = 0, kIdbInit = 1, kIdbEcho = 2 };

const char* msg_kind_name(MsgKind k);

/// Channel identifiers (upper bits of `tag`). The lower 32 bits are free for
/// per-channel sequencing (e.g. the underlying consensus packs round/phase).
namespace chan {
inline constexpr std::uint64_t kShift = 32;
inline constexpr std::uint64_t kDexProposalPlain = 1ULL << kShift;  // DEX P-send
inline constexpr std::uint64_t kDexProposalIdb = 2ULL << kShift;    // DEX Id-send
inline constexpr std::uint64_t kUcPhase = 3ULL << kShift;           // UC EST/AUX
inline constexpr std::uint64_t kUcDecide = 4ULL << kShift;          // UC decide relay
inline constexpr std::uint64_t kBoscoVote = 5ULL << kShift;         // BOSCO VOTE
inline constexpr std::uint64_t kCrashProp = 6ULL << kShift;         // crash baseline
inline constexpr std::uint64_t kSmrDissem = 7ULL << kShift;         // SMR payloads

/// Channel part of a tag.
constexpr std::uint64_t channel(std::uint64_t tag) {
  return tag & ~((1ULL << kShift) - 1);
}
/// Per-channel sequencing part of a tag.
constexpr std::uint64_t seq(std::uint64_t tag) {
  return tag & ((1ULL << kShift) - 1);
}
/// Tag for an underlying-consensus phase broadcast.
constexpr std::uint64_t uc_phase_tag(std::uint32_t round, std::uint8_t phase) {
  return kUcPhase | (static_cast<std::uint64_t>(round) << 8) | phase;
}
}  // namespace chan

/// The single envelope that travels on links.
struct Message {
  MsgKind kind = MsgKind::kPlain;
  InstanceId instance = 0;
  std::uint64_t tag = 0;
  /// For kIdbEcho: the process whose broadcast is being echoed. For kIdbInit
  /// the origin is the sender itself. Unused for kPlain.
  ProcessId origin = kNoProcess;
  Payload payload;

  void encode(Writer& w) const;
  static Message decode(Reader& r);

  /// Full frame helpers (encode-to-buffer / decode-with-validation).
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static Message from_bytes(std::span<const std::byte> data);

  /// Encode-once cache: the first call builds to_bytes() and stores it;
  /// later calls (and copies taken *after* the first call) share the buffer.
  /// Callers must not mutate the envelope after framing it — transports call
  /// this last, at send time. Identical bytes to to_bytes().
  [[nodiscard]] std::shared_ptr<const std::vector<std::byte>> wire_frame() const;

  /// Exact byte length of to_bytes() without encoding (wire accounting).
  [[nodiscard]] std::size_t encoded_size() const;

  [[nodiscard]] std::string to_string() const;

  /// Logical equality over the five wire fields (the frame cache is ignored).
  bool operator==(const Message& o) const {
    return kind == o.kind && instance == o.instance && tag == o.tag &&
           origin == o.origin && payload == o.payload;
  }

 private:
  mutable std::shared_ptr<const std::vector<std::byte>> frame_;
};

/// A versioned batch frame: every same-destination message of one drain
/// coalesced into a single wire packet. Layout:
///   u8 marker (0xB5) | u8 version (1) | varint count |
///   count x (varint message-length | Message frame)
/// The marker cannot collide with a bare Message, whose first byte is a
/// MsgKind (0..2), so transports accept either on the same channel.
struct BatchFrame {
  static constexpr std::uint8_t kMarker = 0xB5;
  static constexpr std::uint8_t kVersion = 1;
  /// A Byzantine peer must not make us allocate unboundedly many envelopes.
  static constexpr std::uint64_t kMaxMessages = 4096;

  std::vector<Message> messages;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static BatchFrame from_bytes(std::span<const std::byte> data);

  [[nodiscard]] std::size_t encoded_size() const;

  /// True when `data` starts with the batch marker.
  [[nodiscard]] static bool is_batch(std::span<const std::byte> data);
};

/// Decode a wire payload that is either a bare Message or a BatchFrame;
/// returns the contained messages in order. Throws DecodeError as usual.
[[nodiscard]] std::vector<Message> decode_wire(std::span<const std::byte> data);

/// Exact BatchFrame::to_bytes() length for `msgs` without building the frame
/// (wire accounting in hosts that model batching without encoding).
[[nodiscard]] std::size_t batch_encoded_size(std::span<const Message> msgs);

/// A message queued for transmission. dst == kBroadcastDst fans out to all n
/// processes including the sender (engines rely on self-delivery so their own
/// entry appears in views and their own echoes count toward thresholds).
inline constexpr ProcessId kBroadcastDst = -2;

struct Outgoing {
  ProcessId dst = kBroadcastDst;
  Message msg;
};

/// Collects outgoing messages from the engines of one process; the host
/// (simulator, threaded cluster, TCP node) drains it after every callback.
/// Broadcast fan-out happens at the host: each destination receives a copy of
/// the Message whose payload bytes are shared, never cloned.
class Outbox {
 public:
  void send(ProcessId dst, Message msg) { queue_.push_back({dst, std::move(msg)}); }
  void broadcast(Message msg) { queue_.push_back({kBroadcastDst, std::move(msg)}); }
  [[nodiscard]] std::vector<Outgoing> drain() {
    std::vector<Outgoing> out;
    out.swap(queue_);
    return out;
  }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  std::vector<Outgoing> queue_;
};

// ---------------------------------------------------------------------------
// Payloads
// ---------------------------------------------------------------------------

/// A bare value: DEX proposals, BOSCO votes, UC decide notifications, crash
/// baseline proposals.
struct ValuePayload {
  Value v = 0;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static ValuePayload from_bytes(std::span<const std::byte> data);
};

/// An underlying-consensus phase message. `has_value` is false for the ⊥
/// AUX vote (no candidate seen).
struct UcPhasePayload {
  std::uint32_t round = 0;
  std::uint8_t phase = 0;  // 1 = EST, 2 = AUX
  bool has_value = true;
  Value v = 0;

  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static UcPhasePayload from_bytes(std::span<const std::byte> data);
};

}  // namespace dex
