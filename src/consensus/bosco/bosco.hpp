// BOSCO — the one-step Byzantine consensus of Song & van Renesse, the
// paper's principal comparator (Table 1 rows "Friedman et al." / "Bosco").
//
//   upon Propose(v):
//     broadcast ⟨VOTE, v⟩
//     wait until n−t VOTE messages received          (evaluated ONCE)
//     if more than (n+t)/2 VOTEs carry the same w → Decide(w)       (1 step)
//     if more than (n−t)/2 VOTEs carry the same w (necessarily unique)
//        → v := w
//     UnderlyingConsensus.propose(v)
//
// The same pseudocode is *weakly* one-step for n > 5t (one-step decision when
// all processes propose the same value and none is faulty) and *strongly*
// one-step for n > 7t (one-step whenever all correct processes propose the
// same value, regardless of faults). The contrast with DEX: BOSCO evaluates
// its predicate exactly once at the n−t threshold and on the plain (not
// identical) channel, and it has no two-step scheme.
#pragma once

#include <memory>
#include <optional>

#include "consensus/decision.hpp"
#include "consensus/stack_base.hpp"
#include "consensus/view.hpp"

namespace dex {

enum class BoscoMode { kWeak, kStrong };

class BoscoEngine {
 public:
  BoscoEngine(std::size_t n, std::size_t t, ProcessId self, InstanceId instance,
              BoscoMode mode, UnderlyingConsensus* uc, Outbox* outbox);

  void propose(Value v);
  void on_vote(ProcessId src, Value v);
  void on_uc_decided(Value v, std::uint32_t uc_rounds);

  [[nodiscard]] const std::optional<Decision>& decision() const { return decision_; }
  [[nodiscard]] const View& votes() const { return votes_; }
  [[nodiscard]] BoscoMode mode() const { return mode_; }

 private:
  void evaluate_once();

  std::size_t n_;
  std::size_t t_;
  ProcessId self_;
  InstanceId instance_;
  BoscoMode mode_;
  UnderlyingConsensus* uc_;
  Outbox* outbox_;

  bool started_ = false;
  bool evaluated_ = false;
  Value my_value_ = 0;
  View votes_;
  std::optional<Decision> decision_;
};

class BoscoStack final : public StackBase {
 public:
  BoscoStack(const StackConfig& cfg, BoscoMode mode);
  BoscoStack(const StackConfig& cfg, BoscoMode mode, UcFactory uc_factory);

  void propose(Value v) override { engine_->propose(v); }
  [[nodiscard]] const std::optional<Decision>& decision() const override {
    return engine_->decision();
  }
  [[nodiscard]] std::uint32_t logical_steps() const override;
  [[nodiscard]] bool halted() const override;
  [[nodiscard]] std::string algorithm() const override;

  [[nodiscard]] BoscoEngine& engine() { return *engine_; }

 protected:
  void handle_plain(ProcessId src, const Message& msg) override;
  void handle_idb(const IdbDelivery&) override {}
  void check_uc_decision() override;

 private:
  std::unique_ptr<BoscoEngine> engine_;
  bool uc_decision_seen_ = false;
};

}  // namespace dex
