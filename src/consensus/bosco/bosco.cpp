#include "consensus/bosco/bosco.hpp"

#include "common/assert.hpp"

namespace dex {

BoscoEngine::BoscoEngine(std::size_t n, std::size_t t, ProcessId self,
                         InstanceId instance, BoscoMode mode,
                         UnderlyingConsensus* uc, Outbox* outbox)
    : n_(n),
      t_(t),
      self_(self),
      instance_(instance),
      mode_(mode),
      uc_(uc),
      outbox_(outbox),
      votes_(n) {
  DEX_ENSURE(uc != nullptr && outbox != nullptr);
  DEX_ENSURE(self >= 0 && static_cast<std::size_t>(self) < n);
  if (mode == BoscoMode::kWeak) {
    DEX_ENSURE_MSG(n > 5 * t, "weakly one-step BOSCO requires n > 5t");
  } else {
    DEX_ENSURE_MSG(n > 7 * t, "strongly one-step BOSCO requires n > 7t");
  }
}

void BoscoEngine::propose(Value v) {
  if (started_) return;
  started_ = true;
  my_value_ = v;
  votes_.set(static_cast<std::size_t>(self_), v);

  Message m;
  m.kind = MsgKind::kPlain;
  m.instance = instance_;
  m.tag = chan::kBoscoVote;
  m.payload = ValuePayload{v}.to_bytes();
  outbox_->broadcast(std::move(m));
  evaluate_once();
}

void BoscoEngine::on_vote(ProcessId src, Value v) {
  if (src < 0 || static_cast<std::size_t>(src) >= n_) return;
  const auto idx = static_cast<std::size_t>(src);
  if (votes_.has(idx)) return;  // one vote per sender
  votes_.set(idx, v);
  evaluate_once();
}

void BoscoEngine::evaluate_once() {
  // BOSCO acts exactly once, at the moment the n−t'th vote arrives (own vote
  // included). Later votes are ignored — the contrast with DEX.
  if (evaluated_ || !started_ || votes_.known_count() < n_ - t_) return;
  evaluated_ = true;

  const FreqStats& s = votes_.freq();
  // One-step decision: more than (n+t)/2 votes for one value.
  if (!s.empty() && 2 * s.first_count() > n_ + t_) {
    decision_ = Decision{*s.first(), DecisionPath::kOneStep, 0};
  }
  // Underlying proposal: adopt the (necessarily unique) value with more than
  // (n−t)/2 votes if one exists, else keep our own proposal.
  Value prop = my_value_;
  if (!s.empty() && 2 * s.first_count() > n_ - t_ &&
      !(s.second().has_value() && 2 * s.second_count() > n_ - t_)) {
    prop = *s.first();
  }
  uc_->propose(prop);
}

void BoscoEngine::on_uc_decided(Value v, std::uint32_t uc_rounds) {
  if (!decision_.has_value()) {
    decision_ = Decision{v, DecisionPath::kUnderlying, uc_rounds};
  }
}

BoscoStack::BoscoStack(const StackConfig& cfg, BoscoMode mode)
    : BoscoStack(cfg, mode, default_uc_factory()) {}

BoscoStack::BoscoStack(const StackConfig& cfg, BoscoMode mode, UcFactory uc_factory)
    : StackBase(cfg, std::move(uc_factory)) {
  engine_ = std::make_unique<BoscoEngine>(cfg_.n, cfg_.t, cfg_.self, cfg_.instance,
                                          mode, uc_.get(), &outbox_);
}

void BoscoStack::handle_plain(ProcessId src, const Message& msg) {
  if (chan::channel(msg.tag) != chan::kBoscoVote) return;
  try {
    engine_->on_vote(src, ValuePayload::from_bytes(msg.payload).v);
  } catch (const DecodeError&) {
  }
}

void BoscoStack::check_uc_decision() {
  if (uc_decision_seen_) return;
  if (const auto d = uc_->decision()) {
    uc_decision_seen_ = true;
    engine_->on_uc_decided(*d, uc_->rounds_used());
  }
}

std::uint32_t BoscoStack::logical_steps() const {
  const auto& d = engine_->decision();
  if (!d.has_value()) return 0;
  switch (d->path) {
    case DecisionPath::kOneStep: return 1;
    case DecisionPath::kTwoStep: return 2;  // unreachable for BOSCO
    case DecisionPath::kUnderlying:
      return 1 + uc_->logical_steps();  // the VOTE step, then the fallback
  }
  return 0;
}

bool BoscoStack::halted() const {
  return engine_->decision().has_value() && uc_->halted();
}

std::string BoscoStack::algorithm() const {
  return engine_->mode() == BoscoMode::kWeak ? "bosco-weak" : "bosco-strong";
}

}  // namespace dex
