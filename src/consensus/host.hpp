// ConsensusHost — the session layer that multiplexes many consensus
// instances over one endpoint.
//
// A host owns the instance table and each instance's lifecycle:
//
//   open ──(decision observed)──▶ decided ──(retire)──▶ husk
//
// Stacks register with the host (built on demand by the owner's factory)
// instead of being hand-routed by every application; `route()` demultiplexes
// inbound envelopes by Message::instance, `drain()` collects every
// instance's outbox in instance order, and `retire()` releases a decided
// instance's engines via ConsensusProcess::release_decided_state() — the
// piece that bounds memory when an SMR log runs thousands of slots over one
// endpoint. A retired instance is not erased: it lives on as a husk that
// keeps serving the residual identical-broadcast echo duty (late inits from
// laggards still get echoes, exactly as a never-collected stack would), so
// collection is invisible on the wire.
//
// Admission control mirrors what applications need against Byzantine
// traffic that names arbitrary instances: a *new* id is admitted only when
// it is below `max_instances` and at most `admission_window` ahead of the
// floor (the owner's committed prefix, advanced via set_floor()). Messages
// for inadmissible instances are counted and dropped; existing instances —
// live or husk — always receive their traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>

#include "consensus/process.hpp"
#include "metrics/metrics.hpp"

namespace dex {

struct HostConfig {
  /// Ids >= max_instances are never admitted (benches bound their runs).
  InstanceId max_instances = std::numeric_limits<InstanceId>::max();
  /// Ids more than this far ahead of the floor are not admitted.
  InstanceId admission_window = 16;
  /// Optional metrics scope (host_* series). Disabled by default.
  metrics::MetricsScope metrics;
};

class ConsensusHost {
 public:
  /// Builds the protocol stack for one instance on first use.
  using StackFactory =
      std::function<std::unique_ptr<ConsensusProcess>(InstanceId)>;

  ConsensusHost(HostConfig cfg, StackFactory factory);

  /// The stack for `id` (live or husk), creating it if the id is new and
  /// admissible; nullptr for inadmissible new ids.
  ConsensusProcess* open(InstanceId id);

  /// The stack for `id` (live or husk), or nullptr (never creates).
  [[nodiscard]] ConsensusProcess* find(InstanceId id);

  /// Demultiplex one inbound envelope by msg.instance, opening the instance
  /// on demand. Returns false (and counts the drop) when the instance is
  /// new and inadmissible.
  bool route(ProcessId src, const Message& msg);

  /// Drain every instance's outbox — live and husk — in instance order.
  [[nodiscard]] std::vector<Outgoing> drain();

  /// The decision of `id`, from the live stack or the husk. nullopt when
  /// undecided or unknown.
  [[nodiscard]] std::optional<Decision> decision(InstanceId id) const;

  /// Turn a decided instance into a husk: release_decided_state() frees the
  /// engines, the entry stays routable for its residual echo duty. Callers
  /// should wait for the stack's halted() signal — retiring a decided but
  /// not yet halted instance would silence its underlying-consensus
  /// participation, which laggards may still need. No-op for unknown or
  /// already-husked ids; DEX_ENSUREs the instance actually decided.
  void retire(InstanceId id);

  /// Visit every live (non-husk) instance in id order (decision harvesting).
  void for_each_live(
      const std::function<void(InstanceId, ConsensusProcess&)>& fn);

  /// Advance the admission floor (typically the lowest undecided slot).
  /// Never moves backwards.
  void set_floor(InstanceId floor);

  [[nodiscard]] InstanceId floor() const { return floor_; }
  /// Instances still carrying their full engine state.
  [[nodiscard]] std::size_t live_count() const { return live_count_; }
  /// Instances reduced to echo husks.
  [[nodiscard]] std::size_t retired_count() const {
    return instances_.size() - live_count_;
  }
  /// Most simultaneously-live instances ever (GC acceptance checks).
  [[nodiscard]] std::size_t live_high_water() const { return live_high_water_; }
  [[nodiscard]] std::uint64_t dropped_packets() const { return dropped_; }
  [[nodiscard]] const HostConfig& config() const { return cfg_; }

  /// JSON object for the ops plane's /vars: counters plus an instance table
  /// (id, phase open|decided|halted|husk, decision path) capped at the
  /// newest `max_listed` instances. NOT thread-safe — call from the thread
  /// that owns the host (ops publishers use AdminServer::set_var snapshots).
  [[nodiscard]] std::string vars_json(std::size_t max_listed = 32) const;

 private:
  struct Entry {
    std::unique_ptr<ConsensusProcess> stack;
    bool husk = false;
  };

  [[nodiscard]] bool admissible(InstanceId id) const;

  HostConfig cfg_;
  StackFactory factory_;
  std::map<InstanceId, Entry> instances_;
  InstanceId floor_ = 0;
  std::size_t live_count_ = 0;
  std::size_t live_high_water_ = 0;
  std::uint64_t dropped_ = 0;

  // Exported series, resolved once at construction (null when disabled).
  metrics::Counter* m_opened_ = nullptr;
  metrics::Counter* m_retired_ = nullptr;
  metrics::Counter* m_dropped_ = nullptr;
  metrics::Gauge* m_live_ = nullptr;
};

}  // namespace dex
