// ConsensusProcess — the host-agnostic interface of one process's protocol
// stack for a single consensus instance.
//
// Hosts (the discrete-event simulator, the threaded in-process cluster, the
// TCP runtime) own the event loop: they feed packets in via on_packet() and
// transmit whatever drain_outbox() returns. Engines never block and never
// touch the network themselves, which is what makes every protocol in the
// library deterministic and unit-testable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "consensus/decision.hpp"
#include "consensus/message.hpp"

namespace dex {

class ConsensusProcess {
 public:
  virtual ~ConsensusProcess() = default;

  /// Start the instance with this process's proposal. At most once.
  virtual void propose(Value v) = 0;

  /// Deliver one envelope from the network. `src` is the authenticated
  /// transport-level sender (hosts guarantee it; Byzantine processes can lie
  /// inside payloads but not about src).
  virtual void on_packet(ProcessId src, const Message& msg) = 0;

  /// Re-evaluate cross-engine conditions that may have changed without a
  /// packet (used by hosts that mutate engines out of band, e.g. the oracle
  /// underlying consensus).
  virtual void poll() {}

  /// Messages queued since the last drain. Hosts expand kBroadcastDst to all
  /// n processes including the sender (self-delivery is load-bearing).
  [[nodiscard]] virtual std::vector<Outgoing> drain_outbox() = 0;

  [[nodiscard]] virtual const std::optional<Decision>& decision() const = 0;

  /// Plain communication steps on this process's decision path (the paper's
  /// step metric). Meaningful once decided.
  [[nodiscard]] virtual std::uint32_t logical_steps() const = 0;

  /// True once this process will produce no further messages.
  [[nodiscard]] virtual bool halted() const = 0;

  /// Release the engine state a decided, halted instance no longer needs,
  /// keeping the decision and any residual duties (e.g. identical-broadcast
  /// echoes for laggards) intact — observable behaviour must not change.
  /// Hosts call this when they garbage-collect an instance. Only meaningful
  /// once halted(); default is a no-op.
  virtual void release_decided_state() {}

  [[nodiscard]] virtual std::string algorithm() const = 0;
  [[nodiscard]] virtual ProcessId self() const = 0;
  /// The consensus instance this stack runs (trace/metrics attribution).
  [[nodiscard]] virtual InstanceId instance() const { return 0; }
};

}  // namespace dex
