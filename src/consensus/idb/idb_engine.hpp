// Identical Broadcast (IDB) — the paper's appendix algorithm (Figure 3).
//
// Guarantees that all correct processes Id-Receive the *same* message for a
// given sender, even a Byzantine one, built purely from plain send/receive:
//
//   Id-send(m):          P-send (init, m) to all.
//   on first (init, m') from p_j:       P-send (echo, m', j) to all.
//   on (echo, m', j) from >= n-2t distinct senders, if not yet echoed for j:
//                                        P-send (echo, m', j) to all.
//   on (echo, m', j) from >= n-t distinct senders, if not yet accepted for j:
//                                        Id-Receive (m') for p_j.
//
// Correct for n > 4t (Theorem 4). One IDB communication step costs two plain
// steps. This implementation generalizes the single-shot algorithm to
// multiple broadcasts per sender by scoping every rule to a (origin, tag)
// slot; the paper's first-echo(j)/first-accept(j) become per-slot flags.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "consensus/message.hpp"
#include "metrics/metrics.hpp"

namespace dex {

/// An accepted identical-broadcast message (the Id-Receive event).
struct IdbDelivery {
  ProcessId origin = kNoProcess;
  std::uint64_t tag = 0;
  std::vector<std::byte> payload;
};

/// Per-process engine. Event-driven and host-agnostic: callers feed envelope
/// messages in via on_message() and drain deliveries via take_deliveries();
/// all outgoing traffic goes through the shared Outbox.
class IdbEngine {
 public:
  /// Requires n > 4t (the algorithm's resilience bound). `metrics` may be a
  /// disabled scope; when enabled, init/echo fan-out, amplification and
  /// acceptance counters are exported (idb_* series, see docs/protocol.md).
  IdbEngine(std::size_t n, std::size_t t, ProcessId self, InstanceId instance,
            Outbox* outbox, metrics::MetricsScope metrics = {});

  IdbEngine(const IdbEngine&) = delete;
  IdbEngine& operator=(const IdbEngine&) = delete;

  /// Id-send: broadcasts (init, payload) under `tag`. A correct process
  /// invokes this at most once per tag.
  void id_send(std::uint64_t tag, std::vector<std::byte> payload);

  /// Feed a kIdbInit or kIdbEcho envelope received from `src`. Messages of
  /// other kinds or with out-of-range fields are ignored (Byzantine noise).
  void on_message(ProcessId src, const Message& msg);

  /// Drains Id-Receive events produced since the last call.
  [[nodiscard]] std::vector<IdbDelivery> take_deliveries();

  /// Drop the echo-sender bookkeeping of already-accepted slots. Their
  /// echoed/accepted latches stay set, so the engine's observable behaviour
  /// (first-init echoes, amplification, acceptance) is unchanged — only the
  /// per-payload sender sets, dead weight once a slot accepted, are freed.
  void release_accepted_state();

  // --- introspection / stats ---
  [[nodiscard]] std::uint64_t echoes_sent() const { return echoes_sent_; }
  [[nodiscard]] std::uint64_t inits_sent() const { return inits_sent_; }
  [[nodiscard]] std::uint64_t accepted_count() const { return accepted_count_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t t() const { return t_; }

 private:
  /// State of one broadcast slot (origin, tag).
  struct Slot {
    bool echoed = false;    // first-echo(origin): have we echoed for this slot?
    bool accepted = false;  // first-accept(origin): have we Id-Received?
    /// Distinct echo senders per payload content. A Byzantine sender may
    /// appear under several contents; correct senders echo once (and the
    /// acceptance threshold n-t makes conflicting acceptances impossible).
    std::map<std::vector<std::byte>, std::set<ProcessId>> echoes;
  };

  void send_echo(ProcessId origin, std::uint64_t tag,
                 const std::vector<std::byte>& payload);

  Slot& slot(ProcessId origin, std::uint64_t tag);

  std::size_t n_;
  std::size_t t_;
  ProcessId self_;
  InstanceId instance_;
  Outbox* outbox_;

  std::map<std::pair<ProcessId, std::uint64_t>, Slot> slots_;
  std::vector<IdbDelivery> deliveries_;

  std::uint64_t echoes_sent_ = 0;
  std::uint64_t inits_sent_ = 0;
  std::uint64_t accepted_count_ = 0;

  // Exported series (resolved once at construction; null when disabled).
  metrics::Counter* m_inits_ = nullptr;
  metrics::Counter* m_echoes_ = nullptr;
  metrics::Counter* m_amplified_ = nullptr;  // echoes triggered by echoes alone
  metrics::Counter* m_accepts_ = nullptr;
};

}  // namespace dex
