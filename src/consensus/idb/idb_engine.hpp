// Identical Broadcast (IDB) — the paper's appendix algorithm (Figure 3).
//
// Guarantees that all correct processes Id-Receive the *same* message for a
// given sender, even a Byzantine one, built purely from plain send/receive:
//
//   Id-send(m):          P-send (init, m) to all.
//   on first (init, m') from p_j:       P-send (echo, m', j) to all.
//   on (echo, m', j) from >= n-2t distinct senders, if not yet echoed for j:
//                                        P-send (echo, m', j) to all.
//   on (echo, m', j) from >= n-t distinct senders, if not yet accepted for j:
//                                        Id-Receive (m') for p_j.
//
// Correct for n > 4t (Theorem 4). One IDB communication step costs two plain
// steps. This implementation generalizes the single-shot algorithm to
// multiple broadcasts per sender by scoping every rule to a (origin, tag)
// slot; the paper's first-echo(j)/first-accept(j) become per-slot flags.
//
// Hot-path layout: echo counting is the per-message work, so slots are kept
// in a hash map and each slot holds a small array of digest-keyed buckets —
// one per distinct payload content seen (one, for correct senders). A bucket
// records distinct echo senders in a fixed-size bitset (n bits), making the
// per-echo cost a digest compare plus a word test-and-set instead of a
// map<vector<byte>, set<ProcessId>> walk with per-sender node allocations.
// Digests are a fast filter only: on digest match the payload bytes are
// compared exactly, so a Byzantine FNV collision cannot merge two contents.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "consensus/message.hpp"
#include "metrics/metrics.hpp"

namespace dex {

/// An accepted identical-broadcast message (the Id-Receive event). The
/// payload shares its bytes with the accepted echo — no clone per delivery.
struct IdbDelivery {
  ProcessId origin = kNoProcess;
  std::uint64_t tag = 0;
  Payload payload;
};

/// Per-process engine. Event-driven and host-agnostic: callers feed envelope
/// messages in via on_message() and drain deliveries via take_deliveries();
/// all outgoing traffic goes through the shared Outbox.
class IdbEngine {
 public:
  /// Requires n > 4t (the algorithm's resilience bound). `metrics` may be a
  /// disabled scope; when enabled, init/echo fan-out, amplification and
  /// acceptance counters are exported (idb_* series, see docs/protocol.md).
  IdbEngine(std::size_t n, std::size_t t, ProcessId self, InstanceId instance,
            Outbox* outbox, metrics::MetricsScope metrics = {});

  IdbEngine(const IdbEngine&) = delete;
  IdbEngine& operator=(const IdbEngine&) = delete;

  /// Id-send: broadcasts (init, payload) under `tag`. A correct process
  /// invokes this at most once per tag.
  void id_send(std::uint64_t tag, Payload payload);

  /// Feed a kIdbInit or kIdbEcho envelope received from `src`. Messages of
  /// other kinds or with out-of-range fields are ignored (Byzantine noise).
  void on_message(ProcessId src, const Message& msg);

  /// Drains Id-Receive events produced since the last call.
  [[nodiscard]] std::vector<IdbDelivery> take_deliveries();

  /// Drop the echo-sender bookkeeping of already-accepted slots. Their
  /// echoed/accepted latches stay set, so the engine's observable behaviour
  /// (first-init echoes, amplification, acceptance) is unchanged — only the
  /// per-payload voter buckets, dead weight once a slot accepted, are freed.
  void release_accepted_state();

  // --- introspection / stats ---
  [[nodiscard]] std::uint64_t echoes_sent() const { return echoes_sent_; }
  [[nodiscard]] std::uint64_t inits_sent() const { return inits_sent_; }
  [[nodiscard]] std::uint64_t accepted_count() const { return accepted_count_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t t() const { return t_; }

 private:
  /// Distinct echo senders for one payload content within a slot. A
  /// Byzantine sender may appear in several buckets; correct senders echo
  /// once (and the acceptance threshold n-t makes conflicting acceptances
  /// impossible).
  struct EchoBucket {
    std::uint64_t digest = 0;  // fnv1a64 of the payload — fast inequality filter
    Payload payload;           // retained for exact comparison and delivery
    std::vector<std::uint64_t> voters;  // bitset over ProcessId, (n+63)/64 words
    std::size_t votes = 0;              // population count of `voters`
  };

  /// State of one broadcast slot (origin, tag).
  struct Slot {
    bool echoed = false;    // first-echo(origin): have we echoed for this slot?
    bool accepted = false;  // first-accept(origin): have we Id-Received?
    std::vector<EchoBucket> buckets;  // one per distinct content; usually one
  };

  struct SlotKeyHash {
    std::size_t operator()(const std::pair<ProcessId, std::uint64_t>& k) const {
      // splitmix-style mix of the two fields; origin occupies low entropy.
      std::uint64_t x =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.first)) << 32) ^
          k.second;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };

  void send_echo(ProcessId origin, std::uint64_t tag, const Payload& payload,
                 bool amplified);

  Slot& slot(ProcessId origin, std::uint64_t tag);

  /// Bucket for `payload` within `s`, created on first sight. Exact bytes
  /// are compared whenever digests collide.
  EchoBucket& bucket(Slot& s, std::uint64_t digest, const Payload& payload);

  /// Records `src` as an echo sender in `b`; false when already recorded.
  bool record_voter(EchoBucket& b, ProcessId src);

  std::size_t n_;
  std::size_t t_;
  std::size_t voter_words_;  // bitset words per bucket: (n + 63) / 64
  ProcessId self_;
  InstanceId instance_;
  Outbox* outbox_;

  std::unordered_map<std::pair<ProcessId, std::uint64_t>, Slot, SlotKeyHash>
      slots_;
  std::vector<IdbDelivery> deliveries_;

  std::uint64_t echoes_sent_ = 0;
  std::uint64_t inits_sent_ = 0;
  std::uint64_t accepted_count_ = 0;

  // Exported series (resolved once at construction; null when disabled).
  metrics::Counter* m_inits_ = nullptr;
  metrics::Counter* m_echoes_ = nullptr;
  metrics::Counter* m_amplified_ = nullptr;  // echoes triggered by echoes alone
  metrics::Counter* m_accepts_ = nullptr;
};

}  // namespace dex
