#include "consensus/idb/idb_engine.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "trace/trace.hpp"

namespace dex {

namespace {
// Payloads larger than this are dropped as Byzantine garbage before they can
// bloat slot state.
constexpr std::size_t kMaxPayload = 1u << 20;
}  // namespace

IdbEngine::IdbEngine(std::size_t n, std::size_t t, ProcessId self,
                     InstanceId instance, Outbox* outbox,
                     metrics::MetricsScope metrics)
    : n_(n),
      t_(t),
      voter_words_((n + 63) / 64),
      self_(self),
      instance_(instance),
      outbox_(outbox) {
  DEX_ENSURE_MSG(n > 4 * t, "identical broadcast requires n > 4t");
  DEX_ENSURE(self >= 0 && static_cast<std::size_t>(self) < n);
  DEX_ENSURE(outbox != nullptr);
  if (metrics.enabled()) {
    m_inits_ = metrics.counter("idb_inits_total");
    m_echoes_ = metrics.counter("idb_echoes_total");
    m_amplified_ = metrics.counter("idb_echo_amplifications_total");
    m_accepts_ = metrics.counter("idb_accepts_total");
  }
}

void IdbEngine::id_send(std::uint64_t tag, Payload payload) {
  Message m;
  m.kind = MsgKind::kIdbInit;
  m.instance = instance_;
  m.tag = tag;
  m.origin = self_;
  m.payload = std::move(payload);
  ++inits_sent_;
  metrics::inc(m_inits_);
  if (trace::on()) {
    trace::instant("idb", "init",
                   {.proc = self_,
                    .peer = self_,
                    .instance = instance_,
                    .tag = tag,
                    .a = static_cast<std::int64_t>(m.payload.size())});
  }
  outbox_->broadcast(std::move(m));
}

IdbEngine::Slot& IdbEngine::slot(ProcessId origin, std::uint64_t tag) {
  const auto [it, inserted] =
      slots_.try_emplace(std::pair<ProcessId, std::uint64_t>{origin, tag});
  if (inserted && trace::on()) {
    // One IDB round: first sight of the (origin, tag) broadcast → acceptance.
    trace::span_begin("idb", "round",
                      {.proc = self_, .peer = origin, .instance = instance_,
                       .tag = tag});
  }
  return it->second;
}

IdbEngine::EchoBucket& IdbEngine::bucket(Slot& s, std::uint64_t digest,
                                         const Payload& payload) {
  for (EchoBucket& b : s.buckets) {
    // The digest is a filter, not an identity: equal digests still require
    // byte equality, so colliding Byzantine contents stay in separate buckets.
    if (b.digest == digest && b.payload == payload) return b;
  }
  EchoBucket& b = s.buckets.emplace_back();
  b.digest = digest;
  b.payload = payload;  // shares the sender's bytes, no clone
  b.voters.assign(voter_words_, 0);
  return b;
}

bool IdbEngine::record_voter(EchoBucket& b, ProcessId src) {
  const auto idx = static_cast<std::size_t>(src);
  const std::uint64_t bit = 1ULL << (idx % 64);
  std::uint64_t& word = b.voters[idx / 64];
  if ((word & bit) != 0) return false;  // duplicate echo from src
  word |= bit;
  ++b.votes;
  return true;
}

void IdbEngine::send_echo(ProcessId origin, std::uint64_t tag,
                          const Payload& payload, bool amplified) {
  Message m;
  m.kind = MsgKind::kIdbEcho;
  m.instance = instance_;
  m.tag = tag;
  m.origin = origin;
  m.payload = payload;  // shared bytes
  ++echoes_sent_;
  metrics::inc(m_echoes_);
  if (trace::on()) {
    trace::instant("idb", "echo",
                   {.proc = self_,
                    .peer = origin,
                    .instance = instance_,
                    .tag = tag,
                    .a = amplified ? 1 : 0,
                    .b = static_cast<std::int64_t>(payload.size())});
  }
  outbox_->broadcast(std::move(m));
}

void IdbEngine::on_message(ProcessId src, const Message& msg) {
  if (msg.instance != instance_) return;
  if (msg.payload.size() > kMaxPayload) return;
  if (src < 0 || static_cast<std::size_t>(src) >= n_) return;

  if (msg.kind == MsgKind::kIdbInit) {
    // The true origin of an init is its network sender; a claimed msg.origin
    // is ignored so a Byzantine process cannot initiate on another's behalf.
    const ProcessId origin = src;
    Slot& s = slot(origin, msg.tag);
    if (s.echoed) return;  // first-echo(j)
    s.echoed = true;
    send_echo(origin, msg.tag, msg.payload, /*amplified=*/false);
    return;
  }

  if (msg.kind == MsgKind::kIdbEcho) {
    const ProcessId origin = msg.origin;
    if (origin < 0 || static_cast<std::size_t>(origin) >= n_) return;
    Slot& s = slot(origin, msg.tag);
    EchoBucket& b = bucket(s, fnv1a64(msg.payload.span()), msg.payload);
    if (!record_voter(b, src)) return;
    const std::size_t num = b.votes;
    // Echo amplification: n-2t matching echoes convince us to echo even if
    // we never saw the init.
    if (num >= n_ - 2 * t_ && !s.echoed) {
      s.echoed = true;
      metrics::inc(m_amplified_);
      send_echo(origin, msg.tag, b.payload, /*amplified=*/true);
    }
    // Acceptance: n-t matching echoes.
    if (num >= n_ - t_ && !s.accepted) {
      s.accepted = true;
      ++accepted_count_;
      metrics::inc(m_accepts_);
      if (trace::on()) {
        trace::instant("idb", "accept",
                       {.proc = self_,
                        .peer = origin,
                        .instance = instance_,
                        .tag = msg.tag,
                        .a = static_cast<std::int64_t>(num),
                        .b = static_cast<std::int64_t>(b.payload.size())});
        trace::span_end("idb", "round",
                        {.proc = self_, .peer = origin, .instance = instance_,
                         .tag = msg.tag,
                         .a = static_cast<std::int64_t>(num)});
      }
      deliveries_.push_back(IdbDelivery{origin, msg.tag, b.payload});
    }
    return;
  }
  // kPlain is not ours; ignore.
}

void IdbEngine::release_accepted_state() {
  for (auto& [key, s] : slots_) {
    if (s.accepted) {
      s.buckets.clear();
      s.buckets.shrink_to_fit();
    }
  }
}

std::vector<IdbDelivery> IdbEngine::take_deliveries() {
  std::vector<IdbDelivery> out;
  // After the swap the drained capacity becomes the next batch's buffer, so
  // steady-state rounds don't regrow deliveries_ from zero.
  out.reserve(deliveries_.size());
  out.swap(deliveries_);
  return out;
}

}  // namespace dex
