#include "consensus/message.hpp"

#include <algorithm>
#include <sstream>

namespace dex {

const char* msg_kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kPlain: return "plain";
    case MsgKind::kIdbInit: return "idb-init";
    case MsgKind::kIdbEcho: return "idb-echo";
  }
  return "?";
}

void Message::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(instance);
  w.u64(tag);
  w.i32(origin);
  w.varint(payload.size());
  w.bytes(payload);
}

Message Message::decode(Reader& r) {
  Message m;
  const auto kind_raw = r.u8();
  if (kind_raw > static_cast<std::uint8_t>(MsgKind::kIdbEcho)) {
    throw DecodeError("unknown message kind");
  }
  m.kind = static_cast<MsgKind>(kind_raw);
  m.instance = r.u64();
  m.tag = r.u64();
  m.origin = r.i32();
  const std::uint64_t len = r.varint();
  if (len > (1u << 24)) throw DecodeError("payload too large");
  // bytes() bounds-checks len against the input before we allocate.
  m.payload = Payload(r.bytes(static_cast<std::size_t>(len)));
  return m;
}

std::vector<std::byte> Message::to_bytes() const {
  Writer w(payload.size() + 32);
  encode(w);
  return std::move(w).take();
}

Message Message::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  Message m = decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after message");
  return m;
}

std::shared_ptr<const std::vector<std::byte>> Message::wire_frame() const {
  if (!frame_) {
    frame_ = std::make_shared<const std::vector<std::byte>>(to_bytes());
  }
  return frame_;
}

std::size_t Message::encoded_size() const {
  // kind + instance + tag + origin + varint(len) + payload
  return 1 + 8 + 8 + 4 + Writer::varint_size(payload.size()) + payload.size();
}

std::vector<std::byte> BatchFrame::to_bytes() const {
  Writer w(encoded_size());
  w.u8(kMarker);
  w.u8(kVersion);
  w.varint(messages.size());
  for (const Message& m : messages) {
    w.varint(m.encoded_size());
    m.encode(w);
  }
  return std::move(w).take();
}

BatchFrame BatchFrame::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  if (r.u8() != kMarker) throw DecodeError("not a batch frame");
  const std::uint8_t version = r.u8();
  if (version != kVersion) throw DecodeError("unsupported batch version");
  const std::uint64_t count = r.varint();
  if (count > kMaxMessages) throw DecodeError("batch count exceeds limit");
  BatchFrame batch;
  // Reserve from the declared count, but never past what the remaining input
  // could physically hold (each batched message costs ≥ 22 bytes on the
  // wire), so a lying header cannot force a large allocation.
  constexpr std::size_t kMinEncodedMessage = 22;
  batch.messages.reserve(std::min<std::size_t>(
      static_cast<std::size_t>(count), r.remaining() / kMinEncodedMessage + 1));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.varint();
    if (len > r.remaining()) throw DecodeError("batch message length exceeds input");
    Reader mr(r.bytes(static_cast<std::size_t>(len)));
    Message m = Message::decode(mr);
    if (!mr.done()) throw DecodeError("trailing bytes in batched message");
    batch.messages.push_back(std::move(m));
  }
  if (!r.done()) throw DecodeError("trailing bytes after batch frame");
  return batch;
}

std::size_t BatchFrame::encoded_size() const { return batch_encoded_size(messages); }

std::size_t batch_encoded_size(std::span<const Message> msgs) {
  std::size_t n = 2 + Writer::varint_size(msgs.size());
  for (const Message& m : msgs) {
    const std::size_t len = m.encoded_size();
    n += Writer::varint_size(len) + len;
  }
  return n;
}

bool BatchFrame::is_batch(std::span<const std::byte> data) {
  return !data.empty() && static_cast<std::uint8_t>(data[0]) == kMarker;
}

std::vector<Message> decode_wire(std::span<const std::byte> data) {
  if (BatchFrame::is_batch(data)) return BatchFrame::from_bytes(data).messages;
  std::vector<Message> out;
  out.push_back(Message::from_bytes(data));
  return out;
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << msg_kind_name(kind) << "{inst=" << instance << " tag=0x" << std::hex << tag
     << std::dec;
  if (origin != kNoProcess) os << " origin=" << origin;
  os << " |payload|=" << payload.size() << "}";
  return os.str();
}

std::vector<std::byte> ValuePayload::to_bytes() const {
  Writer w(10);
  w.i64(v);
  return std::move(w).take();
}

ValuePayload ValuePayload::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  ValuePayload p;
  p.v = r.i64();
  if (!r.done()) throw DecodeError("trailing bytes in ValuePayload");
  return p;
}

std::vector<std::byte> UcPhasePayload::to_bytes() const {
  Writer w(16);
  w.u32(round);
  w.u8(phase);
  w.boolean(has_value);
  w.i64(v);
  return std::move(w).take();
}

UcPhasePayload UcPhasePayload::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  UcPhasePayload p;
  p.round = r.u32();
  p.phase = r.u8();
  p.has_value = r.boolean();
  p.v = r.i64();
  if (!r.done()) throw DecodeError("trailing bytes in UcPhasePayload");
  return p;
}

}  // namespace dex
