#include "consensus/message.hpp"

#include <sstream>

namespace dex {

const char* msg_kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kPlain: return "plain";
    case MsgKind::kIdbInit: return "idb-init";
    case MsgKind::kIdbEcho: return "idb-echo";
  }
  return "?";
}

void Message::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(instance);
  w.u64(tag);
  w.i32(origin);
  w.varint(payload.size());
  w.bytes(payload);
}

Message Message::decode(Reader& r) {
  Message m;
  const auto kind_raw = r.u8();
  if (kind_raw > static_cast<std::uint8_t>(MsgKind::kIdbEcho)) {
    throw DecodeError("unknown message kind");
  }
  m.kind = static_cast<MsgKind>(kind_raw);
  m.instance = r.u64();
  m.tag = r.u64();
  m.origin = r.i32();
  const std::uint64_t len = r.varint();
  if (len > (1u << 24)) throw DecodeError("payload too large");
  const auto bytes = r.bytes(static_cast<std::size_t>(len));
  m.payload.assign(bytes.begin(), bytes.end());
  return m;
}

std::vector<std::byte> Message::to_bytes() const {
  Writer w(payload.size() + 32);
  encode(w);
  return std::move(w).take();
}

Message Message::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  Message m = decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after message");
  return m;
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << msg_kind_name(kind) << "{inst=" << instance << " tag=0x" << std::hex << tag
     << std::dec;
  if (origin != kNoProcess) os << " origin=" << origin;
  os << " |payload|=" << payload.size() << "}";
  return os.str();
}

std::vector<std::byte> ValuePayload::to_bytes() const {
  Writer w(10);
  w.i64(v);
  return std::move(w).take();
}

ValuePayload ValuePayload::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  ValuePayload p;
  p.v = r.i64();
  if (!r.done()) throw DecodeError("trailing bytes in ValuePayload");
  return p;
}

std::vector<std::byte> UcPhasePayload::to_bytes() const {
  Writer w(16);
  w.u32(round);
  w.u8(phase);
  w.boolean(has_value);
  w.i64(v);
  return std::move(w).take();
}

UcPhasePayload UcPhasePayload::from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  UcPhasePayload p;
  p.round = r.u32();
  p.phase = r.u8();
  p.has_value = r.boolean();
  p.v = r.i64();
  if (!r.done()) throw DecodeError("trailing bytes in UcPhasePayload");
  return p;
}

}  // namespace dex
