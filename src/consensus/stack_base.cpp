#include "consensus/stack_base.hpp"

namespace dex {

UcFactory default_uc_factory() {
  return [](const StackConfig& cfg, IdbEngine* idb, Outbox* outbox) {
    RandomizedConsensusConfig ucc;
    ucc.n = cfg.n;
    ucc.t = cfg.t;
    ucc.self = cfg.self;
    ucc.instance = cfg.instance;
    ucc.max_rounds = cfg.max_uc_rounds;
    return std::make_unique<RandomizedConsensus>(
        ucc, make_common_coin(cfg.coin_seed, cfg.n), idb, outbox);
  };
}

StackBase::StackBase(const StackConfig& cfg, UcFactory uc_factory)
    : cfg_(cfg),
      idb_(cfg.n, cfg.t, cfg.self, cfg.instance, &outbox_, cfg.metrics) {
  uc_ = uc_factory(cfg_, &idb_, &outbox_);
}

void StackBase::on_packet(ProcessId src, const Message& msg) {
  if (msg.instance != cfg_.instance) return;
  switch (msg.kind) {
    case MsgKind::kPlain:
      if (chan::channel(msg.tag) == chan::kUcDecide) {
        if (uc_) uc_->on_plain(src, msg);
      } else {
        handle_plain(src, msg);
      }
      break;
    case MsgKind::kIdbInit:
    case MsgKind::kIdbEcho:
      idb_.on_message(src, msg);
      for (const IdbDelivery& d : idb_.take_deliveries()) {
        if (chan::channel(d.tag) == chan::kUcPhase) {
          if (uc_) uc_->on_idb(d);
        } else {
          handle_idb(d);
        }
      }
      break;
  }
  check_uc_decision();
}

}  // namespace dex
