#include "consensus/view.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace dex {

InputVector InputVector::uniform(std::size_t n, Value v) {
  return InputVector(std::vector<Value>(n, v));
}

View InputVector::as_view() const {
  View j(size());
  for (std::size_t i = 0; i < size(); ++i) j.set(i, values_[i]);
  return j;
}

std::string InputVector::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << values_[i];
  }
  os << "]";
  return os.str();
}

std::size_t FreqStats::count_of(Value v) const {
  const auto it = counts_.find(v);
  return it == counts_.end() ? 0 : it->second;
}

void View::set(std::size_t i, Value v) {
  DEX_ENSURE_MSG(i < entries_.size(), "view index out of range");
  if (!entries_[i].has_value()) ++known_;
  entries_[i] = v;
}

void View::clear(std::size_t i) {
  DEX_ENSURE_MSG(i < entries_.size(), "view index out of range");
  if (entries_[i].has_value()) --known_;
  entries_[i].reset();
}

std::size_t View::count_of(Value v) const {
  std::size_t c = 0;
  for (const auto& e : entries_) {
    if (e.has_value() && *e == v) ++c;
  }
  return c;
}

FreqStats View::freq() const {
  FreqStats s;
  for (const auto& e : entries_) {
    if (e.has_value()) ++s.counts_[*e];
  }
  // 1st(J): most frequent; ties broken toward the larger value (paper §3.3).
  for (const auto& [v, c] : s.counts_) {
    if (!s.first_ || c > s.first_count_ || (c == s.first_count_ && v > *s.first_)) {
      s.first_ = v;
      s.first_count_ = c;
    }
  }
  // 2nd(J) = 1st(Ĵ): same rule over the remaining values.
  for (const auto& [v, c] : s.counts_) {
    if (v == s.first_) continue;
    if (!s.second_ || c > s.second_count_ ||
        (c == s.second_count_ && v > *s.second_)) {
      s.second_ = v;
      s.second_count_ = c;
    }
  }
  return s;
}

bool View::contained_in(const View& other) const {
  DEX_ENSURE(size() == other.size());
  for (std::size_t i = 0; i < size(); ++i) {
    if (entries_[i].has_value() &&
        (!other.entries_[i].has_value() || *entries_[i] != *other.entries_[i])) {
      return false;
    }
  }
  return true;
}

std::size_t View::dist(const View& a, const View& b) {
  DEX_ENSURE(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.entries_[i] != b.entries_[i]) ++d;
  }
  return d;
}

std::size_t View::dist(const View& j, const InputVector& i) {
  DEX_ENSURE(j.size() == i.size());
  std::size_t d = 0;
  for (std::size_t k = 0; k < j.size(); ++k) {
    if (!j.entries_[k].has_value() || *j.entries_[k] != i[k]) ++d;
  }
  return d;
}

std::string View::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    if (entries_[i].has_value()) {
      os << *entries_[i];
    } else {
      os << "⊥";
    }
  }
  os << "]";
  return os.str();
}

}  // namespace dex
