#include "consensus/view.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace dex {

InputVector InputVector::uniform(std::size_t n, Value v) {
  return InputVector(std::vector<Value>(n, v));
}

View InputVector::as_view() const {
  View j(size());
  for (std::size_t i = 0; i < size(); ++i) j.set(i, values_[i]);
  return j;
}

std::string InputVector::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << values_[i];
  }
  os << "]";
  return os.str();
}

std::size_t FreqStats::count_of(Value v) const {
  const auto it = counts_.find(v);
  return it == counts_.end() ? 0 : it->second;
}

FreqStats FreqStats::of(const InputVector& input) {
  FreqStats s;
  for (const Value v : input.values()) ++s.counts_[v];
  s.reselect();
  return s;
}

void FreqStats::promote(Value v, std::size_t c) {
  // Invariant on entry: first_/second_ were correct before v's count rose
  // from c-1 to c. Counts only move in ±1 steps, so v can overtake at most
  // one rank per call and every case below is a constant-time comparison.
  if (!first_.has_value()) {
    first_ = v;
    first_count_ = c;
    return;
  }
  if (v == *first_) {
    first_count_ = c;
    return;
  }
  if (c > first_count_ || (c == first_count_ && v > *first_)) {
    // v overtakes 1st; the dethroned 1st competes for 2nd place.
    const Value old_first = *first_;
    const std::size_t old_count = first_count_;
    first_ = v;
    first_count_ = c;
    if ((second_.has_value() && *second_ == v) || !second_.has_value() ||
        old_count > second_count_ ||
        (old_count == second_count_ && old_first > *second_)) {
      second_ = old_first;
      second_count_ = old_count;
    }
    return;
  }
  if (second_.has_value() && v == *second_) {
    second_count_ = c;
    return;
  }
  if (!second_.has_value() || c > second_count_ ||
      (c == second_count_ && v > *second_)) {
    second_ = v;
    second_count_ = c;
  }
}

void FreqStats::reselect() {
  first_.reset();
  second_.reset();
  first_count_ = 0;
  second_count_ = 0;
  // 1st(J): most frequent; ties broken toward the larger value (paper §3.3).
  for (const auto& [v, c] : counts_) {
    if (!first_ || c > first_count_ || (c == first_count_ && v > *first_)) {
      first_ = v;
      first_count_ = c;
    }
  }
  // 2nd(J) = 1st(Ĵ): same rule over the remaining values.
  for (const auto& [v, c] : counts_) {
    if (v == first_) continue;
    if (!second_ || c > second_count_ || (c == second_count_ && v > *second_)) {
      second_ = v;
      second_count_ = c;
    }
  }
}

void View::stat_add(Value v) { stats_.promote(v, ++stats_.counts_[v]); }

void View::stat_remove(Value v) {
  const auto it = stats_.counts_.find(v);
  DEX_ENSURE_MSG(it != stats_.counts_.end() && it->second > 0,
                 "removing a value the stats never saw");
  if (--it->second == 0) stats_.counts_.erase(it);
  // A removal can demote 1st or 2nd below values the cache does not rank;
  // rebuild from the counts. Engines never remove for correct senders, so
  // the per-message amortized cost stays O(1).
  stats_.reselect();
}

void View::set(std::size_t i, Value v) {
  DEX_ENSURE_MSG(i < entries_.size(), "view index out of range");
  if (!entries_[i].has_value()) {
    ++known_;
    entries_[i] = v;
    stat_add(v);
    return;
  }
  const Value old = *entries_[i];
  if (old == v) return;
  entries_[i] = v;
  stat_remove(old);
  stat_add(v);
}

void View::clear(std::size_t i) {
  DEX_ENSURE_MSG(i < entries_.size(), "view index out of range");
  if (!entries_[i].has_value()) return;
  --known_;
  const Value old = *entries_[i];
  entries_[i].reset();
  stat_remove(old);
}

std::size_t View::count_of(Value v) const { return stats_.count_of(v); }

FreqStats View::freq_recompute() const {
  FreqStats s;
  for (const auto& e : entries_) {
    if (e.has_value()) ++s.counts_[*e];
  }
  s.reselect();
  return s;
}

bool View::contained_in(const View& other) const {
  DEX_ENSURE(size() == other.size());
  for (std::size_t i = 0; i < size(); ++i) {
    if (entries_[i].has_value() &&
        (!other.entries_[i].has_value() || *entries_[i] != *other.entries_[i])) {
      return false;
    }
  }
  return true;
}

std::size_t View::dist(const View& a, const View& b) {
  DEX_ENSURE(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.entries_[i] != b.entries_[i]) ++d;
  }
  return d;
}

std::size_t View::dist(const View& j, const InputVector& i) {
  DEX_ENSURE(j.size() == i.size());
  std::size_t d = 0;
  for (std::size_t k = 0; k < j.size(); ++k) {
    if (!j.entries_[k].has_value() || *j.entries_[k] != i[k]) ++d;
  }
  return d;
}

std::string View::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    if (entries_[i].has_value()) {
      os << *entries_[i];
    } else {
      os << "⊥";
    }
  }
  os << "]";
  return os.str();
}

}  // namespace dex
