// DexEngine — the paper's algorithm (Figure 1), generic over a legal
// condition-sequence pair.
//
//   Upon Propose(v):    J1[i] ← v; J2[i] ← v; P-Send(v); Id-Send(v).
//   Upon P-Receive(vj): J1[j] ← vj;
//                       if |J1| ≥ n−t ∧ P1(J1) ∧ ¬decided → Decide(F(J1))   (1 step)
//   Upon Id-Receive(vj): J2[j] ← vj;
//                       if |J2| ≥ n−t ∧ ¬proposed → UC_propose(F(J2))
//                       if |J2| ≥ n−t ∧ P2(J2) ∧ ¬decided → Decide(F(J2))  (2 steps)
//   Upon UC_decide(v):  if ¬decided → Decide(v)
//
// Unlike prior one-step Byzantine algorithms that evaluate their fast-path
// predicate once at the n−t threshold, DEX keeps folding in messages from all
// correct processes and re-evaluates on every arrival — "the real secret of
// its ability to provide fast termination for more number of inputs" (§4).
#pragma once

#include <memory>
#include <optional>

#include "consensus/condition/pair.hpp"
#include "consensus/decision.hpp"
#include "consensus/idb/idb_engine.hpp"
#include "consensus/message.hpp"
#include "consensus/underlying/underlying.hpp"
#include "consensus/view.hpp"
#include "metrics/metrics.hpp"

namespace dex {

struct DexConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcessId self = kNoProcess;
  InstanceId instance = 0;

  // --- ablation switches (benchmarking the paper's design choices) ---
  /// When false, each fast-path predicate is evaluated exactly once, at the
  /// moment its view first reaches n−t entries (BOSCO-style), instead of on
  /// every later arrival. Quantifies §4's claim that collecting messages
  /// from ALL correct processes is "the real secret" of DEX's coverage.
  bool continuous_reevaluation = true;
  /// When false, the two-step scheme (lines 16-18) is disabled — a plain
  /// one-step algorithm with a UC fallback. Quantifies double expedition.
  bool enable_two_step = true;

  /// FAULT INJECTION FOR THE VERIFICATION PLANE — never set in production.
  /// Lowers the one-step view threshold from n−t to n−t−skew, the classic
  /// quorum off-by-one. Exists so src/check can prove its oracles catch a
  /// planted safety bug (a one-step decide on too few plain proposals trips
  /// the I2 causal invariant, and on contested inputs breaks Agreement).
  std::size_t debug_quorum_skew = 0;

  /// Instrumentation sink (dex_* series: decision-path counts and
  /// steps-to-decision). A disabled scope records nothing.
  metrics::MetricsScope metrics;
};

class DexEngine {
 public:
  /// `idb` carries the two-step channel and `uc` is the fallback; both are
  /// owned by the enclosing stack and must outlive the engine.
  DexEngine(DexConfig cfg, std::shared_ptr<const ConditionPair> pair,
            IdbEngine* idb, UnderlyingConsensus* uc, Outbox* outbox);

  /// Figure 1, lines 1-4.
  void propose(Value v);

  /// Figure 1, lines 5-9 (the P-Receive handler). First value per sender
  /// wins; later (possibly equivocating) rewrites are ignored.
  void on_plain_proposal(ProcessId src, Value v);

  /// Figure 1, lines 10-18 (the Id-Receive handler).
  void on_idb_proposal(ProcessId origin, Value v);

  /// Figure 1, lines 19-22. The stack calls this when the underlying
  /// consensus reports a decision.
  void on_uc_decided(Value v, std::uint32_t uc_rounds);

  [[nodiscard]] const std::optional<Decision>& decision() const { return decision_; }
  [[nodiscard]] bool has_proposed_to_uc() const { return proposed_; }

  // Introspection for tests and the trace bench.
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const View& j1() const { return j1_; }
  [[nodiscard]] const View& j2() const { return j2_; }
  [[nodiscard]] const ConditionPair& pair() const { return *pair_; }

 private:
  void decide(Value v, DecisionPath path, std::uint32_t uc_rounds);

  DexConfig cfg_;
  std::shared_ptr<const ConditionPair> pair_;
  IdbEngine* idb_;
  UnderlyingConsensus* uc_;
  Outbox* outbox_;

  View j1_;
  View j2_;
  bool started_ = false;
  bool proposed_ = false;  // proposed_i in Figure 1
  bool j1_evaluated_ = false;  // single-shot ablation bookkeeping
  bool j2_evaluated_ = false;
  bool j1_threshold_seen_ = false;  // trace: first |J1| >= n-t crossing
  bool j2_threshold_seen_ = false;
  std::optional<Decision> decision_;

  // Exported series, indexed by DecisionPath (null when metrics disabled).
  metrics::Counter* m_decisions_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_uc_proposals_ = nullptr;
  metrics::HistogramMetric* m_steps_ = nullptr;
};

}  // namespace dex
