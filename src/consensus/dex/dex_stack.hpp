// DexStack — a full DEX process: DexEngine + IdbEngine + underlying
// consensus behind the ConsensusProcess interface.
#pragma once

#include <memory>

#include "consensus/condition/pair.hpp"
#include "consensus/dex/dex_engine.hpp"
#include "consensus/evidence.hpp"
#include "consensus/stack_base.hpp"

namespace dex {

class DexStack final : public StackBase {
 public:
  /// Production stack: RandomizedConsensus fallback with a seeded common coin.
  DexStack(const StackConfig& cfg, std::shared_ptr<const ConditionPair> pair);
  /// Custom underlying consensus (tests inject OracleConsensus).
  DexStack(const StackConfig& cfg, std::shared_ptr<const ConditionPair> pair,
           UcFactory uc_factory);

  void propose(Value v) override;
  [[nodiscard]] const std::optional<Decision>& decision() const override {
    return shed_ ? shed_decision_ : engine_->decision();
  }
  [[nodiscard]] std::uint32_t logical_steps() const override;
  [[nodiscard]] bool halted() const override;
  [[nodiscard]] std::string algorithm() const override;
  void release_decided_state() override;

  /// The DEX engine. Unavailable after release_decided_state().
  [[nodiscard]] DexEngine& engine() { return *engine_; }
  [[nodiscard]] bool released() const { return shed_; }
  /// Byzantine-evidence audit trail assembled from this process's own
  /// observations (proofs of misbehavior; see evidence.hpp).
  [[nodiscard]] const EvidenceCollector& evidence() const { return evidence_; }

 protected:
  void handle_plain(ProcessId src, const Message& msg) override;
  void handle_idb(const IdbDelivery& delivery) override;
  void check_uc_decision() override;

 private:
  std::shared_ptr<const ConditionPair> pair_;
  std::unique_ptr<DexEngine> engine_;
  EvidenceCollector evidence_{0};  // re-initialized in the constructor
  bool uc_decision_seen_ = false;

  // Husk state after release_decided_state(): the decision outlives the
  // engine, and the remaining flags reproduce the engine's residual wire
  // behaviour (a late propose into a decided slot still broadcasts).
  bool shed_ = false;
  bool shed_started_ = false;
  std::optional<Decision> shed_decision_;
  std::uint32_t shed_steps_ = 0;
};

}  // namespace dex
