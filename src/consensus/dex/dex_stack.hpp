// DexStack — a full DEX process: DexEngine + IdbEngine + underlying
// consensus behind the ConsensusProcess interface.
#pragma once

#include <memory>

#include "consensus/condition/pair.hpp"
#include "consensus/dex/dex_engine.hpp"
#include "consensus/evidence.hpp"
#include "consensus/stack_base.hpp"

namespace dex {

class DexStack final : public StackBase {
 public:
  /// Production stack: RandomizedConsensus fallback with a seeded common coin.
  DexStack(const StackConfig& cfg, std::shared_ptr<const ConditionPair> pair);
  /// Custom underlying consensus (tests inject OracleConsensus).
  DexStack(const StackConfig& cfg, std::shared_ptr<const ConditionPair> pair,
           UcFactory uc_factory);

  void propose(Value v) override { engine_->propose(v); }
  [[nodiscard]] const std::optional<Decision>& decision() const override {
    return engine_->decision();
  }
  [[nodiscard]] std::uint32_t logical_steps() const override;
  [[nodiscard]] bool halted() const override;
  [[nodiscard]] std::string algorithm() const override;

  [[nodiscard]] DexEngine& engine() { return *engine_; }
  /// Byzantine-evidence audit trail assembled from this process's own
  /// observations (proofs of misbehavior; see evidence.hpp).
  [[nodiscard]] const EvidenceCollector& evidence() const { return evidence_; }

 protected:
  void handle_plain(ProcessId src, const Message& msg) override;
  void handle_idb(const IdbDelivery& delivery) override;
  void check_uc_decision() override;

 private:
  std::shared_ptr<const ConditionPair> pair_;
  std::unique_ptr<DexEngine> engine_;
  EvidenceCollector evidence_{0};  // re-initialized in the constructor
  bool uc_decision_seen_ = false;
};

}  // namespace dex
