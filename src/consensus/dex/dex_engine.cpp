#include "consensus/dex/dex_engine.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace dex {

DexEngine::DexEngine(DexConfig cfg, std::shared_ptr<const ConditionPair> pair,
                     IdbEngine* idb, UnderlyingConsensus* uc, Outbox* outbox)
    : cfg_(cfg),
      pair_(std::move(pair)),
      idb_(idb),
      uc_(uc),
      outbox_(outbox),
      j1_(cfg.n),
      j2_(cfg.n) {
  DEX_ENSURE(pair_ != nullptr && idb_ != nullptr && uc_ != nullptr && outbox_ != nullptr);
  DEX_ENSURE(cfg_.self >= 0 && static_cast<std::size_t>(cfg_.self) < cfg_.n);
  DEX_ENSURE_MSG(pair_->n() == cfg_.n && pair_->t() == cfg_.t,
                 "condition pair sized for a different (n, t)");
  DEX_ENSURE_MSG(cfg_.n >= pair_->min_processes(cfg_.t),
                 "n below the pair's resilience requirement");
  if (cfg_.metrics.enabled()) {
    for (const DecisionPath p :
         {DecisionPath::kOneStep, DecisionPath::kTwoStep,
          DecisionPath::kUnderlying}) {
      m_decisions_[static_cast<std::size_t>(p)] = cfg_.metrics.counter(
          "dex_decisions_total", {{"path", decision_path_metric_label(p)}});
    }
    m_uc_proposals_ = cfg_.metrics.counter("dex_uc_proposals_total");
    m_steps_ = cfg_.metrics.histogram("dex_steps_to_decision");
  }
}

void DexEngine::propose(Value v) {
  if (started_) return;
  started_ = true;
  const auto self = static_cast<std::size_t>(cfg_.self);
  j1_.set(self, v);
  j2_.set(self, v);

  // P-Send(v) to all processes (one-step channel).
  Message plain;
  plain.kind = MsgKind::kPlain;
  plain.instance = cfg_.instance;
  plain.tag = chan::kDexProposalPlain;
  plain.payload = ValuePayload{v}.to_bytes();
  outbox_->broadcast(std::move(plain));

  // Id-Send(v) to all processes (two-step channel).
  idb_->id_send(chan::kDexProposalIdb, ValuePayload{v}.to_bytes());
}

void DexEngine::on_plain_proposal(ProcessId src, Value v) {
  if (src < 0 || static_cast<std::size_t>(src) >= cfg_.n) return;
  const auto idx = static_cast<std::size_t>(src);
  // First value per sender wins (a later, possibly equivocating rewrite is
  // ignored) — but the threshold check still runs on every reception, as in
  // Figure 1's "Upon P-Receive" handler (self-delivery included: with
  // degenerate quorums the own proposal alone can satisfy |J1| >= n-t).
  if (!j1_.has(idx)) j1_.set(idx, v);
  if (j1_.known_count() < cfg_.n - cfg_.t) return;
  // Ablation: without continuous re-evaluation, only the first n−t-sized
  // view is consulted.
  if (!cfg_.continuous_reevaluation && j1_evaluated_) return;
  j1_evaluated_ = true;
  if (!decision_.has_value() && pair_->p1(j1_)) {
    decide(pair_->f(j1_), DecisionPath::kOneStep, 0);
  }
}

void DexEngine::on_idb_proposal(ProcessId origin, Value v) {
  if (origin < 0 || static_cast<std::size_t>(origin) >= cfg_.n) return;
  const auto idx = static_cast<std::size_t>(origin);
  if (!j2_.has(idx)) j2_.set(idx, v);

  if (j2_.known_count() < cfg_.n - cfg_.t) return;
  if (!proposed_) {
    proposed_ = true;
    metrics::inc(m_uc_proposals_);
    uc_->propose(pair_->f(j2_));
  }
  if (!cfg_.enable_two_step) return;  // ablation: one-step only
  if (!cfg_.continuous_reevaluation && j2_evaluated_) return;
  j2_evaluated_ = true;
  if (!decision_.has_value() && pair_->p2(j2_)) {
    decide(pair_->f(j2_), DecisionPath::kTwoStep, 0);
  }
}

void DexEngine::on_uc_decided(Value v, std::uint32_t uc_rounds) {
  if (!decision_.has_value()) {
    decide(v, DecisionPath::kUnderlying, uc_rounds);
  }
}

void DexEngine::decide(Value v, DecisionPath path, std::uint32_t uc_rounds) {
  decision_ = Decision{v, path, uc_rounds};
  metrics::inc(m_decisions_[static_cast<std::size_t>(path)]);
  if (m_steps_ != nullptr) {
    // Same accounting as DexStack::logical_steps: one IDB step = two plain
    // steps; the fallback pays the J2 prefix plus its own steps.
    std::uint32_t steps = 1;
    if (path == DecisionPath::kTwoStep) steps = 2;
    if (path == DecisionPath::kUnderlying) steps = 2 + uc_->logical_steps();
    m_steps_->observe(steps);
  }
  DEX_LOG(kDebug, "dex") << "p" << cfg_.self << " decided " << v << " via "
                         << decision_path_name(path);
}

}  // namespace dex
