#include "consensus/dex/dex_engine.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dex {

DexEngine::DexEngine(DexConfig cfg, std::shared_ptr<const ConditionPair> pair,
                     IdbEngine* idb, UnderlyingConsensus* uc, Outbox* outbox)
    : cfg_(cfg),
      pair_(std::move(pair)),
      idb_(idb),
      uc_(uc),
      outbox_(outbox),
      j1_(cfg.n),
      j2_(cfg.n) {
  DEX_ENSURE(pair_ != nullptr && idb_ != nullptr && uc_ != nullptr && outbox_ != nullptr);
  DEX_ENSURE(cfg_.self >= 0 && static_cast<std::size_t>(cfg_.self) < cfg_.n);
  DEX_ENSURE_MSG(pair_->n() == cfg_.n && pair_->t() == cfg_.t,
                 "condition pair sized for a different (n, t)");
  DEX_ENSURE_MSG(cfg_.n >= pair_->min_processes(cfg_.t),
                 "n below the pair's resilience requirement");
  if (cfg_.metrics.enabled()) {
    for (const DecisionPath p :
         {DecisionPath::kOneStep, DecisionPath::kTwoStep,
          DecisionPath::kUnderlying}) {
      m_decisions_[static_cast<std::size_t>(p)] = cfg_.metrics.counter(
          "dex_decisions_total", {{"path", decision_path_metric_label(p)}});
    }
    m_uc_proposals_ = cfg_.metrics.counter("dex_uc_proposals_total");
    m_steps_ = cfg_.metrics.histogram("dex_steps_to_decision");
  }
}

void DexEngine::propose(Value v) {
  if (started_) return;
  started_ = true;
  const auto self = static_cast<std::size_t>(cfg_.self);
  j1_.set(self, v);
  j2_.set(self, v);
  if (trace::on()) {
    trace::span_begin("dex", "instance",
                      {.proc = cfg_.self, .instance = cfg_.instance, .a = v});
  }

  // P-Send(v) to all processes (one-step channel).
  Message plain;
  plain.kind = MsgKind::kPlain;
  plain.instance = cfg_.instance;
  plain.tag = chan::kDexProposalPlain;
  plain.payload = ValuePayload{v}.to_bytes();
  outbox_->broadcast(std::move(plain));

  // Id-Send(v) to all processes (two-step channel).
  idb_->id_send(chan::kDexProposalIdb, ValuePayload{v}.to_bytes());
}

void DexEngine::on_plain_proposal(ProcessId src, Value v) {
  if (src < 0 || static_cast<std::size_t>(src) >= cfg_.n) return;
  const auto idx = static_cast<std::size_t>(src);
  // First value per sender wins (a later, possibly equivocating rewrite is
  // ignored) — but the threshold check still runs on every reception, as in
  // Figure 1's "Upon P-Receive" handler (self-delivery included: with
  // degenerate quorums the own proposal alone can satisfy |J1| >= n-t).
  if (!j1_.has(idx)) {
    j1_.set(idx, v);
    if (trace::on(trace::kVerbose)) {
      trace::instant("dex", "j1.set",
                     {.proc = cfg_.self,
                      .peer = src,
                      .instance = cfg_.instance,
                      .a = v,
                      .b = static_cast<std::int64_t>(j1_.known_count())});
    }
  }
  // debug_quorum_skew is the verification plane's planted bug (see DexConfig).
  if (j1_.known_count() + cfg_.debug_quorum_skew < cfg_.n - cfg_.t) return;
  if (!j1_threshold_seen_) {
    j1_threshold_seen_ = true;
    if (trace::on()) {
      trace::instant("dex", "j1.threshold",
                     {.proc = cfg_.self,
                      .instance = cfg_.instance,
                      .a = static_cast<std::int64_t>(j1_.known_count())});
    }
  }
  // Ablation: without continuous re-evaluation, only the first n−t-sized
  // view is consulted.
  if (!cfg_.continuous_reevaluation && j1_evaluated_) return;
  j1_evaluated_ = true;
  if (!decision_.has_value() && pair_->p1(j1_)) {
    const Value decided = pair_->f(j1_);
    if (trace::on()) {
      trace::instant("dex", "c1.hit",
                     {.proc = cfg_.self,
                      .instance = cfg_.instance,
                      .a = decided,
                      .b = static_cast<std::int64_t>(j1_.known_count())});
    }
    decide(decided, DecisionPath::kOneStep, 0);
  }
}

void DexEngine::on_idb_proposal(ProcessId origin, Value v) {
  if (origin < 0 || static_cast<std::size_t>(origin) >= cfg_.n) return;
  const auto idx = static_cast<std::size_t>(origin);
  if (!j2_.has(idx)) {
    j2_.set(idx, v);
    if (trace::on(trace::kVerbose)) {
      trace::instant("dex", "j2.set",
                     {.proc = cfg_.self,
                      .peer = origin,
                      .instance = cfg_.instance,
                      .a = v,
                      .b = static_cast<std::int64_t>(j2_.known_count())});
    }
  }

  if (j2_.known_count() < cfg_.n - cfg_.t) return;
  if (!j2_threshold_seen_) {
    j2_threshold_seen_ = true;
    if (trace::on()) {
      trace::instant("dex", "j2.threshold",
                     {.proc = cfg_.self,
                      .instance = cfg_.instance,
                      .a = static_cast<std::int64_t>(j2_.known_count())});
    }
  }
  if (!proposed_) {
    proposed_ = true;
    metrics::inc(m_uc_proposals_);
    const Value fallback = pair_->f(j2_);
    if (trace::on()) {
      trace::span_begin("dex", "fallback",
                        {.proc = cfg_.self, .instance = cfg_.instance,
                         .a = fallback});
      trace::instant("dex", "uc.propose",
                     {.proc = cfg_.self, .instance = cfg_.instance,
                      .a = fallback});
    }
    uc_->propose(fallback);
  }
  if (!cfg_.enable_two_step) return;  // ablation: one-step only
  if (!cfg_.continuous_reevaluation && j2_evaluated_) return;
  j2_evaluated_ = true;
  if (!decision_.has_value() && pair_->p2(j2_)) {
    const Value decided = pair_->f(j2_);
    if (trace::on()) {
      trace::instant("dex", "c2.hit",
                     {.proc = cfg_.self,
                      .instance = cfg_.instance,
                      .a = decided,
                      .b = static_cast<std::int64_t>(j2_.known_count())});
    }
    decide(decided, DecisionPath::kTwoStep, 0);
  }
}

void DexEngine::on_uc_decided(Value v, std::uint32_t uc_rounds) {
  if (trace::on()) {
    trace::instant("dex", "uc.decide",
                   {.proc = cfg_.self, .instance = cfg_.instance,
                    .a = v, .b = uc_rounds});
  }
  if (!decision_.has_value()) {
    decide(v, DecisionPath::kUnderlying, uc_rounds);
  }
}

void DexEngine::decide(Value v, DecisionPath path, std::uint32_t uc_rounds) {
  decision_ = Decision{v, path, uc_rounds};
  metrics::inc(m_decisions_[static_cast<std::size_t>(path)]);
  // Same accounting as DexStack::logical_steps: one IDB step = two plain
  // steps; the fallback pays the J2 prefix plus its own steps.
  std::uint32_t steps = 1;
  if (path == DecisionPath::kTwoStep) steps = 2;
  if (path == DecisionPath::kUnderlying) steps = 2 + uc_->logical_steps();
  if (m_steps_ != nullptr) m_steps_->observe(steps);
  if (trace::on()) {
    const auto path_arg = static_cast<std::int64_t>(path);
    if (proposed_) {
      // The fallback is moot once any path decides; close its span here so
      // every fallback that started before the decision has an end.
      trace::span_end("dex", "fallback",
                      {.proc = cfg_.self, .instance = cfg_.instance,
                       .a = v, .b = path_arg, .c = uc_rounds});
    }
    trace::span_end("dex", "instance",
                    {.proc = cfg_.self, .instance = cfg_.instance,
                     .a = v, .b = path_arg, .c = steps});
  }
  DEX_LOG(kDebug, "dex") << "p" << cfg_.self << " decided " << v << " via "
                         << decision_path_name(path);
}

}  // namespace dex
