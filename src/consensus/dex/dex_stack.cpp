#include "consensus/dex/dex_stack.hpp"

#include "common/assert.hpp"

namespace dex {

DexStack::DexStack(const StackConfig& cfg, std::shared_ptr<const ConditionPair> pair)
    : DexStack(cfg, std::move(pair), default_uc_factory()) {}

DexStack::DexStack(const StackConfig& cfg, std::shared_ptr<const ConditionPair> pair,
                   UcFactory uc_factory)
    : StackBase(cfg, std::move(uc_factory)),
      pair_(std::move(pair)),
      evidence_(cfg.n) {
  DexConfig dc;
  dc.n = cfg_.n;
  dc.t = cfg_.t;
  dc.self = cfg_.self;
  dc.instance = cfg_.instance;
  dc.continuous_reevaluation = cfg_.dex_continuous_reevaluation;
  dc.enable_two_step = cfg_.dex_enable_two_step;
  dc.debug_quorum_skew = cfg_.debug_quorum_skew;
  dc.metrics = cfg_.metrics;
  engine_ = std::make_unique<DexEngine>(dc, pair_, &idb_, uc_.get(), &outbox_);
}

void DexStack::propose(Value v) {
  if (!shed_) {
    engine_->propose(v);
    return;
  }
  // Late proposal into a husk. Reproduce the engine's wire behaviour exactly:
  // a decided-but-uncollected engine still P-Sends and Id-Sends its first
  // proposal (deciding does not stop the broadcast, only further decisions),
  // so the husk must too — collection may not be observable on the wire.
  if (shed_started_) return;
  shed_started_ = true;
  Message plain;
  plain.kind = MsgKind::kPlain;
  plain.instance = cfg_.instance;
  plain.tag = chan::kDexProposalPlain;
  plain.payload = ValuePayload{v}.to_bytes();
  outbox_.broadcast(std::move(plain));
  idb_.id_send(chan::kDexProposalIdb, ValuePayload{v}.to_bytes());
}

void DexStack::release_decided_state() {
  if (shed_) return;
  DEX_ENSURE_MSG(halted(), "releasing state of an instance that has not halted");
  shed_decision_ = engine_->decision();
  shed_steps_ = logical_steps();
  shed_started_ = engine_->started();
  shed_ = true;
  engine_.reset();
  uc_.reset();
  evidence_ = EvidenceCollector(cfg_.n);
  idb_.release_accepted_state();
}

void DexStack::handle_plain(ProcessId src, const Message& msg) {
  if (shed_) return;  // a decided engine absorbs late proposals silently
  if (chan::channel(msg.tag) != chan::kDexProposalPlain) return;
  try {
    const Value v = ValuePayload::from_bytes(msg.payload).v;
    evidence_.note_plain_claim(src, v);
    engine_->on_plain_proposal(src, v);
  } catch (const DecodeError&) {
    // Byzantine garbage on the proposal channel; drop (and record).
    evidence_.note_malformed(src);
  }
}

void DexStack::handle_idb(const IdbDelivery& delivery) {
  if (shed_) return;
  if (chan::channel(delivery.tag) != chan::kDexProposalIdb) return;
  try {
    const Value v = ValuePayload::from_bytes(delivery.payload).v;
    evidence_.note_idb_claim(delivery.origin, v);
    engine_->on_idb_proposal(delivery.origin, v);
  } catch (const DecodeError&) {
    evidence_.note_malformed(delivery.origin);
  }
}

void DexStack::check_uc_decision() {
  if (shed_ || uc_decision_seen_) return;
  if (const auto d = uc_->decision()) {
    uc_decision_seen_ = true;
    engine_->on_uc_decided(*d, uc_->rounds_used());
  }
}

std::uint32_t DexStack::logical_steps() const {
  if (shed_) return shed_steps_;
  const auto& d = engine_->decision();
  if (!d.has_value()) return 0;
  switch (d->path) {
    case DecisionPath::kOneStep: return 1;
    case DecisionPath::kTwoStep: return 2;  // one IDB step = two plain steps
    case DecisionPath::kUnderlying:
      // UC starts after J2 fills (one IDB step = 2 plain steps), then runs.
      return 2 + uc_->logical_steps();
  }
  return 0;
}

bool DexStack::halted() const {
  if (shed_) return true;
  return engine_->decision().has_value() && uc_->halted();
}

std::string DexStack::algorithm() const { return "dex-" + pair_->name(); }

}  // namespace dex
