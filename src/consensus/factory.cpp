#include "consensus/factory.hpp"

#include "common/assert.hpp"
#include "consensus/bosco/bosco.hpp"
#include "consensus/condition/pair.hpp"
#include "consensus/crash/onestep_crash.hpp"
#include "consensus/dex/dex_stack.hpp"

namespace dex {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kDexFreq: return "dex-freq";
    case Algorithm::kDexPrv: return "dex-prv";
    case Algorithm::kBoscoWeak: return "bosco-weak";
    case Algorithm::kBoscoStrong: return "bosco-strong";
    case Algorithm::kCrashOneStep: return "crash-onestep";
    case Algorithm::kUnderlyingOnly: return "underlying-only";
  }
  return "?";
}

std::size_t algorithm_min_n(Algorithm a, std::size_t t) {
  switch (a) {
    case Algorithm::kDexFreq: return 6 * t + 1;
    case Algorithm::kDexPrv: return 5 * t + 1;
    case Algorithm::kBoscoWeak: return 5 * t + 1;
    case Algorithm::kBoscoStrong: return 7 * t + 1;
    case Algorithm::kCrashOneStep: return 5 * t + 1;  // UC bound dominates 3t+1
    case Algorithm::kUnderlyingOnly: return 5 * t + 1;
  }
  return 0;
}

std::unique_ptr<ConsensusProcess> make_stack(Algorithm a, const StackConfig& cfg,
                                             Value privileged) {
  return make_stack(a, cfg, privileged, default_uc_factory());
}

std::unique_ptr<ConsensusProcess> make_stack(Algorithm a, const StackConfig& cfg,
                                             Value privileged,
                                             UcFactory uc_factory) {
  switch (a) {
    case Algorithm::kDexFreq:
      return std::make_unique<DexStack>(cfg, make_frequency_pair(cfg.n, cfg.t),
                                        std::move(uc_factory));
    case Algorithm::kDexPrv:
      return std::make_unique<DexStack>(
          cfg, make_privileged_pair(cfg.n, cfg.t, privileged),
          std::move(uc_factory));
    case Algorithm::kBoscoWeak:
      return std::make_unique<BoscoStack>(cfg, BoscoMode::kWeak,
                                          std::move(uc_factory));
    case Algorithm::kBoscoStrong:
      return std::make_unique<BoscoStack>(cfg, BoscoMode::kStrong,
                                          std::move(uc_factory));
    case Algorithm::kCrashOneStep:
      return std::make_unique<CrashStack>(cfg, std::move(uc_factory));
    case Algorithm::kUnderlyingOnly:
      return std::make_unique<UnderlyingOnlyStack>(cfg, std::move(uc_factory));
  }
  DEX_ENSURE_MSG(false, "unknown algorithm");
  return nullptr;
}

UnderlyingOnlyStack::UnderlyingOnlyStack(const StackConfig& cfg)
    : UnderlyingOnlyStack(cfg, default_uc_factory()) {}

UnderlyingOnlyStack::UnderlyingOnlyStack(const StackConfig& cfg, UcFactory uc_factory)
    : StackBase(cfg, std::move(uc_factory)) {}

void UnderlyingOnlyStack::propose(Value v) { uc_->propose(v); }

void UnderlyingOnlyStack::check_uc_decision() {
  if (decision_.has_value()) return;
  if (const auto d = uc_->decision()) {
    decision_ = Decision{*d, DecisionPath::kUnderlying, uc_->rounds_used()};
  }
}

std::uint32_t UnderlyingOnlyStack::logical_steps() const {
  return decision_.has_value() ? uc_->logical_steps() : 0;
}

bool UnderlyingOnlyStack::halted() const {
  return decision_.has_value() && uc_->halted();
}

}  // namespace dex
