// StackBase — plumbing shared by every protocol stack (DEX, BOSCO, crash
// baseline): an outbox, an identical-broadcast engine, an underlying
// consensus, and the packet demultiplexer that routes envelopes to them.
#pragma once

#include <functional>
#include <memory>

#include "consensus/idb/idb_engine.hpp"
#include "consensus/process.hpp"
#include "consensus/underlying/coin.hpp"
#include "consensus/underlying/randomized.hpp"
#include "metrics/metrics.hpp"

namespace dex {

struct StackConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcessId self = kNoProcess;
  InstanceId instance = 0;
  /// Seed of the shared common coin; all processes of an instance must use
  /// the same value (it is configuration, not a secret).
  std::uint64_t coin_seed = 0xC01Cu;
  std::uint32_t max_uc_rounds = 1000;
  /// DEX ablation switches (see DexConfig); ignored by other stacks.
  bool dex_continuous_reevaluation = true;
  bool dex_enable_two_step = true;
  /// Planted quorum off-by-one for the verification plane (see
  /// DexConfig::debug_quorum_skew); ignored by other stacks. Never set
  /// outside src/check and its tests.
  std::size_t debug_quorum_skew = 0;
  /// Instrumentation sink shared by every engine of this stack; a
  /// default-constructed (disabled) scope costs one branch per event.
  metrics::MetricsScope metrics;
};

/// Builds the underlying consensus for a stack. The default factory creates
/// RandomizedConsensus with a seeded common coin; tests inject OracleConsensus.
using UcFactory = std::function<std::unique_ptr<UnderlyingConsensus>(
    const StackConfig&, IdbEngine*, Outbox*)>;

UcFactory default_uc_factory();

class StackBase : public ConsensusProcess {
 public:
  StackBase(const StackConfig& cfg, UcFactory uc_factory);

  void on_packet(ProcessId src, const Message& msg) final;
  void poll() final { check_uc_decision(); }
  [[nodiscard]] std::vector<Outgoing> drain_outbox() final { return outbox_.drain(); }
  [[nodiscard]] ProcessId self() const final { return cfg_.self; }
  [[nodiscard]] InstanceId instance() const final { return cfg_.instance; }

  [[nodiscard]] IdbEngine& idb() { return idb_; }
  /// The underlying consensus. Unavailable after release_decided_state().
  [[nodiscard]] UnderlyingConsensus& uc() { return *uc_; }
  [[nodiscard]] const StackConfig& config() const { return cfg_; }

 protected:
  /// Handle a plain-channel message that is not for the underlying consensus.
  virtual void handle_plain(ProcessId src, const Message& msg) = 0;
  /// Handle an IDB delivery that is not for the underlying consensus.
  virtual void handle_idb(const IdbDelivery& delivery) = 0;
  /// Propagate a fresh underlying-consensus decision into the top engine.
  virtual void check_uc_decision() = 0;

  StackConfig cfg_;
  Outbox outbox_;
  IdbEngine idb_;
  /// Reset by subclasses that shed decided state (see release_decided_state);
  /// a halted underlying consensus ignores all input, so dropping its traffic
  /// once shed is behaviourally identical.
  std::unique_ptr<UnderlyingConsensus> uc_;
};

}  // namespace dex
