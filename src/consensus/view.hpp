// Views and input vectors — the paper's §3.1 notation.
//
// An *input vector* I ∈ V^n holds the value proposed by every process. A
// *view* J ∈ (V ∪ {⊥})^n is an input vector with at most t entries replaced
// by ⊥ (unknown — message not yet received, or sender silent). Views are what
// each process actually assembles from received messages, and every predicate
// in the condition-based framework is evaluated on views.
//
// Frequency statistics (1st, 2nd, counts, margin) are maintained
// *incrementally* by set()/clear(): each insertion updates 1st/2nd in O(1),
// so the per-reception predicate re-evaluation DEX performs once |J| ≥ n−t
// (Figure 1's "Upon P-Receive") costs O(1) instead of an O(n) recount.
// Removals and overwrites — which engines never perform for correct senders —
// fall back to an O(distinct) reselect, keeping the amortized cost O(1) per
// message. freq_recompute() preserves the from-scratch recount as the
// reference implementation for differential tests and benchmarks.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dex {

class View;

/// An input vector I ∈ V^n: the k-th entry is the value proposed by p_k.
/// Entries of Byzantine processes are "meaningless" per the paper — they are
/// whatever the adversary chose to claim.
class InputVector {
 public:
  InputVector() = default;
  explicit InputVector(std::vector<Value> values) : values_(std::move(values)) {}
  /// All-n processes propose `v`.
  static InputVector uniform(std::size_t n, Value v);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] Value operator[](std::size_t i) const { return values_[i]; }
  Value& operator[](std::size_t i) { return values_[i]; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  /// The full view of this vector (no ⊥ entries).
  [[nodiscard]] View as_view() const;

  bool operator==(const InputVector&) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Value> values_;
};

/// Frequency statistics of a view: the paper's 1st(J), 2nd(J), #_v(J).
///
/// 1st(J) is the most frequent non-⊥ value; ties break toward the largest
/// value. 2nd(J) = 1st(Ĵ) where Ĵ removes every occurrence of 1st(J). If J
/// has no non-⊥ value the stats are empty; if it has exactly one distinct
/// value, second() is nullopt and second_count() is 0 (so the margin
/// `first_count - second_count` degenerates to first_count, matching the
/// convention used by the paper's conditions).
class FreqStats {
 public:
  FreqStats() = default;

  /// Single-pass stats of a full input vector (no View materialization) —
  /// what the condition membership predicates evaluate.
  static FreqStats of(const InputVector& input);

  [[nodiscard]] bool empty() const { return !first_.has_value(); }
  [[nodiscard]] std::optional<Value> first() const { return first_; }
  [[nodiscard]] std::optional<Value> second() const { return second_; }
  [[nodiscard]] std::size_t first_count() const { return first_count_; }
  [[nodiscard]] std::size_t second_count() const { return second_count_; }
  /// #_1st(J) − #_2nd(J); 0 for an empty view.
  [[nodiscard]] std::size_t margin() const { return first_count_ - second_count_; }
  /// #_v(J) for an arbitrary value.
  [[nodiscard]] std::size_t count_of(Value v) const;
  [[nodiscard]] std::size_t distinct_values() const { return counts_.size(); }

  /// Content equality over (1st, 2nd, counts) — differential tests.
  bool operator==(const FreqStats&) const = default;

 private:
  friend class View;

  /// O(1) update for "one more occurrence of v" (count already bumped to c).
  void promote(Value v, std::size_t c);
  /// Full reselect of 1st/2nd from counts_ — the slow path after a removal.
  void reselect();

  std::optional<Value> first_;
  std::optional<Value> second_;
  std::size_t first_count_ = 0;
  std::size_t second_count_ = 0;
  std::unordered_map<Value, std::size_t> counts_;
};

/// A view J ∈ (V ∪ {⊥})^n. Entry i is either a value or ⊥ (unknown).
class View {
 public:
  View() = default;
  /// The all-⊥ view of dimension n (the paper's ⊥^n).
  explicit View(std::size_t n) : entries_(n) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Number of non-⊥ entries — the paper's |J|.
  [[nodiscard]] std::size_t known_count() const { return known_; }
  [[nodiscard]] std::size_t bottom_count() const { return size() - known_; }

  [[nodiscard]] bool has(std::size_t i) const { return entries_[i].has_value(); }
  [[nodiscard]] std::optional<Value> get(std::size_t i) const { return entries_[i]; }

  /// Sets entry i, updating the cached stats in O(1) for a fresh entry.
  /// Overwriting an existing entry is allowed (engines never do it for
  /// correct senders, but test adversaries may); it pays an O(distinct)
  /// reselect.
  void set(std::size_t i, Value v);
  void clear(std::size_t i);

  /// #_v(J): occurrences of v among non-⊥ entries. O(1) (cached counts).
  [[nodiscard]] std::size_t count_of(Value v) const;

  /// Cached frequency statistics (1st, 2nd, counts). O(1) — maintained by
  /// set()/clear(). The reference is invalidated by the next mutation.
  [[nodiscard]] const FreqStats& freq() const { return stats_; }

  /// From-scratch recount (the historical O(n) implementation). Reference
  /// for differential tests and the bench_hotpath baseline; engines use
  /// freq().
  [[nodiscard]] FreqStats freq_recompute() const;

  /// Containment J1 ≤ J2: every non-⊥ entry of J1 equals the same entry of J2.
  [[nodiscard]] bool contained_in(const View& other) const;

  /// Hamming distance treating ⊥ as a regular symbol. Views must have equal
  /// dimension.
  static std::size_t dist(const View& a, const View& b);

  /// Distance to a full input vector: entries where J[i] != I[i], with ⊥
  /// counting as a mismatch (this is dist(J, I) in the paper's lemmas).
  static std::size_t dist(const View& j, const InputVector& i);

  /// Entry-wise equality (the cached stats are a function of the entries).
  bool operator==(const View& other) const { return entries_ == other.entries_; }

  /// e.g. "[3, ⊥, 3, 7]".
  [[nodiscard]] std::string to_string() const;

 private:
  void stat_add(Value v);
  void stat_remove(Value v);

  std::vector<std::optional<Value>> entries_;
  std::size_t known_ = 0;
  FreqStats stats_;
};

}  // namespace dex
