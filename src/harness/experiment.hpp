// Experiment harness: one call = one simulated consensus execution with a
// chosen algorithm, input vector, fault plan, delay model and seed. Both the
// test suite and every evaluation bench build on this, so "what an
// experiment is" lives in exactly one place.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>

#include "consensus/factory.hpp"
#include "consensus/view.hpp"
#include "ops/admin.hpp"
#include "sim/simulation.hpp"
#include "trace/trace.hpp"

namespace dex::harness {

enum class FaultKind {
  kSilent,        // crash before proposing
  kCrashMid,      // crash in the middle of the initial broadcast
  kEquivocate,    // different proposal values to different destinations
  kFixedValue,    // proposes its dealt input value consistently (benign-Byz)
  kNoise,         // sprays random well-formed messages
  kUcSaboteur,    // equivocates AND attacks the underlying consensus rounds
  kDelayedEquivocate,  // silent until traffic is observed, then equivocates
};

/// Canonical spellings, shared by dexsim's --fault flag and the verification
/// plane's genome JSON so a reproducer pastes straight into either.
const char* fault_kind_name(FaultKind kind);
std::optional<FaultKind> parse_fault_kind(const std::string& name);

struct FaultPlan {
  FaultKind kind = FaultKind::kSilent;
  std::size_t count = 0;  // number of faulty processes, <= t
  /// Faulty ids are drawn at random when true, else the highest `count` ids.
  bool random_placement = false;

  // Per-kind knobs.
  Value equivocate_a = 100;
  Value equivocate_b = 101;
  std::size_t crash_reach = 1;
  double noise_rate = 0.5;
  std::size_t noise_budget = 500;
  std::size_t wake_after = 4;  // kDelayedEquivocate trigger threshold
};

struct ExperimentConfig {
  Algorithm algorithm = Algorithm::kDexFreq;
  std::size_t n = 13;
  std::size_t t = 2;
  InputVector input;            // dimension n; faulty entries are "dealt" values
  FaultPlan faults;
  std::uint64_t seed = 1;
  Value privileged = 0;         // for kDexPrv
  std::shared_ptr<sim::DelayModel> delay;  // nullptr → default
  SimTime start_jitter = 0;
  bool stop_when_all_decided = false;
  std::uint64_t max_events = 50'000'000;
  /// Transport batching (SimOptions::batch): coalesce same-destination
  /// messages of one drain into a single wire packet.
  bool batch = false;
  /// DEX ablation switches (forwarded into StackConfig; see DexConfig).
  bool dex_continuous_reevaluation = true;
  bool dex_enable_two_step = true;

  // --- environment faults (forwarded into SimOptions; see sim/faults.hpp).
  // All are asynchrony-legal: safety oracles stay valid under any setting,
  // termination only when everything here is off.
  sim::LinkFaults link_faults;
  std::vector<sim::Partition> partitions;
  std::vector<sim::CrashWindow> crashes;
  /// Planted quorum off-by-one (see DexConfig::debug_quorum_skew). Exists for
  /// the verification plane's catch-the-bug tests; never set elsewhere.
  std::size_t debug_quorum_skew = 0;

  /// Replace the randomized fallback with an idealized ZERO-DEGRADING
  /// underlying consensus (the oracle double): it decides two plain steps
  /// after n−t proposals reach it. This models the paper's "well-behaved
  /// runs" accounting — DEX's worst case becomes 2+2 = 4 steps while the
  /// one-step baselines pay 1+2 = 3 (§1.2 / §5).
  bool use_oracle_uc = false;
  /// One plain communication step's worth of time for the oracle's decision
  /// delivery (it is charged twice).
  SimTime oracle_step_time = 5'000'000;
  /// Optional trace sink (not owned; must outlive the call).
  sim::TraceRecorder* trace = nullptr;
  /// Capture a unified trace (src/trace) of this run: the global tracer is
  /// reset, raised to at least trace::kOn for the duration, restored
  /// afterwards, and its (time, seq)-sorted snapshot lands in
  /// ExperimentResult::trace_events. The tracer is process-global — do not
  /// run capturing experiments concurrently.
  bool capture_trace = false;
  /// Optional metrics sink (not owned; must outlive the call). When set, the
  /// simulator exports sim_* series and every correct process's stack exports
  /// dex_*/idb_* series under a {"process": "p<i>"} label.
  metrics::MetricsRegistry* metrics = nullptr;
  /// Optional ops plane (not owned; must outlive the call). When set, the
  /// run publishes an "experiment" var (algorithm, n, t, seed, status) via
  /// AdminServer::set_var — updated at start and completion.
  ops::AdminServer* admin = nullptr;
};

struct ExperimentResult {
  sim::RunStats stats;
  std::set<ProcessId> faulty;
  /// Unified-tracer snapshot of the run (empty unless capture_trace was set).
  std::vector<trace::Event> trace_events;

  // Aggregates over correct processes.
  std::size_t correct = 0;
  std::size_t decided = 0;
  std::size_t one_step = 0;
  std::size_t two_step = 0;
  std::size_t via_underlying = 0;

  [[nodiscard]] bool all_decided() const { return decided == correct; }
  /// All decisions in one communication step.
  [[nodiscard]] bool all_one_step() const { return one_step == correct; }
  /// All decisions in at most two communication steps.
  [[nodiscard]] bool all_within_two_steps() const {
    return one_step + two_step == correct;
  }
  [[nodiscard]] bool agreement() const { return stats.agreement(); }
  [[nodiscard]] std::optional<Value> decided_value() const {
    return stats.common_value();
  }
};

/// Runs one execution. Faulty processes get strategies per the plan; correct
/// ones get the algorithm's stack proposing their input entry.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// The input restricted to the correct processes (the paper's "correct view"
/// of I) — used to check Unanimity.
std::optional<Value> unanimous_correct_value(const InputVector& input,
                                             const std::set<ProcessId>& faulty);

}  // namespace dex::harness
