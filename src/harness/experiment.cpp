#include "harness/experiment.hpp"

#include "byz/strategies.hpp"
#include "common/assert.hpp"
#include "consensus/underlying/oracle.hpp"

namespace dex::harness {

namespace {

/// The "experiment" var published to the ops plane.
std::string experiment_var(const ExperimentConfig& cfg, const char* status,
                           const ExperimentResult* result) {
  std::string out = "{\"algorithm\":\"";
  out.append(algorithm_name(cfg.algorithm));
  out.append("\",\"n\":").append(std::to_string(cfg.n));
  out.append(",\"t\":").append(std::to_string(cfg.t));
  out.append(",\"faults\":").append(std::to_string(cfg.faults.count));
  out.append(",\"seed\":").append(std::to_string(cfg.seed));
  out.append(",\"status\":\"").append(status).append("\"");
  if (result != nullptr) {
    out.append(",\"decided\":").append(std::to_string(result->decided));
    out.append(",\"correct\":").append(std::to_string(result->correct));
    out.append(",\"one_step\":").append(std::to_string(result->one_step));
  }
  out.push_back('}');
  return out;
}
std::unique_ptr<byz::Strategy> make_strategy(const FaultPlan& plan, Value dealt) {
  switch (plan.kind) {
    case FaultKind::kSilent:
      return std::make_unique<byz::SilentStrategy>();
    case FaultKind::kCrashMid:
      return std::make_unique<byz::CrashMidBroadcastStrategy>(plan.crash_reach);
    case FaultKind::kEquivocate:
      return byz::make_equivocator(plan.equivocate_a, plan.equivocate_b);
    case FaultKind::kFixedValue:
      return byz::make_fixed_proposer(dealt);
    case FaultKind::kNoise:
      return std::make_unique<byz::RandomNoiseStrategy>(plan.noise_rate,
                                                        plan.noise_budget);
    case FaultKind::kUcSaboteur:
      return std::make_unique<byz::UcSaboteurStrategy>(plan.equivocate_a,
                                                       plan.equivocate_b);
    case FaultKind::kDelayedEquivocate:
      return std::make_unique<byz::DelayedEquivocatorStrategy>(
          plan.equivocate_a, plan.equivocate_b, plan.wake_after);
  }
  DEX_ENSURE_MSG(false, "unknown fault kind");
  return nullptr;
}
}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSilent: return "silent";
    case FaultKind::kCrashMid: return "crash-mid";
    case FaultKind::kEquivocate: return "equivocate";
    case FaultKind::kFixedValue: return "fixed";
    case FaultKind::kNoise: return "noise";
    case FaultKind::kUcSaboteur: return "uc-saboteur";
    case FaultKind::kDelayedEquivocate: return "delayed-equivocate";
  }
  return "unknown";
}

std::optional<FaultKind> parse_fault_kind(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kSilent, FaultKind::kCrashMid, FaultKind::kEquivocate,
        FaultKind::kFixedValue, FaultKind::kNoise, FaultKind::kUcSaboteur,
        FaultKind::kDelayedEquivocate}) {
    if (name == fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  DEX_ENSURE(cfg.input.size() == cfg.n);
  DEX_ENSURE_MSG(cfg.faults.count <= cfg.t, "fault plan exceeds resilience bound t");
  DEX_ENSURE_MSG(cfg.n >= algorithm_min_n(cfg.algorithm, cfg.t),
                 "n below the algorithm's resilience requirement");

  if (cfg.admin != nullptr) {
    cfg.admin->set_var("experiment", experiment_var(cfg, "running", nullptr));
  }

  const int prev_trace_level = trace::Tracer::global().level();
  if (cfg.capture_trace) {
    trace::Tracer::global().reset();
    if (prev_trace_level < trace::kOn) {
      trace::Tracer::global().set_level(trace::kOn);
    }
  }

  sim::SimOptions opts;
  opts.seed = cfg.seed;
  opts.delay = cfg.delay;
  opts.start_jitter = cfg.start_jitter;
  opts.stop_when_all_decided = cfg.stop_when_all_decided;
  opts.max_events = cfg.max_events;
  opts.batch = cfg.batch;
  opts.link_faults = cfg.link_faults;
  opts.partitions = cfg.partitions;
  opts.crashes = cfg.crashes;
  opts.trace = cfg.trace;
  opts.metrics = cfg.metrics;
  sim::Simulation simulation(cfg.n, opts);

  // Choose the faulty set.
  std::set<ProcessId> faulty;
  if (cfg.faults.random_placement) {
    Rng placement(mix64(cfg.seed ^ 0xfa011717ULL));
    while (faulty.size() < cfg.faults.count) {
      faulty.insert(static_cast<ProcessId>(placement.next_below(cfg.n)));
    }
  } else {
    for (std::size_t k = 0; k < cfg.faults.count; ++k) {
      faulty.insert(static_cast<ProcessId>(cfg.n - 1 - k));
    }
  }

  // Idealized zero-degrading fallback: a shared oracle hub that fixes the
  // decision once n−t processes proposed and delivers it to each process two
  // plain steps later (via simulator callbacks).
  std::shared_ptr<OracleHub> oracle_hub;
  auto oracle_targets = std::make_shared<std::vector<OracleConsensus*>>();
  if (cfg.use_oracle_uc) {
    oracle_hub = std::make_shared<OracleHub>(cfg.n - cfg.t);
    auto* sim_ptr = &simulation;
    const SimTime two_steps = 2 * cfg.oracle_step_time;
    oracle_hub->on_decision([sim_ptr, oracle_targets, two_steps](Value v) {
      sim_ptr->schedule_at(sim_ptr->now() + two_steps, [oracle_targets, v] {
        for (OracleConsensus* uc : *oracle_targets) uc->deliver_decision(v);
      });
    });
  }

  for (std::size_t i = 0; i < cfg.n; ++i) {
    const auto pid = static_cast<ProcessId>(i);
    const Value dealt = cfg.input[i];
    if (faulty.count(pid) > 0) {
      simulation.attach(
          pid, std::make_unique<byz::ByzantineActor>(
                   cfg.n, cfg.t, pid, /*instance=*/0,
                   mix64(cfg.seed ^ (0xb42ULL + i)), dealt,
                   make_strategy(cfg.faults, dealt)));
    } else {
      StackConfig sc;
      sc.n = cfg.n;
      sc.t = cfg.t;
      sc.self = pid;
      sc.instance = 0;
      sc.coin_seed = mix64(cfg.seed ^ 0xc0135eedULL);  // shared by all processes
      sc.dex_continuous_reevaluation = cfg.dex_continuous_reevaluation;
      sc.dex_enable_two_step = cfg.dex_enable_two_step;
      sc.debug_quorum_skew = cfg.debug_quorum_skew;
      if (cfg.metrics != nullptr) {
        sc.metrics = metrics::MetricsScope(
            cfg.metrics, {{"process", "p" + std::to_string(i)}});
      }
      std::unique_ptr<ConsensusProcess> stack;
      if (cfg.use_oracle_uc) {
        UcFactory factory = [oracle_hub, oracle_targets](const StackConfig& scfg,
                                                         IdbEngine*, Outbox*) {
          auto uc = std::make_unique<OracleConsensus>(scfg.self, oracle_hub);
          oracle_targets->push_back(uc.get());
          return uc;
        };
        stack = make_stack(cfg.algorithm, sc, cfg.privileged, std::move(factory));
      } else {
        stack = make_stack(cfg.algorithm, sc, cfg.privileged);
      }
      simulation.attach(pid, std::make_unique<sim::ProcessActor>(std::move(stack),
                                                                 dealt));
    }
  }

  ExperimentResult result;
  result.stats = simulation.run();
  if (cfg.capture_trace) {
    result.trace_events = trace::Tracer::global().snapshot();
    trace::Tracer::global().set_level(prev_trace_level);
  }
  result.faulty = faulty;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    const auto pid = static_cast<ProcessId>(i);
    if (faulty.count(pid) > 0) continue;
    ++result.correct;
    const auto& rec = result.stats.decisions[i];
    if (!rec.has_value()) continue;
    ++result.decided;
    switch (rec->decision.path) {
      case DecisionPath::kOneStep: ++result.one_step; break;
      case DecisionPath::kTwoStep: ++result.two_step; break;
      case DecisionPath::kUnderlying: ++result.via_underlying; break;
    }
  }
  if (cfg.admin != nullptr) {
    cfg.admin->set_var("experiment", experiment_var(cfg, "done", &result));
  }
  return result;
}

std::optional<Value> unanimous_correct_value(const InputVector& input,
                                             const std::set<ProcessId>& faulty) {
  std::optional<Value> v;
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (faulty.count(static_cast<ProcessId>(i)) > 0) continue;
    if (v.has_value() && *v != input[i]) return std::nullopt;
    v = input[i];
  }
  return v;
}

}  // namespace dex::harness
