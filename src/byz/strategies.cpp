#include "byz/strategies.hpp"

namespace dex::byz {

namespace {
Message plain_msg(InstanceId instance, std::uint64_t tag, Value v) {
  Message m;
  m.kind = MsgKind::kPlain;
  m.instance = instance;
  m.tag = tag;
  m.payload = ValuePayload{v}.to_bytes();
  return m;
}

Message idb_init_msg(InstanceId instance, std::uint64_t tag, ProcessId self, Value v) {
  Message m;
  m.kind = MsgKind::kIdbInit;
  m.instance = instance;
  m.tag = tag;
  m.origin = self;
  m.payload = ValuePayload{v}.to_bytes();
  return m;
}
}  // namespace

void CrashMidBroadcastStrategy::on_start(Value dealt, Env& env) {
  const std::size_t reach = std::min(reach_, env.n());
  for (std::size_t d = 0; d < reach; ++d) {
    const auto dst = static_cast<ProcessId>(d);
    env.send(dst, plain_msg(env.instance(), chan::kDexProposalPlain, dealt));
    env.send(dst, plain_msg(env.instance(), chan::kBoscoVote, dealt));
    env.send(dst, plain_msg(env.instance(), chan::kCrashProp, dealt));
    env.send(dst, idb_init_msg(env.instance(), chan::kDexProposalIdb, env.self(), dealt));
  }
}

void ScriptedProposalStrategy::on_start(Value, Env& env) {
  relay_ = std::make_unique<IdbEngine>(env.n(), env.t(), env.self(), env.instance(),
                                       env.outbox());
  for (std::size_t d = 0; d < env.n(); ++d) {
    const auto dst = static_cast<ProcessId>(d);
    const Value v = plain_script_(dst);
    env.send(dst, plain_msg(env.instance(), chan::kDexProposalPlain, v));
    env.send(dst, plain_msg(env.instance(), chan::kBoscoVote, v));
    env.send(dst, plain_msg(env.instance(), chan::kCrashProp, v));
    env.send(dst, idb_init_msg(env.instance(), chan::kDexProposalIdb, env.self(),
                               idb_script_(dst)));
  }
}

void ScriptedProposalStrategy::on_packet(ProcessId src, const Message& msg, Env&) {
  if (relay_ == nullptr) return;
  if (msg.kind == MsgKind::kIdbInit || msg.kind == MsgKind::kIdbEcho) {
    relay_->on_message(src, msg);
    (void)relay_->take_deliveries();  // the relay never consumes
  }
}

std::unique_ptr<Strategy> make_equivocator(Value a, Value b) {
  return std::make_unique<ScriptedProposalStrategy>(
      [a, b](ProcessId dst) { return (dst % 2 == 0) ? a : b; });
}

std::unique_ptr<Strategy> make_fixed_proposer(Value v) {
  return std::make_unique<ScriptedProposalStrategy>([v](ProcessId) { return v; });
}

void UcSaboteurStrategy::on_start(Value, Env& env) {
  relay_ = std::make_unique<IdbEngine>(env.n(), env.t(), env.self(), env.instance(),
                                       env.outbox());
  // Equivocate on the proposal channels so the contest reaches the fallback.
  for (std::size_t d = 0; d < env.n(); ++d) {
    const auto dst = static_cast<ProcessId>(d);
    const Value v = (d % 2 == 0) ? a_ : b_;
    env.send(dst, plain_msg(env.instance(), chan::kDexProposalPlain, v));
    env.send(dst, plain_msg(env.instance(), chan::kBoscoVote, v));
    env.send(dst, idb_init_msg(env.instance(), chan::kDexProposalIdb, env.self(), v));
  }
}

void UcSaboteurStrategy::sabotage_phase(std::uint32_t round, std::uint8_t phase,
                                        Env& env) {
  if (sent_ >= budget_) return;
  Rng& rng = env.rng();
  const auto tag = chan::uc_phase_tag(round, phase);
  for (std::size_t d = 0; d < env.n() && sent_ < budget_; ++d, ++sent_) {
    const auto dst = static_cast<ProcessId>(d);
    // Conflicting init contents per destination: the IDB layer must mask
    // this into at most one accepted value.
    const Value v = (d % 2 == 0) ? a_ : b_;
    Message init;
    init.kind = MsgKind::kIdbInit;
    init.instance = env.instance();
    init.tag = tag;
    init.origin = env.self();
    init.payload =
        UcPhasePayload{round, phase, phase == 1 || rng.next_bool(), v}.to_bytes();
    env.send(dst, init);
    // Junk echo impersonating support for a random origin's broadcast.
    if (rng.next_bool(0.5)) {
      Message echo;
      echo.kind = MsgKind::kIdbEcho;
      echo.instance = env.instance();
      echo.tag = tag;
      echo.origin = static_cast<ProcessId>(rng.next_below(env.n()));
      echo.payload = UcPhasePayload{round, phase, true,
                                    static_cast<Value>(rng.next_below(4))}
                         .to_bytes();
      env.send(dst, echo);
    }
  }
}

void UcSaboteurStrategy::on_packet(ProcessId src, const Message& msg, Env& env) {
  if (msg.kind != MsgKind::kIdbInit && msg.kind != MsgKind::kIdbEcho) return;
  // Honest relay keeps quorums alive (a silent relay would only help the
  // correct processes by reducing interference).
  if (relay_ != nullptr) {
    relay_->on_message(src, msg);
    (void)relay_->take_deliveries();
  }
  if (chan::channel(msg.tag) == chan::kUcPhase &&
      attacked_tags_.insert(msg.tag).second) {
    const auto seq = chan::seq(msg.tag);
    sabotage_phase(static_cast<std::uint32_t>(seq >> 8),
                   static_cast<std::uint8_t>(seq & 0xff), env);
  }
}

void DelayedEquivocatorStrategy::on_packet(ProcessId src, const Message& msg,
                                           Env& env) {
  if (!woke_) {
    if (++seen_ < wake_after_) return;
    woke_ = true;
    relay_ = std::make_unique<IdbEngine>(env.n(), env.t(), env.self(),
                                         env.instance(), env.outbox());
    // The late split: by now the correct processes have (mostly) filled their
    // views, so these claims land in the two-step/fallback window instead of
    // racing the one-step predicate.
    for (std::size_t d = 0; d < env.n(); ++d) {
      const auto dst = static_cast<ProcessId>(d);
      const Value v = (d % 2 == 0) ? a_ : b_;
      env.send(dst, plain_msg(env.instance(), chan::kDexProposalPlain, v));
      env.send(dst, plain_msg(env.instance(), chan::kBoscoVote, v));
      env.send(dst, plain_msg(env.instance(), chan::kCrashProp, v));
      env.send(dst, idb_init_msg(env.instance(), chan::kDexProposalIdb,
                                 env.self(), v));
    }
    return;
  }
  if (relay_ == nullptr) return;
  if (msg.kind == MsgKind::kIdbInit || msg.kind == MsgKind::kIdbEcho) {
    relay_->on_message(src, msg);
    (void)relay_->take_deliveries();
  }
}

void RandomNoiseStrategy::on_start(Value, Env& env) { spray(env); }

void RandomNoiseStrategy::on_packet(ProcessId, const Message&, Env& env) {
  if (env.rng().next_bool(rate_)) spray(env);
}

void RandomNoiseStrategy::spray(Env& env) {
  if (sent_ >= budget_) return;
  Rng& rng = env.rng();
  const std::size_t burst = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < burst && sent_ < budget_; ++i, ++sent_) {
    Message m;
    m.instance = env.instance();
    const auto roll = rng.next_below(6);
    const Value v = static_cast<Value>(rng.next_below(8));
    switch (roll) {
      case 0:
        m.kind = MsgKind::kPlain;
        m.tag = chan::kDexProposalPlain;
        m.payload = ValuePayload{v}.to_bytes();
        break;
      case 1:
        m.kind = MsgKind::kIdbInit;
        m.tag = chan::kDexProposalIdb;
        m.origin = env.self();
        m.payload = ValuePayload{v}.to_bytes();
        break;
      case 2: {
        m.kind = MsgKind::kIdbEcho;
        m.tag = chan::kDexProposalIdb;
        m.origin = static_cast<ProcessId>(rng.next_below(env.n()));
        m.payload = ValuePayload{v}.to_bytes();
        break;
      }
      case 3: {
        const auto round = static_cast<std::uint32_t>(1 + rng.next_below(3));
        const auto phase = static_cast<std::uint8_t>(1 + rng.next_below(2));
        m.kind = rng.next_bool() ? MsgKind::kIdbInit : MsgKind::kIdbEcho;
        m.tag = chan::uc_phase_tag(round, phase);
        m.origin = m.kind == MsgKind::kIdbInit
                       ? env.self()
                       : static_cast<ProcessId>(rng.next_below(env.n()));
        m.payload = UcPhasePayload{round, phase, rng.next_bool(), v}.to_bytes();
        break;
      }
      case 4:
        m.kind = MsgKind::kPlain;
        m.tag = chan::kUcDecide;
        m.payload = ValuePayload{v}.to_bytes();
        break;
      default: {
        // Garbage bytes on a random channel — exercises the decode guards.
        m.kind = MsgKind::kPlain;
        m.tag = chan::kBoscoVote;
        m.payload.assign(static_cast<std::size_t>(rng.next_below(16)),
                         static_cast<std::byte>(rng.next_below(256)));
        break;
      }
    }
    if (rng.next_bool(0.3)) {
      env.broadcast(std::move(m));
    } else {
      env.send(static_cast<ProcessId>(rng.next_below(env.n())), std::move(m));
    }
  }
}

}  // namespace dex::byz
