// Byzantine behavior strategies.
//
// A strategy owns a network endpoint and may send *anything* to anyone at any
// time — the only powers it lacks are forging the transport-level sender id
// and blocking other processes' links (per the §2.1 model). Strategies drive
// the failure-injection test suite and the adversarial benches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "consensus/message.hpp"
#include "sim/actor.hpp"

namespace dex::byz {

/// Environment handed to a strategy on every callback.
class Env {
 public:
  Env(std::size_t n, std::size_t t, ProcessId self, InstanceId instance, Rng* rng,
      Outbox* outbox)
      : n_(n), t_(t), self_(self), instance_(instance), rng_(rng), outbox_(outbox) {}

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t t() const { return t_; }
  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] Rng& rng() { return *rng_; }

  void send(ProcessId dst, Message msg) { outbox_->send(dst, std::move(msg)); }
  void broadcast(Message msg) { outbox_->broadcast(std::move(msg)); }

  /// For strategies that embed honest protocol machinery (e.g. an identical-
  /// broadcast relay) and need to wire it to this endpoint's outbox.
  [[nodiscard]] Outbox* outbox() { return outbox_; }

 private:
  std::size_t n_;
  std::size_t t_;
  ProcessId self_;
  InstanceId instance_;
  Rng* rng_;
  Outbox* outbox_;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  /// The value the adversary was "dealt" by the input vector (it may ignore it).
  virtual void on_start(Value dealt, Env& env) = 0;
  virtual void on_packet(ProcessId src, const Message& msg, Env& env) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapts a Strategy to the simulator's Actor interface.
class ByzantineActor final : public sim::Actor {
 public:
  ByzantineActor(std::size_t n, std::size_t t, ProcessId self, InstanceId instance,
                 std::uint64_t seed, Value dealt, std::unique_ptr<Strategy> strategy)
      : rng_(seed),
        env_(n, t, self, instance, &rng_, &outbox_),
        dealt_(dealt),
        strategy_(std::move(strategy)) {}

  void start() override { strategy_->on_start(dealt_, env_); }
  void on_packet(ProcessId src, const Message& msg) override {
    strategy_->on_packet(src, msg, env_);
  }
  [[nodiscard]] std::vector<Outgoing> drain() override { return outbox_.drain(); }

 private:
  Rng rng_;
  Outbox outbox_;
  Env env_;
  Value dealt_;
  std::unique_ptr<Strategy> strategy_;
};

}  // namespace dex::byz
