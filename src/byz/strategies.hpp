// Concrete Byzantine strategies for failure injection.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "byz/strategy.hpp"
#include "consensus/idb/idb_engine.hpp"

namespace dex::byz {

/// Says nothing, ever — a process that crashed before proposing. The
/// workhorse for the adaptiveness experiments (f silent faults, f <= t).
class SilentStrategy final : public Strategy {
 public:
  void on_start(Value, Env&) override {}
  void on_packet(ProcessId, const Message&, Env&) override {}
  [[nodiscard]] std::string name() const override { return "silent"; }
};

/// Behaves like a correct proposer but its initial broadcast reaches only the
/// first `reach` destinations — a crash in the middle of the send loop. All
/// later traffic is silence.
class CrashMidBroadcastStrategy final : public Strategy {
 public:
  explicit CrashMidBroadcastStrategy(std::size_t reach) : reach_(reach) {}
  void on_start(Value dealt, Env& env) override;
  void on_packet(ProcessId, const Message&, Env&) override {}
  [[nodiscard]] std::string name() const override { return "crash-mid-broadcast"; }

 private:
  std::size_t reach_;
};

/// Sends per-destination proposal values on every proposal channel (DEX
/// plain, DEX identical-broadcast, BOSCO vote, crash-baseline prop), and
/// honestly relays identical-broadcast traffic so it cannot be told apart
/// from a correct process at the transport level. The classic equivocator is
/// the special case of a two-valued script split across the destination set.
class ScriptedProposalStrategy final : public Strategy {
 public:
  /// `script(dst)` yields the value to claim toward dst.
  using Script = std::function<Value(ProcessId dst)>;
  explicit ScriptedProposalStrategy(Script script)
      : plain_script_(script), idb_script_(std::move(script)) {}
  /// Separate scripts per channel — the cross-channel equivocator that lies
  /// on the plain channel while keeping its identical-broadcast story
  /// deliverable (the shape the evidence collector exists to catch).
  ScriptedProposalStrategy(Script plain_script, Script idb_script)
      : plain_script_(std::move(plain_script)), idb_script_(std::move(idb_script)) {}

  void on_start(Value dealt, Env& env) override;
  void on_packet(ProcessId src, const Message& msg, Env& env) override;
  [[nodiscard]] std::string name() const override { return "scripted-proposal"; }

 private:
  Script plain_script_;
  Script idb_script_;
  std::unique_ptr<IdbEngine> relay_;  // honest relay for others' broadcasts
};

/// Equivocator: value `a` to the first half of the destinations, `b` to the
/// rest (Figure 2's adversary).
std::unique_ptr<Strategy> make_equivocator(Value a, Value b);

/// Proposes `v` to everyone (a "well-behaved Byzantine" that merely ignores
/// its dealt value — used to attack frequency margins).
std::unique_ptr<Strategy> make_fixed_proposer(Value v);

/// Targets the underlying consensus: equivocates on the proposal channels at
/// start, then, for every round/phase it observes on the wire, injects
/// conflicting EST/AUX identical-broadcast inits and junk echoes while
/// relaying other traffic honestly (so it cannot be starved out of quorums).
/// The hardest adversary in the suite for the randomized fallback.
class UcSaboteurStrategy final : public Strategy {
 public:
  UcSaboteurStrategy(Value a, Value b, std::size_t budget = 2000)
      : a_(a), b_(b), budget_(budget) {}

  void on_start(Value dealt, Env& env) override;
  void on_packet(ProcessId src, const Message& msg, Env& env) override;
  [[nodiscard]] std::string name() const override { return "uc-saboteur"; }

 private:
  void sabotage_phase(std::uint32_t round, std::uint8_t phase, Env& env);

  Value a_;
  Value b_;
  std::size_t budget_;
  std::size_t sent_ = 0;
  std::set<std::uint64_t> attacked_tags_;
  std::unique_ptr<IdbEngine> relay_;
};

/// Plays dead through the first `wake_after` deliveries it observes, then
/// equivocates on every proposal channel — the late adversary. By the time it
/// speaks, correct processes have committed their views from n−1 senders, so
/// its split lands on the two-step/fallback window rather than the one-step
/// race the start-time equivocator attacks. Relays identical-broadcast
/// traffic honestly after waking so it cannot be told from a correct-but-slow
/// process at the transport level.
class DelayedEquivocatorStrategy final : public Strategy {
 public:
  DelayedEquivocatorStrategy(Value a, Value b, std::size_t wake_after)
      : a_(a), b_(b), wake_after_(wake_after) {}

  void on_start(Value, Env&) override {}
  void on_packet(ProcessId src, const Message& msg, Env& env) override;
  [[nodiscard]] std::string name() const override { return "delayed-equivocator"; }

 private:
  Value a_;
  Value b_;
  std::size_t wake_after_;
  std::size_t seen_ = 0;
  bool woke_ = false;
  std::unique_ptr<IdbEngine> relay_;
};

/// Sprays random well-formed messages on random channels. `budget` bounds the
/// total number of packets so a noise-vs-noise loop cannot run away.
class RandomNoiseStrategy final : public Strategy {
 public:
  RandomNoiseStrategy(double rate, std::size_t budget)
      : rate_(rate), budget_(budget) {}

  void on_start(Value dealt, Env& env) override;
  void on_packet(ProcessId src, const Message& msg, Env& env) override;
  [[nodiscard]] std::string name() const override { return "random-noise"; }

 private:
  void spray(Env& env);

  double rate_;
  std::size_t budget_;
  std::size_t sent_ = 0;
};

}  // namespace dex::byz
