// Actors — anything attached to a simulated network endpoint: a correct
// protocol stack, a Byzantine strategy, or an application node (SMR replica).
#pragma once

#include <memory>
#include <vector>

#include "consensus/message.hpp"
#include "consensus/process.hpp"

namespace dex::sim {

class Actor {
 public:
  virtual ~Actor() = default;

  /// Invoked once at the actor's (possibly jittered) start time.
  virtual void start() {}

  /// Deliver one packet. `src` is the true network sender.
  virtual void on_packet(ProcessId src, const Message& msg) = 0;

  /// Messages queued since the last drain.
  [[nodiscard]] virtual std::vector<Outgoing> drain() = 0;

  /// The wrapped consensus process, if this actor is one (used by the
  /// simulator to record decisions and detect halting). May return nullptr.
  [[nodiscard]] virtual ConsensusProcess* process() { return nullptr; }
};

/// Adapts a ConsensusProcess into an actor that proposes `proposal` at start.
class ProcessActor final : public Actor {
 public:
  ProcessActor(std::unique_ptr<ConsensusProcess> proc, Value proposal)
      : proc_(std::move(proc)), proposal_(proposal) {}

  void start() override { proc_->propose(proposal_); }
  void on_packet(ProcessId src, const Message& msg) override {
    proc_->on_packet(src, msg);
  }
  [[nodiscard]] std::vector<Outgoing> drain() override {
    return proc_->drain_outbox();
  }
  [[nodiscard]] ConsensusProcess* process() override { return proc_.get(); }

 private:
  std::unique_ptr<ConsensusProcess> proc_;
  Value proposal_;
};

}  // namespace dex::sim
