#include "sim/trace.hpp"

#include <cstring>
#include <sstream>
#include <string_view>

namespace dex::sim {

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kStart: return "start";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kDecide: return "decide";
  }
  return "?";
}

void TraceRecorder::record_start(SimTime at, ProcessId who) {
  TraceEvent e;
  e.at = at;
  e.kind = TraceKind::kStart;
  e.dst = who;
  events_.push_back(e);
}

void TraceRecorder::record_deliver(SimTime at, ProcessId src, ProcessId dst,
                                   const Message& msg) {
  TraceEvent e;
  e.at = at;
  e.kind = TraceKind::kDeliver;
  e.src = src;
  e.dst = dst;
  e.msg_kind = msg.kind;
  e.tag = msg.tag;
  e.instance = msg.instance;
  e.payload_size = msg.payload.size();
  events_.push_back(e);
}

void TraceRecorder::record_decide(SimTime at, ProcessId who,
                                  const Decision& decision) {
  TraceEvent e;
  e.at = at;
  e.kind = TraceKind::kDecide;
  e.dst = who;
  e.decision = decision;
  events_.push_back(e);
}

std::vector<TraceEvent> TraceRecorder::from_backend(
    const std::vector<trace::Event>& snapshot) {
  std::vector<TraceEvent> out;
  for (const trace::Event& ev : snapshot) {
    if (ev.kind != trace::EventKind::kInstant ||
        std::strcmp(ev.cat, "sim") != 0) {
      continue;
    }
    TraceEvent e;
    e.at = static_cast<SimTime>(ev.t);
    if (std::strcmp(ev.name, "start") == 0) {
      e.kind = TraceKind::kStart;
      e.dst = ev.proc;
    } else if (std::strcmp(ev.name, "deliver") == 0) {
      e.kind = TraceKind::kDeliver;
      e.src = ev.peer;
      e.dst = ev.proc;
      e.msg_kind = static_cast<MsgKind>(ev.a);
      e.tag = ev.tag;
      e.instance = ev.instance;
      e.payload_size = static_cast<std::size_t>(ev.b);
    } else if (std::strcmp(ev.name, "decide") == 0) {
      e.kind = TraceKind::kDecide;
      e.dst = ev.proc;
      Decision d;
      d.value = static_cast<Value>(ev.a);
      d.path = static_cast<DecisionPath>(ev.b);
      d.uc_rounds = static_cast<std::uint32_t>(ev.c);
      e.decision = d;
    } else {
      continue;
    }
    out.push_back(e);
  }
  return out;
}

void TraceRecorder::load_backend(const std::vector<trace::Event>& snapshot) {
  events_ = from_backend(snapshot);
}

std::size_t TraceRecorder::count(TraceKind kind) const {
  std::size_t c = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++c;
  }
  return c;
}

std::vector<TraceEvent> TraceRecorder::for_process(ProcessId who) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.dst == who) out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::to_text(std::size_t limit) const {
  std::ostringstream os;
  std::size_t lines = 0;
  for (const auto& e : events_) {
    if (limit != 0 && lines >= limit) {
      os << "... (" << events_.size() - lines << " more events)\n";
      break;
    }
    os << "[" << static_cast<double>(e.at) / 1e6 << "ms] ";
    switch (e.kind) {
      case TraceKind::kStart:
        os << "p" << e.dst << " start";
        break;
      case TraceKind::kDeliver:
        os << "p" << e.src << " -> p" << e.dst << " " << msg_kind_name(e.msg_kind)
           << " tag=0x" << std::hex << e.tag << std::dec << " inst=" << e.instance
           << " |payload|=" << e.payload_size;
        break;
      case TraceKind::kDecide:
        os << "p" << e.dst << " DECIDE " << e.decision->value << " via "
           << decision_path_name(e.decision->path);
        break;
    }
    os << "\n";
    ++lines;
  }
  return os.str();
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "at_ns,kind,src,dst,msg_kind,tag,instance,payload_size,decided_value,"
        "decision_path\n";
  for (const auto& e : events_) {
    os << e.at << "," << csv_escape(trace_kind_name(e.kind)) << "," << e.src
       << "," << e.dst << ",";
    if (e.kind == TraceKind::kDeliver) {
      os << csv_escape(msg_kind_name(e.msg_kind)) << "," << e.tag << ","
         << e.instance << "," << e.payload_size << ",,";
    } else if (e.kind == TraceKind::kDecide) {
      // Decision values are numeric today, but route them through the escaper
      // anyway: a future symbolic value (or a "?" path name) must not be able
      // to smuggle a comma into the row.
      os << ",,,," << csv_escape(std::to_string(e.decision->value)) << ","
         << csv_escape(decision_path_name(e.decision->path));
    } else {
      os << ",,,,,";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dex::sim
