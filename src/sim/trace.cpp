#include "sim/trace.hpp"

#include <sstream>

namespace dex::sim {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kStart: return "start";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kDecide: return "decide";
  }
  return "?";
}

void TraceRecorder::record_start(SimTime at, ProcessId who) {
  TraceEvent e;
  e.at = at;
  e.kind = TraceKind::kStart;
  e.dst = who;
  events_.push_back(e);
}

void TraceRecorder::record_deliver(SimTime at, ProcessId src, ProcessId dst,
                                   const Message& msg) {
  TraceEvent e;
  e.at = at;
  e.kind = TraceKind::kDeliver;
  e.src = src;
  e.dst = dst;
  e.msg_kind = msg.kind;
  e.tag = msg.tag;
  e.instance = msg.instance;
  e.payload_size = msg.payload.size();
  events_.push_back(e);
}

void TraceRecorder::record_decide(SimTime at, ProcessId who,
                                  const Decision& decision) {
  TraceEvent e;
  e.at = at;
  e.kind = TraceKind::kDecide;
  e.dst = who;
  e.decision = decision;
  events_.push_back(e);
}

std::size_t TraceRecorder::count(TraceKind kind) const {
  std::size_t c = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++c;
  }
  return c;
}

std::vector<TraceEvent> TraceRecorder::for_process(ProcessId who) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.dst == who) out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::to_text(std::size_t limit) const {
  std::ostringstream os;
  std::size_t lines = 0;
  for (const auto& e : events_) {
    if (limit != 0 && lines >= limit) {
      os << "... (" << events_.size() - lines << " more events)\n";
      break;
    }
    os << "[" << static_cast<double>(e.at) / 1e6 << "ms] ";
    switch (e.kind) {
      case TraceKind::kStart:
        os << "p" << e.dst << " start";
        break;
      case TraceKind::kDeliver:
        os << "p" << e.src << " -> p" << e.dst << " " << msg_kind_name(e.msg_kind)
           << " tag=0x" << std::hex << e.tag << std::dec << " inst=" << e.instance
           << " |payload|=" << e.payload_size;
        break;
      case TraceKind::kDecide:
        os << "p" << e.dst << " DECIDE " << e.decision->value << " via "
           << decision_path_name(e.decision->path);
        break;
    }
    os << "\n";
    ++lines;
  }
  return os.str();
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "at_ns,kind,src,dst,msg_kind,tag,instance,payload_size,decided_value,"
        "decision_path\n";
  for (const auto& e : events_) {
    os << e.at << "," << trace_kind_name(e.kind) << "," << e.src << "," << e.dst
       << ",";
    if (e.kind == TraceKind::kDeliver) {
      os << msg_kind_name(e.msg_kind) << "," << e.tag << "," << e.instance << ","
         << e.payload_size << ",,";
    } else if (e.kind == TraceKind::kDecide) {
      os << ",,,," << e.decision->value << ","
         << decision_path_name(e.decision->path);
    } else {
      os << ",,,,,";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dex::sim
