#include "sim/simulation.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dex::sim {

bool RunStats::all_decided() const {
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (is_consensus[i] && !decisions[i].has_value()) return false;
  }
  return true;
}

bool RunStats::agreement() const {
  std::optional<Value> seen;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (!is_consensus[i] || !decisions[i].has_value()) continue;
    const Value v = decisions[i]->decision.value;
    if (seen.has_value() && *seen != v) return false;
    seen = v;
  }
  return true;
}

std::optional<Value> RunStats::common_value() const {
  if (!all_decided() || !agreement()) return std::nullopt;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (is_consensus[i] && decisions[i].has_value()) {
      return decisions[i]->decision.value;
    }
  }
  return std::nullopt;
}

std::uint32_t RunStats::max_steps() const {
  std::uint32_t m = 0;
  for (const auto& d : decisions) {
    if (d.has_value()) m = std::max(m, d->steps);
  }
  return m;
}

std::uint32_t RunStats::min_steps() const {
  std::uint32_t m = 0;
  bool any = false;
  for (const auto& d : decisions) {
    if (d.has_value()) {
      m = any ? std::min(m, d->steps) : d->steps;
      any = true;
    }
  }
  return m;
}

SimTime RunStats::last_decision_time() const {
  SimTime t = 0;
  for (const auto& d : decisions) {
    if (d.has_value()) t = std::max(t, d->at);
  }
  return t;
}

Simulation::Simulation(std::size_t n, SimOptions opts)
    : n_(n),
      opts_(std::move(opts)),
      rng_(opts_.seed),
      fault_rng_(mix64(opts_.seed ^ 0xfa417ec7ULL)),
      actors_(n),
      started_(n, false) {
  DEX_ENSURE(n > 0);
  if (!opts_.delay) opts_.delay = default_delay_model();
  faults_enabled_ = opts_.link_faults.any() || !opts_.partitions.empty() ||
                    !opts_.crashes.empty();
  if (opts_.metrics != nullptr) {
    metrics::MetricsRegistry& reg = *opts_.metrics;
    for (const MsgKind k : {MsgKind::kPlain, MsgKind::kIdbInit, MsgKind::kIdbEcho}) {
      const metrics::Labels labels{{"msg_kind", msg_kind_name(k)}};
      m_packets_[static_cast<std::size_t>(k)] =
          &reg.counter("sim_packets_total", labels);
      m_bytes_[static_cast<std::size_t>(k)] =
          &reg.counter("sim_packet_bytes_total", labels);
    }
    for (const DecisionPath p : {DecisionPath::kOneStep, DecisionPath::kTwoStep,
                                 DecisionPath::kUnderlying}) {
      m_decisions_[static_cast<std::size_t>(p)] = &reg.counter(
          "sim_decisions_total", {{"path", decision_path_metric_label(p)}});
      m_path_latency_[static_cast<std::size_t>(p)] = &reg.histogram(
          "dex_decide_latency_ms", {{"path", decision_path_metric_label(p)}});
    }
    m_events_ = &reg.counter("sim_events_total");
    m_wire_packets_ = &reg.counter("sim_wire_packets_total");
    m_wire_bytes_ = &reg.counter("sim_wire_bytes_total");
    if (faults_enabled_) {
      const char* kinds[6] = {"dropped",   "duplicated",  "reordered",
                              "corrupted", "partitioned", "crashed"};
      for (std::size_t k = 0; k < 6; ++k) {
        m_faults_[k] = &reg.counter("sim_faults_total", {{"kind", kinds[k]}});
      }
    }
    m_latency_ = &reg.histogram("sim_decision_latency_ms");
    m_steps_ = &reg.histogram("sim_decision_steps");
    m_end_time_ = &reg.gauge("sim_end_time_ms");
  }
}

void Simulation::attach(ProcessId i, std::unique_ptr<Actor> actor) {
  DEX_ENSURE(i >= 0 && static_cast<std::size_t>(i) < n_);
  DEX_ENSURE_MSG(actors_[static_cast<std::size_t>(i)] == nullptr,
                 "endpoint already attached");
  actors_[static_cast<std::size_t>(i)] = std::move(actor);
}

Actor& Simulation::actor(ProcessId i) {
  DEX_ENSURE(i >= 0 && static_cast<std::size_t>(i) < n_);
  DEX_ENSURE(actors_[static_cast<std::size_t>(i)] != nullptr);
  return *actors_[static_cast<std::size_t>(i)];
}

ConsensusProcess* Simulation::process(ProcessId i) { return actor(i).process(); }

void Simulation::push(SimTime at, EventBody body) {
  queue_.push(Event{at, next_seq_++, std::move(body)});
}

void Simulation::schedule_at(SimTime at, std::function<void()> fn) {
  push(at, FuncEvent{std::move(fn)});
}

void Simulation::inject(ProcessId src, ProcessId dst, Message msg, SimTime at) {
  DEX_ENSURE(dst >= 0 && static_cast<std::size_t>(dst) < n_);
  push(at, DeliverEvent{src, dst, std::move(msg)});
}

void Simulation::record_decision(ProcessId i, RunStats& stats) {
  ConsensusProcess* proc = actors_[static_cast<std::size_t>(i)]->process();
  if (proc == nullptr) return;
  auto& slot = stats.decisions[static_cast<std::size_t>(i)];
  if (slot.has_value()) return;
  if (const auto& d = proc->decision()) {
    slot = DecisionRecord{*d, now_, proc->logical_steps()};
    if (opts_.trace) opts_.trace->record_decide(now_, i, *d);
    if (trace::on()) {
      trace::instant_at(now_, "sim", "decide",
                        {.proc = i,
                         .instance = proc->instance(),
                         .a = d->value,
                         .b = static_cast<std::int64_t>(d->path),
                         .c = static_cast<std::int64_t>(d->uc_rounds)});
    }
    metrics::inc(m_decisions_[static_cast<std::size_t>(d->path)]);
    metrics::observe(m_latency_, static_cast<double>(now_) / 1e6);
    metrics::observe(m_path_latency_[static_cast<std::size_t>(d->path)],
                     static_cast<double>(now_) / 1e6);
    metrics::observe(m_steps_, proc->logical_steps());
    // The three-surface join point: this line, the "sim"/"decide" trace
    // instant above and the dex_decide_latency_ms{path} series all carry the
    // same (proc, instance, path); span names the instance's trace span.
    if (LogLevel::kInfo >= log_level()) {
      LogCtx ctx;
      ctx.proc = i;
      ctx.instance = static_cast<std::int64_t>(proc->instance());
      ctx.path = decision_path_metric_label(d->path);
      ctx.span = "p" + std::to_string(i) + "/i" +
                 std::to_string(proc->instance()) + "/t0/instance";
      detail::LogLine(LogLevel::kInfo, "sim", std::move(ctx))
          << "decided value=" << d->value
          << " steps=" << proc->logical_steps();
    }
  }
}

bool Simulation::topology_cut(ProcessId src, ProcessId dst, RunStats& stats) {
  for (const Partition& p : opts_.partitions) {
    if (p.cuts(now_, src, dst)) {
      ++stats.faults.partitioned;
      metrics::inc(m_faults_[4]);
      return true;
    }
  }
  for (const CrashWindow& c : opts_.crashes) {
    if (c.cuts(now_, src, dst)) {
      ++stats.faults.crashed;
      metrics::inc(m_faults_[5]);
      return true;
    }
  }
  return false;
}

void Simulation::corrupt_payload(Message& msg) {
  if (msg.payload.empty()) return;
  // Rebuild the envelope so no encode-once frame cache survives the flip.
  Message dirty;
  dirty.kind = msg.kind;
  dirty.instance = msg.instance;
  dirty.tag = msg.tag;
  dirty.origin = msg.origin;
  dirty.payload = msg.payload;  // shared; the flip below detaches (COW)
  const auto at = static_cast<std::size_t>(
      fault_rng_.next_below(dirty.payload.size()));
  dirty.payload[at] = dirty.payload[at] ^
                      static_cast<std::byte>(1u << fault_rng_.next_below(8));
  msg = std::move(dirty);
}

void Simulation::enqueue_packet(ProcessId src, ProcessId dst, Message msg,
                                RunStats& stats) {
  if (dst == src) {
    push(now_, DeliverEvent{src, dst, std::move(msg)});
    return;
  }
  if (faults_enabled_) {
    if (topology_cut(src, dst, stats)) return;
    const LinkFaults& lf = opts_.link_faults;
    if (lf.drop > 0 && fault_rng_.next_bool(lf.drop)) {
      ++stats.faults.dropped;
      metrics::inc(m_faults_[0]);
      return;
    }
    if (lf.corrupt > 0 && fault_rng_.next_bool(lf.corrupt)) {
      corrupt_payload(msg);
      ++stats.faults.corrupted;
      metrics::inc(m_faults_[3]);
    }
  }
  SimTime delay = opts_.delay->delay(now_, src, dst, msg, rng_);
  if (faults_enabled_) {
    const LinkFaults& lf = opts_.link_faults;
    if (lf.reorder > 0 && fault_rng_.next_bool(lf.reorder)) {
      delay += fault_rng_.next_below(lf.reorder_delay + 1);
      ++stats.faults.reordered;
      metrics::inc(m_faults_[2]);
    }
    if (lf.duplicate > 0 && fault_rng_.next_bool(lf.duplicate)) {
      // The copy arrives at or after the original (extra fault-RNG skew).
      const SimTime extra = fault_rng_.next_below(lf.reorder_delay + 1);
      push(now_ + delay + extra, DeliverEvent{src, dst, msg});
      ++stats.faults.duplicated;
      metrics::inc(m_faults_[1]);
    }
  }
  push(now_ + delay, DeliverEvent{src, dst, std::move(msg)});
}

void Simulation::pump_actor(ProcessId i, RunStats& stats) {
  if (opts_.batch) {
    pump_actor_batched(i, stats);
    return;
  }
  Actor& a = *actors_[static_cast<std::size_t>(i)];
  for (Outgoing& out : a.drain()) {
    if (out.dst == kBroadcastDst) {
      for (std::size_t d = 0; d < n_; ++d) {
        enqueue_packet(i, static_cast<ProcessId>(d), out.msg, stats);
      }
    } else if (out.dst >= 0 && static_cast<std::size_t>(out.dst) < n_) {
      enqueue_packet(i, out.dst, std::move(out.msg), stats);
    }
    // Out-of-range unicast destinations are dropped (Byzantine nonsense).
  }
  record_decision(i, stats);
}

void Simulation::pump_actor_batched(ProcessId i, RunStats& stats) {
  Actor& a = *actors_[static_cast<std::size_t>(i)];
  // Coalesce this drain per destination, preserving per-destination order
  // (broadcasts fan out into every destination's batch).
  std::vector<std::vector<Message>> per_dst(n_);
  for (Outgoing& out : a.drain()) {
    if (out.dst == kBroadcastDst) {
      for (std::size_t d = 0; d < n_; ++d) per_dst[d].push_back(out.msg);
    } else if (out.dst >= 0 && static_cast<std::size_t>(out.dst) < n_) {
      per_dst[static_cast<std::size_t>(out.dst)].push_back(std::move(out.msg));
    }
    // Out-of-range unicast destinations are dropped (Byzantine nonsense).
  }
  for (std::size_t d = 0; d < n_; ++d) {
    if (per_dst[d].empty()) continue;
    const auto dst = static_cast<ProcessId>(d);
    if (per_dst[d].size() == 1) {
      enqueue_packet(i, dst, std::move(per_dst[d].front()), stats);
      continue;
    }
    enqueue_batch(i, dst, std::move(per_dst[d]), stats);
  }
  record_decision(i, stats);
}

void Simulation::enqueue_batch(ProcessId src, ProcessId dst,
                               std::vector<Message> msgs, RunStats& stats) {
  if (dst == src) {
    push(now_, BatchDeliverEvent{src, dst, std::move(msgs)});
    return;
  }
  // Faults apply per wire packet: the whole batch drops, duplicates or skews
  // together; corruption flips a byte of one message in it.
  if (faults_enabled_) {
    if (topology_cut(src, dst, stats)) return;
    const LinkFaults& lf = opts_.link_faults;
    if (lf.drop > 0 && fault_rng_.next_bool(lf.drop)) {
      ++stats.faults.dropped;
      metrics::inc(m_faults_[0]);
      return;
    }
    if (lf.corrupt > 0 && fault_rng_.next_bool(lf.corrupt)) {
      corrupt_payload(msgs[static_cast<std::size_t>(
          fault_rng_.next_below(msgs.size()))]);
      ++stats.faults.corrupted;
      metrics::inc(m_faults_[3]);
    }
  }
  // One delay draw per wire packet, keyed off the batch's first message.
  SimTime delay = opts_.delay->delay(now_, src, dst, msgs.front(), rng_);
  if (faults_enabled_) {
    const LinkFaults& lf = opts_.link_faults;
    if (lf.reorder > 0 && fault_rng_.next_bool(lf.reorder)) {
      delay += fault_rng_.next_below(lf.reorder_delay + 1);
      ++stats.faults.reordered;
      metrics::inc(m_faults_[2]);
    }
    if (lf.duplicate > 0 && fault_rng_.next_bool(lf.duplicate)) {
      const SimTime extra = fault_rng_.next_below(lf.reorder_delay + 1);
      push(now_ + delay + extra, BatchDeliverEvent{src, dst, msgs});
      ++stats.faults.duplicated;
      metrics::inc(m_faults_[1]);
    }
  }
  push(now_ + delay, BatchDeliverEvent{src, dst, std::move(msgs)});
}

void Simulation::deliver_one(ProcessId src, ProcessId dst, const Message& msg,
                             RunStats& stats) {
  ++stats.packets_delivered;
  stats.packets_by_kind.add(msg_kind_name(msg.kind));
  if (const auto ki = static_cast<std::size_t>(msg.kind); ki < 3) {
    metrics::inc(m_packets_[ki]);
    metrics::inc(m_bytes_[ki], msg.payload.size());
  }
  if (opts_.trace) opts_.trace->record_deliver(now_, src, dst, msg);
  if (trace::on()) {
    trace::instant_at(now_, "sim", "deliver",
                      {.proc = dst,
                       .peer = src,
                       .instance = msg.instance,
                       .tag = msg.tag,
                       .a = static_cast<std::int64_t>(msg.kind),
                       .b = static_cast<std::int64_t>(msg.payload.size()),
                       .c = msg.origin});
  }
  actors_[static_cast<std::size_t>(dst)]->on_packet(src, msg);
}

bool Simulation::all_halted() const {
  for (const auto& a : actors_) {
    if (ConsensusProcess* p = a->process()) {
      if (!p->halted()) return false;
    }
  }
  return true;
}

bool Simulation::all_decided_now() const {
  for (const auto& a : actors_) {
    if (ConsensusProcess* p = a->process()) {
      if (!p->decision().has_value()) return false;
    }
  }
  return true;
}

RunStats Simulation::run() {
  // Drive the tracer on virtual time so engine hooks fired from actor
  // callbacks stamp the simulated instant, not the wall clock.
  if (trace::on()) {
    trace::Tracer::global().set_clock(trace::Tracer::Clock::kVirtual);
    trace::Tracer::global().set_virtual_now(now_);
  }
  RunStats stats;
  stats.decisions.assign(n_, std::nullopt);
  stats.is_consensus.assign(n_, false);
  bool any_consensus = false;
  for (std::size_t i = 0; i < n_; ++i) {
    DEX_ENSURE_MSG(actors_[i] != nullptr, "every endpoint needs an actor");
    stats.is_consensus[i] = actors_[i]->process() != nullptr;
    any_consensus = any_consensus || stats.is_consensus[i];
  }

  // Schedule (possibly jittered) starts.
  for (std::size_t i = 0; i < n_; ++i) {
    const SimTime at =
        opts_.start_jitter == 0 ? 0 : rng_.next_below(opts_.start_jitter + 1);
    push(at, StartEvent{static_cast<ProcessId>(i)});
  }

  while (!queue_.empty()) {
    if (stats.events >= opts_.max_events) {
      stats.hit_event_limit = true;
      DEX_LOG(kWarn, "sim") << "event limit reached at t=" << now_;
      break;
    }
    Event ev = queue_.top();
    queue_.pop();
    if (ev.at > opts_.max_time) break;
    now_ = ev.at;
    if (trace::on()) trace::Tracer::global().set_virtual_now(now_);
    ++stats.events;
    metrics::inc(m_events_);

    if (auto* del = std::get_if<DeliverEvent>(&ev.body)) {
      ++stats.wire_packets;
      stats.wire_bytes += del->msg.encoded_size();
      metrics::inc(m_wire_packets_);
      metrics::inc(m_wire_bytes_, del->msg.encoded_size());
      deliver_one(del->src, del->dst, del->msg, stats);
      pump_actor(del->dst, stats);
    } else if (auto* batch = std::get_if<BatchDeliverEvent>(&ev.body)) {
      // One wire packet, unpacked per message at the receiver; the receiver
      // is pumped once for the whole batch.
      ++stats.wire_packets;
      stats.wire_bytes += batch_encoded_size(batch->msgs);
      metrics::inc(m_wire_packets_);
      metrics::inc(m_wire_bytes_, batch_encoded_size(batch->msgs));
      for (const Message& msg : batch->msgs) {
        deliver_one(batch->src, batch->dst, msg, stats);
      }
      pump_actor(batch->dst, stats);
    } else if (auto* st = std::get_if<StartEvent>(&ev.body)) {
      started_[static_cast<std::size_t>(st->who)] = true;
      if (opts_.trace) opts_.trace->record_start(now_, st->who);
      if (trace::on()) trace::instant_at(now_, "sim", "start", {.proc = st->who});
      actors_[static_cast<std::size_t>(st->who)]->start();
      pump_actor(st->who, stats);
    } else if (auto* fn = std::get_if<FuncEvent>(&ev.body)) {
      fn->fn();
      // A host callback may have mutated any actor (oracle decisions, SMR
      // client submissions): poll consensus actors and flush every outbox.
      for (std::size_t i = 0; i < n_; ++i) {
        if (ConsensusProcess* p = actors_[i]->process()) p->poll();
        pump_actor(static_cast<ProcessId>(i), stats);
      }
    }

    if (any_consensus) {
      if (opts_.stop_when_all_decided && all_decided_now()) break;
      if (opts_.stop_when_all_halted && queue_.empty() == false && all_halted()) {
        break;
      }
    }
  }

  stats.end_time = now_;
  metrics::set(m_end_time_, static_cast<double>(now_) / 1e6);
  return stats;
}

}  // namespace dex::sim
