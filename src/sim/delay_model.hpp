// Message-delay models for the discrete-event simulator.
//
// The paper's system model is fully asynchronous: links are reliable but
// delays are arbitrary. Delay models are where a benchmark (or an adversary)
// shapes the schedule — uniform jitter for "well-behaved" runs, heavy tails
// for stress, per-process skew to starve quorums, etc.
#pragma once

#include <memory>
#include <set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "consensus/message.hpp"

namespace dex::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Delay for one packet sent at virtual time `now` (src != dst; the
  /// simulator delivers self-packets immediately). Must be deterministic
  /// given the rng state.
  [[nodiscard]] virtual SimTime delay(SimTime now, ProcessId src, ProcessId dst,
                                      const Message& msg, Rng& rng) = 0;
};

/// Fixed delay — the fully synchronous schedule.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(SimTime d) : d_(d) {}
  SimTime delay(SimTime, ProcessId, ProcessId, const Message&, Rng&) override {
    return d_;
  }

 private:
  SimTime d_;
};

/// Uniform in [lo, hi] — the default "well-behaved but jittery" network.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(SimTime lo, SimTime hi);
  SimTime delay(SimTime, ProcessId, ProcessId, const Message&, Rng& rng) override;

 private:
  SimTime lo_;
  SimTime hi_;
};

/// min + Exp(mean) — occasional stragglers.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(SimTime min, double mean);
  SimTime delay(SimTime, ProcessId, ProcessId, const Message&, Rng& rng) override;

 private:
  SimTime min_;
  double mean_;
};

/// Heavy-tailed: min + LogNormal(mu, sigma) scaled — bursty WAN-like links.
class LogNormalDelay final : public DelayModel {
 public:
  LogNormalDelay(SimTime min, double mu, double sigma);
  SimTime delay(SimTime, ProcessId, ProcessId, const Message&, Rng& rng) override;

 private:
  SimTime min_;
  double mu_;
  double sigma_;
};

/// Wraps a base model and multiplies delays for packets sent by (or delivered
/// to) a chosen set of processes — models slow replicas / degraded links and
/// lets benches delay specific senders to force views to diverge.
class SkewedDelay final : public DelayModel {
 public:
  SkewedDelay(std::shared_ptr<DelayModel> base, std::set<ProcessId> slow,
              double factor, bool match_src = true, bool match_dst = false);
  SimTime delay(SimTime now, ProcessId src, ProcessId dst, const Message& msg,
                Rng& rng) override;

 private:
  std::shared_ptr<DelayModel> base_;
  std::set<ProcessId> slow_;
  double factor_;
  bool match_src_;
  bool match_dst_;
};

/// Partial synchrony: before the Global Stabilization Time the `pre` model
/// rules (arbitrarily chaotic); at/after GST the `post` model rules. A packet
/// sent before GST is additionally clamped to arrive no later than
/// GST + post-model delay, matching the classic DLS formulation.
class GstDelay final : public DelayModel {
 public:
  GstDelay(std::shared_ptr<DelayModel> pre, std::shared_ptr<DelayModel> post,
           SimTime gst);
  SimTime delay(SimTime now, ProcessId src, ProcessId dst, const Message& msg,
                Rng& rng) override;

 private:
  std::shared_ptr<DelayModel> pre_;
  std::shared_ptr<DelayModel> post_;
  SimTime gst_;
};

std::shared_ptr<DelayModel> default_delay_model();

}  // namespace dex::sim
