// Deterministic discrete-event simulation of an asynchronous message-passing
// network — the library's testbed.
//
// The event queue is ordered by (virtual time, sequence number), so runs are
// bit-for-bit reproducible for a given seed, delay model and actor set.
// Reliable links, no duplication, no corruption — exactly the paper's §2.1
// model; all adversarial power lives in the Byzantine actors and the delay
// model.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <variant>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "sim/actor.hpp"
#include "sim/delay_model.hpp"
#include "sim/faults.hpp"
#include "sim/trace.hpp"

namespace dex::sim {

struct SimOptions {
  std::uint64_t seed = 1;
  std::shared_ptr<DelayModel> delay;  // nullptr → default_delay_model()
  /// Proposal/start times are staggered uniformly in [0, start_jitter].
  SimTime start_jitter = 0;
  std::uint64_t max_events = 50'000'000;
  SimTime max_time = kSimTimeMax;
  /// Stop as soon as every consensus actor reports halted() (default) —
  /// otherwise run until the queue drains.
  bool stop_when_all_halted = true;
  /// Stop as soon as every consensus actor has decided (for latency benches
  /// that do not care about post-decision traffic).
  bool stop_when_all_decided = false;
  /// Coalesce all same-destination messages of one actor drain into a single
  /// batch frame, delivered as one sim event (one delay draw per
  /// destination) and unpacked per message at the receiver — the transport
  /// batching model. Off by default: the unbatched schedule is bit-for-bit
  /// the historical one.
  bool batch = false;
  /// Network fault injection (sim/faults.hpp). All knobs at zero (the
  /// default) keeps the run bit-for-bit the historical schedule: the fault
  /// RNG is separate from the delay RNG and is consulted only when a knob is
  /// nonzero. Faults apply at send time to non-self packets; inject()ed
  /// packets bypass them.
  LinkFaults link_faults;
  std::vector<Partition> partitions;
  std::vector<CrashWindow> crashes;
  /// Optional trace sink (not owned; must outlive the simulation).
  TraceRecorder* trace = nullptr;
  /// Optional metrics sink (not owned; must outlive the simulation). The
  /// simulator exports packet/byte counts per MsgKind, decision-path counts
  /// and virtual-time decision latency histograms (sim_* series).
  metrics::MetricsRegistry* metrics = nullptr;
};

/// What one process decided, and when.
struct DecisionRecord {
  Decision decision;
  SimTime at = 0;
  std::uint32_t steps = 0;  // logical plain-step count of the decision path
};

struct RunStats {
  SimTime end_time = 0;
  std::uint64_t events = 0;
  /// Messages handed to actors (one per envelope, batched or not).
  std::uint64_t packets_delivered = 0;
  /// Wire packets: delivery events on the link. Without batching this equals
  /// packets_delivered; with batching one wire packet carries a whole batch.
  std::uint64_t wire_packets = 0;
  /// Encoded bytes those wire packets would occupy (full frames, including
  /// the batch framing when batching is on).
  std::uint64_t wire_bytes = 0;
  bool hit_event_limit = false;
  /// Injected-fault accounting (all zero when fault injection is off).
  FaultStats faults;
  dex::Counter packets_by_kind;
  /// Indexed by ProcessId; nullopt for Byzantine actors and undecided ones.
  std::vector<std::optional<DecisionRecord>> decisions;
  /// Which endpoints host a consensus process (correct protocol stack).
  std::vector<bool> is_consensus;

  /// Every consensus actor decided.
  [[nodiscard]] bool all_decided() const;
  /// All decided values are equal (vacuously true if none decided).
  [[nodiscard]] bool agreement() const;
  /// The common decided value if all_decided() and agreement().
  [[nodiscard]] std::optional<Value> common_value() const;
  /// Max logical steps over deciders (0 if none).
  [[nodiscard]] std::uint32_t max_steps() const;
  [[nodiscard]] std::uint32_t min_steps() const;
  /// Time by which all consensus actors had decided.
  [[nodiscard]] SimTime last_decision_time() const;
};

class Simulation {
 public:
  explicit Simulation(std::size_t n, SimOptions opts = {});

  /// Attach the actor for endpoint i (exactly one per endpoint before run()).
  void attach(ProcessId i, std::unique_ptr<Actor> actor);

  /// Schedule an arbitrary host callback (oracle hubs, fault timers, ...).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Inject a packet directly (test harnesses; bypasses any actor outbox).
  void inject(ProcessId src, ProcessId dst, Message msg, SimTime at);

  RunStats run();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Actor& actor(ProcessId i);
  /// The consensus process at endpoint i, or nullptr.
  [[nodiscard]] ConsensusProcess* process(ProcessId i);

 private:
  struct DeliverEvent {
    ProcessId src;
    ProcessId dst;
    Message msg;
  };
  /// One wire packet carrying a coalesced batch (SimOptions::batch).
  struct BatchDeliverEvent {
    ProcessId src;
    ProcessId dst;
    std::vector<Message> msgs;
  };
  struct StartEvent {
    ProcessId who;
  };
  struct FuncEvent {
    std::function<void()> fn;
  };
  using EventBody =
      std::variant<DeliverEvent, BatchDeliverEvent, StartEvent, FuncEvent>;

  struct Event {
    SimTime at;
    std::uint64_t seq;
    EventBody body;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // min-heap: earlier seq first at equal time
    }
  };

  void push(SimTime at, EventBody body);
  void pump_actor(ProcessId i, RunStats& stats);
  void pump_actor_batched(ProcessId i, RunStats& stats);
  /// Fault-aware send: applies topology cuts + link faults, draws the delay
  /// and enqueues. Self-addressed packets bypass faults and arrive at once.
  void enqueue_packet(ProcessId src, ProcessId dst, Message msg,
                      RunStats& stats);
  void enqueue_batch(ProcessId src, ProcessId dst, std::vector<Message> msgs,
                     RunStats& stats);
  /// True when a partition or crash window cuts (src → dst) right now.
  [[nodiscard]] bool topology_cut(ProcessId src, ProcessId dst,
                                  RunStats& stats);
  /// Flip one random payload bit of `msg` (fresh envelope, no stale frame
  /// cache); no-op for empty payloads.
  void corrupt_payload(Message& msg);
  void deliver_one(ProcessId src, ProcessId dst, const Message& msg,
                   RunStats& stats);
  void record_decision(ProcessId i, RunStats& stats);
  [[nodiscard]] bool all_halted() const;
  [[nodiscard]] bool all_decided_now() const;

  std::size_t n_;
  SimOptions opts_;
  Rng rng_;
  /// Dedicated generator for fault draws so that fault injection never
  /// perturbs the delay-model schedule (see SimOptions::link_faults).
  Rng fault_rng_;
  bool faults_enabled_ = false;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<bool> started_;

  // Exported series, resolved once at construction (null when disabled).
  // Packet counters are indexed by MsgKind, decisions by DecisionPath.
  metrics::Counter* m_packets_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_bytes_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_decisions_[3] = {nullptr, nullptr, nullptr};
  metrics::Counter* m_events_ = nullptr;
  metrics::Counter* m_wire_packets_ = nullptr;
  metrics::Counter* m_wire_bytes_ = nullptr;
  /// sim_faults_total{kind=...}: dropped, duplicated, reordered, corrupted,
  /// partitioned, crashed — in that index order.
  metrics::Counter* m_faults_[6] = {nullptr, nullptr, nullptr,
                                    nullptr, nullptr, nullptr};
  metrics::HistogramMetric* m_latency_ = nullptr;
  metrics::HistogramMetric* m_steps_ = nullptr;
  /// Per-decision-path virtual-time latency, indexed by DecisionPath
  /// (dex_decide_latency_ms{path=...}).
  metrics::HistogramMetric* m_path_latency_[3] = {nullptr, nullptr, nullptr};
  metrics::Gauge* m_end_time_ = nullptr;
};

}  // namespace dex::sim
