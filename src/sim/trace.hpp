// Structured execution traces for simulated runs.
//
// When a TraceRecorder is attached to a Simulation, every start event, packet
// delivery and decision is recorded with its virtual timestamp. Traces power
// debugging (human-readable dump), analysis (CSV export) and tests
// (determinism can be asserted as trace equality).
//
// This is the legacy, simulation-local view of a run. The process-wide
// tracer (src/trace) records the same three simulator events — "sim" category
// instants named start/deliver/decide — alongside engine spans; from_backend()
// rebuilds the legacy event list from such a snapshot, making TraceRecorder a
// thin adapter over the unified backend: record_* during a run and
// from_backend() on its snapshot produce identical event streams.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "consensus/decision.hpp"
#include "consensus/message.hpp"
#include "trace/trace.hpp"

namespace dex::sim {

enum class TraceKind : std::uint8_t { kStart, kDeliver, kDecide };

const char* trace_kind_name(TraceKind k);

/// RFC 4180 CSV field quoting: a field containing a comma, quote, CR or LF is
/// wrapped in double quotes with embedded quotes doubled; plain fields pass
/// through untouched (the all-numeric rows stay byte-stable).
[[nodiscard]] std::string csv_escape(std::string_view field);

struct TraceEvent {
  SimTime at = 0;
  TraceKind kind = TraceKind::kDeliver;
  ProcessId src = kNoProcess;  // kDeliver only
  ProcessId dst = kNoProcess;  // the acting process
  // kDeliver details
  MsgKind msg_kind = MsgKind::kPlain;
  std::uint64_t tag = 0;
  InstanceId instance = 0;
  std::size_t payload_size = 0;
  // kDecide details
  std::optional<Decision> decision;

  bool operator==(const TraceEvent&) const = default;
};

class TraceRecorder {
 public:
  void record_start(SimTime at, ProcessId who);
  void record_deliver(SimTime at, ProcessId src, ProcessId dst, const Message& msg);
  void record_decide(SimTime at, ProcessId who, const Decision& decision);

  /// Rebuilds the legacy event list from a unified-tracer snapshot (events of
  /// category "sim" named start/deliver/decide; everything else is ignored).
  /// The snapshot is (time, seq)-ordered, so the reconstruction matches the
  /// order record_* would have seen during the run.
  [[nodiscard]] static std::vector<TraceEvent> from_backend(
      const std::vector<trace::Event>& snapshot);
  /// Replaces this recorder's events with the reconstruction of `snapshot`.
  void load_backend(const std::vector<trace::Event>& snapshot);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t count(TraceKind kind) const;
  [[nodiscard]] std::vector<TraceEvent> for_process(ProcessId who) const;
  void clear() { events_.clear(); }

  /// Human-readable dump; `limit` caps the number of lines (0 = unlimited).
  [[nodiscard]] std::string to_text(std::size_t limit = 0) const;
  /// CSV with a header row: at_ns,kind,src,dst,msg_kind,tag,instance,...
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dex::sim
