// Network fault injection for the deterministic simulator.
//
// The paper's §2.1 model gives links reliability but no timing guarantees; a
// dropped, partitioned or crash-windowed message is therefore *outside* the
// liveness assumptions but squarely *inside* the safety ones — an omitted
// message is indistinguishable from an arbitrarily slow one, so Agreement,
// Unanimity and the I1–I4 causal invariants must survive every mix below.
// Payload corruption is the exception: it forges traffic from correct
// senders (beyond the t-Byzantine budget), so the verification plane checks
// only decoder robustness and the causal invariants under it, never
// agreement. All draws come from a dedicated fault RNG derived from the run
// seed, so enabling faults never perturbs the delay-model schedule — a run
// with all knobs at zero is bit-for-bit the historical one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dex::sim {

/// Probabilistic per-packet link faults, applied at send time. Self-addressed
/// packets (the engines' own loopback deliveries) are exempt: dropping those
/// would model memory corruption, not a network.
struct LinkFaults {
  /// P(packet is silently dropped).
  double drop = 0.0;
  /// P(a second copy is enqueued with a fresh delay draw).
  double duplicate = 0.0;
  /// P(an extra uniform [0, reorder_delay] is added — forced reordering).
  double reorder = 0.0;
  SimTime reorder_delay = 20'000'000;  // 20 ms of extra skew
  /// P(one random payload byte is flipped) — models a hostile network layer;
  /// outside the §2.1 model, see the file comment.
  double corrupt = 0.0;

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
  }
};

/// Cuts the network into groups during [from, until): packets whose source
/// and destination sit in different groups at send time are dropped.
/// `group[i]` is process i's group id; processes beyond the vector are
/// group 0. A healed partition (until < run end) preserves liveness
/// expectations only for protocols that keep (re)transmitting.
struct Partition {
  SimTime from = 0;
  SimTime until = 0;
  std::vector<std::uint8_t> group;

  [[nodiscard]] bool active(SimTime now) const { return now >= from && now < until; }
  [[nodiscard]] std::uint8_t group_of(ProcessId p) const {
    const auto i = static_cast<std::size_t>(p);
    return p >= 0 && i < group.size() ? group[i] : 0;
  }
  [[nodiscard]] bool cuts(SimTime now, ProcessId src, ProcessId dst) const {
    return active(now) && group_of(src) != group_of(dst);
  }
};

/// Process `who` is disconnected during [from, until): every packet to or
/// from it sent in the window is dropped. With intact state on both sides
/// this is a crash–recovery where the crash loses only in-flight traffic —
/// the strongest recovery the §2.1 model lets a *correct* process have.
struct CrashWindow {
  ProcessId who = 0;
  SimTime from = 0;
  SimTime until = 0;

  [[nodiscard]] bool cuts(SimTime now, ProcessId src, ProcessId dst) const {
    return now >= from && now < until && (src == who || dst == who);
  }
};

/// Counters the simulator keeps per run (mirrored into sim_faults_total
/// metrics when a registry is attached).
struct FaultStats {
  std::uint64_t dropped = 0;      // LinkFaults::drop draws
  std::uint64_t duplicated = 0;   // extra copies enqueued
  std::uint64_t reordered = 0;    // packets given extra delay
  std::uint64_t corrupted = 0;    // payload bytes flipped
  std::uint64_t partitioned = 0;  // cut by a Partition window
  std::uint64_t crashed = 0;      // cut by a CrashWindow

  [[nodiscard]] std::uint64_t total() const {
    return dropped + duplicated + reordered + corrupted + partitioned + crashed;
  }
};

}  // namespace dex::sim
