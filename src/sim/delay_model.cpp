#include "sim/delay_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace dex::sim {

UniformDelay::UniformDelay(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
  DEX_ENSURE(lo <= hi);
}

SimTime UniformDelay::delay(SimTime, ProcessId, ProcessId, const Message&, Rng& rng) {
  return lo_ + rng.next_below(hi_ - lo_ + 1);
}

ExponentialDelay::ExponentialDelay(SimTime min, double mean) : min_(min), mean_(mean) {
  DEX_ENSURE(mean > 0);
}

SimTime ExponentialDelay::delay(SimTime, ProcessId, ProcessId, const Message&, Rng& rng) {
  return min_ + static_cast<SimTime>(rng.next_exponential(mean_));
}

LogNormalDelay::LogNormalDelay(SimTime min, double mu, double sigma)
    : min_(min), mu_(mu), sigma_(sigma) {
  DEX_ENSURE(sigma >= 0);
}

SimTime LogNormalDelay::delay(SimTime, ProcessId, ProcessId, const Message&, Rng& rng) {
  return min_ + static_cast<SimTime>(rng.next_lognormal(mu_, sigma_));
}

SkewedDelay::SkewedDelay(std::shared_ptr<DelayModel> base, std::set<ProcessId> slow,
                         double factor, bool match_src, bool match_dst)
    : base_(std::move(base)),
      slow_(std::move(slow)),
      factor_(factor),
      match_src_(match_src),
      match_dst_(match_dst) {
  DEX_ENSURE(base_ != nullptr);
  DEX_ENSURE(factor >= 0);
}

SimTime SkewedDelay::delay(SimTime now, ProcessId src, ProcessId dst,
                           const Message& msg, Rng& rng) {
  const SimTime base = base_->delay(now, src, dst, msg, rng);
  const bool hit = (match_src_ && slow_.count(src) > 0) ||
                   (match_dst_ && slow_.count(dst) > 0);
  if (!hit) return base;
  return static_cast<SimTime>(static_cast<double>(base) * factor_);
}

GstDelay::GstDelay(std::shared_ptr<DelayModel> pre, std::shared_ptr<DelayModel> post,
                   SimTime gst)
    : pre_(std::move(pre)), post_(std::move(post)), gst_(gst) {
  DEX_ENSURE(pre_ != nullptr && post_ != nullptr);
}

SimTime GstDelay::delay(SimTime now, ProcessId src, ProcessId dst,
                        const Message& msg, Rng& rng) {
  if (now >= gst_) return post_->delay(now, src, dst, msg, rng);
  // Sent before GST: chaotic delay, but delivery no later than GST plus one
  // post-GST hop (reliable links: nothing is lost, only late).
  const SimTime chaotic = pre_->delay(now, src, dst, msg, rng);
  const SimTime clamp = (gst_ - now) + post_->delay(now, src, dst, msg, rng);
  return std::min(chaotic, clamp);
}

std::shared_ptr<DelayModel> default_delay_model() {
  // 1-10 ms uniform one-way delay (in nanoseconds).
  return std::make_shared<UniformDelay>(1'000'000, 10'000'000);
}

}  // namespace dex::sim
