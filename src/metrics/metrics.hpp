// Metrics & instrumentation subsystem.
//
// A MetricsRegistry is a named collection of Counter / Gauge /
// HistogramMetric instruments, each identified by (name, labels). Hot paths
// resolve an instrument pointer once (one registry lock at construction) and
// then update it lock-free (counters, gauges) or under a per-instrument
// mutex (histograms). Registries are snapshot-able; snapshots merge across
// processes/trials and export to JSON and Prometheus text (export.hpp).
//
// The quantities worth measuring come straight from the paper: which decision
// path fired (one-step / two-step / underlying fallback), how many logical
// steps a decision took, and the per-kind message cost of getting there —
// the fast-path/fallback split of "Byzantine Consensus in the Common Case"
// and the per-step message complexity of "Revisiting Lower Bounds for
// Two-Step Consensus". See docs/protocol.md §6 for the full metric catalog.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace dex::metrics {

/// Label set of one time series. std::map keeps keys sorted, so the derived
/// series key is canonical. Keys must be valid Prometheus label names
/// ([a-zA-Z_][a-zA-Z0-9_]*); values may contain arbitrary bytes — the
/// exporters escape backslash, double quote and newline per format.
using Labels = std::map<std::string, std::string>;

/// Canonical "k1=v1,k2=v2" form; empty string for no labels.
[[nodiscard]] std::string label_key(const Labels& labels);

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value. Lock-free.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Sample distribution with exact quantiles, reusing dex::Histogram.
/// Thread-safe via a per-instrument mutex (observe() is a push_back + three
/// adds under an uncontended lock; fine for consensus-rate events).
class HistogramMetric {
 public:
  void observe(double v) {
    const std::scoped_lock lock(mu_);
    hist_.add(v);
  }
  /// Pre-size the backing store (hot bench loops).
  void reserve(std::size_t n) {
    const std::scoped_lock lock(mu_);
    hist_.reserve(n);
  }
  [[nodiscard]] dex::Histogram snapshot() const {
    const std::scoped_lock lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  dex::Histogram hist_;
};

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge, kHistogram };

const char* metric_kind_name(MetricKind k);

/// One series in a snapshot. `value` holds the counter/gauge reading;
/// `hist` is populated for histogram series only.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  dex::Histogram hist;
};

/// A point-in-time copy of a registry, mergeable across processes/trials:
/// counters add, histograms concatenate samples, gauges keep the incoming
/// (last-writer) value.
class MetricsSnapshot {
 public:
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] const MetricSample* find(const std::string& name,
                                         const Labels& labels = {}) const;
  /// Counter/gauge reading of an exact series; 0 if absent.
  [[nodiscard]] double value(const std::string& name,
                             const Labels& labels = {}) const;
  /// Sum of all counter series named `name` whose labels contain `subset`
  /// (aggregation across e.g. the `process` label).
  [[nodiscard]] double counter_total(const std::string& name,
                                     const Labels& subset = {}) const;
  /// Histogram of an exact series; nullptr if absent.
  [[nodiscard]] const dex::Histogram* histogram(const std::string& name,
                                                const Labels& labels = {}) const;

  [[nodiscard]] const std::vector<MetricSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Registry/export plumbing: append + restore (name, label_key) order.
  void add_sample(MetricSample sample);

 private:
  void sort();

  std::vector<MetricSample> samples_;  // sorted by (name, label_key)
};

/// Named instrument registry. Instrument resolution locks; the returned
/// references stay valid and lock-free for the registry's lifetime. A name
/// is bound to one kind: re-requesting it as a different kind throws
/// ContractViolation (catches "dex_decisions_total" as both counter & gauge).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  HistogramMetric& histogram(const std::string& name, const Labels& labels = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Drops every instrument (outstanding references become dangling; only
  /// for teardown between independent runs that re-resolve).
  void clear();

  /// Process-wide default registry for hosts that don't thread their own.
  static MetricsRegistry& global();

 private:
  template <typename T>
  struct Entry {
    Labels labels;
    std::unique_ptr<T> metric;
  };
  template <typename T>
  using Family = std::map<std::pair<std::string, std::string>, Entry<T>>;

  void bind_kind(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, MetricKind> kinds_;
  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<HistogramMetric> histograms_;
};

/// A registry handle carrying inherited labels — the hierarchical layer.
/// Hosts build nested scopes (process → instance → ...) and hand them to
/// engines; a default-constructed scope is disabled and resolves to nullptr,
/// so instrumented code pairs with the null-safe helpers below and costs a
/// single branch when metrics are off.
class MetricsScope {
 public:
  MetricsScope() = default;
  explicit MetricsScope(MetricsRegistry* registry, Labels base = {})
      : registry_(registry), base_(std::move(base)) {}

  [[nodiscard]] bool enabled() const { return registry_ != nullptr; }
  /// Child scope with `extra` merged over the inherited labels.
  [[nodiscard]] MetricsScope with(const Labels& extra) const;

  [[nodiscard]] Counter* counter(const std::string& name,
                                 const Labels& extra = {}) const;
  [[nodiscard]] Gauge* gauge(const std::string& name,
                             const Labels& extra = {}) const;
  [[nodiscard]] HistogramMetric* histogram(const std::string& name,
                                           const Labels& extra = {}) const;

  [[nodiscard]] MetricsRegistry* registry() const { return registry_; }
  [[nodiscard]] const Labels& base_labels() const { return base_; }

 private:
  [[nodiscard]] Labels merged(const Labels& extra) const;

  MetricsRegistry* registry_ = nullptr;
  Labels base_;
};

// Null-safe update helpers so instrumented hot paths stay one-liners even
// when the host attached no registry.
inline void inc(Counter* c, std::uint64_t delta = 1) {
  if (c != nullptr) c->inc(delta);
}
inline void observe(HistogramMetric* h, double v) {
  if (h != nullptr) h->observe(v);
}
inline void set(Gauge* g, double v) {
  if (g != nullptr) g->set(v);
}

}  // namespace dex::metrics
