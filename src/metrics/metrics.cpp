#include "metrics/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dex::metrics {

std::string label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key.push_back(',');
    key.append(k);
    key.push_back('=');
    key.append(v);
  }
  return key;
}

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

void MetricsSnapshot::sort() {
  std::sort(samples_.begin(), samples_.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return label_key(a.labels) < label_key(b.labels);
            });
}

void MetricsSnapshot::add_sample(MetricSample sample) {
  samples_.push_back(std::move(sample));
  sort();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricSample& incoming : other.samples_) {
    auto it = std::find_if(samples_.begin(), samples_.end(),
                           [&](const MetricSample& s) {
                             return s.name == incoming.name &&
                                    s.labels == incoming.labels;
                           });
    if (it == samples_.end()) {
      samples_.push_back(incoming);
      continue;
    }
    DEX_ENSURE_MSG(it->kind == incoming.kind,
                   "snapshot merge: series '" + incoming.name +
                       "' has conflicting kinds");
    switch (incoming.kind) {
      case MetricKind::kCounter: it->value += incoming.value; break;
      case MetricKind::kGauge: it->value = incoming.value; break;
      case MetricKind::kHistogram: it->hist.merge(incoming.hist); break;
    }
  }
  sort();
}

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const Labels& labels) const {
  for (const MetricSample& s : samples_) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value(const std::string& name,
                              const Labels& labels) const {
  const MetricSample* s = find(name, labels);
  return s == nullptr ? 0.0 : s->value;
}

double MetricsSnapshot::counter_total(const std::string& name,
                                      const Labels& subset) const {
  double total = 0.0;
  for (const MetricSample& s : samples_) {
    if (s.name != name || s.kind != MetricKind::kCounter) continue;
    bool match = true;
    for (const auto& [k, v] : subset) {
      const auto it = s.labels.find(k);
      if (it == s.labels.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) total += s.value;
  }
  return total;
}

const dex::Histogram* MetricsSnapshot::histogram(const std::string& name,
                                                 const Labels& labels) const {
  const MetricSample* s = find(name, labels);
  if (s == nullptr || s->kind != MetricKind::kHistogram) return nullptr;
  return &s->hist;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void MetricsRegistry::bind_kind(const std::string& name, MetricKind kind) {
  DEX_ENSURE_MSG(!name.empty(), "metric name must be non-empty");
  const auto [it, inserted] = kinds_.emplace(name, kind);
  DEX_ENSURE_MSG(it->second == kind,
                 "metric '" + name + "' already registered as " +
                     metric_kind_name(it->second));
  (void)inserted;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  const std::scoped_lock lock(mu_);
  bind_kind(name, MetricKind::kCounter);
  auto& entry = counters_[{name, label_key(labels)}];
  if (!entry.metric) {
    entry.labels = labels;
    entry.metric = std::make_unique<Counter>();
  }
  return *entry.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::scoped_lock lock(mu_);
  bind_kind(name, MetricKind::kGauge);
  auto& entry = gauges_[{name, label_key(labels)}];
  if (!entry.metric) {
    entry.labels = labels;
    entry.metric = std::make_unique<Gauge>();
  }
  return *entry.metric;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const Labels& labels) {
  const std::scoped_lock lock(mu_);
  bind_kind(name, MetricKind::kHistogram);
  auto& entry = histograms_[{name, label_key(labels)}];
  if (!entry.metric) {
    entry.labels = labels;
    entry.metric = std::make_unique<HistogramMetric>();
  }
  return *entry.metric;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [key, entry] : counters_) {
    MetricSample s;
    s.name = key.first;
    s.labels = entry.labels;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(entry.metric->value());
    snap.add_sample(std::move(s));
  }
  for (const auto& [key, entry] : gauges_) {
    MetricSample s;
    s.name = key.first;
    s.labels = entry.labels;
    s.kind = MetricKind::kGauge;
    s.value = entry.metric->value();
    snap.add_sample(std::move(s));
  }
  for (const auto& [key, entry] : histograms_) {
    MetricSample s;
    s.name = key.first;
    s.labels = entry.labels;
    s.kind = MetricKind::kHistogram;
    s.hist = entry.metric->snapshot();
    snap.add_sample(std::move(s));
  }
  return snap;
}

void MetricsRegistry::clear() {
  const std::scoped_lock lock(mu_);
  kinds_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

// ---------------------------------------------------------------------------
// MetricsScope
// ---------------------------------------------------------------------------

Labels MetricsScope::merged(const Labels& extra) const {
  if (extra.empty()) return base_;
  Labels out = base_;
  for (const auto& [k, v] : extra) out[k] = v;  // extra wins on collision
  return out;
}

MetricsScope MetricsScope::with(const Labels& extra) const {
  return MetricsScope(registry_, merged(extra));
}

Counter* MetricsScope::counter(const std::string& name,
                               const Labels& extra) const {
  if (registry_ == nullptr) return nullptr;
  return &registry_->counter(name, merged(extra));
}

Gauge* MetricsScope::gauge(const std::string& name, const Labels& extra) const {
  if (registry_ == nullptr) return nullptr;
  return &registry_->gauge(name, merged(extra));
}

HistogramMetric* MetricsScope::histogram(const std::string& name,
                                         const Labels& extra) const {
  if (registry_ == nullptr) return nullptr;
  return &registry_->histogram(name, merged(extra));
}

}  // namespace dex::metrics
