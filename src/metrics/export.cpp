#include "metrics/export.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/json_value.hpp"

namespace dex::metrics {

namespace {

/// Shortest exact rendering: integers without a fraction, everything else
/// with enough digits (%.17g) that strtod() round-trips bit-for-bit.
std::string fmt_num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Prometheus text-format label-value escaping: backslash, double quote and
/// newline get backslash escapes; everything else is verbatim (the exposition
/// format defines exactly these three).
void append_prom_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
}

/// `name` or `name{k="v",k2="v2"}` with labels in sorted (map) order and
/// label values escaped per the Prometheus exposition format — the flat-map
/// key and the Prometheus sample name are the same string, so hostile label
/// values (quotes, backslashes, newlines) flatten to identical keys on every
/// export surface.
std::string flat_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(k);
    out.append("=\"");
    append_prom_escaped(out, v);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99};

const char* quantile_name(double q) {
  if (q == 0.5) return "0.5";
  if (q == 0.9) return "0.9";
  return "0.99";
}

// The JSON reader lives in common/json_value.hpp now (it is shared with the
// verification plane's genome codec); this file only maps documents back into
// the flat metric view.

Labels labels_from_json(const json::Value& obj) {
  Labels out;
  for (const auto& [k, v] : obj.obj) out[k] = v.str;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"dex-metrics/v1\",\n  \"metrics\": [";
  bool first = true;
  for (const MetricSample& s : snapshot.samples()) {
    out.append(first ? "\n    {" : ",\n    {");
    first = false;
    out.append("\"name\":").append(json_quote(s.name)).append(",");
    out.append("\"type\":\"").append(metric_kind_name(s.kind)).append("\",");
    out.append("\"labels\":{");
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out.push_back(',');
      first_label = false;
      out.append(json_quote(k)).append(":").append(json_quote(v));
    }
    out.append("}");
    if (s.kind == MetricKind::kHistogram) {
      const auto n = static_cast<double>(s.hist.count());
      out.append(",\"count\":").append(fmt_num(n));
      out.append(",\"sum\":").append(fmt_num(s.hist.sum()));
      out.append(",\"min\":").append(fmt_num(s.hist.min()));
      out.append(",\"max\":").append(fmt_num(s.hist.max()));
      out.append(",\"mean\":").append(fmt_num(s.hist.mean()));
      out.append(",\"quantiles\":{");
      bool first_q = true;
      for (const double q : kQuantiles) {
        if (!first_q) out.push_back(',');
        first_q = false;
        out.append("\"").append(quantile_name(q)).append("\":");
        out.append(fmt_num(s.hist.quantile(q)));
      }
      out.append("}");
    } else {
      out.append(",\"value\":").append(fmt_num(s.value));
    }
    out.append("}");
  }
  out.append("\n  ]\n}\n");
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : snapshot.samples()) {
    if (s.name != last_family) {
      last_family = s.name;
      out.append("# TYPE ").append(s.name).append(" ");
      out.append(s.kind == MetricKind::kHistogram ? "summary"
                                                  : metric_kind_name(s.kind));
      out.push_back('\n');
    }
    if (s.kind == MetricKind::kHistogram) {
      if (s.hist.count() > 0) {
        for (const double q : kQuantiles) {
          Labels with_q = s.labels;
          with_q["quantile"] = quantile_name(q);
          out.append(flat_name(s.name, with_q)).append(" ");
          out.append(fmt_num(s.hist.quantile(q))).push_back('\n');
        }
      }
      out.append(flat_name(s.name + "_sum", s.labels)).append(" ");
      out.append(fmt_num(s.hist.sum())).push_back('\n');
      out.append(flat_name(s.name + "_count", s.labels)).append(" ");
      out.append(fmt_num(static_cast<double>(s.hist.count()))).push_back('\n');
    } else {
      out.append(flat_name(s.name, s.labels)).append(" ");
      out.append(fmt_num(s.value)).push_back('\n');
    }
  }
  return out;
}

std::map<std::string, double> flatten(const MetricsSnapshot& snapshot) {
  std::map<std::string, double> out;
  for (const MetricSample& s : snapshot.samples()) {
    if (s.kind == MetricKind::kHistogram) {
      out[flat_name(s.name + "_count", s.labels)] =
          static_cast<double>(s.hist.count());
      out[flat_name(s.name + "_sum", s.labels)] = s.hist.sum();
      if (s.hist.count() > 0) {
        for (const double q : kQuantiles) {
          Labels with_q = s.labels;
          with_q["quantile"] = quantile_name(q);
          out[flat_name(s.name, with_q)] = s.hist.quantile(q);
        }
      }
    } else {
      out[flat_name(s.name, s.labels)] = s.value;
    }
  }
  return out;
}

std::map<std::string, double> flatten_json(const std::string& json) {
  const json::Value doc = json::parse(json);
  std::map<std::string, double> out;
  for (const json::Value& m : doc.at("metrics").arr) {
    const std::string& name = m.at("name").str;
    const std::string& type = m.at("type").str;
    const Labels labels = labels_from_json(m.at("labels"));
    if (type == "histogram") {
      out[flat_name(name + "_count", labels)] = m.at("count").number;
      out[flat_name(name + "_sum", labels)] = m.at("sum").number;
      if (m.at("count").number > 0) {
        for (const auto& [q, v] : m.at("quantiles").obj) {
          Labels with_q = labels;
          with_q["quantile"] = q;
          out[flat_name(name, with_q)] = v.number;
        }
      }
    } else {
      out[flat_name(name, labels)] = m.at("value").number;
    }
  }
  return out;
}

std::map<std::string, double> flatten_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos) {
      throw std::runtime_error("metrics prometheus: malformed sample line");
    }
    const std::string key(line.substr(0, space));
    out[key] = std::strtod(std::string(line.substr(space + 1)).c_str(), nullptr);
  }
  return out;
}

}  // namespace dex::metrics
