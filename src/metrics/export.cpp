#include "metrics/export.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace dex::metrics {

namespace {

/// Shortest exact rendering: integers without a fraction, everything else
/// with enough digits (%.17g) that strtod() round-trips bit-for-bit.
std::string fmt_num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Prometheus text-format label-value escaping: backslash, double quote and
/// newline get backslash escapes; everything else is verbatim (the exposition
/// format defines exactly these three).
void append_prom_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
}

/// `name` or `name{k="v",k2="v2"}` with labels in sorted (map) order and
/// label values escaped per the Prometheus exposition format — the flat-map
/// key and the Prometheus sample name are the same string, so hostile label
/// values (quotes, backslashes, newlines) flatten to identical keys on every
/// export surface.
std::string flat_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(k);
    out.append("=\"");
    append_prom_escaped(out, v);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99};

const char* quantile_name(double q) {
  if (q == 0.5) return "0.5";
  if (q == 0.9) return "0.9";
  return "0.99";
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — only what flatten_json() needs to re-read our own
// exporter output (objects, arrays, strings, numbers, bool, null).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto it = obj.find(key);
    if (type != Type::kObject || it == obj.end()) {
      throw std::runtime_error("metrics json: missing key '" + key + "'");
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("metrics json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // \uXXXX — our own exporter only emits these for ASCII control
            // characters, so the low byte is the character.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
            c = static_cast<char>(code);
            break;
          }
          default: fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      v.obj.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Labels labels_from_json(const JsonValue& obj) {
  Labels out;
  for (const auto& [k, v] : obj.obj) out[k] = v.str;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"dex-metrics/v1\",\n  \"metrics\": [";
  bool first = true;
  for (const MetricSample& s : snapshot.samples()) {
    out.append(first ? "\n    {" : ",\n    {");
    first = false;
    out.append("\"name\":").append(json_quote(s.name)).append(",");
    out.append("\"type\":\"").append(metric_kind_name(s.kind)).append("\",");
    out.append("\"labels\":{");
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out.push_back(',');
      first_label = false;
      out.append(json_quote(k)).append(":").append(json_quote(v));
    }
    out.append("}");
    if (s.kind == MetricKind::kHistogram) {
      const auto n = static_cast<double>(s.hist.count());
      out.append(",\"count\":").append(fmt_num(n));
      out.append(",\"sum\":").append(fmt_num(s.hist.sum()));
      out.append(",\"min\":").append(fmt_num(s.hist.min()));
      out.append(",\"max\":").append(fmt_num(s.hist.max()));
      out.append(",\"mean\":").append(fmt_num(s.hist.mean()));
      out.append(",\"quantiles\":{");
      bool first_q = true;
      for (const double q : kQuantiles) {
        if (!first_q) out.push_back(',');
        first_q = false;
        out.append("\"").append(quantile_name(q)).append("\":");
        out.append(fmt_num(s.hist.quantile(q)));
      }
      out.append("}");
    } else {
      out.append(",\"value\":").append(fmt_num(s.value));
    }
    out.append("}");
  }
  out.append("\n  ]\n}\n");
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : snapshot.samples()) {
    if (s.name != last_family) {
      last_family = s.name;
      out.append("# TYPE ").append(s.name).append(" ");
      out.append(s.kind == MetricKind::kHistogram ? "summary"
                                                  : metric_kind_name(s.kind));
      out.push_back('\n');
    }
    if (s.kind == MetricKind::kHistogram) {
      if (s.hist.count() > 0) {
        for (const double q : kQuantiles) {
          Labels with_q = s.labels;
          with_q["quantile"] = quantile_name(q);
          out.append(flat_name(s.name, with_q)).append(" ");
          out.append(fmt_num(s.hist.quantile(q))).push_back('\n');
        }
      }
      out.append(flat_name(s.name + "_sum", s.labels)).append(" ");
      out.append(fmt_num(s.hist.sum())).push_back('\n');
      out.append(flat_name(s.name + "_count", s.labels)).append(" ");
      out.append(fmt_num(static_cast<double>(s.hist.count()))).push_back('\n');
    } else {
      out.append(flat_name(s.name, s.labels)).append(" ");
      out.append(fmt_num(s.value)).push_back('\n');
    }
  }
  return out;
}

std::map<std::string, double> flatten(const MetricsSnapshot& snapshot) {
  std::map<std::string, double> out;
  for (const MetricSample& s : snapshot.samples()) {
    if (s.kind == MetricKind::kHistogram) {
      out[flat_name(s.name + "_count", s.labels)] =
          static_cast<double>(s.hist.count());
      out[flat_name(s.name + "_sum", s.labels)] = s.hist.sum();
      if (s.hist.count() > 0) {
        for (const double q : kQuantiles) {
          Labels with_q = s.labels;
          with_q["quantile"] = quantile_name(q);
          out[flat_name(s.name, with_q)] = s.hist.quantile(q);
        }
      }
    } else {
      out[flat_name(s.name, s.labels)] = s.value;
    }
  }
  return out;
}

std::map<std::string, double> flatten_json(const std::string& json) {
  const JsonValue doc = JsonParser(json).parse();
  std::map<std::string, double> out;
  for (const JsonValue& m : doc.at("metrics").arr) {
    const std::string& name = m.at("name").str;
    const std::string& type = m.at("type").str;
    const Labels labels = labels_from_json(m.at("labels"));
    if (type == "histogram") {
      out[flat_name(name + "_count", labels)] = m.at("count").number;
      out[flat_name(name + "_sum", labels)] = m.at("sum").number;
      if (m.at("count").number > 0) {
        for (const auto& [q, v] : m.at("quantiles").obj) {
          Labels with_q = labels;
          with_q["quantile"] = q;
          out[flat_name(name, with_q)] = v.number;
        }
      }
    } else {
      out[flat_name(name, labels)] = m.at("value").number;
    }
  }
  return out;
}

std::map<std::string, double> flatten_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos) {
      throw std::runtime_error("metrics prometheus: malformed sample line");
    }
    const std::string key(line.substr(0, space));
    out[key] = std::strtod(std::string(line.substr(space + 1)).c_str(), nullptr);
  }
  return out;
}

}  // namespace dex::metrics
