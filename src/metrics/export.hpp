// Snapshot exporters: JSON (machine-readable, consumed by benches and
// tools/check_metrics.sh) and Prometheus text format (live deployments).
//
// Both formats render the same canonical scalar view of a snapshot, the
// "flat map": `name{k="v",...}` → value, with histogram series expanded into
// `_count`, `_sum` and `quantile="..."` entries. flatten_json() and
// flatten_prometheus() parse exporter output back into that map, so
// round-tripping is testable:
//
//   flatten(s) == flatten_json(to_json(s)) == flatten_prometheus(to_prometheus(s))
#pragma once

#include <map>
#include <string>

#include "metrics/metrics.hpp"

namespace dex::metrics {

/// {"schema":"dex-metrics/v1","metrics":[{name,type,labels,...}, ...]}
/// Histograms carry count/sum/min/max/mean plus a quantiles object.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format (one `# TYPE` comment per family;
/// histograms render as summaries with quantile labels).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Canonical scalar view (see file comment). Quantiles are emitted only for
/// non-empty histograms; `_count` and `_sum` always.
[[nodiscard]] std::map<std::string, double> flatten(const MetricsSnapshot& snapshot);

/// Parses to_json() output back into the flat map. Throws std::runtime_error
/// on malformed input.
[[nodiscard]] std::map<std::string, double> flatten_json(const std::string& json);

/// Parses to_prometheus() output back into the flat map.
[[nodiscard]] std::map<std::string, double> flatten_prometheus(const std::string& text);

}  // namespace dex::metrics
