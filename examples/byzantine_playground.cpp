// Byzantine playground: pick an adversary and watch DEX absorb it.
//
//   $ ./byzantine_playground [strategy] [count] [seed]
//     strategy: silent | crash | equivocate | noise | fixed
//
// Prints per-process decisions plus the identical-broadcast masking effect:
// with `equivocate`, the adversary claims different values to different
// processes on the plain channel (J1 diverges across processes) while the
// identical broadcast forces a single claim into every J2.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  const char* strategy = argc > 1 ? argv[1] : "equivocate";
  const std::size_t count = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 99;

  dex::harness::ExperimentConfig cfg;
  cfg.algorithm = dex::Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.seed = seed;
  cfg.input = dex::split_input(13, 5, 11, 3);  // margin 9: P1 boundary
  cfg.faults.count = count;

  using dex::harness::FaultKind;
  if (std::strcmp(strategy, "silent") == 0) {
    cfg.faults.kind = FaultKind::kSilent;
  } else if (std::strcmp(strategy, "crash") == 0) {
    cfg.faults.kind = FaultKind::kCrashMid;
    cfg.faults.crash_reach = 5;
  } else if (std::strcmp(strategy, "equivocate") == 0) {
    cfg.faults.kind = FaultKind::kEquivocate;
    cfg.faults.equivocate_a = 5;
    cfg.faults.equivocate_b = 3;
  } else if (std::strcmp(strategy, "noise") == 0) {
    cfg.faults.kind = FaultKind::kNoise;
  } else if (std::strcmp(strategy, "fixed") == 0) {
    cfg.faults.kind = FaultKind::kFixedValue;
  } else {
    std::fprintf(stderr,
                 "unknown strategy %s (silent|crash|equivocate|noise|fixed)\n",
                 strategy);
    return 2;
  }

  std::printf("byzantine playground: %zu × %s adversary, n=%zu t=%zu seed=%llu\n",
              count, strategy, cfg.n, cfg.t,
              static_cast<unsigned long long>(seed));
  std::printf("input: %s\n", cfg.input.to_string().c_str());

  const auto result = dex::harness::run_experiment(cfg);

  for (std::size_t i = 0; i < cfg.n; ++i) {
    if (result.faulty.count(static_cast<dex::ProcessId>(i)) > 0) {
      std::printf("  p%-2zu BYZANTINE (%s)\n", i, strategy);
      continue;
    }
    const auto& rec = result.stats.decisions[i];
    if (!rec.has_value()) {
      std::printf("  p%-2zu undecided\n", i);
      continue;
    }
    std::printf("  p%-2zu decided %lld via %-10s at %.2fms\n", i,
                static_cast<long long>(rec->decision.value),
                dex::decision_path_name(rec->decision.path),
                static_cast<double>(rec->at) / 1e6);
  }

  std::printf("summary: %zu one-step, %zu two-step, %zu fallback / %zu correct\n",
              result.one_step, result.two_step, result.via_underlying,
              result.correct);
  std::printf("agreement: %s  unanimity-preserved: %s\n",
              result.agreement() ? "yes" : "NO",
              [&] {
                const auto u = dex::harness::unanimous_correct_value(
                    cfg.input, result.faulty);
                if (!u.has_value()) return "n/a";
                return result.decided_value() == u ? "yes" : "NO";
              }());
  return result.agreement() && result.all_decided() ? 0 : 1;
}
