// Quickstart: run one DEX consensus instance on a simulated asynchronous
// network and inspect how each process decided.
//
//   $ ./quickstart [seed]
//
// Thirteen processes (n = 13, t = 2, the tight n > 6t bound for the
// frequency-based pair) propose values with a contended minority; DEX decides
// fast where the condition allows and falls back otherwise.
#include <cstdio>
#include <cstdlib>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  dex::harness::ExperimentConfig cfg;
  cfg.algorithm = dex::Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.seed = seed;
  // Ten processes propose 7, three propose 3: frequency margin 7 — inside
  // C2_0 (margin > 2t = 4) but outside C1_0 (margin > 4t = 8), so we expect
  // two-step decisions.
  cfg.input = dex::split_input(13, 7, 10, 3);

  std::printf("DEX quickstart: n=%zu t=%zu seed=%llu input=%s\n", cfg.n, cfg.t,
              static_cast<unsigned long long>(seed), cfg.input.to_string().c_str());

  const auto result = dex::harness::run_experiment(cfg);

  for (std::size_t i = 0; i < cfg.n; ++i) {
    const auto& rec = result.stats.decisions[i];
    if (!rec.has_value()) {
      std::printf("  p%-2zu undecided\n", i);
      continue;
    }
    std::printf("  p%-2zu decided %lld via %-10s (logical steps: %u, t=%.2fms)\n",
                i, static_cast<long long>(rec->decision.value),
                dex::decision_path_name(rec->decision.path), rec->steps,
                static_cast<double>(rec->at) / 1e6);
  }
  std::printf("agreement: %s, decided value: %lld\n",
              result.agreement() ? "yes" : "NO",
              static_cast<long long>(result.decided_value().value_or(-1)));
  std::printf("packets delivered: %llu (events: %llu)\n",
              static_cast<unsigned long long>(result.stats.packets_delivered),
              static_cast<unsigned long long>(result.stats.events));
  return result.agreement() && result.all_decided() ? 0 : 1;
}
