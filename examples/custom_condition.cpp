// Defining your own condition-sequence pair.
//
// DEX is generic over any LEGAL pair (§3.2): supply P1, P2, F and the two
// condition sequences, and the engine does the rest. This example defines two
// custom pairs:
//   * an (intentionally) ILLEGAL "greedy" pair whose one-step predicate is too
//     permissive — the randomized legality checker finds a counterexample;
//   * a legal "conservative" pair with extra safety margin — the checker
//     passes it, and we run it through a full simulated consensus.
//
//   $ ./custom_condition [seed]
#include <cstdio>
#include <cstdlib>

#include "consensus/condition/input_gen.hpp"
#include "consensus/condition/legality.hpp"
#include "consensus/dex/dex_stack.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace dex;

/// ILLEGAL: decides one-step on margin > 2t. Looks plausible — but one-step
/// deciders and fallback proposers can then disagree (LA3 breaks).
class GreedyPair final : public ConditionPair {
 public:
  GreedyPair(std::size_t n, std::size_t t) : ConditionPair(n, t) {
    std::vector<std::shared_ptr<const Condition>> c1, c2;
    for (std::size_t k = 0; k <= t; ++k) {
      c1.push_back(std::make_shared<const FreqCondition>(2 * t + 2 * k));
      c2.push_back(std::make_shared<const FreqCondition>(t + 2 * k));
    }
    set_sequences(ConditionSequence(std::move(c1)), ConditionSequence(std::move(c2)));
  }
  bool p1(const View& j) const override {
    const auto s = j.freq();
    return !s.empty() && s.margin() > 2 * t_;
  }
  bool p2(const View& j) const override {
    const auto s = j.freq();
    return !s.empty() && s.margin() > t_;
  }
  Value f(const View& j) const override {
    const auto s = j.freq();
    return s.empty() ? 0 : *s.first();
  }
  std::size_t min_processes(std::size_t t) const override { return 4 * t + 1; }
  std::string name() const override { return "greedy"; }
};

/// LEGAL: strictly more conservative than the paper's frequency pair —
/// stronger premises, identical conclusions, so Theorem 1's proofs carry
/// over verbatim. Costs coverage, buys slack.
class ConservativePair final : public ConditionPair {
 public:
  ConservativePair(std::size_t n, std::size_t t) : ConditionPair(n, t) {
    std::vector<std::shared_ptr<const Condition>> c1, c2;
    for (std::size_t k = 0; k <= t; ++k) {
      c1.push_back(std::make_shared<const FreqCondition>(5 * t + 2 * k));
      c2.push_back(std::make_shared<const FreqCondition>(3 * t + 2 * k));
    }
    set_sequences(ConditionSequence(std::move(c1)), ConditionSequence(std::move(c2)));
  }
  bool p1(const View& j) const override {
    const auto s = j.freq();
    return !s.empty() && s.margin() > 5 * t_;
  }
  bool p2(const View& j) const override {
    const auto s = j.freq();
    return !s.empty() && s.margin() > 3 * t_;
  }
  Value f(const View& j) const override {
    const auto s = j.freq();
    return s.empty() ? 0 : *s.first();
  }
  std::size_t min_processes(std::size_t t) const override { return 7 * t + 1; }
  std::string name() const override { return "conservative"; }
};

void check(const char* label, const ConditionPair& pair, std::uint64_t seed) {
  LegalityCheckOptions opts;
  opts.samples_per_criterion = 20000;
  LegalityChecker checker(pair, Rng(seed), opts);
  const auto violation = checker.check_all();
  if (violation.has_value()) {
    std::printf("%s: ILLEGAL — %s counterexample:\n  %s\n", label,
                violation->criterion.c_str(), violation->detail.c_str());
  } else {
    std::printf("%s: no violation found (%zu samples per criterion)\n", label,
                opts.samples_per_criterion);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 23;
  constexpr std::size_t kN = 15, kT = 2;

  std::printf("=== custom condition-sequence pairs (n=%zu, t=%zu) ===\n\n", kN, kT);
  const GreedyPair greedy(kN, kT);
  check("greedy pair   (P1: margin > 2t)", greedy, seed);
  auto conservative = std::make_shared<const ConservativePair>(kN, kT);
  check("conservative  (P1: margin > 5t)", *conservative, seed);

  // Run the legal pair through a full simulated consensus.
  std::printf("\nrunning DEX with the conservative pair on a margin-11 input...\n");
  sim::SimOptions opts;
  opts.seed = seed;
  sim::Simulation simulation(kN, opts);
  Rng rng(seed);
  const auto input = margin_input(kN, 11, 5, rng);  // > 5t ⇒ one-step at f=0
  std::vector<DexStack*> stacks;
  for (std::size_t i = 0; i < kN; ++i) {
    StackConfig sc;
    sc.n = kN;
    sc.t = kT;
    sc.self = static_cast<ProcessId>(i);
    auto stack = std::make_unique<DexStack>(sc, conservative);
    stacks.push_back(stack.get());
    simulation.attach(static_cast<ProcessId>(i),
                      std::make_unique<sim::ProcessActor>(std::move(stack), input[i]));
  }
  const auto stats = simulation.run();
  std::printf("input: %s\n", input.to_string().c_str());
  std::size_t fast = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto& rec = stats.decisions[i];
    if (rec.has_value() && rec->decision.path != DecisionPath::kUnderlying) ++fast;
  }
  std::printf("decided: %s, agreement: %s, fast-path deciders: %zu/%zu\n",
              stats.all_decided() ? "all" : "NOT ALL",
              stats.agreement() ? "yes" : "NO", fast, kN);
  return stats.agreement() && stats.all_decided() ? 0 : 1;
}
