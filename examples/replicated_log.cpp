// Replicated log (state-machine replication) on per-slot DEX instances —
// the paper's §1.1 motivating workload.
//
//   $ ./replicated_log [commands] [contention_pct] [seed]
//
// Clients submit commands; with probability contention_pct/100 two commands
// race for the same slot. Contention-free slots commit in one communication
// step; contended ones resolve through DEX's slower paths and every command
// still commits exactly once, in the same order on every replica.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/rng.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

int main(int argc, char** argv) {
  const std::size_t commands = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t contention_pct =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  constexpr std::size_t kN = 13, kT = 2;
  dex::sim::SimOptions opts;
  opts.seed = seed;
  dex::sim::Simulation simulation(kN, opts);

  auto pair = dex::make_frequency_pair(kN, kT);
  std::vector<dex::smr::Replica*> replicas;
  for (std::size_t i = 0; i < kN; ++i) {
    dex::smr::ReplicaConfig rc;
    rc.n = kN;
    rc.t = kT;
    rc.self = static_cast<dex::ProcessId>(i);
    rc.max_slots = 2 * commands + 4;
    auto replica = std::make_unique<dex::smr::Replica>(rc, pair);
    replicas.push_back(replica.get());
    simulation.attach(static_cast<dex::ProcessId>(i), std::move(replica));
  }

  // Client model: commands arrive 40ms apart; a contended command gets a
  // racing sibling submitted in reverse replica order at the same instant.
  dex::Rng rng(seed);
  std::uint64_t next_seq = 1;
  std::size_t contended = 0;
  auto broadcast = [&](const dex::smr::Command& cmd, dex::SimTime base,
                       bool reverse) {
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      dex::smr::Replica* rep = replicas[r];
      const auto skew = static_cast<dex::SimTime>(
          (reverse ? replicas.size() - r : r) * 1'500'000);
      simulation.schedule_at(base + skew, [rep, cmd] { rep->submit(cmd); });
    }
  };
  for (std::size_t c = 0; c < commands; ++c) {
    const dex::SimTime base = static_cast<dex::SimTime>(c) * 40'000'000;
    dex::smr::Command cmd{1, next_seq++, "SET key" + std::to_string(c)};
    broadcast(cmd, base, false);
    if (rng.next_below(100) < contention_pct) {
      ++contended;
      dex::smr::Command rival{2, next_seq++, "DEL key" + std::to_string(c)};
      broadcast(rival, base, true);
    }
  }

  std::printf("replicated log: n=%zu t=%zu, %zu commands (%zu contended), seed=%llu\n",
              kN, kT, commands, contended,
              static_cast<unsigned long long>(seed));
  const auto stats = simulation.run();

  // All logs must be identical.
  const auto& reference = replicas[0]->log();
  bool identical = true;
  for (const auto* r : replicas) {
    if (r->log().size() != reference.size()) identical = false;
  }
  std::map<const char*, std::size_t> paths;
  std::printf("committed log (%zu entries):\n", reference.size());
  for (std::size_t s = 0; s < reference.size(); ++s) {
    const auto& e = reference[s];
    for (const auto* r : replicas) {
      if (s >= r->log().size() || r->log()[s].digest != e.digest) {
        identical = false;
      }
    }
    ++paths[dex::decision_path_name(e.path)];
    std::printf("  slot %-3llu %-18s via %s\n",
                static_cast<unsigned long long>(e.slot),
                e.command ? e.command->op.c_str() : "(no-op)",
                dex::decision_path_name(e.path));
  }
  std::printf("logs identical on all %zu replicas: %s\n", replicas.size(),
              identical ? "yes" : "NO");
  for (const auto& [path, count] : paths) {
    std::printf("  %-10s slots: %zu\n", path, count);
  }
  std::printf("packets delivered: %llu, simulated time: %.1fms\n",
              static_cast<unsigned long long>(stats.packets_delivered),
              static_cast<double>(stats.end_time) / 1e6);
  return identical ? 0 : 1;
}
