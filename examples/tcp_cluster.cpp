// TCP cluster: the same DEX stacks that run in the simulator, over real
// sockets on localhost — one OS thread per replica, framed CRC-checked
// connections, a full mesh.
//
//   $ ./tcp_cluster [n] [t] [base_port]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "consensus/factory.hpp"
#include "transport/runner.hpp"
#include "transport/tcp.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const std::size_t t = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const auto base_port = static_cast<std::uint16_t>(
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 9400);
  if (n < 6 * t + 1) {
    std::fprintf(stderr, "DEX(freq) needs n > 6t (got n=%zu, t=%zu)\n", n, t);
    return 2;
  }

  std::printf("tcp cluster: n=%zu t=%zu, ports %u..%u\n", n, t, base_port,
              static_cast<unsigned>(base_port + n - 1));

  std::vector<std::unique_ptr<dex::transport::Transport>> transports;
  std::vector<dex::transport::TcpTransport*> raw;
  for (std::size_t i = 0; i < n; ++i) {
    dex::transport::TcpConfig cfg;
    cfg.n = n;
    cfg.self = static_cast<dex::ProcessId>(i);
    cfg.base_port = base_port;
    auto node = std::make_unique<dex::transport::TcpTransport>(cfg);
    raw.push_back(node.get());
    transports.push_back(std::move(node));
  }
  std::printf("establishing full mesh...\n");
  std::vector<std::thread> starters;
  for (auto* node : raw) starters.emplace_back([node] { node->start(); });
  for (auto& th : starters) th.join();
  std::printf("mesh up (%zu connections)\n", n * (n - 1) / 2);

  std::vector<std::unique_ptr<dex::ConsensusProcess>> procs;
  std::vector<dex::Value> proposals;
  for (std::size_t i = 0; i < n; ++i) {
    dex::StackConfig sc;
    sc.n = n;
    sc.t = t;
    sc.self = static_cast<dex::ProcessId>(i);
    sc.coin_seed = 0xd15c0;
    procs.push_back(dex::make_stack(dex::Algorithm::kDexFreq, sc));
    proposals.push_back(100 + static_cast<dex::Value>(i % 2));  // mild contention
  }

  const auto started = std::chrono::steady_clock::now();
  const auto result = dex::transport::run_cluster(procs, transports, proposals);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);

  for (std::size_t i = 0; i < n; ++i) {
    const auto& d = result.decisions[i];
    if (d.has_value()) {
      std::printf("  node %-2zu decided %lld via %s\n", i,
                  static_cast<long long>(d->value), decision_path_name(d->path));
    } else {
      std::printf("  node %-2zu undecided\n", i);
    }
  }
  std::printf("agreement: %s, wall time: %lld ms\n",
              result.agreement() ? "yes" : "NO",
              static_cast<long long>(elapsed.count()));
  for (auto* node : raw) node->shutdown();
  return result.agreement() && result.all_decided() ? 0 : 1;
}
