// Atomic commitment with the privileged-value pair (§3.4).
//
// In non-blocking atomic commitment most participants vote Commit almost all
// of the time, so Commit is the natural privileged value m: DEX(prv) decides
// in one step whenever #Commit(J) > 3t and in two steps when > 2t — even with
// Byzantine participants voting strategically.
//
//   $ ./atomic_commit [abort_votes] [byzantine] [seed]
#include <cstdio>
#include <cstdlib>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"

namespace {
constexpr dex::Value kCommit = 1;
constexpr dex::Value kAbort = 0;
}  // namespace

int main(int argc, char** argv) {
  const std::size_t abort_votes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::size_t byzantine = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  constexpr std::size_t kN = 16, kT = 3;  // n > 5t for the privileged pair
  if (abort_votes > kN || byzantine > kT) {
    std::fprintf(stderr, "abort_votes <= %zu, byzantine <= %zu\n", kN, kT);
    return 2;
  }

  dex::harness::ExperimentConfig cfg;
  cfg.algorithm = dex::Algorithm::kDexPrv;
  cfg.privileged = kCommit;
  cfg.n = kN;
  cfg.t = kT;
  cfg.seed = seed;
  cfg.input = dex::split_input(kN, kAbort, abort_votes, kCommit);
  cfg.faults.count = byzantine;
  // Byzantine participants try to wreck the fast path by voting Abort toward
  // half the processes and Commit toward the rest.
  cfg.faults.kind = dex::harness::FaultKind::kEquivocate;
  cfg.faults.equivocate_a = kAbort;
  cfg.faults.equivocate_b = kCommit;

  std::printf("atomic commit: n=%zu t=%zu, %zu Abort vote(s), %zu Byzantine, seed=%llu\n",
              kN, kT, abort_votes, byzantine,
              static_cast<unsigned long long>(seed));

  const auto result = dex::harness::run_experiment(cfg);

  std::size_t commit = 0, abort = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto& rec = result.stats.decisions[i];
    if (!rec.has_value()) continue;
    (rec->decision.value == kCommit ? commit : abort) += 1;
    std::printf("  participant %-2zu: %s via %s (%u steps)\n", i,
                rec->decision.value == kCommit ? "COMMIT" : "ABORT ",
                dex::decision_path_name(rec->decision.path), rec->steps);
  }
  std::printf("outcome: %s (agreement: %s)\n",
              commit > 0 ? "COMMIT" : "ABORT",
              result.agreement() ? "yes" : "NO");
  std::printf("fast-path share: %zu one-step, %zu two-step, %zu fallback of %zu\n",
              result.one_step, result.two_step, result.via_underlying,
              result.correct);
  return result.agreement() ? 0 : 1;
}
