// Minimal JSON emission for benchmark result files (BENCH_*.json).
//
// The benches emit one flat-ish object each — a handful of scalar fields plus
// named sub-objects — so this is a small append-only writer, not a JSON
// library. Strings are escaped for the characters a git rev or bench name
// could plausibly contain; numbers print with enough precision to round-trip.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#ifndef DEX_GIT_REV
#define DEX_GIT_REV "unknown"
#endif

namespace dex::benchjson {

class JsonWriter {
 public:
  JsonWriter() { os_ << "{"; }

  JsonWriter& field(std::string_view key, double v) {
    sep();
    quote(key);
    os_ << ":";
    // %.17g round-trips doubles; integral values print without a mantissa tail.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
  }
  JsonWriter& field(std::string_view key, std::uint64_t v) {
    sep();
    quote(key);
    os_ << ":" << v;
    return *this;
  }
  JsonWriter& field(std::string_view key, bool v) {
    sep();
    quote(key);
    os_ << ":" << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& field(std::string_view key, std::string_view v) {
    sep();
    quote(key);
    os_ << ":";
    quote(v);
    return *this;
  }
  // A char array would otherwise pick the bool overload (pointer decay beats
  // the string_view user conversion).
  JsonWriter& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonWriter& begin_object(std::string_view key) {
    sep();
    quote(key);
    os_ << ":{";
    first_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    os_ << "}";
    first_ = false;
    return *this;
  }

  [[nodiscard]] std::string finish() {
    os_ << "}\n";
    return os_.str();
  }

  /// Writes the finished document to `path`; false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) {
    const std::string doc = finish();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  void sep() {
    if (!first_) os_ << ",";
    first_ = false;
  }
  void quote(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostringstream os_;
  bool first_ = true;
};

}  // namespace dex::benchjson
