// Microbenchmarks for the library's hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "consensus/condition/input_gen.hpp"
#include "consensus/condition/pair.hpp"
#include "consensus/idb/idb_engine.hpp"
#include "consensus/message.hpp"
#include "consensus/view.hpp"

namespace {

using namespace dex;

void BM_ViewFreqStats(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto input = random_input(n, rng, {.domain = 8});
  const View j = input.as_view();
  for (auto _ : state) {
    benchmark::DoNotOptimize(j.freq());
  }
}
BENCHMARK(BM_ViewFreqStats)->Arg(13)->Arg(61)->Arg(241);

void BM_FreqPairP1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 6;
  const FrequencyPair pair(n, t);
  Rng rng(2);
  const View j = masked_view(margin_input(n, 4 * t + 1, 0, rng), t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.p1(j));
  }
}
BENCHMARK(BM_FreqPairP1)->Arg(13)->Arg(61)->Arg(241);

void BM_PrivilegedPairF(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 5;
  const PrivilegedPair pair(n, t, 0);
  Rng rng(3);
  const View j = masked_view(privileged_input(n, 0, 2 * t + 1, rng), t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.f(j));
  }
}
BENCHMARK(BM_PrivilegedPairF)->Arg(11)->Arg(51)->Arg(251);

void BM_MessageEncodeDecode(benchmark::State& state) {
  Message m;
  m.kind = MsgKind::kIdbEcho;
  m.instance = 9;
  m.tag = chan::uc_phase_tag(3, 2);
  m.origin = 4;
  m.payload = UcPhasePayload{3, 2, true, 12345}.to_bytes();
  for (auto _ : state) {
    const auto bytes = m.to_bytes();
    benchmark::DoNotOptimize(Message::from_bytes(bytes));
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_IdbEngineEchoProcessing(benchmark::State& state) {
  // Throughput of the echo-counting hot path: one full acceptance per
  // iteration batch, fresh tag each time so slots do not saturate.
  const std::size_t n = 13, t = 2;
  Outbox outbox;
  IdbEngine engine(n, t, 0, 0, &outbox);
  const auto payload = ValuePayload{7}.to_bytes();
  std::uint64_t tag = 0;
  for (auto _ : state) {
    ++tag;
    Message echo;
    echo.kind = MsgKind::kIdbEcho;
    echo.tag = tag;
    echo.origin = 1;
    echo.payload = payload;
    for (ProcessId src = 0; src < static_cast<ProcessId>(n); ++src) {
      engine.on_message(src, echo);
    }
    benchmark::DoNotOptimize(engine.take_deliveries());
    (void)outbox.drain();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IdbEngineEchoProcessing);

void BM_MarginInputGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(margin_input(n, n / 3, 0, rng));
  }
}
BENCHMARK(BM_MarginInputGeneration)->Arg(13)->Arg(121);

void BM_ViewDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const auto input = random_input(n, rng, {.domain = 4});
  const View a = masked_view(input, n / 8, rng);
  const View b = masked_view(input, n / 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(View::dist(a, b));
  }
}
BENCHMARK(BM_ViewDistance)->Arg(13)->Arg(241);

}  // namespace
