// F2 — Figure 2: how identical broadcast masks an equivocating sender.
//
// A Byzantine process sends value A to half the correct processes and value B
// to the rest. On the plain channel, views diverge (each process records what
// it was told). Through IDB, either one value is delivered identically to
// every correct process or nothing is delivered — never two different values.
// We measure both channels across seeds and equivocation splits.
#include <cstdio>
#include <map>
#include <optional>
#include <set>

#include "byz/strategy.hpp"
#include "consensus/idb/idb_engine.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace dex;

constexpr std::size_t kN = 9, kT = 2;
constexpr ProcessId kByz = 8;

/// Correct endpoint: records the plain-channel claim and the IDB delivery
/// from the Byzantine sender.
class Witness final : public sim::Actor {
 public:
  explicit Witness(ProcessId self) : self_(self), idb_(kN, kT, self, 0, &outbox_) {}

  void on_packet(ProcessId src, const Message& msg) override {
    if (msg.kind == MsgKind::kPlain && src == kByz) {
      if (!plain_claim_) plain_claim_ = ValuePayload::from_bytes(msg.payload).v;
      return;
    }
    idb_.on_message(src, msg);
    for (const auto& d : idb_.take_deliveries()) {
      if (d.origin == kByz && !idb_delivery_) {
        idb_delivery_ = ValuePayload::from_bytes(d.payload).v;
      }
    }
  }
  std::vector<Outgoing> drain() override { return outbox_.drain(); }

  std::optional<Value> plain_claim_;
  std::optional<Value> idb_delivery_;

 private:
  ProcessId self_;
  Outbox outbox_;
  IdbEngine idb_;
};

/// The equivocator: value 1 to the first `split` correct processes, value 2
/// to the rest, on both channels.
class Equivocator final : public sim::Actor {
 public:
  explicit Equivocator(std::size_t split) : split_(split) {}
  void start() override {
    for (ProcessId dst = 0; dst < static_cast<ProcessId>(kN - 1); ++dst) {
      const Value v = static_cast<std::size_t>(dst) < split_ ? 1 : 2;
      Message plain;
      plain.kind = MsgKind::kPlain;
      plain.payload = ValuePayload{v}.to_bytes();
      outbox_.send(dst, plain);
      Message init;
      init.kind = MsgKind::kIdbInit;
      init.origin = kByz;
      init.tag = 0;
      init.payload = ValuePayload{v}.to_bytes();
      outbox_.send(dst, init);
    }
  }
  void on_packet(ProcessId, const Message&) override {}
  std::vector<Outgoing> drain() override { return outbox_.drain(); }

 private:
  std::size_t split_;
  Outbox outbox_;
};

struct Outcome {
  std::size_t plain_distinct = 0;     // distinct values seen on plain channel
  std::size_t idb_distinct = 0;       // distinct values delivered via IDB
  std::size_t idb_delivered_to = 0;   // how many correct processes Id-Received
};

Outcome run_once(std::size_t split, std::uint64_t seed) {
  sim::SimOptions opts;
  opts.seed = seed;
  sim::Simulation s(kN, opts);
  std::vector<Witness*> witnesses;
  for (ProcessId i = 0; i < static_cast<ProcessId>(kN - 1); ++i) {
    auto w = std::make_unique<Witness>(i);
    witnesses.push_back(w.get());
    s.attach(i, std::move(w));
  }
  s.attach(kByz, std::make_unique<Equivocator>(split));
  s.run();

  Outcome out;
  std::set<Value> plain, idb;
  for (const Witness* w : witnesses) {
    if (w->plain_claim_) plain.insert(*w->plain_claim_);
    if (w->idb_delivery_) {
      idb.insert(*w->idb_delivery_);
      ++out.idb_delivered_to;
    }
  }
  out.plain_distinct = plain.size();
  out.idb_distinct = idb.size();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 2: identical broadcast vs an equivocating sender ===\n");
  std::printf("n=%zu t=%zu, Byzantine p%d sends value 1 to the first k correct "
              "processes and value 2 to the rest\n\n", kN, kT, kByz);
  std::printf("%-8s | %-28s | %-38s\n", "split k", "plain channel",
              "identical broadcast");
  std::printf("%-8s | %-28s | %-38s\n", "", "runs with divergent views",
              "divergent | delivered-to (mean) | masked");

  constexpr int kSeeds = 50;
  bool idb_ever_diverged = false;
  for (std::size_t split = 0; split <= kN - 1; ++split) {
    int plain_div = 0, idb_div = 0, none = 0;
    std::size_t delivered_sum = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto o = run_once(split, 1000 + static_cast<std::uint64_t>(seed));
      if (o.plain_distinct > 1) ++plain_div;
      if (o.idb_distinct > 1) ++idb_div;
      if (o.idb_delivered_to == 0) ++none;
      delivered_sum += o.idb_delivered_to;
    }
    idb_ever_diverged = idb_ever_diverged || idb_div > 0;
    std::printf("%-8zu | %3d%% of %d runs            | %3d%% | %.1f/%zu | "
                "no-delivery in %d%%\n",
                split, 100 * plain_div / kSeeds, kSeeds, 100 * idb_div / kSeeds,
                static_cast<double>(delivered_sum) / kSeeds, kN - 1,
                100 * none / kSeeds);
  }

  std::printf("\npaper's claim (IDB Agreement): processes may receive nothing,"
              " but never two different\nmessages from one sender — divergence"
              " through IDB observed: %s\n",
              idb_ever_diverged ? "YES (BUG!)" : "never");
  return idb_ever_diverged ? 1 : 0;
}
