// E3 — the §1.1 motivating application: replicated state machine throughput
// under client contention.
//
// Replicas agree on the processing order of client commands, one DEX instance
// per log slot. With no contention every replica proposes the same request —
// the slot commits in one communication step; as contention rises, slots are
// pushed onto the two-step and fallback paths. We sweep the racing-client
// probability and report per-slot commit paths, latency and message cost.
#include <cstdio>
#include <map>
#include <string>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace {

using namespace dex;

constexpr std::size_t kN = 13, kT = 2;
constexpr std::size_t kCommands = 12;

struct SmrOutcome {
  bool logs_identical = true;
  std::size_t committed = 0;
  Counter paths;
  double packets_per_command = 0;
  double sim_ms = 0;
};

SmrOutcome run_once(std::size_t contention_pct, std::uint64_t seed) {
  sim::SimOptions opts;
  opts.seed = seed;
  sim::Simulation simulation(kN, opts);
  auto pair = make_frequency_pair(kN, kT);
  std::vector<smr::Replica*> replicas;
  for (std::size_t i = 0; i < kN; ++i) {
    smr::ReplicaConfig rc;
    rc.n = kN;
    rc.t = kT;
    rc.self = static_cast<ProcessId>(i);
    rc.max_slots = kCommands * 2 + 4;
    auto rep = std::make_unique<smr::Replica>(rc, pair);
    replicas.push_back(rep.get());
    simulation.attach(static_cast<ProcessId>(i), std::move(rep));
  }

  Rng rng(seed * 31 + 7);
  std::uint64_t seq = 1;
  auto broadcast = [&](const smr::Command& cmd, SimTime base, bool reverse) {
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      smr::Replica* rep = replicas[r];
      const auto skew = static_cast<SimTime>(
          (reverse ? replicas.size() - r : r) * 1'000'000);
      simulation.schedule_at(base + skew, [rep, cmd] { rep->submit(cmd); });
    }
  };
  for (std::size_t c = 0; c < kCommands; ++c) {
    const SimTime base = static_cast<SimTime>(c) * 50'000'000;
    broadcast(smr::Command{1, seq++, "W" + std::to_string(c)}, base, false);
    if (rng.next_below(100) < contention_pct) {
      broadcast(smr::Command{2, seq++, "X" + std::to_string(c)}, base, true);
    }
  }

  const auto stats = simulation.run();
  SmrOutcome out;
  const auto& ref = replicas[0]->log();
  std::size_t commands_committed = 0;
  for (const auto& e : ref) {
    out.paths.add(decision_path_name(e.path));
    if (e.command.has_value()) ++commands_committed;
  }
  for (const auto* r : replicas) {
    if (r->log().size() != ref.size()) {
      out.logs_identical = false;
      continue;
    }
    for (std::size_t s = 0; s < ref.size(); ++s) {
      if (r->log()[s].digest != ref[s].digest) out.logs_identical = false;
    }
  }
  out.committed = commands_committed;
  out.packets_per_command =
      commands_committed == 0
          ? 0
          : static_cast<double>(stats.packets_delivered) /
                static_cast<double>(commands_committed);
  out.sim_ms = static_cast<double>(stats.end_time) / 1e6;
  return out;
}

}  // namespace

int main() {
  std::printf("=== E3: SMR over per-slot DEX (n=%zu t=%zu, %zu commands) ===\n\n",
              kN, kT, kCommands);
  std::printf("%-12s | %-9s | %-28s | %-10s | %-8s\n", "contention",
              "commands", "slot paths (1step/2step/uc)", "pkts/cmd", "logs ok");

  constexpr int kSeeds = 5;
  bool all_ok = true;
  for (const std::size_t pct : {0u, 20u, 40u, 60u, 80u}) {
    std::size_t committed = 0;
    std::uint64_t one = 0, two = 0, uc = 0;
    double pkts = 0, runs = 0;
    bool ok = true;
    for (int s = 0; s < kSeeds; ++s) {
      const auto o = run_once(pct, 100 + static_cast<std::uint64_t>(s));
      committed += o.committed;
      one += o.paths.get("one-step");
      two += o.paths.get("two-step");
      uc += o.paths.get("underlying");
      pkts += o.packets_per_command;
      runs += 1;
      ok = ok && o.logs_identical;
    }
    all_ok = all_ok && ok;
    char pathbuf[64];
    std::snprintf(pathbuf, sizeof(pathbuf), "%llu / %llu / %llu",
                  static_cast<unsigned long long>(one),
                  static_cast<unsigned long long>(two),
                  static_cast<unsigned long long>(uc));
    std::printf("%-12zu | %-9zu | %-28s | %-10.0f | %-8s\n", pct,
                committed / kSeeds, pathbuf, pkts / runs, ok ? "yes" : "NO");
  }
  std::printf("\nexpected shape: at 0%% contention every slot is one-step (the\n"
              "replicated-server story from §1.1); rising contention moves\n"
              "slots to the two-step and fallback tiers and raises pkts/cmd.\n");
  return all_ok ? 0 : 1;
}
