// E3 — the §1.1 motivating application: replicated state machine throughput
// under client contention.
//
// Replicas agree on the processing order of client commands, one DEX instance
// per log slot. With no contention every replica proposes the same request —
// the slot commits in one communication step; as contention rises, slots are
// pushed onto the two-step and fallback paths. We sweep the racing-client
// probability and report per-slot commit paths, latency and message cost.
//
// With --window/--batch/--slots/--seed the bench switches to pipeline mode:
// one long log driven through W concurrent slots, optionally with transport
// batching, reporting commits/sec (virtual time), packets-per-commit and
// bytes-per-commit from the metrics snapshot. The flagless invocation is the
// historical contention sweep, byte for byte.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "json_out.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "ops/admin.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace {

using namespace dex;

constexpr std::size_t kN = 13, kT = 2;
constexpr std::size_t kCommands = 12;

struct SmrOutcome {
  bool logs_identical = true;
  std::size_t committed = 0;
  Counter paths;
  double packets_per_command = 0;
  double sim_ms = 0;
};

SmrOutcome run_once(std::size_t contention_pct, std::uint64_t seed) {
  sim::SimOptions opts;
  opts.seed = seed;
  sim::Simulation simulation(kN, opts);
  auto pair = make_frequency_pair(kN, kT);
  std::vector<smr::Replica*> replicas;
  for (std::size_t i = 0; i < kN; ++i) {
    smr::ReplicaConfig rc;
    rc.n = kN;
    rc.t = kT;
    rc.self = static_cast<ProcessId>(i);
    rc.max_slots = kCommands * 2 + 4;
    auto rep = std::make_unique<smr::Replica>(rc, pair);
    replicas.push_back(rep.get());
    simulation.attach(static_cast<ProcessId>(i), std::move(rep));
  }

  Rng rng(seed * 31 + 7);
  std::uint64_t seq = 1;
  auto broadcast = [&](const smr::Command& cmd, SimTime base, bool reverse) {
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      smr::Replica* rep = replicas[r];
      const auto skew = static_cast<SimTime>(
          (reverse ? replicas.size() - r : r) * 1'000'000);
      simulation.schedule_at(base + skew, [rep, cmd] { rep->submit(cmd); });
    }
  };
  for (std::size_t c = 0; c < kCommands; ++c) {
    const SimTime base = static_cast<SimTime>(c) * 50'000'000;
    broadcast(smr::Command{1, seq++, "W" + std::to_string(c)}, base, false);
    if (rng.next_below(100) < contention_pct) {
      broadcast(smr::Command{2, seq++, "X" + std::to_string(c)}, base, true);
    }
  }

  const auto stats = simulation.run();
  SmrOutcome out;
  const auto& ref = replicas[0]->log();
  std::size_t commands_committed = 0;
  for (const auto& e : ref) {
    out.paths.add(decision_path_name(e.path));
    if (e.command.has_value()) ++commands_committed;
  }
  for (const auto* r : replicas) {
    if (r->log().size() != ref.size()) {
      out.logs_identical = false;
      continue;
    }
    for (std::size_t s = 0; s < ref.size(); ++s) {
      if (r->log()[s].digest != ref[s].digest) out.logs_identical = false;
    }
  }
  out.committed = commands_committed;
  out.packets_per_command =
      commands_committed == 0
          ? 0
          : static_cast<double>(stats.packets_delivered) /
                static_cast<double>(commands_committed);
  out.sim_ms = static_cast<double>(stats.end_time) / 1e6;
  return out;
}

int contention_sweep() {
  std::printf("=== E3: SMR over per-slot DEX (n=%zu t=%zu, %zu commands) ===\n\n",
              kN, kT, kCommands);
  std::printf("%-12s | %-9s | %-28s | %-10s | %-8s\n", "contention",
              "commands", "slot paths (1step/2step/uc)", "pkts/cmd", "logs ok");

  constexpr int kSeeds = 5;
  bool all_ok = true;
  for (const std::size_t pct : {0u, 20u, 40u, 60u, 80u}) {
    std::size_t committed = 0;
    std::uint64_t one = 0, two = 0, uc = 0;
    double pkts = 0, runs = 0;
    bool ok = true;
    for (int s = 0; s < kSeeds; ++s) {
      const auto o = run_once(pct, 100 + static_cast<std::uint64_t>(s));
      committed += o.committed;
      one += o.paths.get("one-step");
      two += o.paths.get("two-step");
      uc += o.paths.get("underlying");
      pkts += o.packets_per_command;
      runs += 1;
      ok = ok && o.logs_identical;
    }
    all_ok = all_ok && ok;
    char pathbuf[64];
    std::snprintf(pathbuf, sizeof(pathbuf), "%llu / %llu / %llu",
                  static_cast<unsigned long long>(one),
                  static_cast<unsigned long long>(two),
                  static_cast<unsigned long long>(uc));
    std::printf("%-12zu | %-9zu | %-28s | %-10.0f | %-8s\n", pct,
                committed / kSeeds, pathbuf, pkts / runs, ok ? "yes" : "NO");
  }
  std::printf("\nexpected shape: at 0%% contention every slot is one-step (the\n"
              "replicated-server story from §1.1); rising contention moves\n"
              "slots to the two-step and fallback tiers and raises pkts/cmd.\n");
  return all_ok ? 0 : 1;
}

int pipeline_run(std::size_t window, bool batch, std::size_t slots,
                 std::uint64_t seed, const std::optional<std::string>& json_path,
                 std::optional<std::uint16_t> admin_port,
                 std::uint64_t admin_linger) {
  metrics::MetricsRegistry registry;
  std::unique_ptr<ops::AdminServer> admin;
  if (admin_port.has_value()) {
    ops::AdminConfig acfg;
    acfg.port = *admin_port;
    acfg.bind = ops::admin_bind_from_env();
    acfg.registry = &registry;
    admin = std::make_unique<ops::AdminServer>(std::move(acfg));
    admin->start();
    std::fprintf(stderr, "admin: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(admin->port()));
    std::fflush(stderr);
  }
  sim::SimOptions opts;
  opts.seed = seed;
  opts.batch = batch;
  opts.metrics = &registry;
  sim::Simulation simulation(kN, opts);
  auto pair = make_frequency_pair(kN, kT);
  std::vector<smr::Replica*> replicas;
  for (std::size_t i = 0; i < kN; ++i) {
    smr::ReplicaConfig rc;
    rc.n = kN;
    rc.t = kT;
    rc.self = static_cast<ProcessId>(i);
    rc.max_slots = slots + 8;
    rc.window = window;
    rc.metrics =
        metrics::MetricsScope(&registry, {{"process", "p" + std::to_string(i)}});
    rc.clock = [&simulation] { return simulation.now(); };
    auto rep = std::make_unique<smr::Replica>(rc, pair);
    replicas.push_back(rep.get());
    simulation.attach(static_cast<ProcessId>(i), std::move(rep));
  }

  // One uncontended client stream: every replica receives command c at the
  // same instant, 2 ms apart, so the pending queue keeps the window full.
  std::uint64_t seq = 1;
  for (std::size_t c = 0; c < slots; ++c) {
    const SimTime at = static_cast<SimTime>(c) * 2'000'000;
    const smr::Command cmd{1, seq++, "C" + std::to_string(c)};
    for (smr::Replica* rep : replicas) {
      simulation.schedule_at(at, [rep, cmd] { rep->submit(cmd); });
    }
  }

  // Publish replica-0's slot window to /vars. The refresh runs inside the
  // simulator's event loop (the thread that owns the replica), so the admin
  // thread only ever sees set_var snapshots — no racing into live state.
  if (admin != nullptr) {
    admin->set_var("smr", "{\"status\":\"starting\"}");
    for (std::size_t c = 0; c < slots; ++c) {
      const SimTime at = static_cast<SimTime>(c) * 2'000'000 + 1'000'000;
      smr::Replica* rep = replicas[0];
      ops::AdminServer* srv = admin.get();
      simulation.schedule_at(at, [rep, srv] {
        srv->set_var("smr", rep->vars_json());
      });
    }
  }

  const auto stats = simulation.run();
  if (admin != nullptr) admin->set_var("smr", replicas[0]->vars_json());
  const auto snap = registry.snapshot();

  // Prefix agreement across replicas.
  bool logs_ok = true;
  const auto& ref = replicas[0]->log();
  for (const auto* r : replicas) {
    const std::size_t common = std::min(ref.size(), r->log().size());
    for (std::size_t s = 0; s < common; ++s) {
      if (r->log()[s].digest != ref[s].digest) logs_ok = false;
    }
  }

  const std::size_t commits = ref.size();
  std::size_t live_peak = 0;
  for (const auto* r : replicas) {
    live_peak = std::max(live_peak, r->live_instances_peak());
  }
  const double secs = static_cast<double>(stats.end_time) / 1e9;
  // Per-replica commit totals are summed across the process label; divide
  // back to per-log commits for the throughput figure.
  const double commits_total = snap.counter_total("smr_commits_total");
  const double wire_packets = snap.counter_total("sim_wire_packets_total");
  const double wire_bytes = snap.counter_total("sim_wire_bytes_total");

  std::printf("=== E3p: pipelined SMR (n=%zu t=%zu, %zu slots) ===\n\n", kN, kT,
              slots);
  std::printf("window=%zu batch=%s seed=%llu\n", window, batch ? "on" : "off",
              static_cast<unsigned long long>(seed));
  std::printf("committed slots      : %zu (all replicas: %.0f)\n", commits,
              commits_total);
  std::printf("virtual time         : %.1f ms\n",
              static_cast<double>(stats.end_time) / 1e6);
  std::printf("commits/sec (virtual): %.1f\n",
              secs > 0 ? static_cast<double>(commits) / secs : 0.0);
  std::printf("wire packets         : %.0f (%.1f per commit)\n", wire_packets,
              commits > 0 ? wire_packets / static_cast<double>(commits) : 0.0);
  std::printf("wire bytes           : %.0f (%.1f per commit)\n", wire_bytes,
              commits > 0 ? wire_bytes / static_cast<double>(commits) : 0.0);
  std::printf("live instances (peak): %zu (window %zu)\n", live_peak, window);
  std::printf("log prefix agreement : %s\n", logs_ok ? "yes" : "NO");

  const bool committed_all = commits >= slots;
  if (!committed_all) {
    std::printf("\nFAIL: committed %zu of %zu slots\n", commits, slots);
  }

  if (json_path.has_value()) {
    benchjson::JsonWriter jw;
    jw.field("bench", "smr")
        .field("git_rev", DEX_GIT_REV)
        .field("seed", seed)
        .field("n", kN)
        .field("t", kT)
        .field("window", window)
        .field("batch", batch)
        .field("slots", slots)
        .field("commits", commits)
        .field("commits_per_sec_virtual",
               secs > 0 ? static_cast<double>(commits) / secs : 0.0)
        .field("packets_per_commit",
               commits > 0 ? wire_packets / static_cast<double>(commits) : 0.0)
        .field("bytes_per_commit",
               commits > 0 ? wire_bytes / static_cast<double>(commits) : 0.0)
        .field("logs_ok", logs_ok);
    if (!jw.write_file(*json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path->c_str());
  }
  if (admin != nullptr && admin_linger > 0) {
    std::fflush(stdout);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::seconds(admin_linger);
    while (std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  return (logs_ok && committed_all) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.option("window", "pipelining window W (pipeline mode)", "1")
      .option("batch", "coalesce same-destination messages into batch frames")
      .option("slots", "slots to commit in pipeline mode", "64")
      .option("seed", "simulation seed (pipeline mode)", "1")
      .option("json", "write BENCH_smr.json (optional path; implies pipeline)")
      .option("admin", "serve the ops plane on this loopback port (pipeline "
                       "mode; 0 = ephemeral)", "port")
      .option("admin-linger",
              "keep the ops plane up this many seconds after the run", "sec")
      .option("help", "show usage");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.usage("bench_smr").c_str());
    return 2;
  }
  if (cli.flag("help")) {
    std::printf("%s", cli.usage("bench_smr").c_str());
    return 0;
  }
  const bool pipeline = cli.has("window") || cli.has("batch") ||
                        cli.has("slots") || cli.has("seed") || cli.has("json") ||
                        cli.has("admin");
  if (!pipeline) return contention_sweep();
  std::optional<std::string> json_path;
  if (cli.has("json")) json_path = cli.str("json", "BENCH_smr.json");
  std::optional<std::uint16_t> admin_port;
  if (cli.has("admin")) {
    admin_port = ops::parse_admin_port(cli.str("admin", ""));
    if (!admin_port.has_value()) {
      std::fprintf(stderr, "bench_smr: bad --admin port\n");
      return 2;
    }
  }
  return pipeline_run(std::max<std::size_t>(cli.unsigned_num("window", 1), 1),
                      cli.flag("batch"), cli.unsigned_num("slots", 64),
                      cli.unsigned_num("seed", 1), json_path, admin_port,
                      cli.unsigned_num("admin-linger", 0));
}
