// Coin ablation for the underlying randomized consensus: seeded COMMON coin
// (all processes adopt the same suggestion — our stand-in for a threshold
// coin) versus purely LOCAL coins (independent randomness per process).
//
// On contested inputs the common coin converges in O(1) expected rounds while
// local coins random-walk; this bench measures the realized round counts and
// justifies the documented substitution (DESIGN.md).
#include <cstdio>

#include "common/histogram.hpp"
#include "consensus/condition/input_gen.hpp"
#include "consensus/factory.hpp"
#include "harness/experiment.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace dex;

/// Runs underlying-only consensus with a chosen coin type by building the
/// stacks directly (the harness always uses the common coin).
Histogram run_series(bool common_coin, std::size_t n, std::size_t t,
                     const InputVector& input, int trials) {
  Histogram rounds;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = 0xc0 + static_cast<std::uint64_t>(trial) * 29;
    sim::SimOptions opts;
    opts.seed = seed;
    opts.start_jitter = 3'000'000;
    sim::Simulation simulation(n, opts);
    for (std::size_t i = 0; i < n; ++i) {
      StackConfig sc;
      sc.n = n;
      sc.t = t;
      sc.self = static_cast<ProcessId>(i);
      sc.max_uc_rounds = 200;
      UcFactory factory = [&, common_coin](const StackConfig& cfg, IdbEngine* idb,
                                           Outbox* outbox) {
        RandomizedConsensusConfig ucc;
        ucc.n = cfg.n;
        ucc.t = cfg.t;
        ucc.self = cfg.self;
        ucc.instance = cfg.instance;
        ucc.max_rounds = cfg.max_uc_rounds;
        auto coin = common_coin
                        ? make_common_coin(seed ^ 0x5eedc011, cfg.n)
                        : make_local_coin(mix64(seed + 7 * cfg.self), cfg.n);
        return std::make_unique<RandomizedConsensus>(ucc, std::move(coin), idb,
                                                     outbox);
      };
      auto stack = std::make_unique<UnderlyingOnlyStack>(sc, std::move(factory));
      simulation.attach(static_cast<ProcessId>(i),
                        std::make_unique<sim::ProcessActor>(
                            std::move(stack), input[i]));
    }
    const auto stats = simulation.run();
    for (const auto& rec : stats.decisions) {
      if (rec.has_value()) rounds.add(rec->decision.uc_rounds);
    }
  }
  return rounds;
}

}  // namespace

int main() {
  constexpr std::size_t n = 11, t = 2;
  constexpr int kTrials = 25;
  std::printf("=== coin ablation: randomized fallback rounds to decide "
              "(n=%zu t=%zu, %d runs/cell) ===\n\n", n, t, kTrials);
  std::printf("%-22s | %-26s | %-26s\n", "input", "common coin rounds",
              "local coin rounds");
  std::printf("%-22s | %-26s | %-26s\n", "", "mean/p50/p99/max",
              "mean/p50/p99/max");

  struct Case {
    const char* label;
    InputVector input;
  };
  Rng rng(3);
  const Case cases[] = {
      {"unanimous", unanimous_input(n, 4)},
      {"near-unanimous 9/2", split_input(n, 4, 9, 5)},
      {"contested 6/5", split_input(n, 4, 6, 5)},
      {"three-way", margin_input(n, 1, 4, rng)},
  };

  for (const auto& c : cases) {
    char common_buf[64] = "(none)", local_buf[64] = "(none)";
    const auto common = run_series(true, n, t, c.input, kTrials);
    if (common.count() > 0) {
      std::snprintf(common_buf, sizeof(common_buf), "%4.1f / %2.0f / %2.0f / %2.0f",
                    common.mean(), common.quantile(0.5), common.quantile(0.99),
                    common.max());
    }
    const auto local = run_series(false, n, t, c.input, kTrials);
    if (local.count() > 0) {
      std::snprintf(local_buf, sizeof(local_buf), "%4.1f / %2.0f / %2.0f / %2.0f",
                    local.mean(), local.quantile(0.5), local.quantile(0.99),
                    local.max());
    }
    std::printf("%-22s | %-26s | %-26s\n", c.label, common_buf, local_buf);
  }

  std::printf("\nexpected shape: identical on unanimous inputs (the coin is\n"
              "never consulted); on contested inputs the common coin stays\n"
              "near its O(1) expectation while local coins show a heavy tail.\n");
  return 0;
}
