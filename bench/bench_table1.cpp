// T1 — regenerates the paper's Table 1 ("Performance comparison of DEX with
// the existing works") as an *empirical* decision-step matrix.
//
// The paper states each algorithm's resilience bound and the situations in
// which one-/two-step decision is feasible. We run every executable algorithm
// at its own resilience bound (t = 2) across the input classes the analysis
// distinguishes and report, per class, the fraction of runs in which ALL
// correct processes decided within one / two communication steps.
//
// The Mostefaoui et al. row assumes a SYNCHRONOUS system; it cannot run on an
// asynchronous testbed, so its row is reproduced analytically and marked so.
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"

namespace {

using dex::Algorithm;
using dex::InputVector;
using dex::Rng;
using dex::Value;
using dex::harness::ExperimentConfig;
using dex::harness::FaultKind;

constexpr std::size_t kT = 2;
constexpr int kTrials = 40;

struct InputClass {
  std::string name;
  // Builds the input for a given n; generator receives a seeded Rng.
  std::function<InputVector(std::size_t, Rng&)> make;
  FaultKind fault_kind = FaultKind::kSilent;
  std::size_t fault_count = 0;
  bool crash_model_compatible = true;
};

struct Row {
  Algorithm algorithm;
  const char* citation;
  const char* model;
  const char* failure;
  bool byzantine_ok;  // can face Byzantine fault kinds
};

struct Cell {
  int one_step = 0;
  int two_step = 0;  // at most two steps (includes one-step runs)
  int total = 0;
  bool safety_ok = true;
};

Cell run_cell(const Row& row, const InputClass& cls) {
  Cell cell;
  const std::size_t n = dex::algorithm_min_n(row.algorithm, kT);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng gen(0x7ab1e1ULL + static_cast<std::uint64_t>(trial) * 977);
    ExperimentConfig cfg;
    cfg.algorithm = row.algorithm;
    cfg.n = n;
    cfg.t = kT;
    cfg.privileged = 0;
    cfg.input = cls.make(n, gen);
    cfg.faults.kind = cls.fault_kind;
    cfg.faults.count = cls.fault_count;
    cfg.faults.equivocate_a = 0;
    cfg.faults.equivocate_b = 1;
    cfg.seed = 0x5eedULL + static_cast<std::uint64_t>(trial);
    // Constant delay keeps physical arrival order aligned with logical steps,
    // matching the paper's step-counting model.
    cfg.delay = std::make_shared<dex::sim::ConstantDelay>(1'000'000);
    const auto r = dex::harness::run_experiment(cfg);
    ++cell.total;
    if (r.all_one_step()) ++cell.one_step;
    if (r.all_within_two_steps()) ++cell.two_step;
    cell.safety_ok = cell.safety_ok && r.agreement() && r.all_decided();
  }
  return cell;
}

std::string pct(int hits, int total) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%3d%%", total ? (100 * hits) / total : 0);
  return buf;
}

}  // namespace

int main() {
  const std::vector<Row> rows = {
      {Algorithm::kCrashOneStep, "Brasileiro et al. [2]", "Asyn.", "Crash", false},
      {Algorithm::kBoscoWeak, "Bosco weak [12]", "Asyn.", "Byzan.", true},
      {Algorithm::kBoscoStrong, "Bosco strong [12]", "Asyn.", "Byzan.", true},
      {Algorithm::kDexPrv, "DEX (privileged)", "Asyn.", "Byzan.", true},
      {Algorithm::kDexFreq, "DEX (frequency)", "Asyn.", "Byzan.", true},
  };

  const std::vector<InputClass> classes = {
      {"unanimous f=0",
       [](std::size_t n, Rng&) { return dex::unanimous_input(n, 0); }},
      {"unanimous f=t silent",
       [](std::size_t n, Rng&) { return dex::unanimous_input(n, 0); },
       FaultKind::kSilent, kT},
      {"unanimous f=t equiv",
       [](std::size_t n, Rng&) { return dex::unanimous_input(n, 0); },
       FaultKind::kEquivocate, kT, /*crash_model_compatible=*/false},
      {"margin 4t+1 f=0",
       [](std::size_t n, Rng& rng) {
         return dex::margin_input(n, 4 * kT + 1, 0, rng);
       }},
      {"margin 4t+1 f=t silent",
       [](std::size_t n, Rng& rng) {
         return dex::margin_input(n, 4 * kT + 1, 0, rng);
       },
       FaultKind::kSilent, kT},
      {"margin 2t+1 f=0",
       [](std::size_t n, Rng& rng) {
         return dex::margin_input(n, 2 * kT + 1, 0, rng);
       }},
      {"privileged 3t+1 f=0",
       [](std::size_t n, Rng& rng) {
         return dex::privileged_input(n, 0, 3 * kT + 1, rng);
       }},
      {"random f=0",
       [](std::size_t n, Rng& rng) {
         return dex::random_input(n, rng, {.domain = 4});
       }},
  };

  std::printf("=== Table 1 (empirical reproduction) ===\n");
  std::printf(
      "t = %zu; each algorithm runs at its own resilience bound; %d trials per "
      "cell.\nCell format: one-step%% / within-two-steps%% (fraction of runs "
      "where ALL correct processes decided that fast)\n\n",
      kT, kTrials);

  std::printf("%-22s %-6s %-7s %-5s", "algorithm", "model", "failure", "n");
  for (const auto& cls : classes) std::printf(" | %-22s", cls.name.c_str());
  std::printf("\n");

  // Two comparison rows from the paper's Table 1 are analytic-only here:
  // Mostefaoui et al. assume a SYNCHRONOUS system (not executable on an
  // asynchronous testbed), and Izumi et al.'s adaptive crash algorithm has no
  // pseudocode in the DEX paper (guessing it would risk misrepresenting it).
  std::printf("%-22s %-6s %-7s %-5s", "Mostefaoui et al.[11]", "Syn.", "Crash",
              "t+1");
  for (const auto& cls : classes) {
    (void)cls;
    std::printf(" | %-22s", "(synchronous: n/a)");
  }
  std::printf("\n");
  std::printf("%-22s %-6s %-7s %-5s", "Izumi et al.[8]", "Asyn.", "Crash",
              "3t+1");
  for (const auto& cls : classes) {
    (void)cls;
    std::printf(" | %-22s", "(analytic row: [8])");
  }
  std::printf("\n");

  bool all_safe = true;
  for (const auto& row : rows) {
    const std::size_t n = dex::algorithm_min_n(row.algorithm, kT);
    std::printf("%-22s %-6s %-7s %-5zu", row.citation, row.model, row.failure, n);
    for (const auto& cls : classes) {
      const bool skip =
          (!row.byzantine_ok && !cls.crash_model_compatible);
      if (skip) {
        std::printf(" | %-22s", "(out of model)");
        continue;
      }
      const Cell cell = run_cell(row, cls);
      all_safe = all_safe && cell.safety_ok;
      std::string s = pct(cell.one_step, cell.total) + " / " +
                      pct(cell.two_step, cell.total);
      if (!cell.safety_ok) s += " !SAFETY";
      std::printf(" | %-22s", s.c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape checks vs the paper:\n"
      " * DEX(freq) keeps a GUARANTEED one-step tier on margin-(4t+1) inputs\n"
      "   at f=0 and a two-step tier down to margin 2t+1 — condition classes\n"
      "   no BOSCO variant covers (their cells collapse on those columns).\n"
      " * DEX adapts: with f=t silent faults the margin-(4t+1) column falls\n"
      "   out of the one-step tier (C1_t needs margin > 4t+2t) but stays\n"
      "   fully inside the two-step tier C2_t.\n"
      " * BOSCO one-steps only where votes are (near-)unanimous; the weak\n"
      "   variant's fault columns reflect this benign schedule — only the\n"
      "   n>7t configuration GUARANTEES them in every schedule (see\n"
      "   EXPERIMENTS.md on guarantee-vs-behavior).\n"
      " * The crash-model baseline needs agreeing proposals (margin inputs\n"
      "   have contending values, so it falls back).\n");
  std::printf("safety (agreement+termination) held in every cell: %s\n",
              all_safe ? "yes" : "NO — investigate!");
  return all_safe ? 0 : 1;
}
