// Exact input-space comparison of the fast-path conditions — the Table 1
// "feasibility" columns computed by full enumeration, no sampling error.
//
// The paper (§1.2): "the algorithm instantiated by the frequency-based pair
// has more chances to decide in one or two steps compared to the existing
// one-step Byzantine consensus algorithms." Prior one-step algorithms
// guarantee fast decision only for (near-)unanimous inputs; DEX guarantees it
// for whole condition classes. Here we enumerate every input in {0..d-1}^n
// and count exactly which fraction each mechanism covers, per actual fault
// count f.
#include <cmath>
#include <cstdio>
#include <functional>

#include "consensus/condition/analytics.hpp"
#include "consensus/condition/pair.hpp"

namespace {

using namespace dex;

void compare(std::size_t n, std::size_t t, std::size_t domain) {
  std::printf("\n--- n=%zu t=%zu, domain |V|=%zu (enumerating %.0f inputs) ---\n",
              n, t, domain, std::pow(static_cast<double>(domain), n));

  // Guaranteed-fast-decision sets, as fractions of the whole input space:
  //  * BOSCO-weak guarantee: one-step only for unanimous inputs with f = 0.
  //  * BOSCO-strong guarantee: one-step when all CORRECT processes agree —
  //    as an input-vector class with f Byzantine entries "anywhere", the
  //    guaranteed set is {I : some value fills at least n−f entries}.
  //  * DEX(freq): C1_f (one-step), C2_f (two-step).
  //  * crash baseline: all n−t received equal — guaranteed only for
  //    unanimous inputs (crash model).
  const FrequencyPair freq(n, t);

  std::printf("%-34s", "guaranteed-fast set");
  for (std::size_t f = 0; f <= t; ++f) std::printf(" | f=%zu      ", f);
  std::printf("\n");

  auto print_row = [&](const char* label,
                       const std::function<double(std::size_t)>& fraction) {
    std::printf("%-34s", label);
    for (std::size_t f = 0; f <= t; ++f) std::printf(" | %8.4f%%", 100 * fraction(f));
    std::printf("\n");
  };

  print_row("unanimous only (BOSCO-weak, f=0)", [&](std::size_t f) {
    if (f > 0) return 0.0;
    return exact_fraction(n, domain, [&](const InputVector& input) {
      const auto s = input.as_view().freq();
      return s.first_count() == n;
    });
  });
  print_row("correct-unanimous (BOSCO-strong)", [&](std::size_t f) {
    return exact_fraction(n, domain, [&](const InputVector& input) {
      const auto s = input.as_view().freq();
      return s.first_count() + f >= n;
    });
  });
  print_row("DEX(freq) one-step: C1_f", [&](std::size_t f) {
    return exact_fraction(n, domain, [&](const InputVector& input) {
      return freq.s1().contains(input, f);
    });
  });
  print_row("DEX(freq) within two steps: C2_f", [&](std::size_t f) {
    return exact_fraction(n, domain, [&](const InputVector& input) {
      return freq.s2().contains(input, f);
    });
  });
}

}  // namespace

int main() {
  std::printf("=== exact fast-path coverage by full input enumeration ===\n");
  compare(7, 1, 3);
  compare(7, 1, 4);
  compare(13, 2, 2);
  compare(13, 2, 3);

  std::printf(
      "\nexpected shape: DEX's condition classes strictly contain the\n"
      "(near-)unanimous sets the one-step baselines are guaranteed on, and\n"
      "the two-step class C2_f is larger still — the paper's 'more chances\n"
      "to decide in one or two steps' (§1.2), with exact numbers.\n");
  return 0;
}
