// E4 — message complexity per decision.
//
// The double-expedition machinery is not free: the identical-broadcast
// channel doubles the proposal traffic (init + n echoes each), and the
// randomized fallback adds two IDB broadcasts per process per round. This
// bench quantifies packets per run, split by kind, for every algorithm and
// input shape — making the paper's implicit cost trade explicit.
#include <cstdio>
#include <functional>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"

namespace {

using namespace dex;

constexpr std::size_t kT = 2;
constexpr int kTrials = 15;

struct Shape {
  const char* name;
  std::function<InputVector(std::size_t, Rng&)> make;
};

}  // namespace

int main() {
  std::printf("=== E4: message complexity (packets per consensus instance, "
              "mean of %d runs, t=%zu) ===\n\n", kTrials, kT);

  const Algorithm algos[] = {Algorithm::kDexFreq, Algorithm::kDexPrv,
                             Algorithm::kBoscoWeak, Algorithm::kBoscoStrong,
                             Algorithm::kUnderlyingOnly};
  const Shape shapes[] = {
      {"unanimous", [](std::size_t n, Rng&) { return unanimous_input(n, 0); }},
      {"margin 2t+1",
       [](std::size_t n, Rng& rng) { return margin_input(n, 2 * kT + 1, 0, rng); }},
      {"split 50/50",
       [](std::size_t n, Rng&) { return split_input(n, 0, n / 2, 1); }},
  };

  std::printf("%-16s %-4s %-14s", "algorithm", "n", "input");
  std::printf(" | %-9s %-9s %-9s %-9s\n", "plain", "idb-init", "idb-echo",
              "total");

  for (const Algorithm algo : algos) {
    const std::size_t n = algorithm_min_n(algo, kT);
    for (const auto& shape : shapes) {
      double plain = 0, init = 0, echo = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(0x3355 + static_cast<std::uint64_t>(trial));
        harness::ExperimentConfig cfg;
        cfg.algorithm = algo;
        cfg.n = n;
        cfg.t = kT;
        cfg.input = shape.make(n, rng);
        cfg.seed = 0xabc + static_cast<std::uint64_t>(trial) * 7;
        cfg.delay = std::make_shared<sim::UniformDelay>(1'000'000, 5'000'000);
        const auto r = harness::run_experiment(cfg);
        plain += static_cast<double>(r.stats.packets_by_kind.get("plain"));
        init += static_cast<double>(r.stats.packets_by_kind.get("idb-init"));
        echo += static_cast<double>(r.stats.packets_by_kind.get("idb-echo"));
      }
      plain /= kTrials;
      init /= kTrials;
      echo /= kTrials;
      std::printf("%-16s %-4zu %-14s | %-9.0f %-9.0f %-9.0f %-9.0f\n",
                  algorithm_name(algo), n, shape.name, plain, init, echo,
                  plain + init + echo);
    }
  }

  std::printf(
      "\nexpected shape: on unanimous inputs BOSCO is the cheapest (one plain\n"
      "broadcast, fast-path decision kills the fallback early only in DEX's\n"
      "favor once margins shrink); DEX pays the n^2 echo tax for its identical\n"
      "broadcast but avoids the much larger fallback traffic whenever the\n"
      "two-step condition holds. On the 50/50 split everyone pays the fallback\n"
      "and the totals converge.\n");
  return 0;
}
