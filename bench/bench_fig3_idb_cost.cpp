// F3 — Figure 3 (the IDB algorithm): cost model of identical broadcast.
//
// "A single communication step of the identical broadcast is realized by two
// communication steps of standard send/receive" and costs O(n²) messages.
// We measure, per broadcast and for growing n: packets by kind, the plain-step
// depth until the last correct process accepts, and delivery coverage.
#include <cstdio>

#include "consensus/idb/idb_engine.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace dex;

/// Endpoint that runs an IdbEngine and records its acceptance time.
class IdbHost final : public sim::Actor {
 public:
  IdbHost(std::size_t n, std::size_t t, ProcessId self, bool sender)
      : sender_(sender), idb_(n, t, self, 0, &outbox_) {}

  void start() override {
    if (sender_) idb_.id_send(1, ValuePayload{7}.to_bytes());
  }
  void on_packet(ProcessId src, const Message& msg) override {
    idb_.on_message(src, msg);
    for (const auto& d : idb_.take_deliveries()) {
      (void)d;
      accepted_ = true;
    }
  }
  std::vector<Outgoing> drain() override { return outbox_.drain(); }

  bool accepted_ = false;

 private:
  bool sender_;
  Outbox outbox_;
  IdbEngine idb_;
};

}  // namespace

int main() {
  std::printf("=== Figure 3: identical broadcast cost (one Id-Send) ===\n");
  std::printf("constant link delay d: init lands at 1d, echoes land at 2d —\n"
              "one IDB step == two plain steps; message complexity O(n^2).\n\n");
  std::printf("%-6s %-4s | %-8s %-8s %-10s | %-12s %-10s\n", "n", "t", "inits",
              "echoes", "total", "accept depth", "coverage");

  for (const std::size_t n : {5u, 9u, 13u, 17u, 21u, 29u}) {
    const std::size_t t = (n - 1) / 4;
    sim::SimOptions opts;
    opts.seed = n;
    constexpr SimTime kD = 1'000'000;
    opts.delay = std::make_shared<sim::ConstantDelay>(kD);
    sim::Simulation s(n, opts);
    std::vector<IdbHost*> hosts;
    for (ProcessId i = 0; i < static_cast<ProcessId>(n); ++i) {
      auto h = std::make_unique<IdbHost>(n, t, i, i == 0);
      hosts.push_back(h.get());
      s.attach(i, std::move(h));
    }
    const auto stats = s.run();

    std::size_t covered = 0;
    for (const auto* h : hosts) covered += h->accepted_ ? 1 : 0;
    const auto inits = stats.packets_by_kind.get("idb-init");
    const auto echoes = stats.packets_by_kind.get("idb-echo");
    const double depth = static_cast<double>(stats.end_time) / kD;
    std::printf("%-6zu %-4zu | %-8llu %-8llu %-10llu | %-12.0f %zu/%zu\n", n, t,
                static_cast<unsigned long long>(inits),
                static_cast<unsigned long long>(echoes),
                static_cast<unsigned long long>(inits + echoes), depth, covered,
                n);
  }

  std::printf("\nexpected shape: inits = n, echoes = n^2, accept depth = 2 "
              "plain steps, full coverage.\n");
  return 0;
}
