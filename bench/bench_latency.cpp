// E2 — end-to-end decision latency and logical step counts on a jittery
// asynchronous network, for every algorithm across input shapes.
//
// Regenerates the paper's step-count claims as measured distributions: DEX
// decides in 1 / 2 / 2+4R logical steps depending on where the input falls
// relative to (C1, C2); BOSCO has only the 1 / 1+4R split; the no-fast-path
// baseline always pays the underlying consensus.
#include <cstdio>
#include <functional>

#include "common/histogram.hpp"
#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "metrics/metrics.hpp"
#include "sim/delay_model.hpp"

namespace {

using namespace dex;

constexpr std::size_t kT = 2;
constexpr int kTrials = 30;

struct Shape {
  const char* name;
  std::function<InputVector(std::size_t, Rng&)> make;
};

void run_matrix(harness::FaultKind fault_kind, std::size_t fault_count,
                const char* fault_label, bool oracle_uc = false) {
  const Algorithm algos[] = {Algorithm::kDexFreq, Algorithm::kDexPrv,
                             Algorithm::kBoscoWeak, Algorithm::kBoscoStrong,
                             Algorithm::kUnderlyingOnly};
  const Shape shapes[] = {
      {"unanimous", [](std::size_t n, Rng&) { return unanimous_input(n, 0); }},
      {"margin 4t+1",
       [](std::size_t n, Rng& rng) { return margin_input(n, 4 * kT + 1, 0, rng); }},
      {"margin 2t+1",
       [](std::size_t n, Rng& rng) { return margin_input(n, 2 * kT + 1, 0, rng); }},
      {"split 50/50",
       [](std::size_t n, Rng&) { return split_input(n, 0, n / 2, 1); }},
  };

  std::printf("\nfaults: %s\n", fault_label);
  std::printf("%-16s %-4s", "algorithm", "n");
  for (const auto& s : shapes) std::printf(" | %-26s", s.name);
  std::printf("\n%-16s %-4s", "", "");
  for (std::size_t i = 0; i < std::size(shapes); ++i) {
    std::printf(" | %-26s", "steps p50/max   ms p50/p99");
  }
  std::printf("\n");

  for (const Algorithm algo : algos) {
    const std::size_t n = algorithm_min_n(algo, kT);
    std::printf("%-16s %-4zu", algorithm_name(algo), n);
    for (const auto& shape : shapes) {
      // One registry per cell: every trial's Simulation resolves the same
      // sim_decision_steps / sim_decision_latency_ms instruments, so the
      // histograms accumulate across trials and the cell is read straight
      // from the exported metrics.
      metrics::MetricsRegistry registry;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(0x1a7e + static_cast<std::uint64_t>(trial));
        harness::ExperimentConfig cfg;
        cfg.algorithm = algo;
        cfg.n = n;
        cfg.t = kT;
        cfg.input = shape.make(n, rng);
        cfg.faults.kind = fault_kind;
        cfg.faults.count = fault_count;
        cfg.seed = 0xbe9c + static_cast<std::uint64_t>(trial) * 13;
        cfg.delay = std::make_shared<sim::UniformDelay>(1'000'000, 10'000'000);
        cfg.start_jitter = 2'000'000;
        cfg.use_oracle_uc = oracle_uc;
        cfg.metrics = &registry;
        (void)harness::run_experiment(cfg);
      }
      const auto snap = registry.snapshot();
      const Histogram* steps = snap.histogram("sim_decision_steps");
      const Histogram* latency = snap.histogram("sim_decision_latency_ms");
      if (steps == nullptr || latency == nullptr || steps->count() == 0) {
        std::printf(" | %-26s", "(no decisions)");
        continue;
      }
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%2.0f/%-3.0f  %5.1f/%5.1f",
                    steps->quantile(0.5), steps->max(), latency->quantile(0.5),
                    latency->quantile(0.99));
      std::printf(" | %-26s", cell);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== E2: decision latency & logical steps (uniform 1-10ms links, "
              "2ms proposal jitter, t=%zu, %d runs/cell) ===\n", kT, kTrials);
  run_matrix(harness::FaultKind::kSilent, 0, "none (f=0)");
  run_matrix(harness::FaultKind::kSilent, kT, "f=t silent");
  run_matrix(harness::FaultKind::kEquivocate, kT, "f=t equivocating");

  std::printf("\n=== well-behaved runs with an idealized zero-degrading UC "
              "(2 steps) — §1.2/§5's step accounting ===\n");
  run_matrix(harness::FaultKind::kSilent, 0, "none (f=0), oracle UC",
             /*oracle_uc=*/true);
  std::printf(
      "\npaper claim check: on the fast-path-free 50/50 split, DEX's max is\n"
      "2+2 = 4 steps while BOSCO's is 1+2 = 3 — \"DEX takes four steps at\n"
      "worst in well-behaved runs while existing one-step algorithms take\n"
      "only three\" (abstract).\n");
  std::printf(
      "\nexpected shape: DEX rows dominate on the margin shapes (1-2 step\n"
      "medians where BOSCO already pays its fallback); on the 50/50 split all\n"
      "fast paths die and every algorithm pays the randomized fallback, where\n"
      "DEX's prefix costs 2 steps vs BOSCO's 1 — the paper's stated trade.\n");
  return 0;
}
