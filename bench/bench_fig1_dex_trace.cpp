// F1 — Figure 1 (the DEX pseudocode) as an executable transcript.
//
// Drives a single DexEngine through a deterministic message schedule and
// prints each action annotated with the pseudocode line it exercises, so the
// implementation can be eyeballed against the paper line by line. Three
// scenarios: a one-step run, a two-step run, and an underlying-consensus run.
//
// The transcript runs with the unified tracer (src/trace) at verbose level:
// after each scenario the events the engine itself recorded — instance spans,
// j1/j2 threshold crossings, condition hits, the fallback span — are printed
// back, so the trace taxonomy can be checked against the pseudocode lines it
// claims to represent. Pass a path argument to also write the whole
// transcript as Chrome trace-event JSON (load in ui.perfetto.dev).
#include <cstdio>
#include <fstream>
#include <vector>

#include "consensus/condition/input_gen.hpp"
#include "consensus/dex/dex_engine.hpp"
#include "consensus/underlying/oracle.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace {

using namespace dex;

constexpr std::size_t kN = 13, kT = 2;

std::vector<trace::Event> g_all_events;

/// Prints what the tracer recorded during the scenario and folds the events
/// into the transcript-wide list for the optional JSON export.
void dump_recorded_trace() {
  const auto events = trace::Tracer::global().snapshot();
  std::printf("      traced:");
  for (const auto& e : events) {
    if (e.kind == trace::EventKind::kSpanBegin) {
      std::printf(" [%s.%s", e.cat, e.name);
    } else if (e.kind == trace::EventKind::kSpanEnd) {
      std::printf(" %s.%s]", e.cat, e.name);
    } else {
      std::printf(" %s.%s", e.cat, e.name);
    }
  }
  std::printf("\n");
  g_all_events.insert(g_all_events.end(), events.begin(), events.end());
  trace::Tracer::global().reset();
}

struct Probe {
  Outbox outbox;
  IdbEngine idb{kN, kT, 0, 0, &outbox};
  std::shared_ptr<OracleHub> hub = std::make_shared<OracleHub>(kN - kT);
  OracleConsensus uc{0, hub};
  DexEngine engine{DexConfig{kN, kT, 0, 0}, make_frequency_pair(kN, kT), &idb,
                   &uc, &outbox};

  void show_views() const {
    std::printf("      J1=%s |J1|=%zu\n      J2=%s |J2|=%zu\n",
                engine.j1().to_string().c_str(), engine.j1().known_count(),
                engine.j2().to_string().c_str(), engine.j2().known_count());
  }

  bool report_decision(const char* line) {
    if (const auto& d = engine.decision()) {
      std::printf("  >>> %s: Decide(%lld) — %s\n", line,
                  static_cast<long long>(d->value), decision_path_name(d->path));
      return true;
    }
    return false;
  }
};

void one_step_scenario() {
  std::printf("--- scenario A: one-step decision (lines 1-9) ---\n");
  Probe p;
  std::printf("[line 1-4] Propose(5): J1[0]<-5, J2[0]<-5, P-Send(5), Id-Send(5)\n");
  p.engine.propose(5);
  std::printf("      outbox: %zu messages (1 plain broadcast + 1 idb init)\n",
              p.outbox.drain().size());
  for (ProcessId j = 1; j <= 10; ++j) {
    std::printf("[line 5-6] P-Receive(5) from p%d: J1[%d]<-5\n", j, j);
    p.engine.on_plain_proposal(j, 5);
    if (p.engine.j1().known_count() >= kN - kT) {
      std::printf("[line 7] |J1|=%zu >= n-t=11, P1(J1)=%s\n",
                  p.engine.j1().known_count(),
                  p.engine.pair().p1(p.engine.j1()) ? "true" : "false");
    }
    if (p.report_decision("line 8")) break;
  }
  p.show_views();
  dump_recorded_trace();
}

void two_step_scenario() {
  std::printf("\n--- scenario B: two-step decision (lines 10-18) ---\n");
  Probe p;
  std::printf("[line 1-4] Propose(5)\n");
  p.engine.propose(5);
  (void)p.outbox.drain();
  // Mixed Id-deliveries: margin ends at 5 (> 2t = 4, <= 4t = 8).
  const Value vals[kN - 1] = {5, 5, 5, 5, 5, 5, 5, 3, 3, 3, 5, 3};
  for (ProcessId j = 1; j <= 10; ++j) {
    const Value v = vals[j - 1];
    std::printf("[line 10-11] Id-Receive(%lld) from p%d: J2[%d]<-%lld\n",
                static_cast<long long>(v), j, j, static_cast<long long>(v));
    p.engine.on_idb_proposal(j, v);
    if (p.engine.j2().known_count() == kN - kT) {
      std::printf("[line 12-14] |J2|=11 >= n-t: UC_propose(F(J2)=%lld)\n",
                  static_cast<long long>(p.engine.pair().f(p.engine.j2())));
      std::printf("[line 16] P2(J2)=%s\n",
                  p.engine.pair().p2(p.engine.j2()) ? "true" : "false");
    }
    if (p.report_decision("line 17")) break;
  }
  p.show_views();
  dump_recorded_trace();
}

void underlying_scenario() {
  std::printf("\n--- scenario C: underlying-consensus fallback (lines 19-22) ---\n");
  Probe p;
  std::printf("[line 1-4] Propose(1)\n");
  p.engine.propose(1);
  (void)p.outbox.drain();
  // A heavily contended schedule: margin stays at 1, neither predicate fires.
  for (ProcessId j = 1; j <= 10; ++j) {
    const Value v = (j % 2 == 0) ? 1 : 2;
    p.engine.on_plain_proposal(j, v);
    p.engine.on_idb_proposal(j, v);
  }
  std::printf("      after 10 mixed deliveries: P1=%s P2=%s, proposed to UC: %s\n",
              p.engine.pair().p1(p.engine.j1()) ? "true" : "false",
              p.engine.pair().p2(p.engine.j2()) ? "true" : "false",
              p.engine.has_proposed_to_uc() ? "yes" : "no");
  p.show_views();
  std::printf("[line 19] UC_decide(2) arrives from the underlying consensus\n");
  p.engine.on_uc_decided(2, 1);
  p.report_decision("line 20-21");
  dump_recorded_trace();
}

}  // namespace

int main(int argc, char** argv) {
  trace::Tracer::global().set_level(trace::kVerbose);
  std::printf("=== Figure 1: DEX pseudocode, executed line by line ===\n");
  std::printf("n=%zu t=%zu, frequency-based pair: P1 = margin>4t=8, "
              "P2 = margin>2t=4, F = 1st(J)\n\n", kN, kT);
  one_step_scenario();
  two_step_scenario();
  underlying_scenario();
  std::printf("\nall three decision paths of Figure 1 exercised.\n");
  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    out << trace::to_chrome_json(g_all_events);
    std::printf("trace: %zu events -> %s\n", g_all_events.size(), argv[1]);
  }
  return 0;
}
