// Scaling study: how DEX behaves as the system grows, at fixed resilience
// ratio n = 6t + 1.
//
// Step counts should stay flat (the fast paths are size-independent) while
// message totals grow as n² through the identical-broadcast echoes — the
// scalability profile implied by the paper's cost model.
#include <chrono>
#include <cstdio>

#include "common/histogram.hpp"
#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"

namespace {

using namespace dex;

struct Cell {
  double steps_p50 = 0;
  double latency_p50_ms = 0;
  double packets = 0;
  double wall_ms = 0;  // host time per run — tracks the hot-path cost
  bool safe = true;
};

Cell run_cell(std::size_t n, std::size_t t, std::size_t margin, int trials) {
  Histogram steps, latency;
  double packets = 0;
  bool safe = true;
  const auto wall0 = std::chrono::steady_clock::now();
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(0x5ca1e + static_cast<std::uint64_t>(trial) * 11 + n);
    harness::ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kDexFreq;
    cfg.n = n;
    cfg.t = t;
    cfg.input = margin_input(n, margin, 5, rng);
    cfg.seed = 0x51 + static_cast<std::uint64_t>(trial);
    cfg.delay = std::make_shared<sim::UniformDelay>(1'000'000, 10'000'000);
    cfg.start_jitter = 2'000'000;
    const auto r = harness::run_experiment(cfg);
    safe = safe && r.agreement() && r.all_decided();
    packets += static_cast<double>(r.stats.packets_delivered);
    for (const auto& rec : r.stats.decisions) {
      if (!rec.has_value()) continue;
      steps.add(rec->steps);
      latency.add(static_cast<double>(rec->at) / 1e6);
    }
  }
  Cell c;
  c.steps_p50 = steps.count() ? steps.quantile(0.5) : 0;
  c.latency_p50_ms = latency.count() ? latency.quantile(0.5) : 0;
  c.packets = packets / trials;
  c.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall0)
                  .count() /
              trials;
  c.safe = safe;
  return c;
}

}  // namespace

int main() {
  constexpr int kTrials = 10;
  std::printf("=== scaling: DEX(freq) at n = 6t+1, uniform 1-10ms links "
              "(%d runs/cell) ===\n\n", kTrials);
  std::printf("%-6s %-4s | %-26s | %-26s | %-9s\n", "n", "t",
              "one-step regime (4t+1)", "two-step regime (2t+1)", "wall/run");
  std::printf("%-6s %-4s | %-26s | %-26s | %-9s\n", "", "",
              "steps  ms(p50)  pkts/run", "steps  ms(p50)  pkts/run", "ms");

  for (std::size_t t = 1; t <= 5; ++t) {
    const std::size_t n = 6 * t + 1;
    const Cell one = run_cell(n, t, 4 * t + 1, kTrials);
    const Cell two = run_cell(n, t, 2 * t + 1, kTrials);
    std::printf("%-6zu %-4zu | %4.0f  %7.1f  %9.0f | %4.0f  %7.1f  %9.0f | %7.1f%s\n",
                n, t, one.steps_p50, one.latency_p50_ms, one.packets,
                two.steps_p50, two.latency_p50_ms, two.packets,
                one.wall_ms + two.wall_ms,
                one.safe && two.safe ? "" : "  !SAFETY");
  }

  std::printf("\nexpected shape: step medians stay at 1 (one-step regime) and\n"
              "2 (two-step regime) independent of n. The wall/run column is\n"
              "host time — dominated by the per-message hot path (predicate\n"
              "evaluation, echo counting, fan-out copies) this repo optimises.\n"
              "Packets grow ~n^3: the\n"
              "underlying consensus always runs beneath DEX (Figure 1 line 13)\n"
              "and each of its n participants performs identical broadcasts\n"
              "costing n^2 echoes each.\n");
  return 0;
}
