// Hot-path microbenchmark: the three per-message costs this codebase
// optimises — predicate evaluation, IDB echo counting, and broadcast fan-out.
//
//  1. Predicate evaluation. DEX re-evaluates P1/P2 on every reception once
//     |J| ≥ n−t. The incremental View statistics make that O(1); the
//     historical implementation recounted the whole view (freq_recompute).
//     Both paths run the same message-ingest loop, so the reported speedup is
//     a conservative per-message figure, not a cache-vs-nothing fiction.
//  2. Echo counting. The IDB engine's digest-keyed buckets with voter
//     bitsets, measured against an in-bench reference model using the old
//     map<payload-bytes, set<sender>> layout.
//  3. Broadcast fan-out. Payload-sharing Message copies and the encode-once
//     wire frame, against deep-copy / encode-per-destination baselines.
//
// --json [path] writes BENCH_hotpath.json (schema checked by
// tools/check_bench.sh); --check exits nonzero unless the predicate speedup
// meets the 5x acceptance bar.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "consensus/condition/pair.hpp"
#include "consensus/idb/idb_engine.hpp"
#include "consensus/message.hpp"
#include "json_out.hpp"
#include "ops/admin.hpp"
#include "trace/trace.hpp"

namespace {

using namespace dex;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PredicateResult {
  double cached_ns_per_eval = 0;
  double recompute_ns_per_eval = 0;
  double evals_per_sec = 0;
  double speedup = 0;
};

/// One iteration = one message ingested (a set() on the view) followed by the
/// P1/P2/F evaluation DEX performs per reception. Identical ingest work in
/// both loops; only the statistics source differs.
PredicateResult bench_predicates(std::size_t n, std::size_t t,
                                 std::uint64_t iters, std::uint64_t seed) {
  Rng rng(seed);
  // A contended two-value vote with a sprinkling of a third value — the
  // regime where 1st/2nd actually compete.
  std::vector<Value> stream(1024);
  for (auto& v : stream) {
    const auto r = rng.next_below(10);
    v = r < 5 ? 1 : (r < 9 ? 2 : 3);
  }

  std::uint64_t check_cached = 0, check_recompute = 0;
  double cached_s = 0, recompute_s = 0;

  {
    View view(n);
    for (std::size_t i = 0; i < n; ++i) view.set(i, stream[i % stream.size()]);
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < iters; ++k) {
      view.set(static_cast<std::size_t>(k % n),
               stream[static_cast<std::size_t>(k % stream.size())]);
      const FreqStats& s = view.freq();
      check_cached += static_cast<std::uint64_t>(!s.empty() && s.margin() > 4 * t);
      check_cached += static_cast<std::uint64_t>(!s.empty() && s.margin() > 2 * t)
                      << 1;
      if (!s.empty()) check_cached += static_cast<std::uint64_t>(*s.first());
    }
    cached_s = seconds_since(t0);
  }
  {
    View view(n);
    for (std::size_t i = 0; i < n; ++i) view.set(i, stream[i % stream.size()]);
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < iters; ++k) {
      view.set(static_cast<std::size_t>(k % n),
               stream[static_cast<std::size_t>(k % stream.size())]);
      const FreqStats s = view.freq_recompute();
      check_recompute +=
          static_cast<std::uint64_t>(!s.empty() && s.margin() > 4 * t);
      check_recompute +=
          static_cast<std::uint64_t>(!s.empty() && s.margin() > 2 * t) << 1;
      if (!s.empty()) check_recompute += static_cast<std::uint64_t>(*s.first());
    }
    recompute_s = seconds_since(t0);
  }
  if (check_cached != check_recompute) {
    std::fprintf(stderr, "FATAL: cached and recomputed predicates disagree\n");
    std::exit(1);
  }

  PredicateResult r;
  r.cached_ns_per_eval = cached_s * 1e9 / static_cast<double>(iters);
  r.recompute_ns_per_eval = recompute_s * 1e9 / static_cast<double>(iters);
  r.evals_per_sec = cached_s > 0 ? static_cast<double>(iters) / cached_s : 0;
  r.speedup = cached_s > 0 ? recompute_s / cached_s : 0;
  return r;
}

struct TraceOverheadResult {
  double plain_ns_per_eval = 0;
  double hooked_ns_per_eval = 0;
  double overhead_pct = 0;  // clamped at zero
};

/// The cached-statistics ingest loop from bench_predicates, with and without
/// a *disabled* trace hook per iteration — the cost the tracing subsystem
/// adds to a hot path when DEX_TRACE is off (one relaxed load and a
/// predicted branch). Minimum over alternated repetitions, so scheduler
/// noise cannot manufacture overhead; negative differences clamp to zero.
TraceOverheadResult bench_trace_overhead(std::size_t n, std::size_t t,
                                         std::uint64_t iters,
                                         std::uint64_t seed) {
  trace::Tracer::global().set_level(trace::kOff);
  Rng rng(seed);
  std::vector<Value> stream(1024);
  for (auto& v : stream) {
    const auto r = rng.next_below(10);
    v = r < 5 ? 1 : (r < 9 ? 2 : 3);
  }

  std::uint64_t sink = 0;
  const auto run = [&](bool hooked) {
    View view(n);
    for (std::size_t i = 0; i < n; ++i) view.set(i, stream[i % stream.size()]);
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < iters; ++k) {
      view.set(static_cast<std::size_t>(k % n),
               stream[static_cast<std::size_t>(k % stream.size())]);
      const FreqStats& s = view.freq();
      sink += static_cast<std::uint64_t>(!s.empty() && s.margin() > 4 * t);
      if (hooked && trace::on(trace::kVerbose)) {
        trace::instant("bench", "eval",
                       {.proc = static_cast<ProcessId>(k % n),
                        .a = static_cast<std::int64_t>(k)});
      }
    }
    return seconds_since(t0);
  };

  double plain_s = 1e18, hooked_s = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    plain_s = std::min(plain_s, run(false));
    hooked_s = std::min(hooked_s, run(true));
  }
  if (sink == 0) std::fprintf(stderr, "(impossible sink)\n");

  TraceOverheadResult r;
  r.plain_ns_per_eval = plain_s * 1e9 / static_cast<double>(iters);
  r.hooked_ns_per_eval = hooked_s * 1e9 / static_cast<double>(iters);
  r.overhead_pct =
      plain_s > 0 ? std::max(0.0, (hooked_s - plain_s) / plain_s * 100.0) : 0;
  return r;
}

struct OpsOverheadResult {
  double plain_ns_per_eval = 0;
  double probed_ns_per_eval = 0;
  double overhead_pct = 0;  // clamped at zero
};

/// The cached-statistics ingest loop again, with and without an
/// AdminServer::running() probe per iteration — the cost the ops plane adds
/// to a hot path when --admin is not given (the server object exists but was
/// never started: one relaxed atomic load). Same min-over-alternated-reps
/// discipline as bench_trace_overhead.
OpsOverheadResult bench_ops_overhead(std::size_t n, std::size_t t,
                                     std::uint64_t iters, std::uint64_t seed) {
  ops::AdminServer admin{ops::AdminConfig{}};  // constructed, never started
  Rng rng(seed);
  std::vector<Value> stream(1024);
  for (auto& v : stream) {
    const auto r = rng.next_below(10);
    v = r < 5 ? 1 : (r < 9 ? 2 : 3);
  }

  std::uint64_t sink = 0;
  const auto run = [&](bool probed) {
    View view(n);
    for (std::size_t i = 0; i < n; ++i) view.set(i, stream[i % stream.size()]);
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < iters; ++k) {
      view.set(static_cast<std::size_t>(k % n),
               stream[static_cast<std::size_t>(k % stream.size())]);
      const FreqStats& s = view.freq();
      sink += static_cast<std::uint64_t>(!s.empty() && s.margin() > 4 * t);
      if (probed && admin.running()) sink += admin.port();
    }
    return seconds_since(t0);
  };

  double plain_s = 1e18, probed_s = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    plain_s = std::min(plain_s, run(false));
    probed_s = std::min(probed_s, run(true));
  }
  if (sink == 0) std::fprintf(stderr, "(impossible sink)\n");

  OpsOverheadResult r;
  r.plain_ns_per_eval = plain_s * 1e9 / static_cast<double>(iters);
  r.probed_ns_per_eval = probed_s * 1e9 / static_cast<double>(iters);
  r.overhead_pct =
      plain_s > 0 ? std::max(0.0, (probed_s - plain_s) / plain_s * 100.0) : 0;
  return r;
}

/// The pre-refactor slot layout, reimplemented as the baseline.
struct RefIdbModel {
  struct Slot {
    bool echoed = false;
    bool accepted = false;
    std::map<std::vector<std::byte>, std::set<ProcessId>> echoes;
  };
  std::map<std::pair<ProcessId, std::uint64_t>, Slot> slots;
  std::uint64_t accepts = 0;

  void on_echo(ProcessId src, ProcessId origin, std::uint64_t tag,
               const std::vector<std::byte>& payload, std::size_t n,
               std::size_t t) {
    Slot& s = slots[{origin, tag}];
    auto& senders = s.echoes[payload];
    senders.insert(src);
    if (senders.size() >= n - t && !s.accepted) {
      s.accepted = true;
      ++accepts;
    }
  }
};

struct IdbResult {
  double echoes_per_sec = 0;
  double ref_echoes_per_sec = 0;
  double speedup = 0;
};

IdbResult bench_idb(std::size_t n, std::size_t t, std::uint64_t slots) {
  const std::vector<std::byte> payload_vec = ValuePayload{42}.to_bytes();
  const std::uint64_t total = slots * n;

  double engine_s = 0, ref_s = 0;
  std::uint64_t engine_accepts = 0;
  {
    Outbox ob;
    IdbEngine engine(n, t, 0, 0, &ob);
    Message echo;
    echo.kind = MsgKind::kIdbEcho;
    echo.payload = payload_vec;
    const auto t0 = Clock::now();
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
      echo.tag = slot;
      echo.origin = static_cast<ProcessId>(slot % n);
      for (std::size_t src = 0; src < n; ++src) {
        engine.on_message(static_cast<ProcessId>(src), echo);
      }
      if ((slot & 63) == 0) {
        (void)ob.drain();
        (void)engine.take_deliveries();
      }
    }
    engine_s = seconds_since(t0);
    (void)ob.drain();
    (void)engine.take_deliveries();
    engine_accepts = engine.accepted_count();
  }
  {
    RefIdbModel model;
    const auto t0 = Clock::now();
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
      const auto origin = static_cast<ProcessId>(slot % n);
      for (std::size_t src = 0; src < n; ++src) {
        model.on_echo(static_cast<ProcessId>(src), origin, slot, payload_vec, n, t);
      }
    }
    ref_s = seconds_since(t0);
    if (model.accepts != engine_accepts) {
      std::fprintf(stderr, "FATAL: engine and reference accept counts differ\n");
      std::exit(1);
    }
  }

  IdbResult r;
  r.echoes_per_sec = engine_s > 0 ? static_cast<double>(total) / engine_s : 0;
  r.ref_echoes_per_sec = ref_s > 0 ? static_cast<double>(total) / ref_s : 0;
  r.speedup = engine_s > 0 ? ref_s / engine_s : 0;
  return r;
}

struct BroadcastResult {
  std::uint64_t payload_bytes = 0;
  std::uint64_t bytes_copied_per_dest = 0;
  std::uint64_t baseline_bytes_per_dest = 0;
  double fanouts_per_sec = 0;
  double baseline_fanouts_per_sec = 0;
  double encode_once_ns = 0;
  double encode_per_dest_ns = 0;
};

BroadcastResult bench_broadcast(std::size_t n, std::uint64_t rounds,
                                std::size_t payload_bytes) {
  BroadcastResult r;
  r.payload_bytes = payload_bytes;
  r.baseline_bytes_per_dest = payload_bytes;

  std::vector<std::byte> big(payload_bytes, std::byte{0x5a});
  std::uint64_t sink = 0;

  // Shared-payload fan-out: n Message copies per round, payload never cloned.
  {
    Message m;
    m.payload = big;
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < rounds; ++k) {
      std::vector<Message> fan;
      fan.reserve(n);
      for (std::size_t d = 0; d < n; ++d) fan.push_back(m);
      sink += static_cast<std::uint64_t>(fan.back().payload.size());
      // Every copy plus the original share one buffer: zero payload bytes
      // copied per destination.
      if (m.payload.use_count() != static_cast<long>(n + 1)) {
        std::fprintf(stderr, "FATAL: fan-out cloned the payload\n");
        std::exit(1);
      }
    }
    r.fanouts_per_sec =
        static_cast<double>(rounds) / std::max(seconds_since(t0), 1e-12);
    r.bytes_copied_per_dest = 0;
  }
  // Deep-copy baseline: what per-destination vector payloads used to cost.
  {
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < rounds; ++k) {
      std::vector<std::vector<std::byte>> fan;
      fan.reserve(n);
      for (std::size_t d = 0; d < n; ++d) fan.push_back(big);
      sink += static_cast<std::uint64_t>(fan.back().size());
    }
    r.baseline_fanouts_per_sec =
        static_cast<double>(rounds) / std::max(seconds_since(t0), 1e-12);
  }
  // Encode-once versus encode-per-destination (the TCP broadcast change).
  {
    Message m;
    m.payload = big;
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < rounds; ++k) {
      Message fresh = m;
      fresh.tag = k;  // new frame each round; one encode serves all n peers
      sink += fresh.wire_frame()->size();
      for (std::size_t d = 1; d < n; ++d) sink += fresh.wire_frame()->size();
    }
    r.encode_once_ns =
        seconds_since(t0) * 1e9 / static_cast<double>(rounds * n);
  }
  {
    Message m;
    m.payload = big;
    const auto t0 = Clock::now();
    for (std::uint64_t k = 0; k < rounds; ++k) {
      m.tag = k;
      for (std::size_t d = 0; d < n; ++d) sink += m.to_bytes().size();
    }
    r.encode_per_dest_ns =
        seconds_since(t0) * 1e9 / static_cast<double>(rounds * n);
  }
  if (sink == 0) std::fprintf(stderr, "(impossible sink)\n");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.option("n", "system size", "64")
      .option("iters", "predicate evaluations per path", "200000")
      .option("slots", "IDB broadcast slots in the echo storm", "2000")
      .option("payload", "broadcast payload bytes", "4096")
      .option("rounds", "broadcast fan-out rounds", "2000")
      .option("seed", "rng seed", "1")
      .option("json", "write BENCH_hotpath.json (optional path)")
      .option("check",
              "exit 1 unless predicate speedup >= 5x and the disabled-trace "
              "and disabled-admin overheads are < 3%")
      .option("help", "show usage");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.usage("bench_hotpath").c_str());
    return 2;
  }
  if (cli.flag("help")) {
    std::printf("%s", cli.usage("bench_hotpath").c_str());
    return 0;
  }

  const std::size_t n = cli.unsigned_num("n", 64);
  const std::size_t t = (n - 1) / 6;  // largest t with n > 6t (FrequencyPair)
  const std::uint64_t iters = cli.unsigned_num("iters", 200'000);
  const std::uint64_t slots = cli.unsigned_num("slots", 2'000);
  const std::size_t payload = cli.unsigned_num("payload", 4'096);
  const std::uint64_t rounds = cli.unsigned_num("rounds", 2'000);
  const std::uint64_t seed = cli.unsigned_num("seed", 1);
  if (n < 7) {
    std::fprintf(stderr, "need n >= 7 (frequency pair requires n > 6t)\n");
    return 2;
  }

  const auto pred = bench_predicates(n, t, iters, seed);
  const auto idb = bench_idb(n, t, slots);
  const auto bc = bench_broadcast(n, rounds, payload);
  const auto tro = bench_trace_overhead(n, t, iters, seed);
  const auto ops = bench_ops_overhead(n, t, iters, seed);

  std::printf("=== hot path: n=%zu t=%zu seed=%llu (git %s) ===\n\n", n, t,
              static_cast<unsigned long long>(seed), DEX_GIT_REV);
  std::printf("predicate evaluation (per message ingested):\n");
  std::printf("  cached stats   : %8.1f ns/eval  (%.2fM evals/sec)\n",
              pred.cached_ns_per_eval, pred.evals_per_sec / 1e6);
  std::printf("  recompute      : %8.1f ns/eval\n", pred.recompute_ns_per_eval);
  std::printf("  speedup        : %8.1fx\n\n", pred.speedup);
  std::printf("IDB echo counting (%llu echoes):\n",
              static_cast<unsigned long long>(slots * n));
  std::printf("  digest buckets : %8.2fM echoes/sec\n", idb.echoes_per_sec / 1e6);
  std::printf("  map-of-sets ref: %8.2fM echoes/sec\n",
              idb.ref_echoes_per_sec / 1e6);
  std::printf("  speedup        : %8.1fx\n\n", idb.speedup);
  std::printf("broadcast fan-out (%zu dests, %zu-byte payload):\n", n, payload);
  std::printf("  payload bytes copied per dest : %llu (baseline %llu)\n",
              static_cast<unsigned long long>(bc.bytes_copied_per_dest),
              static_cast<unsigned long long>(bc.baseline_bytes_per_dest));
  std::printf("  shared fan-outs/sec           : %.0f (deep-copy %.0f)\n",
              bc.fanouts_per_sec, bc.baseline_fanouts_per_sec);
  std::printf("  encode once / per-dest        : %.1f / %.1f ns per dest\n",
              bc.encode_once_ns, bc.encode_per_dest_ns);
  std::printf("\ndisabled-trace hook overhead (predicate loop):\n");
  std::printf("  plain / hooked : %.1f / %.1f ns per eval  (+%.2f%%)\n",
              tro.plain_ns_per_eval, tro.hooked_ns_per_eval, tro.overhead_pct);
  std::printf("\ndisabled-admin probe overhead (predicate loop):\n");
  std::printf("  plain / probed : %.1f / %.1f ns per eval  (+%.2f%%)\n",
              ops.plain_ns_per_eval, ops.probed_ns_per_eval, ops.overhead_pct);

  if (cli.has("json")) {
    benchjson::JsonWriter jw;
    jw.field("bench", "hotpath")
        .field("git_rev", DEX_GIT_REV)
        .field("seed", seed)
        .field("n", n)
        .field("t", t)
        .begin_object("predicate")
        .field("cached_ns_per_eval", pred.cached_ns_per_eval)
        .field("recompute_ns_per_eval", pred.recompute_ns_per_eval)
        .field("evals_per_sec", pred.evals_per_sec)
        .field("speedup", pred.speedup)
        .end_object()
        .begin_object("idb")
        .field("echoes_per_sec", idb.echoes_per_sec)
        .field("ref_echoes_per_sec", idb.ref_echoes_per_sec)
        .field("speedup", idb.speedup)
        .end_object()
        .begin_object("broadcast")
        .field("payload_bytes", static_cast<std::uint64_t>(bc.payload_bytes))
        .field("dests", n)
        .field("bytes_copied_per_dest", bc.bytes_copied_per_dest)
        .field("baseline_bytes_per_dest", bc.baseline_bytes_per_dest)
        .field("fanouts_per_sec", bc.fanouts_per_sec)
        .field("encode_once_ns", bc.encode_once_ns)
        .field("encode_per_dest_ns", bc.encode_per_dest_ns)
        .end_object()
        .begin_object("trace_overhead")
        .field("plain_ns_per_eval", tro.plain_ns_per_eval)
        .field("hooked_ns_per_eval", tro.hooked_ns_per_eval)
        .field("overhead_pct", tro.overhead_pct)
        .end_object()
        .begin_object("ops_overhead")
        .field("plain_ns_per_eval", ops.plain_ns_per_eval)
        .field("probed_ns_per_eval", ops.probed_ns_per_eval)
        .field("overhead_pct", ops.overhead_pct)
        .end_object();
    const std::string path = cli.str("json", "BENCH_hotpath.json");
    if (!jw.write_file(path)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }

  if (cli.flag("check")) {
    if (pred.speedup < 5.0) {
      std::fprintf(stderr, "\nFAIL: predicate speedup %.1fx < 5x\n",
                   pred.speedup);
      return 1;
    }
    if (tro.overhead_pct >= 3.0) {
      std::fprintf(stderr,
                   "\nFAIL: disabled-trace overhead %.2f%% >= 3%%\n",
                   tro.overhead_pct);
      return 1;
    }
    if (ops.overhead_pct >= 3.0) {
      std::fprintf(stderr,
                   "\nFAIL: disabled-admin overhead %.2f%% >= 3%%\n",
                   ops.overhead_pct);
      return 1;
    }
  }
  return 0;
}
