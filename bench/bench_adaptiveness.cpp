// E1 — the adaptiveness claim (§1.2, §2.3): fewer actual failures ⇒ larger
// conditions ⇒ more inputs decide fast.
//
// Part 1 (analytic/Monte-Carlo): condition coverage P(I ∈ C1_k) and
// P(I ∈ C2_k) for k = 0..t under parametrized workloads, for both pairs.
// Part 2 (execution): fraction of margin-parameterized inputs on which a full
// DEX run achieves all-correct one-/two-step decision, as the ACTUAL number
// of silent faults f varies — the executable counterpart of Lemmas 4 and 5.
#include <cstdio>

#include "consensus/condition/analytics.hpp"
#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "metrics/metrics.hpp"
#include "sim/delay_model.hpp"

namespace {

using namespace dex;

void coverage_part() {
  std::printf("--- condition coverage (Monte-Carlo, 20000 samples) ---\n");
  struct Workload {
    const char* name;
    double p_common;
  };
  const Workload workloads[] = {{"p_common=0.99", 0.99},
                                {"p_common=0.95", 0.95},
                                {"p_common=0.90", 0.90},
                                {"p_common=0.80", 0.80},
                                {"p_common=0.60", 0.60}};

  {
    constexpr std::size_t n = 13, t = 2;
    const FrequencyPair pair(n, t);
    std::printf("\nfrequency pair, n=%zu t=%zu (C1_k: margin>%zu+2k, C2_k: "
                "margin>%zu+2k)\n", n, t, 4 * t, 2 * t);
    std::printf("%-16s | %-23s | %-23s\n", "workload",
                "P(I in C1_k) k=0,1,2", "P(I in C2_k) k=0,1,2");
    for (const auto& w : workloads) {
      Rng rng(0xc0ffee);
      const auto cov = estimate_pair_coverage(
          pair, skewed_source(n, w.p_common, 7, 8), 20000, rng);
      std::printf("%-16s | %6.3f %6.3f %6.3f  | %6.3f %6.3f %6.3f\n", w.name,
                  cov.one_step.coverage[0], cov.one_step.coverage[1],
                  cov.one_step.coverage[2], cov.two_step.coverage[0],
                  cov.two_step.coverage[1], cov.two_step.coverage[2]);
    }
  }
  {
    constexpr std::size_t n = 11, t = 2;
    const PrivilegedPair pair(n, t, 7);
    std::printf("\nprivileged pair (m=7), n=%zu t=%zu (C1_k: #m>%zu+k, C2_k: "
                "#m>%zu+k)\n", n, t, 3 * t, 2 * t);
    std::printf("%-16s | %-23s | %-23s\n", "workload",
                "P(I in C1_k) k=0,1,2", "P(I in C2_k) k=0,1,2");
    for (const auto& w : workloads) {
      Rng rng(0xdecade);
      const auto cov = estimate_pair_coverage(
          pair, skewed_source(n, w.p_common, 7, 8), 20000, rng);
      std::printf("%-16s | %6.3f %6.3f %6.3f  | %6.3f %6.3f %6.3f\n", w.name,
                  cov.one_step.coverage[0], cov.one_step.coverage[1],
                  cov.one_step.coverage[2], cov.two_step.coverage[0],
                  cov.two_step.coverage[1], cov.two_step.coverage[2]);
    }
  }
}

void execution_part() {
  constexpr std::size_t n = 13, t = 2;
  constexpr int kTrials = 30;
  std::printf("\n--- executed fast-path rate vs actual silent faults f ---\n");
  std::printf("DEX(freq), n=%zu t=%zu; inputs with exact margin m; %d runs per "
              "cell\ncell: %%decisions one-step / %%decisions within two steps "
              "(from dex_decisions_total)\n\n", n, t, kTrials);
  const std::size_t margins[] = {2 * t + 1, 2 * t + 3, 4 * t + 1, 4 * t + 3, n};
  std::printf("%-12s", "margin");
  for (std::size_t f = 0; f <= t; ++f) std::printf(" | f=%zu          ", f);
  std::printf("\n");

  for (const std::size_t m : margins) {
    std::printf("%-12zu", m);
    for (std::size_t f = 0; f <= t; ++f) {
      // The cell is computed purely from exported metrics: the per-cell
      // registry accumulates dex_decisions_total{path} over every trial's
      // correct processes.
      metrics::MetricsRegistry registry;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(0xada + static_cast<std::uint64_t>(trial) * 31 + m * 7 + f);
        harness::ExperimentConfig cfg;
        cfg.algorithm = Algorithm::kDexFreq;
        cfg.n = n;
        cfg.t = t;
        cfg.input = margin_input(n, m, 5, rng);
        cfg.faults.count = f;
        cfg.faults.kind = harness::FaultKind::kSilent;
        cfg.seed = 0x90 + static_cast<std::uint64_t>(trial);
        cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
        cfg.metrics = &registry;
        (void)harness::run_experiment(cfg);
      }
      const auto snap = registry.snapshot();
      const double one =
          snap.counter_total("dex_decisions_total", {{"path", "one_step"}});
      const double two =
          snap.counter_total("dex_decisions_total", {{"path", "two_step"}});
      const double total = snap.counter_total("dex_decisions_total");
      const double pct_one = total > 0 ? 100.0 * one / total : 0.0;
      const double pct_two = total > 0 ? 100.0 * (one + two) / total : 0.0;
      std::printf(" | %3.0f%% / %3.0f%%  ", pct_one, pct_two);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: the one-step column shrinks as f grows (the\n"
              "condition C1_f tightens by 2 per fault) while margins >= 4t+2f+1\n"
              "stay at 100%%; the two-step tier catches margins >= 2t+2f+1.\n");
}

}  // namespace

int main() {
  std::printf("=== E1: adaptiveness of the condition-based fast paths ===\n\n");
  coverage_part();
  execution_part();
  return 0;
}
