// Ablation study of DEX's two design choices (DESIGN.md):
//
//  (a) continuous re-evaluation — §4 claims that letting the views keep
//      growing past n−t and re-checking P1/P2 on every arrival is "the real
//      secret of its ability to provide fast termination for more number of
//      inputs". We ablate it (single evaluation at the n−t threshold,
//      BOSCO-style) and measure the lost fast-path coverage.
//  (b) double expedition — the concurrent two-step scheme. We ablate it
//      (one-step only + fallback) and measure how many runs lose their
//      fast decision entirely.
#include <cstdio>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"

namespace {

using namespace dex;

constexpr std::size_t kN = 13, kT = 2;
constexpr int kTrials = 40;

struct Variant {
  const char* name;
  bool reeval;
  bool two_step;
};

struct Cell {
  int one = 0, two = 0, uc = 0;
};

Cell run_cell(const Variant& var, std::size_t margin, std::size_t faults,
              bool jittery) {
  Cell c;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xab1a + static_cast<std::uint64_t>(trial) * 131 + margin);
    harness::ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kDexFreq;
    cfg.n = kN;
    cfg.t = kT;
    cfg.input = margin_input(kN, margin, 5, rng);
    cfg.faults.count = faults;
    cfg.faults.kind = harness::FaultKind::kSilent;
    cfg.seed = 0x1ab + static_cast<std::uint64_t>(trial);
    cfg.dex_continuous_reevaluation = var.reeval;
    cfg.dex_enable_two_step = var.two_step;
    if (jittery) {
      cfg.delay = std::make_shared<sim::UniformDelay>(1'000'000, 10'000'000);
      cfg.start_jitter = 2'000'000;
    } else {
      cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
    }
    const auto r = harness::run_experiment(cfg);
    if (r.all_one_step()) {
      ++c.one;
    } else if (r.all_within_two_steps()) {
      ++c.two;
    } else {
      ++c.uc;
    }
  }
  return c;
}

}  // namespace

int main() {
  const Variant variants[] = {
      {"full DEX", true, true},
      {"no re-evaluation", false, true},
      {"no two-step", true, false},
      {"neither", false, false},
  };

  std::printf("=== ablation: DEX design choices (n=%zu t=%zu, %d runs/cell) ===\n",
              kN, kT, kTrials);
  std::printf("cell: %%runs decided all-one-step | all-within-two | fallback\n");

  for (const bool jittery : {false, true}) {
    std::printf("\n--- %s network ---\n",
                jittery ? "jittery (uniform 1-10ms + proposal skew)"
                        : "synchronous (constant delay)");
    std::printf("%-18s", "variant");
    struct Shape {
      const char* label;
      std::size_t margin;
      std::size_t faults;
    };
    const Shape shapes[] = {
        {"margin 4t+1 f=0", 4 * kT + 1, 0},
        {"margin 4t+1 f=t", 4 * kT + 1, kT},
        {"margin 2t+1 f=0", 2 * kT + 1, 0},
        {"margin 2t+3 f=1", 2 * kT + 3, 1},
    };
    for (const auto& s : shapes) std::printf(" | %-16s", s.label);
    std::printf("\n");
    for (const auto& var : variants) {
      std::printf("%-18s", var.name);
      for (const auto& s : shapes) {
        const Cell c = run_cell(var, s.margin, s.faults, jittery);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%3d|%3d|%3d", 100 * c.one / kTrials,
                      100 * c.two / kTrials, 100 * c.uc / kTrials);
        std::printf(" | %-16s", buf);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nexpected shape: ablating re-evaluation guts one-step coverage as\n"
      "soon as faults or low margins make the first n-t view insufficient;\n"
      "ablating the two-step scheme pushes every margin-(2t+1..4t) input from\n"
      "a 2-step decision to the full fallback. Together they reduce DEX to a\n"
      "BOSCO-shaped algorithm.\n");
  return 0;
}
