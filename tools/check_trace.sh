#!/usr/bin/env bash
# End-to-end check of the tracing pipeline: runs dexsim on fixed-seed
# adversarial executions with --trace / --trace-jsonl / --trace-check and
# validates (a) the Chrome trace-event JSON schema (Perfetto-loadable:
# traceEvents array, matched b/e span pairs, instant scopes, process
# metadata), (b) the JSONL schema, and (c) that the in-process causal
# checker passed. Registered with ctest as `check_trace`.
#
# Exits 77 (ctest SKIP) when the dexsim binary is not built or python3 is
# unavailable.
#
# Usage: check_trace.sh /path/to/dexsim
set -euo pipefail

DEXSIM="${1:?usage: check_trace.sh /path/to/dexsim}"

if [[ ! -x "$DEXSIM" ]]; then
  echo "check_trace: $DEXSIM not built; skipping"
  exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "check_trace: python3 not available; skipping"
  exit 77
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Adversarial fixed-seed runs: equivocators attack the fast path, the
# uc-saboteur drags executions through the underlying-consensus fallback.
# --trace-check makes dexsim exit nonzero if a causal invariant is violated.
"$DEXSIM" --algo dex-freq --n 13 --t 2 --input margin --margin 5 \
  --faults 2 --fault-kind equivocate --trials 1 --seed 7 \
  --trace "$WORKDIR/equiv.json" --trace-jsonl "$WORKDIR/equiv.jsonl" \
  --trace-check >"$WORKDIR/equiv.txt"
"$DEXSIM" --algo dex-freq --n 13 --t 2 --input split \
  --faults 2 --fault-kind uc-saboteur --trials 1 --seed 42 \
  --trace "$WORKDIR/saboteur.json" --trace-jsonl "$WORKDIR/saboteur.jsonl" \
  --trace-check >"$WORKDIR/saboteur.txt"

grep -q "trace-check: OK" "$WORKDIR/equiv.txt"
grep -q "trace-check: OK" "$WORKDIR/saboteur.txt"

python3 - "$WORKDIR/equiv.json" "$WORKDIR/equiv.jsonl" \
          "$WORKDIR/saboteur.json" "$WORKDIR/saboteur.jsonl" <<'PY'
import json, sys

def check_chrome(path):
    with open(path) as f:
        doc = json.load(f)
    assert isinstance(doc, dict), f"{path}: top level must be an object"
    assert "traceEvents" in doc, f"{path}: missing traceEvents"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events, f"{path}: traceEvents empty"
    open_spans = {}
    names = set()
    pids_with_meta = set()
    for ev in events:
        ph = ev.get("ph")
        assert ph in ("b", "e", "i", "M"), f"{path}: bad phase {ph!r}"
        if ph == "M":
            assert ev.get("name") == "process_name"
            pids_with_meta.add(ev["pid"])
            continue
        for key in ("ts", "pid", "tid", "cat", "name"):
            assert key in ev, f"{path}: event missing {key}: {ev}"
        float(ev["ts"])  # µs, decimal string or number
        names.add(f'{ev["cat"]}.{ev["name"]}')
        if ph in ("b", "e"):
            key = (ev["pid"], ev["cat"], ev["id"], ev["name"])
            if ph == "b":
                open_spans[key] = open_spans.get(key, 0) + 1
            else:
                assert open_spans.get(key, 0) > 0, \
                    f"{path}: span end without begin: {key}"
                open_spans[key] -= 1
        else:
            assert ev.get("s") == "t", f"{path}: instant missing thread scope"
    # Spans may legitimately stay open (an IDB round that never accepts under
    # an equivocating origin), but an end without a begin is always a bug —
    # checked inline above.
    # The run must have produced the load-bearing event types.
    for required in ("sim.deliver", "sim.decide", "dex.instance"):
        assert required in names, f"{path}: no {required} events"
    assert pids_with_meta, f"{path}: no process_name metadata"
    return len(events)

def check_jsonl(path):
    n = 0
    with open(path) as f:
        for line in f:
            ev = json.loads(line)
            for key in ("t", "seq", "ph", "cat", "name", "proc", "tid"):
                assert key in ev, f"{path}: line missing {key}: {line!r}"
            n += 1
    assert n > 0, f"{path}: empty"
    return n

total = 0
for i in range(1, len(sys.argv), 2):
    total += check_chrome(sys.argv[i])
    check_jsonl(sys.argv[i + 1])
print(f"trace schemas OK ({total} Chrome events across "
      f"{(len(sys.argv) - 1) // 2} runs)")
PY

echo "check_trace: OK"
