#!/usr/bin/env bash
# Performance-trajectory regression gate, registered with ctest as
# `check_bench_baseline`. Re-runs bench_hotpath and bench_smr at the committed
# baseline scale and compares against bench/baselines/BENCH_*.json:
#
#   * Deterministic protocol-cost metrics (SMR packets/bytes per commit,
#     virtual commit rate, structural zero-copy byte counts) gate at 10%:
#     they are bit-stable given the seed, so any drift is a real change in
#     message complexity or the hot path.
#   * Wall-clock speedup ratios (predicate cache, IDB dedup) swing up to 9x
#     run to run under scheduler noise, so relative gating is hopeless; they
#     gate against an absolute floor instead (speedup >= 1.5x) — losing the
#     cache or the dedup path drops the ratio to ~1.0, which the floor
#     catches without flaking CI.
#
# Regenerate baselines after an intentional trajectory change:
#   tools/check_bench_baseline.sh <bench_hotpath> <bench_smr> <dir> --regen
#
# Exits 77 (ctest SKIP) when python3 or the bench binaries are unavailable.
#
# Usage: check_bench_baseline.sh /path/to/bench_hotpath /path/to/bench_smr \
#            /path/to/bench/baselines [--regen]
set -euo pipefail

BENCH_HOTPATH="${1:?usage: check_bench_baseline.sh <bench_hotpath> <bench_smr> <baseline-dir> [--regen]}"
BENCH_SMR="${2:?usage: check_bench_baseline.sh <bench_hotpath> <bench_smr> <baseline-dir> [--regen]}"
BASEDIR="${3:?usage: check_bench_baseline.sh <bench_hotpath> <bench_smr> <baseline-dir> [--regen]}"
MODE="${4:-check}"

command -v python3 >/dev/null 2>&1 || { echo "check_bench_baseline: python3 unavailable; skipping"; exit 77; }
for bin in "$BENCH_HOTPATH" "$BENCH_SMR"; do
  [[ -x "$bin" ]] || { echo "check_bench_baseline: $bin not built; skipping"; exit 77; }
done

# The one source of truth for the gate's scale. Keep in sync with the
# committed baselines (regenerate with --regen when changing these).
HOTPATH_ARGS=(--n 13 --iters 200000 --slots 500 --rounds 500 --payload 1024)
SMR_ARGS=(--window 8 --slots 64 --seed 1)

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

run_benches() {
  local dir="$1"
  "$BENCH_HOTPATH" "${HOTPATH_ARGS[@]}" --json "$dir/BENCH_hotpath.json" >/dev/null
  "$BENCH_SMR" "${SMR_ARGS[@]}" --json "$dir/BENCH_smr.json" >/dev/null
}

if [[ "$MODE" == "--regen" ]]; then
  mkdir -p "$BASEDIR"
  run_benches "$BASEDIR"
  echo "check_bench_baseline: baselines regenerated in $BASEDIR"
  exit 0
fi

for f in BENCH_hotpath.json BENCH_smr.json; do
  [[ -f "$BASEDIR/$f" ]] || { echo "check_bench_baseline: $BASEDIR/$f missing; skipping"; exit 77; }
done

# Best-of-2 for the wall-clock ratios; deterministic metrics are identical
# across the two runs anyway.
mkdir "$WORKDIR/run1" "$WORKDIR/run2"
run_benches "$WORKDIR/run1"
run_benches "$WORKDIR/run2"

python3 - "$BASEDIR" "$WORKDIR/run1" "$WORKDIR/run2" <<'PY'
import json, sys

base_dir, run1, run2 = sys.argv[1:4]

def load(d, name):
    with open(f"{d}/{name}") as f:
        return json.load(f)

failures = []

def gate(name, baseline, current, limit_frac, higher_is_better=True):
    if baseline == 0:
        ok = current == 0
    elif higher_is_better:
        ok = current >= baseline * (1.0 - limit_frac)
    else:
        ok = current <= baseline * (1.0 + limit_frac)
    status = "ok" if ok else "REGRESSED"
    print(f"  {name}: baseline {baseline:g}, now {current:g} [{status}]")
    if not ok:
        failures.append(name)

# --- SMR: deterministic protocol-cost trajectory (10%) ---------------------
sb = load(base_dir, "BENCH_smr.json")
s1, s2 = load(run1, "BENCH_smr.json"), load(run2, "BENCH_smr.json")
print("SMR (deterministic, 10% gate):")
gate("smr.packets_per_commit", sb["packets_per_commit"],
     min(s1["packets_per_commit"], s2["packets_per_commit"]), 0.10,
     higher_is_better=False)
gate("smr.bytes_per_commit", sb["bytes_per_commit"],
     min(s1["bytes_per_commit"], s2["bytes_per_commit"]), 0.10,
     higher_is_better=False)
gate("smr.commits_per_sec_virtual", sb["commits_per_sec_virtual"],
     max(s1["commits_per_sec_virtual"], s2["commits_per_sec_virtual"]), 0.10)
if s1["commits"] < sb["commits"]:
    print(f"  smr.commits: baseline {sb['commits']}, now {s1['commits']} [REGRESSED]")
    failures.append("smr.commits")
if not (s1["logs_ok"] and s2["logs_ok"]):
    failures.append("smr.logs_ok")

# --- Hotpath: structural invariants (exact) + timing ratios (50%) ----------
hb = load(base_dir, "BENCH_hotpath.json")
h1, h2 = load(run1, "BENCH_hotpath.json"), load(run2, "BENCH_hotpath.json")
print("Hotpath structural (exact gate):")
gate("hotpath.bytes_copied_per_dest", hb["broadcast"]["bytes_copied_per_dest"],
     max(h1["broadcast"]["bytes_copied_per_dest"],
         h2["broadcast"]["bytes_copied_per_dest"]), 0.0,
     higher_is_better=False)
print("Hotpath wall-clock ratios (best-of-2, absolute floor 1.5x):")
def floor_gate(name, baseline, current, floor=1.5):
    ok = current >= floor
    status = "ok" if ok else "REGRESSED"
    print(f"  {name}: baseline {baseline:g}, now {current:g}, floor {floor:g} [{status}]")
    if not ok:
        failures.append(name)

floor_gate("hotpath.predicate.speedup", hb["predicate"]["speedup"],
           max(h1["predicate"]["speedup"], h2["predicate"]["speedup"]))
floor_gate("hotpath.idb.speedup", hb["idb"]["speedup"],
           max(h1["idb"]["speedup"], h2["idb"]["speedup"]))

if failures:
    print(f"check_bench_baseline: REGRESSED: {', '.join(failures)}")
    sys.exit(1)
print("check_bench_baseline: all metrics within budget")
PY

echo "check_bench_baseline: OK"
