#!/usr/bin/env bash
# Sanitizer gate: configures nested ASan and UBSan builds of the tree
# (-DDEX_SANITIZE=address|undefined), builds the memory-sensitive test
# binaries (test_smr exercises the instance-GC/husk lifecycle, test_transport
# the batch codec and mailbox paths) and runs them under the sanitizer.
# Registered with ctest as `check_sanitize`; exits 77 (ctest SKIP) when the
# toolchain lacks sanitizer runtimes.
#
# Usage: check_sanitize.sh /path/to/source-dir
set -euo pipefail

SRC="${1:?usage: check_sanitize.sh /path/to/source-dir}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Probe: can this toolchain link a sanitized binary at all?
probe() {
  local flag="$1"
  echo 'int main(){return 0;}' > "$WORKDIR/probe.cpp"
  c++ "-fsanitize=$flag" "$WORKDIR/probe.cpp" -o "$WORKDIR/probe" \
    > /dev/null 2>&1 && "$WORKDIR/probe" > /dev/null 2>&1
}

for flag in address undefined; do
  if ! probe "$flag"; then
    echo "SKIP: toolchain cannot build/run -fsanitize=$flag binaries"
    exit 77
  fi
done

run_one() {
  local san="$1"
  local bld="$WORKDIR/build-$san"
  echo "=== DEX_SANITIZE=$san ==="
  cmake -S "$SRC" -B "$bld" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "-DDEX_SANITIZE=$san" > "$bld-configure.log" 2>&1 ||
    { tail -30 "$bld-configure.log"; echo "FAIL: configure ($san)"; exit 1; }
  cmake --build "$bld" --target test_smr test_transport -j "$(nproc)" \
    > "$bld-build.log" 2>&1 ||
    { tail -30 "$bld-build.log"; echo "FAIL: build ($san)"; exit 1; }
  # TCP tests bind fixed localhost ports; keep the sanitizer pass hermetic by
  # restricting test_transport to the in-process transport.
  "$bld/tests/test_smr" > "$bld-smr.log" 2>&1 ||
    { tail -40 "$bld-smr.log"; echo "FAIL: test_smr under $san"; exit 1; }
  "$bld/tests/test_transport" --gtest_filter='-*Tcp*' > "$bld-transport.log" 2>&1 ||
    { tail -40 "$bld-transport.log"; echo "FAIL: test_transport under $san"; exit 1; }
  echo "ok: $san"
}

run_one address
run_one undefined

echo "check_sanitize: OK"
