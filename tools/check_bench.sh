#!/usr/bin/env bash
# Smoke test for the hot-path benchmarks: runs bench_hotpath and bench_smr at
# tiny scale with --json and validates the BENCH_*.json schema (field presence
# and types — not performance numbers, which are machine-dependent, except the
# structural zero-copy invariant). Registered with ctest as `check_bench`.
#
# Exits 77 (ctest SKIP) when the bench binaries are not built.
#
# Usage: check_bench.sh /path/to/bench_hotpath /path/to/bench_smr
set -euo pipefail

BENCH_HOTPATH="${1:?usage: check_bench.sh /path/to/bench_hotpath /path/to/bench_smr}"
BENCH_SMR="${2:?usage: check_bench.sh /path/to/bench_hotpath /path/to/bench_smr}"

for bin in "$BENCH_HOTPATH" "$BENCH_SMR"; do
  if [[ ! -x "$bin" ]]; then
    echo "check_bench: $bin not built; skipping"
    exit 77
  fi
done

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Tiny scale: the point is the JSON contract, not stable numbers.
"$BENCH_HOTPATH" --n 13 --iters 2000 --slots 50 --rounds 50 --payload 256 \
  --json "$WORKDIR/BENCH_hotpath.json" >"$WORKDIR/hotpath.txt"
"$BENCH_SMR" --window 4 --slots 8 --seed 1 \
  --json "$WORKDIR/BENCH_smr.json" >"$WORKDIR/smr.txt"

python3 - "$WORKDIR/BENCH_hotpath.json" "$WORKDIR/BENCH_smr.json" <<'PY'
import json, sys

def load(path):
    with open(path) as f:
        return json.load(f)

def require(doc, path, spec):
    for key, typ in spec.items():
        assert key in doc, f"{path}: missing field '{key}'"
        assert isinstance(doc[key], typ), \
            f"{path}: field '{key}' has type {type(doc[key]).__name__}"

num = (int, float)

hp = load(sys.argv[1])
require(hp, "BENCH_hotpath.json", {
    "bench": str, "git_rev": str, "seed": int, "n": int, "t": int,
    "predicate": dict, "idb": dict, "broadcast": dict, "trace_overhead": dict,
})
assert hp["bench"] == "hotpath"
require(hp["predicate"], "BENCH_hotpath.json predicate", {
    "cached_ns_per_eval": num, "recompute_ns_per_eval": num,
    "evals_per_sec": num, "speedup": num,
})
require(hp["idb"], "BENCH_hotpath.json idb", {
    "echoes_per_sec": num, "ref_echoes_per_sec": num, "speedup": num,
})
require(hp["broadcast"], "BENCH_hotpath.json broadcast", {
    "payload_bytes": int, "dests": int, "bytes_copied_per_dest": int,
    "baseline_bytes_per_dest": int, "fanouts_per_sec": num,
    "encode_once_ns": num, "encode_per_dest_ns": num,
})
require(hp["trace_overhead"], "BENCH_hotpath.json trace_overhead", {
    "plain_ns_per_eval": num, "hooked_ns_per_eval": num, "overhead_pct": num,
})
# Structural invariant (machine-independent): fan-out shares payload bytes.
assert hp["broadcast"]["bytes_copied_per_dest"] == 0, \
    "fan-out copied payload bytes"

smr = load(sys.argv[2])
require(smr, "BENCH_smr.json", {
    "bench": str, "git_rev": str, "seed": int, "n": int, "t": int,
    "window": int, "batch": bool, "slots": int, "commits": int,
    "commits_per_sec_virtual": num, "packets_per_commit": num,
    "bytes_per_commit": num, "logs_ok": bool,
})
assert smr["bench"] == "smr"
assert smr["logs_ok"], "SMR logs diverged in the smoke run"
assert smr["commits"] >= smr["slots"], "SMR smoke run did not commit all slots"

print("schemas OK "
      f"(hotpath rev {hp['git_rev']}, smr {smr['commits']} commits)")
PY

echo "check_bench: OK"
