// dexctl — tiny client for the embedded admin endpoint, so check scripts and
// operators need no curl.
//
//   dexctl <host:port> metrics              # GET /metrics (Prometheus text)
//   dexctl <host:port> vars                 # GET /vars (JSON)
//   dexctl <host:port> health               # GET /healthz (exit 0 iff 200)
//   dexctl <host:port> ready                # GET /readyz  (exit 0 iff 200)
//   dexctl <host:port> trace                # GET /trace/jsonl
//   dexctl <host:port> trace-chrome         # GET /trace/chrome
//   dexctl <host:port> log-level            # GET /logs/level
//   dexctl <host:port> log-level debug      # PUT /logs/level
//
// Exit codes: 0 success, 1 HTTP error status, 2 usage/connect failure.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ops/http.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dexctl <host:port> "
               "metrics|vars|health|ready|trace|trace-chrome|log-level [level]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string target = argv[1];
  const std::string cmd = argv[2];

  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "dexctl: bad target '%s' (want host:port)\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "dexctl: bad port in '%s'\n", target.c_str());
    return 2;
  }

  std::string method = "GET";
  std::string path;
  std::string body;
  if (cmd == "metrics") {
    path = "/metrics";
  } else if (cmd == "vars") {
    path = "/vars";
  } else if (cmd == "health") {
    path = "/healthz";
  } else if (cmd == "ready") {
    path = "/readyz";
  } else if (cmd == "trace") {
    path = "/trace/jsonl";
  } else if (cmd == "trace-chrome") {
    path = "/trace/chrome";
  } else if (cmd == "log-level") {
    path = "/logs/level";
    if (argc >= 4) {
      method = "PUT";
      body = argv[3];
    }
  } else {
    return usage();
  }

  const auto result = dex::ops::http::fetch(
      host, static_cast<std::uint16_t>(port), method, path, body);
  if (!result.has_value()) {
    std::fprintf(stderr, "dexctl: cannot reach %s\n", target.c_str());
    return 2;
  }
  if (!result->ok()) {
    std::fprintf(stderr, "dexctl: HTTP %d\n%s", result->status,
                 result->body.c_str());
    return 1;
  }
  std::fwrite(result->body.data(), 1, result->body.size(), stdout);
  return 0;
}
