#!/usr/bin/env bash
# Verification-plane smoke test, registered with ctest as `check_fuzz`.
#
#   1. A seeded 200-campaign fuzz batch must come back clean (exit 0).
#   2. The same batch with --inject-bug (quorum off-by-one in the DEX one-step
#      predicate) must FAIL, write shrunk reproducers, and the shrunk genome
#      must replay to the same failure through both `dexsim --repro` and
#      `dexcheck --repro` — byte-identically across two runs.
#   3. One bounded exhaustive sweep of the n=5 crash world must enumerate a
#      non-trivial state space with zero violations, and the same sweep with
#      the planted bug on a DEX world must report a violation.
#
# Usage: check_fuzz.sh /path/to/dexcheck /path/to/dexsim
set -euo pipefail

DEXCHECK="${1:?usage: check_fuzz.sh /path/to/dexcheck /path/to/dexsim}"
DEXSIM="${2:?usage: check_fuzz.sh /path/to/dexcheck /path/to/dexsim}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# --- 1. Clean batch ---------------------------------------------------------
"$DEXCHECK" --campaigns 200 --seed 1 --out "$WORKDIR" \
  --json "$WORKDIR/clean.json" >"$WORKDIR/clean.txt" ||
  { echo "FAIL: clean fuzz batch reported failures"; cat "$WORKDIR/clean.txt"; exit 1; }
grep -q '"ok":true' "$WORKDIR/clean.json" ||
  { echo "FAIL: clean summary JSON not ok"; exit 1; }

# --- 2. Injected bug must be caught and shrunk ------------------------------
mkdir "$WORKDIR/bug"
if "$DEXCHECK" --campaigns 50 --seed 7 --inject-bug --out "$WORKDIR/bug" \
     >"$WORKDIR/bug.txt" 2>&1; then
  echo "FAIL: --inject-bug batch came back clean (oracles missed the bug)"
  cat "$WORKDIR/bug.txt"
  exit 1
fi
shrunk="$(ls "$WORKDIR"/bug/repro-*.min.json 2>/dev/null | head -1)"
[[ -n "$shrunk" ]] ||
  { echo "FAIL: no shrunk reproducer written"; cat "$WORKDIR/bug.txt"; exit 1; }

# The shrunk genome must replay to a failure — via both front-ends.
if "$DEXSIM" --repro "$shrunk" >"$WORKDIR/replay1.txt" 2>&1; then
  echo "FAIL: dexsim --repro $shrunk did not reproduce the failure"
  cat "$WORKDIR/replay1.txt"
  exit 1
fi
if "$DEXCHECK" --repro "$shrunk" >/dev/null 2>&1; then
  echo "FAIL: dexcheck --repro $shrunk did not reproduce the failure"
  exit 1
fi
# Replay is deterministic: two runs must be byte-identical.
"$DEXSIM" --repro "$shrunk" >"$WORKDIR/replay2.txt" 2>&1 || true
cmp -s "$WORKDIR/replay1.txt" "$WORKDIR/replay2.txt" ||
  { echo "FAIL: repro replay is not byte-identical across runs"; exit 1; }

# --- 3. Bounded exhaustive sweeps -------------------------------------------
"$DEXCHECK" --explore --explore-n 5 --explore-window 2 \
  --json "$WORKDIR/explore.json" >"$WORKDIR/explore.txt" ||
  { echo "FAIL: exhaustive n=5 sweep found violations"; cat "$WORKDIR/explore.txt"; exit 1; }
grep -q '"truncated":false' "$WORKDIR/explore.json" ||
  { echo "FAIL: n=5 sweep truncated — not exhaustive"; exit 1; }
python3 - "$WORKDIR/explore.json" <<'PY' 2>/dev/null || true
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["states"] > 1000, f"suspiciously small sweep: {doc['states']} states"
PY

if "$DEXCHECK" --explore --explore-algo dex-prv --explore-n 6 \
     --explore-silent 0 --explore-window 1 --inject-bug \
     --explore-max-states 50000 >"$WORKDIR/explore_bug.txt" 2>&1; then
  echo "FAIL: explorer missed the planted quorum bug"
  cat "$WORKDIR/explore_bug.txt"
  exit 1
fi

echo "check_fuzz: OK"
