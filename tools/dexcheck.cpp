// dexcheck — the verification plane's command line.
//
// Two engines over the deterministic simulator, sharing one oracle:
//
//   * Fuzzer (default): coverage-guided campaigns over scenario genomes.
//       $ dexcheck --campaigns 1000 --seed 7 --out /tmp/repros
//     Failing genomes are written as JSON reproducers (original and shrunk);
//     replay one bit-for-bit with `dexsim --repro <file>` or
//     `dexcheck --repro <file>`.
//
//   * Bounded exhaustive explorer (--explore): enumerate every delivery
//     schedule of a tiny world.
//       $ dexcheck --explore --explore-algo crash --explore-n 5 --explore-t 1
//
//   * --inject-bug plants a quorum off-by-one in the DEX one-step predicate
//     (DexConfig::debug_quorum_skew) to prove the oracles catch it.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/explore.hpp"
#include "check/fuzzer.hpp"
#include "check/genome.hpp"
#include "check/oracle.hpp"
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "consensus/condition/input_gen.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "ops/admin.hpp"

namespace {

using namespace dex;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CliError("cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) throw CliError("cannot write '" + path + "'");
  out << body;
}

int run_repro(const std::string& path) {
  const auto g = check::Genome::from_json_text(read_file(path));
  std::printf("repro: %s\n", g.describe().c_str());
  const auto v = check::run_genome(g);
  std::printf("repro: %zu/%zu decided (one-step %zu, two-step %zu, uc %zu), "
              "%llu packets, %llu injected faults\n",
              v.decided, v.correct, v.one_step, v.two_step, v.via_underlying,
              static_cast<unsigned long long>(v.packets),
              static_cast<unsigned long long>(v.injected_faults));
  if (v.ok) {
    std::printf("repro: OK — all applicable oracles passed\n");
    return 0;
  }
  for (const auto& f : v.failures) {
    std::fprintf(stderr, "repro: FAIL %s\n", f.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  dex::init_log_level_from_env();
  dex::init_log_format_from_env();
  Cli cli;
  cli.option("campaigns", "fuzz campaigns to run (default 200)", "int")
      .option("seed", "campaign RNG seed (default 1)", "int")
      .option("shrink-budget", "max oracle runs per failure shrink (default 150)",
              "int")
      .option("inject-bug",
              "plant the quorum off-by-one (debug_quorum_skew=1) in every "
              "campaign — the oracles must catch it")
      .option("out", "directory for reproducer JSON files (default .)", "dir")
      .option("repro", "replay one genome JSON file and judge it", "path")
      .option("explore", "run the bounded exhaustive explorer instead")
      .option("explore-algo",
              "world algorithm: crash | dex-freq | dex-prv | bosco-weak | "
              "bosco-strong (default crash)", "name")
      .option("explore-n", "world size (default 5; minimum 4t+1)", "int")
      .option("explore-t", "resilience bound (default 1)", "int")
      .option("explore-silent", "silent faulty processes (default 1)", "int")
      .option("explore-split",
              "contested input: this many processes propose 1, the rest 0 "
              "(default 0 = unanimous)", "int")
      .option("explore-window",
              "per-destination reorder window (default 0 = full asynchrony)",
              "int")
      .option("explore-max-states", "node budget (default 200000)", "int")
      .option("json", "write a JSON summary of the run", "path")
      .option("metrics", "dump check_* metrics (Prometheus text) to stderr")
      .option("admin",
              "serve the ops plane on this loopback port (0 = ephemeral)",
              "port")
      .option("help", "show this help");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.usage("dexcheck").c_str());
    return 2;
  }
  if (cli.flag("help")) {
    std::printf("%s", cli.usage("dexcheck").c_str());
    return 0;
  }

  try {
    const std::string repro = cli.str("repro", "");
    if (!repro.empty()) return run_repro(repro);

    metrics::MetricsRegistry registry;
    std::unique_ptr<ops::AdminServer> admin;
    const std::string admin_arg = cli.str("admin", "");
    if (!admin_arg.empty()) {
      const auto port = ops::parse_admin_port(admin_arg);
      if (!port) throw CliError("bad --admin port '" + admin_arg + "'");
      ops::AdminConfig acfg;
      acfg.port = *port;
      acfg.bind = ops::admin_bind_from_env();
      acfg.registry = &registry;
      const std::string bind = acfg.bind;
      admin = std::make_unique<ops::AdminServer>(std::move(acfg));
      admin->start();
      // Same parseable line as dexsim: scripts grep it for the ephemeral port.
      std::fprintf(stderr, "admin: listening on %s:%u\n", bind.c_str(),
                   static_cast<unsigned>(admin->port()));
    }

    std::string summary_json;
    int exit_code = 0;

    if (cli.flag("explore")) {
      check::ExploreOptions opt;
      const auto algo_name = cli.str("explore-algo", "crash");
      const auto algo = check::parse_algorithm(algo_name);
      if (!algo) throw CliError("unknown --explore-algo '" + algo_name + "'");
      opt.algorithm = *algo;
      opt.t = cli.unsigned_num("explore-t", 1);
      opt.n = cli.unsigned_num("explore-n", 5);
      opt.silent = cli.unsigned_num("explore-silent", 1);
      opt.reorder_window = cli.unsigned_num("explore-window", 0);
      opt.max_states = cli.unsigned_num("explore-max-states", 200'000);
      opt.debug_quorum_skew = cli.flag("inject-bug") ? 1 : 0;
      const auto split = cli.unsigned_num("explore-split", 0);
      opt.input = split > 0
                      ? split_input(opt.n, 1, split, 0)
                      : unanimous_input(opt.n, 0);
      opt.metrics = &registry;

      const auto r = check::explore(opt);
      std::printf("explore: %s n=%zu t=%zu silent=%zu window=%zu\n",
                  algorithm_name(opt.algorithm), opt.n, opt.t, opt.silent,
                  opt.reorder_window);
      std::printf("explore: %llu states (%llu deduped), %llu complete "
                  "schedules%s\n",
                  static_cast<unsigned long long>(r.states),
                  static_cast<unsigned long long>(r.deduped),
                  static_cast<unsigned long long>(r.schedules),
                  r.truncated ? " [TRUNCATED: max-states hit]" : "");
      std::printf("explore: %s (%llu violating schedules)\n",
                  r.ok ? "OK" : "VIOLATED",
                  static_cast<unsigned long long>(r.violating_schedules));
      for (const auto& v : r.violations) {
        std::fprintf(stderr, "explore: %s\n", v.c_str());
      }
      std::ostringstream os;
      os << "{\"mode\":\"explore\",\"algo\":\"" << algorithm_name(opt.algorithm)
         << "\",\"n\":" << opt.n << ",\"t\":" << opt.t
         << ",\"states\":" << r.states << ",\"deduped\":" << r.deduped
         << ",\"schedules\":" << r.schedules
         << ",\"truncated\":" << (r.truncated ? "true" : "false")
         << ",\"violating\":" << r.violating_schedules
         << ",\"ok\":" << (r.ok ? "true" : "false") << "}";
      summary_json = os.str();
      if (!r.ok) exit_code = 1;
    } else {
      check::FuzzOptions opt;
      opt.seed = cli.unsigned_num("seed", 1);
      opt.campaigns = cli.unsigned_num("campaigns", 200);
      opt.shrink_budget = cli.unsigned_num("shrink-budget", 150);
      opt.debug_quorum_skew = cli.flag("inject-bug") ? 1 : 0;
      opt.metrics = &registry;
      opt.admin = admin.get();
      opt.on_failure = [](const check::Genome& g, const check::RunVerdict& v) {
        std::fprintf(stderr, "dexcheck: FAIL %s\n", g.describe().c_str());
        for (const auto& f : v.failures) {
          std::fprintf(stderr, "dexcheck:   %s\n", f.c_str());
        }
      };

      const auto report = check::run_fuzz(opt);
      std::printf("dexcheck: %zu campaigns (%zu oracle runs), %zu distinct "
                  "coverage signatures, corpus %zu\n",
                  report.campaigns, report.runs, report.signatures,
                  report.corpus);
      std::printf("dexcheck: %s (%zu failing campaigns)\n",
                  report.ok() ? "OK" : "FAILURES FOUND", report.failures);

      const std::string out_dir = cli.str("out", ".");
      std::ostringstream fails;
      for (const auto& f : report.failing) {
        const std::string base =
            out_dir + "/repro-" + std::to_string(f.campaign);
        write_file(base + ".json", f.genome.to_json() + "\n");
        write_file(base + ".min.json", f.shrunk.to_json() + "\n");
        std::printf("dexcheck: campaign %zu failed — %s\n", f.campaign,
                    f.failures.empty() ? "?" : f.failures.front().c_str());
        std::printf("dexcheck:   reproducer %s.json  shrunk %s.min.json "
                    "(%zu shrink runs)\n",
                    base.c_str(), base.c_str(), f.shrink_runs);
        std::printf("dexcheck:   replay: dexsim --repro %s.min.json\n",
                    base.c_str());
        if (!fails.str().empty()) fails << ",";
        fails << "{\"campaign\":" << f.campaign << ",\"genome\":"
              << f.genome.to_json() << ",\"shrunk\":" << f.shrunk.to_json()
              << "}";
      }
      std::ostringstream os;
      os << "{\"mode\":\"fuzz\",\"campaigns\":" << report.campaigns
         << ",\"runs\":" << report.runs << ",\"failures\":" << report.failures
         << ",\"signatures\":" << report.signatures
         << ",\"corpus\":" << report.corpus
         << ",\"ok\":" << (report.ok() ? "true" : "false")
         << ",\"failing\":[" << fails.str() << "]}";
      summary_json = os.str();
      if (!report.ok()) exit_code = 1;
    }

    const std::string json_path = cli.str("json", "");
    if (!json_path.empty()) {
      write_file(json_path, summary_json + "\n");
      std::printf("summary: JSON written to %s\n", json_path.c_str());
    }
    if (cli.flag("metrics")) {
      std::fprintf(stderr, "%s", metrics::to_prometheus(registry.snapshot()).c_str());
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dexcheck: %s\n", e.what());
    return 2;
  }
}
