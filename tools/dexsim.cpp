// dexsim — command-line experiment runner.
//
// Runs repeated consensus executions for a chosen algorithm, input shape,
// fault plan and network model, and prints a statistical report: decision
// paths, logical steps, latency quantiles, message counts and safety checks.
//
//   $ dexsim --algo dex-freq --n 13 --t 2 --input margin --margin 9
//            --faults 2 --fault-kind equivocate --trials 50 --seed 7
//
//   $ dexsim --algo bosco-weak --input unanimous --trials 100 --oracle-uc
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "check/genome.hpp"
#include "check/oracle.hpp"
#include "common/cli.hpp"
#include "common/logging.hpp"
#include "sim/trace.hpp"
#include "common/histogram.hpp"
#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "ops/admin.hpp"
#include "sim/delay_model.hpp"
#include "trace/check.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace {

using namespace dex;

std::optional<Algorithm> parse_algo(const std::string& s) {
  if (s == "dex-freq") return Algorithm::kDexFreq;
  if (s == "dex-prv") return Algorithm::kDexPrv;
  if (s == "bosco-weak") return Algorithm::kBoscoWeak;
  if (s == "bosco-strong") return Algorithm::kBoscoStrong;
  if (s == "crash") return Algorithm::kCrashOneStep;
  if (s == "underlying") return Algorithm::kUnderlyingOnly;
  return std::nullopt;
}

std::optional<harness::FaultKind> parse_fault(const std::string& s) {
  return harness::parse_fault_kind(s);  // canonical spellings live there
}

InputVector make_input(const std::string& shape, std::size_t n, std::size_t margin,
                       std::size_t count, double p_common, Rng& rng) {
  if (shape == "unanimous") return unanimous_input(n, 0);
  if (shape == "margin") return margin_input(n, margin, 0, rng);
  if (shape == "privileged") return privileged_input(n, 0, count, rng);
  if (shape == "split") return split_input(n, 0, count, 1);
  if (shape == "random") return random_input(n, rng, {.domain = 4});
  if (shape == "skewed") {
    std::vector<Value> v(n);
    for (auto& e : v) {
      e = rng.next_bool(p_common) ? 0 : static_cast<Value>(rng.next_below(4));
    }
    return InputVector(std::move(v));
  }
  throw CliError("unknown --input shape '" + shape + "'");
}

std::shared_ptr<sim::DelayModel> make_delay(const std::string& model) {
  if (model == "uniform") {
    return std::make_shared<sim::UniformDelay>(1'000'000, 10'000'000);
  }
  if (model == "constant") return std::make_shared<sim::ConstantDelay>(1'000'000);
  if (model == "exponential") {
    return std::make_shared<sim::ExponentialDelay>(500'000, 4'000'000.0);
  }
  if (model == "heavytail") {
    return std::make_shared<sim::LogNormalDelay>(500'000, 14.5, 1.0);
  }
  throw CliError("unknown --delay model '" + model + "'");
}

}  // namespace

int main(int argc, char** argv) {
  dex::init_log_level_from_env();   // DEX_LOG_LEVEL=debug|info|warn|error
  dex::init_log_format_from_env();  // DEX_LOG_FORMAT=text|json
  dex::trace::init_from_env();      // DEX_TRACE=off|on|verbose
  Cli cli;
  cli.option("algo", "dex-freq | dex-prv | bosco-weak | bosco-strong | crash | underlying", "name")
      .option("n", "number of processes (default: algorithm minimum)", "int")
      .option("t", "resilience bound (default 2)", "int")
      .option("input", "unanimous | margin | privileged | split | random | skewed", "shape")
      .option("margin", "frequency margin for --input margin (default 2t+1)", "int")
      .option("count", "count for --input privileged/split (default 3t+1)", "int")
      .option("p-common", "common-value probability for --input skewed", "0..1")
      .option("faults", "number of faulty processes (default 0)", "int")
      .option("fault-kind",
              "silent | crash-mid | equivocate | fixed | noise | uc-saboteur "
              "| delayed-equivocate",
              "kind")
      .option("repro",
              "replay a verification-plane genome JSON (from dexcheck) "
              "bit-for-bit and judge it; ignores the other flags", "path")
      .option("trials", "number of runs (default 50)", "int")
      .option("seed", "base RNG seed (default 1)", "int")
      .option("delay", "uniform | constant | exponential | heavytail", "model")
      .option("jitter-ms", "proposal start jitter in ms (default 2)", "ms")
      .option("oracle-uc", "use the idealized zero-degrading underlying consensus")
      .option("batch", "coalesce same-destination messages into batch frames")
      .option("no-reeval", "ablation: evaluate fast paths once at n-t")
      .option("no-two-step", "ablation: disable the two-step scheme")
      .option("trace",
              "capture the first run's trace: bare dumps text, with a path "
              "writes Chrome trace-event JSON (open in Perfetto)",
              "[path]")
      .option("trace-jsonl", "write the first run's trace as JSONL", "path")
      .option("trace-csv", "dump the first run's event trace as CSV")
      .option("trace-check",
              "verify causal invariants on the first run's trace")
      .option("metrics", "dump the aggregated metrics (Prometheus text) to stderr")
      .option("metrics-json", "write the aggregated metrics as JSON", "path")
      .option("admin",
              "serve the ops plane on this loopback port (0 = ephemeral; "
              "also DEX_ADMIN)", "port")
      .option("admin-linger",
              "keep serving the ops plane this many seconds after the trials "
              "finish (default 0)", "sec")
      .option("help", "show this help");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.usage("dexsim").c_str());
    return 2;
  }
  if (cli.flag("help")) {
    std::printf("%s", cli.usage("dexsim").c_str());
    return 0;
  }

  try {
    const std::string repro_path = cli.str("repro", "");
    if (!repro_path.empty()) {
      std::ifstream in(repro_path);
      if (!in) throw CliError("cannot read --repro '" + repro_path + "'");
      std::ostringstream body;
      body << in.rdbuf();
      const auto genome = check::Genome::from_json_text(body.str());
      std::printf("repro: %s\n", genome.describe().c_str());
      const auto verdict = check::run_genome(genome);
      std::printf("repro: %zu/%zu decided (one-step %zu, two-step %zu, uc %zu)"
                  ", %llu packets, %llu injected faults\n",
                  verdict.decided, verdict.correct, verdict.one_step,
                  verdict.two_step, verdict.via_underlying,
                  static_cast<unsigned long long>(verdict.packets),
                  static_cast<unsigned long long>(verdict.injected_faults));
      if (verdict.ok) {
        std::printf("repro: OK — all applicable oracles passed\n");
        return 0;
      }
      for (const auto& f : verdict.failures) {
        std::fprintf(stderr, "repro: FAIL %s\n", f.c_str());
      }
      return 1;
    }

    const auto algo_name = cli.str("algo", "dex-freq");
    const auto algo = parse_algo(algo_name);
    if (!algo) throw CliError("unknown --algo '" + algo_name + "'");
    const auto t = cli.unsigned_num("t", 2);
    const auto n = cli.unsigned_num("n", algorithm_min_n(*algo, t));
    const auto trials = cli.unsigned_num("trials", 50);
    const auto base_seed = cli.unsigned_num("seed", 1);
    const auto shape = cli.str("input", "unanimous");
    const auto margin = cli.unsigned_num("margin", 2 * t + 1);
    const auto count = cli.unsigned_num("count", 3 * t + 1);
    const double p_common = cli.real("p-common", 0.9);
    const auto fault_kind = parse_fault(cli.str("fault-kind", "silent"));
    if (!fault_kind) throw CliError("unknown --fault-kind");

    Histogram steps, latency_ms;
    Counter paths;
    std::size_t safety_failures = 0, undecided_runs = 0;
    double packets = 0;

    metrics::MetricsSnapshot aggregate;  // merged across trials
    std::mutex aggregate_mu;  // the admin thread scrapes it mid-run
    std::atomic<bool> trials_done{false};

    // Ops plane: --admin wins over DEX_ADMIN; with neither, nothing is
    // spawned or bound. The server scrapes the cross-trial aggregate (under
    // its mutex) merged with a small local registry carrying build info.
    std::optional<std::uint16_t> admin_port;
    const std::string admin_arg = cli.str("admin", "");
    if (!admin_arg.empty()) {
      admin_port = ops::parse_admin_port(admin_arg);
      if (!admin_port) throw CliError("bad --admin port '" + admin_arg + "'");
    } else {
      admin_port = ops::admin_port_from_env();
    }
    metrics::MetricsRegistry ops_registry;
    std::unique_ptr<ops::AdminServer> admin;
    if (admin_port.has_value()) {
      ops::AdminConfig acfg;
      acfg.port = *admin_port;
      acfg.bind = ops::admin_bind_from_env();
      const std::string bind = acfg.bind;
      acfg.registry = &ops_registry;
      acfg.snapshot = [&aggregate, &aggregate_mu] {
        const std::scoped_lock lock(aggregate_mu);
        return aggregate;
      };
      acfg.ready = [&trials_done] { return trials_done.load(); };
      admin = std::make_unique<ops::AdminServer>(std::move(acfg));
      admin->start();
      // check_ops.sh parses this line to find an ephemeral port.
      std::fprintf(stderr, "admin: listening on %s:%u\n", bind.c_str(),
                   static_cast<unsigned>(admin->port()));
      std::fflush(stderr);
    }

    const std::string metrics_json = cli.str("metrics-json", "");
    const bool want_metrics = cli.flag("metrics") || !metrics_json.empty() ||
                              admin != nullptr;

    // Bare --trace keeps the legacy first-run text dump; with a path it
    // captures the unified trace and writes Chrome trace-event JSON instead.
    const std::string trace_json = cli.str("trace", "");
    const std::string trace_jsonl = cli.str("trace-jsonl", "");
    const bool want_unified = !trace_json.empty() || !trace_jsonl.empty() ||
                              cli.flag("trace-check");
    bool trace_check_failed = false;

    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      Rng rng(mix64(base_seed + trial * 1013));
      harness::ExperimentConfig cfg;
      cfg.algorithm = *algo;
      cfg.n = n;
      cfg.t = t;
      cfg.input = make_input(shape, n, margin, count, p_common, rng);
      cfg.faults.count = cli.unsigned_num("faults", 0);
      cfg.faults.kind = *fault_kind;
      cfg.seed = base_seed + trial;
      cfg.delay = make_delay(cli.str("delay", "uniform"));
      cfg.start_jitter = cli.unsigned_num("jitter-ms", 2) * 1'000'000;
      cfg.use_oracle_uc = cli.flag("oracle-uc");
      cfg.batch = cli.flag("batch");
      cfg.dex_continuous_reevaluation = !cli.flag("no-reeval");
      cfg.dex_enable_two_step = !cli.flag("no-two-step");
      sim::TraceRecorder trace;
      const bool want_legacy =
          (cli.flag("trace") && trace_json.empty()) || cli.flag("trace-csv");
      if (trial == 0 && want_legacy) cfg.trace = &trace;
      if (trial == 0 && want_unified) cfg.capture_trace = true;
      metrics::MetricsRegistry registry;  // fresh per trial, merged below
      if (want_metrics) cfg.metrics = &registry;
      cfg.admin = admin.get();

      const auto r = harness::run_experiment(cfg);
      if (want_metrics) {
        const std::scoped_lock lock(aggregate_mu);
        aggregate.merge(registry.snapshot());
      }
      if (trial == 0 && want_legacy) {
        if (cli.flag("trace-csv")) {
          std::printf("%s", trace.to_csv().c_str());
        } else {
          std::printf("%s", trace.to_text(200).c_str());
        }
      }
      if (trial == 0 && want_unified) {
        if (!trace_json.empty()) {
          std::ofstream out(trace_json);
          if (!out) throw CliError("cannot write --trace '" + trace_json + "'");
          out << trace::to_chrome_json(r.trace_events);
          std::printf("trace: %zu events -> %s (load in ui.perfetto.dev)\n",
                      r.trace_events.size(), trace_json.c_str());
        }
        if (!trace_jsonl.empty()) {
          std::ofstream out(trace_jsonl);
          if (!out) {
            throw CliError("cannot write --trace-jsonl '" + trace_jsonl + "'");
          }
          out << trace::to_jsonl(r.trace_events);
          std::printf("trace: %zu events -> %s (JSONL)\n",
                      r.trace_events.size(), trace_jsonl.c_str());
        }
        if (cli.flag("trace-check")) {
          const auto check = trace::check_causal_invariants(
              r.trace_events, {.n = n, .t = t});
          std::printf("trace-check: %s (%zu decides, %zu one-step, %zu echoes, "
                      "%zu accepts checked)\n",
                      check.ok ? "OK" : "VIOLATED", check.decides_checked,
                      check.one_step_decides, check.echoes_checked,
                      check.accepts_checked);
          for (const auto& v : check.violations) {
            std::fprintf(stderr, "trace-check: %s\n", v.c_str());
          }
          if (!check.ok) trace_check_failed = true;
        }
      }
      if (!r.agreement()) ++safety_failures;
      if (!r.all_decided()) ++undecided_runs;
      packets += static_cast<double>(r.stats.packets_delivered);
      for (const auto& rec : r.stats.decisions) {
        if (!rec.has_value()) continue;
        steps.add(rec->steps);
        latency_ms.add(static_cast<double>(rec->at) / 1e6);
        paths.add(decision_path_name(rec->decision.path));
      }
    }

    std::printf("dexsim: %s  n=%zu t=%zu  input=%s  faults=%zu(%s)  trials=%llu\n",
                algorithm_name(*algo), static_cast<std::size_t>(n),
                static_cast<std::size_t>(t), shape.c_str(),
                static_cast<std::size_t>(cli.unsigned_num("faults", 0)),
                cli.str("fault-kind", "silent").c_str(),
                static_cast<unsigned long long>(trials));
    std::printf("decisions: %zu  (paths:", steps.count());
    for (const auto& [k, v] : paths.entries()) {
      std::printf(" %s=%.0f%%", k.c_str(), 100 * paths.fraction(k));
    }
    std::printf(")\n");
    if (steps.count() > 0) {
      std::printf("steps:   %s\n", steps.summary().c_str());
      std::printf("latency: %s (ms)\n", latency_ms.summary().c_str());
    }
    std::printf("packets/run: %.0f\n", packets / static_cast<double>(trials));
    std::printf("safety: %s (%zu agreement failures, %zu undecided runs)\n",
                safety_failures == 0 && undecided_runs == 0 ? "OK" : "VIOLATED",
                safety_failures, undecided_runs);

    if (want_metrics) {
      const double one_step =
          aggregate.counter_total("dex_decisions_total", {{"path", "one_step"}});
      const double total = aggregate.counter_total("dex_decisions_total");
      if (total > 0) {
        std::printf("metrics: one-step fraction %.1f%% (%.0f/%.0f decisions)\n",
                    100.0 * one_step / total, one_step, total);
      }
      if (!metrics_json.empty()) {
        std::ofstream out(metrics_json);
        if (!out) throw CliError("cannot write --metrics-json '" + metrics_json + "'");
        out << metrics::to_json(aggregate);
        std::printf("metrics: JSON written to %s\n", metrics_json.c_str());
      }
      if (cli.flag("metrics")) {
        std::fprintf(stderr, "%s", metrics::to_prometheus(aggregate).c_str());
      }
    }

    // All file outputs are flushed; flip readiness and keep the ops plane up
    // for scrapers (check_ops.sh compares the live surfaces against the
    // files written above).
    trials_done.store(true);
    const auto linger = cli.unsigned_num("admin-linger", 0);
    if (admin != nullptr && linger > 0) {
      std::fflush(stdout);
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::seconds(linger);
      while (std::chrono::steady_clock::now() < until) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    return safety_failures == 0 && !trace_check_failed ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dexsim: %s\n", e.what());
    return 2;
  }
}
