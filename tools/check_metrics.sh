#!/usr/bin/env bash
# Smoke test for the metrics pipeline: runs dexsim with --metrics-json and
# --metrics, validates the JSON schema and required series, and checks the
# paper's adaptiveness claim (one-step fraction at f=0 >= at f=t) purely from
# the exported metrics. Registered with ctest as `check_metrics`.
#
# Usage: check_metrics.sh /path/to/dexsim
set -euo pipefail

DEXSIM="${1:?usage: check_metrics.sh /path/to/dexsim}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

run() {
  local faults="$1" out="$2"
  "$DEXSIM" --trials 5 --seed 42 --input margin --margin 9 \
    --faults "$faults" --fault-kind silent \
    --metrics-json "$out" --metrics \
    >"$WORKDIR/stdout_f$faults.txt" 2>"$WORKDIR/prom_f$faults.txt"
}

run 0 "$WORKDIR/f0.json"
run 2 "$WORKDIR/ft.json"

# The Prometheus dump must contain the decision-path series.
grep -q '^dex_decisions_total{' "$WORKDIR/prom_f0.txt" ||
  { echo "FAIL: dex_decisions_total missing from Prometheus dump"; exit 1; }
grep -q '^# TYPE sim_decision_latency_ms summary' "$WORKDIR/prom_f0.txt" ||
  { echo "FAIL: sim_decision_latency_ms summary missing"; exit 1; }

python3 - "$WORKDIR/f0.json" "$WORKDIR/ft.json" <<'PY'
import json, sys

REQUIRED = [
    "dex_decisions_total", "dex_steps_to_decision",
    "idb_inits_total", "idb_echoes_total",
    "sim_packets_total", "sim_packet_bytes_total",
    "sim_decisions_total", "sim_decision_latency_ms", "sim_end_time_ms",
    "dex_decide_latency_ms",
]

def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "dex-metrics/v1", f"bad schema in {path}"
    names = set()
    for m in doc["metrics"]:
        assert "name" in m and "type" in m and "labels" in m, f"bad sample in {path}"
        if m["type"] == "histogram":
            for key in ("count", "sum", "min", "max", "mean", "quantiles"):
                assert key in m, f"histogram sample missing {key} in {path}"
        else:
            assert "value" in m, f"sample missing value in {path}"
        names.add(m["name"])
    missing = [n for n in REQUIRED if n not in names]
    assert not missing, f"{path} missing series: {missing}"
    return doc

def one_step_fraction(doc):
    total = one = 0.0
    for m in doc["metrics"]:
        if m["name"] == "dex_decisions_total":
            total += m["value"]
            if m["labels"].get("path") == "one_step":
                one += m["value"]
    assert total > 0, "no decisions recorded"
    return one / total

f0 = one_step_fraction(load(sys.argv[1]))
ft = one_step_fraction(load(sys.argv[2]))
print(f"one-step fraction: f=0 -> {f0:.2f}, f=t -> {ft:.2f}")
assert f0 >= ft, f"adaptiveness violated: {f0} < {ft}"
PY

echo "check_metrics: OK"
