#!/usr/bin/env bash
# End-to-end check of the live ops plane: boots dexsim with --admin on an
# ephemeral port, scrapes /metrics, /trace/jsonl, /vars and /logs/level
# through dexctl, and proves the live surfaces consistent with the file
# exports of the same run:
#   - every series in --metrics-json appears in the live Prometheus scrape
#     with the same value (live-only extras like dex_build_info and
#     dex_uptime_seconds are allowed);
#   - the live /trace/jsonl snapshot is byte-identical to --trace-jsonl, and
#     --trace-check proved the causal invariants (I1-I4) on that same data;
#   - PUT /logs/level round-trips.
# Registered with ctest as `check_ops`.
#
# Exits 77 (ctest SKIP) when the binaries are not built or python3 is
# unavailable.
#
# Usage: check_ops.sh /path/to/dexsim /path/to/dexctl
set -euo pipefail

DEXSIM="${1:?usage: check_ops.sh /path/to/dexsim /path/to/dexctl}"
DEXCTL="${2:?usage: check_ops.sh /path/to/dexsim /path/to/dexctl}"

if [[ ! -x "$DEXSIM" || ! -x "$DEXCTL" ]]; then
  echo "check_ops: dexsim/dexctl not built; skipping"
  exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "check_ops: python3 not available; skipping"
  exit 77
fi

WORKDIR="$(mktemp -d)"
SIM_PID=""
cleanup() {
  [[ -n "$SIM_PID" ]] && kill "$SIM_PID" 2>/dev/null || true
  [[ -n "$SIM_PID" ]] && wait "$SIM_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

# One adversarial fixed-seed run; --admin-linger keeps the ops plane up after
# the trial so the scrapes below race nothing.
"$DEXSIM" --algo dex-freq --n 13 --t 2 --input margin --margin 5 \
  --faults 2 --fault-kind equivocate --trials 1 --seed 7 \
  --metrics-json "$WORKDIR/metrics.json" \
  --trace-jsonl "$WORKDIR/trace.jsonl" --trace-check \
  --admin 0 --admin-linger 120 \
  >"$WORKDIR/stdout.txt" 2>"$WORKDIR/stderr.txt" &
SIM_PID=$!

# The ephemeral port is announced on stderr: "admin: listening on HOST:PORT".
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*admin: listening on [0-9.]*:\([0-9][0-9]*\).*/\1/p' \
          "$WORKDIR/stderr.txt" | head -1)"
  [[ -n "$PORT" ]] && break
  kill -0 "$SIM_PID" 2>/dev/null ||
    { echo "FAIL: dexsim exited before announcing the admin port"; cat "$WORKDIR/stderr.txt"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: no admin port announced"; exit 1; }
ADDR="127.0.0.1:$PORT"

"$DEXCTL" "$ADDR" health | grep -q ok ||
  { echo "FAIL: /healthz not ok"; exit 1; }

# /readyz flips once the trial finished and the file exports are written.
READY=0
for _ in $(seq 1 300); do
  if "$DEXCTL" "$ADDR" ready >/dev/null 2>&1; then READY=1; break; fi
  sleep 0.1
done
[[ "$READY" == 1 ]] || { echo "FAIL: /readyz never became ready"; exit 1; }

grep -q "trace-check: OK" "$WORKDIR/stdout.txt" ||
  { echo "FAIL: in-process trace-check did not pass"; exit 1; }

"$DEXCTL" "$ADDR" metrics >"$WORKDIR/live_metrics.txt"
"$DEXCTL" "$ADDR" trace   >"$WORKDIR/live_trace.jsonl"
"$DEXCTL" "$ADDR" vars    >"$WORKDIR/vars.json"

# The live flight-recorder snapshot is the exact data --trace-jsonl wrote
# (and --trace-check just proved I1-I4 on it).
cmp "$WORKDIR/live_trace.jsonl" "$WORKDIR/trace.jsonl" ||
  { echo "FAIL: live /trace/jsonl differs from the --trace-jsonl export"; exit 1; }

grep -q '"build"' "$WORKDIR/vars.json" &&
  grep -q '"experiment"' "$WORKDIR/vars.json" ||
  { echo "FAIL: /vars missing build/experiment"; exit 1; }

# Runtime log-level retargeting round-trips.
"$DEXCTL" "$ADDR" log-level debug >/dev/null
"$DEXCTL" "$ADDR" log-level | grep -q '"level":"DEBUG"' ||
  { echo "FAIL: PUT /logs/level did not round-trip"; exit 1; }

# Every series of the file export must appear, equal, in the live scrape.
python3 - "$WORKDIR/metrics.json" "$WORKDIR/live_metrics.txt" <<'PY'
import json, sys

QUANTILES = ["0.5", "0.9", "0.99"]

def esc(v):
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")

def key(name, labels):
    if not labels:
        return name
    inner = ",".join(f'{k}="{esc(labels[k])}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "dex-metrics/v1", "bad metrics.json schema"
file_flat = {}
for m in doc["metrics"]:
    name, labels = m["name"], m["labels"]
    if m["type"] == "histogram":
        file_flat[key(name + "_count", labels)] = float(m["count"])
        file_flat[key(name + "_sum", labels)] = float(m["sum"])
        if m["count"] > 0:
            for q in QUANTILES:
                file_flat[key(name, {**labels, "quantile": q})] = \
                    float(m["quantiles"][q])
    else:
        file_flat[key(name, labels)] = float(m["value"])

live_flat = {}
with open(sys.argv[2]) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        k, v = line.rsplit(" ", 1)
        live_flat[k] = float(v)

missing = [k for k in file_flat if k not in live_flat]
assert not missing, f"live scrape missing series: {missing[:5]}"
diffs = [k for k, v in file_flat.items() if live_flat[k] != v]
assert not diffs, \
    f"live scrape disagrees on: {[(k, file_flat[k], live_flat[k]) for k in diffs[:5]]}"
for extra in ("dex_build_info", "dex_uptime_seconds"):
    assert any(k.startswith(extra) for k in live_flat), f"live scrape missing {extra}"
print(f"metrics consistent: {len(file_flat)} series match the live scrape")
PY

kill "$SIM_PID"
wait "$SIM_PID" 2>/dev/null || true
SIM_PID=""

echo "check_ops: OK"
