// Tests for the wire envelope, channel tags and payload codecs.
#include <gtest/gtest.h>

#include "consensus/message.hpp"

namespace dex {
namespace {

TEST(Chan, ChannelAndSeqSplit) {
  const auto tag = chan::uc_phase_tag(7, 2);
  EXPECT_EQ(chan::channel(tag), chan::kUcPhase);
  EXPECT_EQ(chan::seq(tag), (7ULL << 8) | 2);
}

TEST(Chan, ChannelsAreDistinct) {
  const std::uint64_t chans[] = {chan::kDexProposalPlain, chan::kDexProposalIdb,
                                 chan::kUcPhase,          chan::kUcDecide,
                                 chan::kBoscoVote,        chan::kCrashProp,
                                 chan::kSmrDissem};
  for (std::size_t i = 0; i < std::size(chans); ++i) {
    for (std::size_t j = i + 1; j < std::size(chans); ++j) {
      EXPECT_NE(chans[i], chans[j]);
    }
  }
}

TEST(Message, RoundTrip) {
  Message m;
  m.kind = MsgKind::kIdbEcho;
  m.instance = 42;
  m.tag = chan::uc_phase_tag(3, 1);
  m.origin = 5;
  m.payload = ValuePayload{-77}.to_bytes();

  const auto bytes = m.to_bytes();
  const Message back = Message::from_bytes(bytes);
  EXPECT_EQ(back, m);
}

TEST(Message, RoundTripEmptyPayload) {
  Message m;
  m.kind = MsgKind::kPlain;
  m.tag = chan::kUcDecide;
  const Message back = Message::from_bytes(m.to_bytes());
  EXPECT_EQ(back, m);
}

TEST(Message, RejectsUnknownKind) {
  Message m;
  m.kind = MsgKind::kPlain;
  auto bytes = m.to_bytes();
  bytes[0] = std::byte{9};  // invalid kind
  EXPECT_THROW(Message::from_bytes(bytes), DecodeError);
}

TEST(Message, RejectsTrailingBytes) {
  Message m;
  auto bytes = m.to_bytes();
  bytes.push_back(std::byte{0});
  EXPECT_THROW(Message::from_bytes(bytes), DecodeError);
}

TEST(Message, RejectsTruncated) {
  Message m;
  m.payload = ValuePayload{1}.to_bytes();
  auto bytes = m.to_bytes();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(Message::from_bytes(bytes), DecodeError);
}

TEST(Message, RejectsOversizedPayloadLength) {
  // Hand-craft a header claiming a huge payload.
  Writer w;
  w.u8(0);               // kind
  w.u64(0);              // instance
  w.u64(0);              // tag
  w.i32(-1);             // origin
  w.varint(1ULL << 30);  // absurd length
  const auto bytes = std::move(w).take();
  Reader r(bytes);
  EXPECT_THROW(Message::decode(r), DecodeError);
}

TEST(ValuePayload, RoundTripExtremes) {
  for (const Value v : {Value{0}, Value{-1}, Value{INT64_MAX}, Value{INT64_MIN}}) {
    EXPECT_EQ(ValuePayload::from_bytes(ValuePayload{v}.to_bytes()).v, v);
  }
}

TEST(ValuePayload, RejectsTrailing) {
  auto bytes = ValuePayload{1}.to_bytes();
  bytes.push_back(std::byte{0});
  EXPECT_THROW(ValuePayload::from_bytes(bytes), DecodeError);
}

TEST(UcPhasePayload, RoundTrip) {
  UcPhasePayload p{9, 2, false, 123};
  const auto back = UcPhasePayload::from_bytes(p.to_bytes());
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.phase, 2);
  EXPECT_FALSE(back.has_value);
  EXPECT_EQ(back.v, 123);
}

TEST(UcPhasePayload, RejectsGarbage) {
  std::vector<std::byte> junk(3, std::byte{0xff});
  EXPECT_THROW(UcPhasePayload::from_bytes(junk), DecodeError);
}

Message make_msg(MsgKind kind, InstanceId inst, std::uint64_t tag, Value v) {
  Message m;
  m.kind = kind;
  m.instance = inst;
  m.tag = tag;
  m.payload = ValuePayload{v}.to_bytes();
  return m;
}

TEST(BatchFrame, RoundTrip) {
  BatchFrame frame;
  frame.messages.push_back(make_msg(MsgKind::kPlain, 1, chan::kDexProposalPlain, 7));
  frame.messages.push_back(make_msg(MsgKind::kIdbInit, 2, chan::kDexProposalIdb, -3));
  frame.messages.push_back(make_msg(MsgKind::kIdbEcho, 3, chan::kUcDecide, 0));

  const auto bytes = frame.to_bytes();
  EXPECT_TRUE(BatchFrame::is_batch(bytes));
  EXPECT_EQ(bytes.size(), frame.encoded_size());

  const BatchFrame back = BatchFrame::from_bytes(bytes);
  ASSERT_EQ(back.messages.size(), frame.messages.size());
  for (std::size_t i = 0; i < frame.messages.size(); ++i) {
    EXPECT_EQ(back.messages[i], frame.messages[i]);
  }
}

TEST(BatchFrame, MarkerCannotCollideWithBareMessage) {
  // A bare Message's first byte is its MsgKind (0..2); the batch marker must
  // stay distinguishable so decode_wire can dispatch on the first byte.
  const auto bare = make_msg(MsgKind::kPlain, 0, chan::kUcDecide, 1).to_bytes();
  EXPECT_FALSE(BatchFrame::is_batch(bare));
}

TEST(BatchFrame, DecodeWireDispatches) {
  const Message m = make_msg(MsgKind::kPlain, 5, chan::kSmrDissem, 11);
  const auto single = decode_wire(m.to_bytes());
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], m);

  BatchFrame frame;
  frame.messages.push_back(m);
  frame.messages.push_back(make_msg(MsgKind::kIdbEcho, 6, chan::kUcPhase, -9));
  const auto multi = decode_wire(frame.to_bytes());
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_EQ(multi[0], frame.messages[0]);
  EXPECT_EQ(multi[1], frame.messages[1]);
}

TEST(BatchFrame, BatchEncodedSizeMatchesWire) {
  BatchFrame frame;
  for (int i = 0; i < 5; ++i) {
    frame.messages.push_back(
        make_msg(MsgKind::kIdbInit, static_cast<InstanceId>(i),
                 chan::kDexProposalIdb, i * 100));
  }
  EXPECT_EQ(batch_encoded_size(frame.messages), frame.to_bytes().size());
}

TEST(BatchFrame, RejectsBadVersion) {
  BatchFrame frame;
  frame.messages.push_back(make_msg(MsgKind::kPlain, 0, chan::kUcDecide, 1));
  auto bytes = frame.to_bytes();
  bytes[1] = std::byte{0x7f};  // unknown version
  EXPECT_THROW(BatchFrame::from_bytes(bytes), DecodeError);
}

TEST(BatchFrame, RejectsTruncatedAndTrailing) {
  BatchFrame frame;
  frame.messages.push_back(make_msg(MsgKind::kPlain, 0, chan::kUcDecide, 1));
  frame.messages.push_back(make_msg(MsgKind::kIdbEcho, 1, chan::kUcPhase, 2));
  auto bytes = frame.to_bytes();

  auto truncated = bytes;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(BatchFrame::from_bytes(truncated), DecodeError);

  auto trailing = bytes;
  trailing.push_back(std::byte{0});
  EXPECT_THROW(BatchFrame::from_bytes(trailing), DecodeError);
}

TEST(BatchFrame, RejectsEmptyAndGarbage) {
  EXPECT_THROW(BatchFrame::from_bytes({}), DecodeError);
  std::vector<std::byte> junk = {std::byte{BatchFrame::kMarker}};
  EXPECT_THROW(BatchFrame::from_bytes(junk), DecodeError);
}

TEST(Message, EncodedSizeMatchesWire) {
  const Message m = make_msg(MsgKind::kIdbEcho, 1234, chan::uc_phase_tag(3, 1), -5);
  EXPECT_EQ(m.encoded_size(), m.to_bytes().size());
  Message empty;
  EXPECT_EQ(empty.encoded_size(), empty.to_bytes().size());
}

TEST(Outbox, DrainMovesAndClears) {
  Outbox ob;
  Message m;
  m.tag = chan::kBoscoVote;
  ob.send(3, m);
  ob.broadcast(m);
  auto out = ob.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dst, 3);
  EXPECT_EQ(out[1].dst, kBroadcastDst);
  EXPECT_TRUE(ob.empty());
  EXPECT_TRUE(ob.drain().empty());
}

}  // namespace
}  // namespace dex
