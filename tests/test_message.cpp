// Tests for the wire envelope, channel tags and payload codecs.
#include <gtest/gtest.h>

#include "consensus/message.hpp"

namespace dex {
namespace {

TEST(Chan, ChannelAndSeqSplit) {
  const auto tag = chan::uc_phase_tag(7, 2);
  EXPECT_EQ(chan::channel(tag), chan::kUcPhase);
  EXPECT_EQ(chan::seq(tag), (7ULL << 8) | 2);
}

TEST(Chan, ChannelsAreDistinct) {
  const std::uint64_t chans[] = {chan::kDexProposalPlain, chan::kDexProposalIdb,
                                 chan::kUcPhase,          chan::kUcDecide,
                                 chan::kBoscoVote,        chan::kCrashProp,
                                 chan::kSmrDissem};
  for (std::size_t i = 0; i < std::size(chans); ++i) {
    for (std::size_t j = i + 1; j < std::size(chans); ++j) {
      EXPECT_NE(chans[i], chans[j]);
    }
  }
}

TEST(Message, RoundTrip) {
  Message m;
  m.kind = MsgKind::kIdbEcho;
  m.instance = 42;
  m.tag = chan::uc_phase_tag(3, 1);
  m.origin = 5;
  m.payload = ValuePayload{-77}.to_bytes();

  const auto bytes = m.to_bytes();
  const Message back = Message::from_bytes(bytes);
  EXPECT_EQ(back, m);
}

TEST(Message, RoundTripEmptyPayload) {
  Message m;
  m.kind = MsgKind::kPlain;
  m.tag = chan::kUcDecide;
  const Message back = Message::from_bytes(m.to_bytes());
  EXPECT_EQ(back, m);
}

TEST(Message, RejectsUnknownKind) {
  Message m;
  m.kind = MsgKind::kPlain;
  auto bytes = m.to_bytes();
  bytes[0] = std::byte{9};  // invalid kind
  EXPECT_THROW(Message::from_bytes(bytes), DecodeError);
}

TEST(Message, RejectsTrailingBytes) {
  Message m;
  auto bytes = m.to_bytes();
  bytes.push_back(std::byte{0});
  EXPECT_THROW(Message::from_bytes(bytes), DecodeError);
}

TEST(Message, RejectsTruncated) {
  Message m;
  m.payload = ValuePayload{1}.to_bytes();
  auto bytes = m.to_bytes();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(Message::from_bytes(bytes), DecodeError);
}

TEST(Message, RejectsOversizedPayloadLength) {
  // Hand-craft a header claiming a huge payload.
  Writer w;
  w.u8(0);               // kind
  w.u64(0);              // instance
  w.u64(0);              // tag
  w.i32(-1);             // origin
  w.varint(1ULL << 30);  // absurd length
  const auto bytes = std::move(w).take();
  Reader r(bytes);
  EXPECT_THROW(Message::decode(r), DecodeError);
}

TEST(ValuePayload, RoundTripExtremes) {
  for (const Value v : {Value{0}, Value{-1}, Value{INT64_MAX}, Value{INT64_MIN}}) {
    EXPECT_EQ(ValuePayload::from_bytes(ValuePayload{v}.to_bytes()).v, v);
  }
}

TEST(ValuePayload, RejectsTrailing) {
  auto bytes = ValuePayload{1}.to_bytes();
  bytes.push_back(std::byte{0});
  EXPECT_THROW(ValuePayload::from_bytes(bytes), DecodeError);
}

TEST(UcPhasePayload, RoundTrip) {
  UcPhasePayload p{9, 2, false, 123};
  const auto back = UcPhasePayload::from_bytes(p.to_bytes());
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.phase, 2);
  EXPECT_FALSE(back.has_value);
  EXPECT_EQ(back.v, 123);
}

TEST(UcPhasePayload, RejectsGarbage) {
  std::vector<std::byte> junk(3, std::byte{0xff});
  EXPECT_THROW(UcPhasePayload::from_bytes(junk), DecodeError);
}

TEST(Outbox, DrainMovesAndClears) {
  Outbox ob;
  Message m;
  m.tag = chan::kBoscoVote;
  ob.send(3, m);
  ob.broadcast(m);
  auto out = ob.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dst, 3);
  EXPECT_EQ(out[1].dst, kBroadcastDst);
  EXPECT_TRUE(ob.empty());
  EXPECT_TRUE(ob.drain().empty());
}

}  // namespace
}  // namespace dex
