// Tests for the simulation trace recorder.
#include <gtest/gtest.h>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/trace.hpp"

namespace dex {
namespace {

using harness::ExperimentConfig;

sim::TraceRecorder traced_run(std::uint64_t seed) {
  sim::TraceRecorder trace;
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 7);
  cfg.seed = seed;
  cfg.trace = &trace;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  return trace;
}

TEST(Trace, RecordsStartsDeliveriesAndDecisions) {
  const auto trace = traced_run(5);
  EXPECT_EQ(trace.count(sim::TraceKind::kStart), 13u);
  EXPECT_EQ(trace.count(sim::TraceKind::kDecide), 13u);
  EXPECT_GT(trace.count(sim::TraceKind::kDeliver), 100u);
}

TEST(Trace, EventsAreTimeOrdered) {
  const auto trace = traced_run(6);
  SimTime last = 0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.at, last);
    last = e.at;
  }
}

TEST(Trace, DeterministicAcrossIdenticalRuns) {
  const auto a = traced_run(7);
  const auto b = traced_run(7);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(a.events(), b.events());
}

TEST(Trace, DifferentSeedsProduceDifferentTraces) {
  const auto a = traced_run(8);
  const auto b = traced_run(9);
  EXPECT_NE(a.events(), b.events());
}

TEST(Trace, ForProcessFiltersByDestination) {
  const auto trace = traced_run(10);
  const auto mine = trace.for_process(3);
  EXPECT_FALSE(mine.empty());
  for (const auto& e : mine) EXPECT_EQ(e.dst, 3);
}

TEST(Trace, TextDumpContainsDecisions) {
  const auto trace = traced_run(11);
  const auto text = trace.to_text();
  EXPECT_NE(text.find("DECIDE 7"), std::string::npos);
  EXPECT_NE(text.find("start"), std::string::npos);
}

TEST(Trace, TextDumpHonorsLimit) {
  const auto trace = traced_run(12);
  const auto text = trace.to_text(5);
  // 5 event lines plus the elision marker.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            6u);
  EXPECT_NE(text.find("more events"), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  const auto trace = traced_run(13);
  const auto csv = trace.to_csv();
  EXPECT_EQ(csv.find("at_ns,kind,"), 0u);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            trace.events().size() + 1);
}

TEST(Trace, ClearEmptiesRecorder) {
  auto trace = traced_run(14);
  EXPECT_FALSE(trace.events().empty());
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.count(sim::TraceKind::kDeliver), 0u);
}

// The CSV header is a published contract (downstream scripts key on it); any
// change must be deliberate. Full-string match, not a prefix check.
TEST(Trace, CsvHeaderIsStable) {
  const sim::TraceRecorder empty;
  EXPECT_EQ(empty.to_csv(),
            "at_ns,kind,src,dst,msg_kind,tag,instance,payload_size,"
            "decided_value,decision_path\n");
}

TEST(Trace, CsvEscapingQuotesHostileFields) {
  EXPECT_EQ(sim::csv_escape("plain"), "plain");
  EXPECT_EQ(sim::csv_escape("1234"), "1234");
  EXPECT_EQ(sim::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(sim::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(sim::csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(sim::csv_escape(""), "");
}

TEST(Trace, CsvDecideRowsStayParsable) {
  sim::TraceRecorder rec;
  rec.record_decide(1000, 3, Decision{.value = -42,
                                      .path = DecisionPath::kUnderlying,
                                      .uc_rounds = 5});
  const auto csv = rec.to_csv();
  // One header + one row, and the row keeps exactly 9 commas (10 columns).
  const auto row = csv.substr(csv.find('\n') + 1);
  EXPECT_EQ(static_cast<std::size_t>(std::count(row.begin(), row.end(), ',')),
            9u);
  EXPECT_NE(row.find("-42,underlying"), std::string::npos);
}

// TraceRecorder is a thin adapter over the unified tracer: reconstructing the
// legacy event list from a backend snapshot must reproduce what record_*
// captured live, decision payloads included.
TEST(Trace, FromBackendMatchesLiveRecording) {
  sim::TraceRecorder live;
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 7);
  cfg.seed = 21;
  cfg.faults.count = 2;
  cfg.faults.kind = harness::FaultKind::kEquivocate;
  cfg.trace = &live;
  cfg.capture_trace = true;
  const auto r = harness::run_experiment(cfg);
  ASSERT_FALSE(r.trace_events.empty());

  sim::TraceRecorder rebuilt;
  rebuilt.load_backend(r.trace_events);
  EXPECT_EQ(rebuilt.events(), live.events());
  EXPECT_EQ(sim::TraceRecorder::from_backend(r.trace_events), live.events());
}

}  // namespace
}  // namespace dex
