// Tests for the simulation trace recorder.
#include <gtest/gtest.h>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/trace.hpp"

namespace dex {
namespace {

using harness::ExperimentConfig;

sim::TraceRecorder traced_run(std::uint64_t seed) {
  sim::TraceRecorder trace;
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 7);
  cfg.seed = seed;
  cfg.trace = &trace;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  return trace;
}

TEST(Trace, RecordsStartsDeliveriesAndDecisions) {
  const auto trace = traced_run(5);
  EXPECT_EQ(trace.count(sim::TraceKind::kStart), 13u);
  EXPECT_EQ(trace.count(sim::TraceKind::kDecide), 13u);
  EXPECT_GT(trace.count(sim::TraceKind::kDeliver), 100u);
}

TEST(Trace, EventsAreTimeOrdered) {
  const auto trace = traced_run(6);
  SimTime last = 0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.at, last);
    last = e.at;
  }
}

TEST(Trace, DeterministicAcrossIdenticalRuns) {
  const auto a = traced_run(7);
  const auto b = traced_run(7);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(a.events(), b.events());
}

TEST(Trace, DifferentSeedsProduceDifferentTraces) {
  const auto a = traced_run(8);
  const auto b = traced_run(9);
  EXPECT_NE(a.events(), b.events());
}

TEST(Trace, ForProcessFiltersByDestination) {
  const auto trace = traced_run(10);
  const auto mine = trace.for_process(3);
  EXPECT_FALSE(mine.empty());
  for (const auto& e : mine) EXPECT_EQ(e.dst, 3);
}

TEST(Trace, TextDumpContainsDecisions) {
  const auto trace = traced_run(11);
  const auto text = trace.to_text();
  EXPECT_NE(text.find("DECIDE 7"), std::string::npos);
  EXPECT_NE(text.find("start"), std::string::npos);
}

TEST(Trace, TextDumpHonorsLimit) {
  const auto trace = traced_run(12);
  const auto text = trace.to_text(5);
  // 5 event lines plus the elision marker.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            6u);
  EXPECT_NE(text.find("more events"), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  const auto trace = traced_run(13);
  const auto csv = trace.to_csv();
  EXPECT_EQ(csv.find("at_ns,kind,"), 0u);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            trace.events().size() + 1);
}

TEST(Trace, ClearEmptiesRecorder) {
  auto trace = traced_run(14);
  EXPECT_FALSE(trace.events().empty());
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.count(sim::TraceKind::kDeliver), 0u);
}

}  // namespace
}  // namespace dex
