// Unit tests for the Byzantine strategies themselves: what each one emits,
// how its budget behaves, and decoder-fuzz robustness of the engines that
// have to absorb their output.
#include <gtest/gtest.h>

#include "byz/strategies.hpp"
#include "consensus/dex/dex_stack.hpp"
#include "consensus/condition/input_gen.hpp"

namespace dex {
namespace {

struct StrategyHarness {
  static constexpr std::size_t kN = 13, kT = 2;
  Rng rng{1};
  Outbox outbox;
  byz::Env env{kN, kT, /*self=*/12, /*instance=*/0, &rng, &outbox};

  std::vector<Outgoing> start(byz::Strategy& s, Value dealt = 0) {
    s.on_start(dealt, env);
    return outbox.drain();
  }
};

TEST(Strategies, SilentEmitsNothing) {
  StrategyHarness h;
  byz::SilentStrategy s;
  EXPECT_TRUE(h.start(s).empty());
  Message m;
  s.on_packet(0, m, h.env);
  EXPECT_TRUE(h.outbox.drain().empty());
}

TEST(Strategies, CrashMidBroadcastReachesPrefixOnly) {
  StrategyHarness h;
  byz::CrashMidBroadcastStrategy s(/*reach=*/4);
  const auto out = h.start(s, 9);
  // 4 destinations × 4 channels (dex plain, bosco, crash, idb init).
  EXPECT_EQ(out.size(), 16u);
  for (const auto& o : out) {
    EXPECT_GE(o.dst, 0);
    EXPECT_LT(o.dst, 4);
  }
}

TEST(Strategies, EquivocatorSplitsValuesByDestinationParity) {
  StrategyHarness h;
  auto s = byz::make_equivocator(100, 200);
  const auto out = h.start(*s);
  std::map<ProcessId, std::set<Value>> claims;
  for (const auto& o : out) {
    if (o.msg.kind == MsgKind::kPlain &&
        chan::channel(o.msg.tag) == chan::kDexProposalPlain) {
      claims[o.dst].insert(ValuePayload::from_bytes(o.msg.payload).v);
    }
  }
  EXPECT_EQ(claims.size(), StrategyHarness::kN);
  for (const auto& [dst, vals] : claims) {
    ASSERT_EQ(vals.size(), 1u);
    EXPECT_EQ(*vals.begin(), dst % 2 == 0 ? 100 : 200);
  }
}

TEST(Strategies, FixedProposerIsConsistent) {
  StrategyHarness h;
  auto s = byz::make_fixed_proposer(55);
  const auto out = h.start(*s);
  for (const auto& o : out) {
    if (o.msg.kind == MsgKind::kPlain &&
        chan::channel(o.msg.tag) == chan::kBoscoVote) {
      EXPECT_EQ(ValuePayload::from_bytes(o.msg.payload).v, 55);
    }
  }
}

TEST(Strategies, ScriptedRelaysIdbTraffic) {
  StrategyHarness h;
  auto s = byz::make_fixed_proposer(1);
  (void)h.start(*s);
  // An init from a correct process must be echoed by the honest relay.
  Message init;
  init.kind = MsgKind::kIdbInit;
  init.instance = 0;
  init.tag = chan::kDexProposalIdb;
  init.origin = 3;
  init.payload = ValuePayload{7}.to_bytes();
  s->on_packet(3, init, h.env);
  const auto out = h.outbox.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].msg.kind, MsgKind::kIdbEcho);
  EXPECT_EQ(out[0].msg.origin, 3);
}

TEST(Strategies, NoiseRespectsBudget) {
  StrategyHarness h;
  byz::RandomNoiseStrategy s(/*rate=*/1.0, /*budget=*/25);
  (void)h.start(s);
  Message m;
  for (int i = 0; i < 100; ++i) s.on_packet(0, m, h.env);
  std::size_t total = h.outbox.drain().size();
  EXPECT_LE(total, 25u);
}

TEST(Strategies, UcSaboteurAttacksObservedPhases) {
  StrategyHarness h;
  byz::UcSaboteurStrategy s(1, 2);
  (void)h.start(s, 1);
  // Feed it a UC phase broadcast; it must inject conflicting inits on that tag.
  Message est;
  est.kind = MsgKind::kIdbInit;
  est.instance = 0;
  est.tag = chan::uc_phase_tag(1, 1);
  est.origin = 4;
  est.payload = UcPhasePayload{1, 1, true, 5}.to_bytes();
  s.on_packet(4, est, h.env);
  const auto out = h.outbox.drain();
  std::size_t attack_inits = 0;
  std::set<std::vector<std::byte>> contents;
  for (const auto& o : out) {
    if (o.msg.kind == MsgKind::kIdbInit && o.msg.tag == chan::uc_phase_tag(1, 1) &&
        o.msg.origin == 12) {
      ++attack_inits;
      contents.insert(o.msg.payload.vec());
    }
  }
  EXPECT_EQ(attack_inits, StrategyHarness::kN);
  EXPECT_GE(contents.size(), 2u);  // genuinely conflicting
  // Same tag observed again: no duplicate attack wave.
  s.on_packet(5, est, h.env);
  for (const auto& o : h.outbox.drain()) {
    EXPECT_NE(o.msg.origin, 12);  // only relay echoes, no fresh inits
  }
}

// Decoder fuzz: a stack fed random mutations of valid frames must neither
// crash nor throw out of the packet handler.
TEST(StrategiesFuzz, StackSurvivesMutatedFrames) {
  Rng rng(0xf022);
  StackConfig sc;
  sc.n = 13;
  sc.t = 2;
  sc.self = 0;
  DexStack stack(sc, make_frequency_pair(13, 2));
  stack.propose(1);
  (void)stack.drain_outbox();

  // Template messages to mutate.
  std::vector<Message> templates;
  {
    Message m;
    m.kind = MsgKind::kPlain;
    m.tag = chan::kDexProposalPlain;
    m.payload = ValuePayload{3}.to_bytes();
    templates.push_back(m);
    m.kind = MsgKind::kIdbInit;
    m.tag = chan::kDexProposalIdb;
    m.origin = 2;
    templates.push_back(m);
    m.kind = MsgKind::kIdbEcho;
    m.tag = chan::uc_phase_tag(1, 1);
    m.payload = UcPhasePayload{1, 1, true, 3}.to_bytes();
    templates.push_back(m);
    m.kind = MsgKind::kPlain;
    m.tag = chan::kUcDecide;
    m.payload = ValuePayload{3}.to_bytes();
    templates.push_back(m);
  }

  for (int i = 0; i < 5000; ++i) {
    Message m = templates[rng.next_below(templates.size())];
    // Mutate fields and payload bytes.
    switch (rng.next_below(5)) {
      case 0: m.tag = rng.next_u64(); break;
      case 1: m.origin = static_cast<ProcessId>(rng.next_in(-5, 20)); break;
      case 2: m.instance = rng.next_below(4); break;
      case 3:
        if (!m.payload.empty()) {
          m.payload[rng.next_below(m.payload.size())] =
              static_cast<std::byte>(rng.next_below(256));
        }
        break;
      default:
        m.payload.resize(rng.next_below(24));
        for (auto& b : m.payload) b = static_cast<std::byte>(rng.next_below(256));
        break;
    }
    const auto src = static_cast<ProcessId>(rng.next_in(-2, 14));
    EXPECT_NO_THROW(stack.on_packet(src, m));
    (void)stack.drain_outbox();
  }
}

}  // namespace
}  // namespace dex
