// Tests for the verification plane (src/check): genome serialization and
// normalization, oracle determinism across every delay model and fault kind,
// the coverage-guided fuzzer (clean runs, catch-the-planted-bug, shrinking),
// the bounded exhaustive explorer, hand-forged negative traces for the I1–I4
// checker, and the simulator's fault-injection knobs.
#include <gtest/gtest.h>

#include <set>

#include "check/explore.hpp"
#include "check/fuzzer.hpp"
#include "check/genome.hpp"
#include "check/oracle.hpp"
#include "consensus/condition/input_gen.hpp"
#include "consensus/decision.hpp"
#include "consensus/message.hpp"
#include "harness/experiment.hpp"
#include "trace/check.hpp"

namespace dex {
namespace {

// ---------------------------------------------------------------------------
// Genome: serialization, normalization
// ---------------------------------------------------------------------------

TEST(Genome, JsonRoundTripIsExact) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    check::Genome g = check::Genome::sample(rng);
    g.seed = rng.next_u64();  // full 64-bit range
    const std::string json = g.to_json();
    const check::Genome back = check::Genome::from_json_text(json);
    EXPECT_EQ(back.to_json(), json) << "round-trip drift: " << json;
    EXPECT_EQ(back.seed, g.seed);
  }
}

TEST(Genome, SeedSurvivesJsonAbove53Bits) {
  // JSON numbers go through double; the genome stores the seed as a string
  // so 64-bit seeds replay bit-for-bit.
  check::Genome g;
  g.seed = 0xdeadbeefcafef00dULL;  // needs > 53 bits
  const check::Genome back = check::Genome::from_json_text(g.to_json());
  EXPECT_EQ(back.seed, g.seed);
}

TEST(Genome, NormalizeRoundsInfeasibleMarginUp) {
  check::Genome g;
  g.algorithm = Algorithm::kDexPrv;  // min n = 5t+1 = 6, so n = 8 stands
  g.t = 1;
  g.input_shape = "margin";
  g.n = 8;
  g.margin = 7;  // margin n-1 cannot exist; must round to n
  g.normalize();
  ASSERT_EQ(g.n, 8u);
  EXPECT_EQ(g.margin, g.n);
}

TEST(Genome, NormalizeEnforcesAlgorithmMinimum) {
  check::Genome g;
  g.algorithm = Algorithm::kBoscoStrong;  // needs n >= 7t+1
  g.n = 4;
  g.t = 2;
  g.normalize();
  EXPECT_GE(g.n, algorithm_min_n(g.algorithm, g.t));
  EXPECT_LE(g.fault_count, g.t);
}

TEST(Genome, FromJsonRejectsUnknownAlgorithm) {
  EXPECT_THROW(check::Genome::from_json_text("{\"algo\":\"nonsense\"}"),
               json::ParseError);
}

// ---------------------------------------------------------------------------
// Oracle: determinism across every delay model and fault kind
// ---------------------------------------------------------------------------

void expect_identical_verdicts(const check::Genome& g, const char* what) {
  const auto a = check::run_genome(g);
  const auto b = check::run_genome(g);
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.coverage, b.coverage) << what;
  EXPECT_EQ(a.packets, b.packets) << what;
  EXPECT_EQ(a.injected_faults, b.injected_faults) << what;
  EXPECT_EQ(a.decided, b.decided) << what;
  EXPECT_EQ(a.one_step, b.one_step) << what;
  EXPECT_EQ(a.two_step, b.two_step) << what;
  EXPECT_EQ(a.via_underlying, b.via_underlying) << what;
  EXPECT_EQ(a.failures, b.failures) << what;
}

TEST(Oracle, DeterministicForEveryDelayModel) {
  for (const char* delay :
       {"constant", "uniform", "exponential", "heavytail", "skewed", "gst"}) {
    check::Genome g;
    g.algorithm = Algorithm::kDexFreq;
    g.n = 13;
    g.t = 2;
    g.seed = 77;
    g.delay = delay;
    g.jitter_ms = 2;
    g.normalize();
    expect_identical_verdicts(g, delay);
  }
}

TEST(Oracle, DeterministicForEveryFaultKind) {
  using harness::FaultKind;
  for (const FaultKind kind :
       {FaultKind::kSilent, FaultKind::kCrashMid, FaultKind::kEquivocate,
        FaultKind::kFixedValue, FaultKind::kNoise, FaultKind::kUcSaboteur,
        FaultKind::kDelayedEquivocate}) {
    check::Genome g;
    g.algorithm = Algorithm::kDexFreq;
    g.n = 13;
    g.t = 2;
    g.seed = 99;
    g.fault_kind = kind;
    g.fault_count = 2;
    g.delay = "uniform";
    g.normalize();
    expect_identical_verdicts(g, harness::fault_kind_name(kind));
  }
}

TEST(Oracle, DeterministicUnderLinkFaults) {
  check::Genome g;
  g.algorithm = Algorithm::kDexPrv;
  g.n = 11;
  g.t = 2;
  g.seed = 5;
  g.drop = 0.1;
  g.duplicate = 0.1;
  g.reorder = 0.2;
  g.has_partition = true;
  g.part_cut = 2;
  g.normalize();
  expect_identical_verdicts(g, "link faults");
}

TEST(Oracle, CleanRunPassesAllOracles) {
  check::Genome g;
  g.seed = 3;
  g.normalize();
  const auto v = check::run_genome(g);
  EXPECT_TRUE(v.ok) << (v.failures.empty() ? "" : v.failures.front());
  EXPECT_EQ(v.decided, v.correct);
  EXPECT_GT(v.packets, 0u);
}

TEST(Oracle, PlantedQuorumBugTripsInvariants) {
  check::Genome g;
  g.algorithm = Algorithm::kDexPrv;
  g.n = 6;
  g.t = 1;
  g.seed = 15344428890809681368ULL;  // jittered schedule that exposes the skew
  g.jitter_ms = 3;
  g.delay = "constant";
  g.debug_quorum_skew = 1;
  g.normalize();
  const auto v = check::run_genome(g);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.invariants.ok);
}

// ---------------------------------------------------------------------------
// Fuzzer: clean batches, catching the planted bug, shrinking
// ---------------------------------------------------------------------------

TEST(Fuzzer, CleanBatchHasNoFailures) {
  check::FuzzOptions opt;
  opt.seed = 1;
  opt.campaigns = 60;
  const auto r = check::run_fuzz(opt);
  EXPECT_TRUE(r.ok()) << (r.failing.empty()
                              ? ""
                              : r.failing.front().genome.describe());
  EXPECT_EQ(r.campaigns, 60u);
  EXPECT_GT(r.signatures, 10u) << "coverage feedback looks broken";
}

TEST(Fuzzer, DeterministicInSeed) {
  check::FuzzOptions opt;
  opt.seed = 11;
  opt.campaigns = 30;
  const auto a = check::run_fuzz(opt);
  const auto b = check::run_fuzz(opt);
  EXPECT_EQ(a.signatures, b.signatures);
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(Fuzzer, CatchesAndShrinksThePlantedBug) {
  check::FuzzOptions opt;
  opt.seed = 7;
  opt.campaigns = 50;
  opt.debug_quorum_skew = 1;
  const auto r = check::run_fuzz(opt);
  ASSERT_FALSE(r.ok()) << "oracles missed the planted quorum off-by-one";
  ASSERT_FALSE(r.failing.empty());

  const auto& f = r.failing.front();
  EXPECT_FALSE(f.failures.empty());
  // The shrunk genome still carries the bug switch and still fails.
  EXPECT_EQ(f.shrunk.debug_quorum_skew, 1u);
  const auto v = check::run_genome(f.shrunk);
  EXPECT_FALSE(v.ok) << "shrunk reproducer no longer fails";
  // Shrinking must not grow the scenario.
  EXPECT_LE(f.shrunk.n, f.genome.n);
  EXPECT_LE(f.shrunk.fault_count, f.genome.fault_count);
}

TEST(Fuzzer, ShrinkRemovesIrrelevantFaults) {
  // A genome that fails purely because of the planted bug shrinks to a
  // fault-free scenario: every reduction that keeps it failing is taken.
  check::Genome g;
  g.algorithm = Algorithm::kDexPrv;
  g.n = 9;
  g.t = 1;
  g.seed = 15344428890809681368ULL;
  g.jitter_ms = 3;
  g.delay = "constant";
  g.drop = 0.05;
  g.duplicate = 0.1;
  g.has_partition = true;
  g.debug_quorum_skew = 1;
  g.normalize();
  ASSERT_FALSE(check::run_genome(g).ok) << "precondition: genome must fail";

  std::size_t runs = 0;
  const check::Genome s = check::shrink_genome(g, 200, &runs);
  EXPECT_FALSE(check::run_genome(s).ok);
  EXPECT_GT(runs, 0u);
  EXPECT_EQ(s.drop, 0.0);
  EXPECT_EQ(s.duplicate, 0.0);
  EXPECT_FALSE(s.has_partition);
  EXPECT_LE(s.n, g.n);
}

// ---------------------------------------------------------------------------
// Explorer: exhaustive sweeps
// ---------------------------------------------------------------------------

TEST(Explorer, SmallCrashWorldIsViolationFree) {
  check::ExploreOptions opt;
  opt.algorithm = Algorithm::kCrashOneStep;
  opt.n = 5;
  opt.t = 1;
  opt.silent = 1;
  opt.reorder_window = 2;
  opt.input = unanimous_input(opt.n, 0);
  const auto r = check::explore(opt);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.states, 100u);
  EXPECT_GT(r.schedules, 0u);
}

TEST(Explorer, ContestedInputStaysSafe) {
  check::ExploreOptions opt;
  opt.algorithm = Algorithm::kCrashOneStep;
  opt.n = 5;
  opt.t = 1;
  opt.silent = 1;
  opt.reorder_window = 1;
  opt.input = split_input(opt.n, 1, 2, 0);  // 2 propose 1, 3 propose 0
  const auto r = check::explore(opt);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_FALSE(r.truncated);
}

TEST(Explorer, DeterministicAcrossRuns) {
  check::ExploreOptions opt;
  opt.algorithm = Algorithm::kCrashOneStep;
  opt.n = 5;
  opt.t = 1;
  opt.silent = 1;
  opt.reorder_window = 1;
  opt.input = unanimous_input(opt.n, 0);
  const auto a = check::explore(opt);
  const auto b = check::explore(opt);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.deduped, b.deduped);
  EXPECT_EQ(a.schedules, b.schedules);
}

TEST(Explorer, FindsThePlantedBug) {
  check::ExploreOptions opt;
  opt.algorithm = Algorithm::kDexPrv;
  opt.n = 6;
  opt.t = 1;
  opt.silent = 0;
  opt.reorder_window = 1;
  opt.max_states = 50'000;
  opt.debug_quorum_skew = 1;
  opt.input = unanimous_input(opt.n, 0);
  const auto r = check::explore(opt);
  EXPECT_FALSE(r.ok) << "explorer missed the planted quorum off-by-one";
  EXPECT_GT(r.violating_schedules, 0u);
  ASSERT_FALSE(r.violations.empty());
}

TEST(Explorer, RejectsStructurallyImpossibleWorlds) {
  check::ExploreOptions opt;
  opt.algorithm = Algorithm::kCrashOneStep;
  opt.n = 4;  // n = 4, t = 1 is below every stack's structural minimum
  opt.t = 1;
  opt.input = unanimous_input(opt.n, 0);
  EXPECT_THROW((void)check::explore(opt), ContractViolation);
}

// ---------------------------------------------------------------------------
// Checker negative paths: hand-forged traces tripping each invariant
// ---------------------------------------------------------------------------

// World for the forged traces: n=6, t=1 → quorum 5, amplification 4.
constexpr std::size_t kN = 6, kT = 1;

trace::Event deliver(std::uint64_t t, std::uint64_t seq, ProcessId dst,
                     ProcessId src, MsgKind kind, std::uint64_t tag,
                     ProcessId origin = kNoProcess) {
  trace::Event e;
  e.t = t;
  e.seq = seq;
  e.cat = "sim";
  e.name = "deliver";
  e.proc = dst;
  e.peer = src;
  e.tag = tag;
  e.a = static_cast<std::int64_t>(kind);
  e.b = 8;
  e.c = origin;
  return e;
}

trace::Event decide(std::uint64_t t, std::uint64_t seq, ProcessId proc,
                    DecisionPath path) {
  trace::Event e;
  e.t = t;
  e.seq = seq;
  e.cat = "sim";
  e.name = "decide";
  e.proc = proc;
  e.a = 0;  // value
  e.b = static_cast<std::int64_t>(path);
  return e;
}

trace::Event idb_event(const char* name, std::uint64_t t, std::uint64_t seq,
                       ProcessId proc, ProcessId origin, std::uint64_t tag) {
  trace::Event e;
  e.t = t;
  e.seq = seq;
  e.cat = "idb";
  e.name = name;
  e.proc = proc;
  e.peer = origin;
  e.tag = tag;
  return e;
}

TEST(CheckerNegative, I1DecideWithoutQuorumOfSenders) {
  // Proc 0 hears from only 3 peers (3 wire + self credit = 4 < 5) and decides.
  std::vector<trace::Event> ev;
  for (ProcessId p = 1; p <= 3; ++p) {
    ev.push_back(deliver(10, static_cast<std::uint64_t>(p), 0, p,
                         MsgKind::kPlain, chan::kCrashProp));
  }
  ev.push_back(decide(20, 10, 0, DecisionPath::kOneStep));
  const auto res =
      trace::check_causal_invariants(std::move(ev), {.n = kN, .t = kT});
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.violations.front().find("I1"), std::string::npos)
      << res.violations.front();
}

TEST(CheckerNegative, I2OneStepWithoutPlainProposals) {
  // Proc 0 hears echoes from 5 peers — I1's any-kind quorum is satisfied,
  // but a ONE-STEP decide needs plain step-1 proposals (only self credit: 1).
  std::vector<trace::Event> ev;
  for (ProcessId p = 1; p <= 5; ++p) {
    ev.push_back(deliver(10, static_cast<std::uint64_t>(p), 0, p,
                         MsgKind::kIdbEcho, chan::kDexProposalIdb,
                         /*origin=*/p));
  }
  ev.push_back(decide(20, 10, 0, DecisionPath::kOneStep));
  const auto res =
      trace::check_causal_invariants(std::move(ev), {.n = kN, .t = kT});
  ASSERT_FALSE(res.ok);
  ASSERT_EQ(res.violations.size(), 1u);
  EXPECT_NE(res.violations.front().find("I2"), std::string::npos)
      << res.violations.front();
}

TEST(CheckerNegative, I3EchoWithoutInitOrAmplification) {
  // Proc 0 echoes origin 2's broadcast having seen neither the init nor
  // n−2t = 4 supporting echoes.
  std::vector<trace::Event> ev;
  ev.push_back(deliver(5, 1, 0, 1, MsgKind::kIdbEcho, chan::kDexProposalIdb,
                       /*origin=*/2));
  ev.push_back(idb_event("echo", 10, 2, 0, /*origin=*/2, chan::kDexProposalIdb));
  const auto res =
      trace::check_causal_invariants(std::move(ev), {.n = kN, .t = kT});
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.violations.front().find("I3"), std::string::npos)
      << res.violations.front();
}

TEST(CheckerNegative, I4AcceptWithoutEchoQuorum) {
  // Proc 0 accepts origin 2's broadcast on 3 < 5 echo deliveries.
  std::vector<trace::Event> ev;
  ev.push_back(deliver(1, 1, 0, 2, MsgKind::kIdbInit, chan::kDexProposalIdb));
  for (ProcessId p = 1; p <= 3; ++p) {
    ev.push_back(deliver(5, 1 + static_cast<std::uint64_t>(p), 0, p,
                         MsgKind::kIdbEcho, chan::kDexProposalIdb,
                         /*origin=*/2));
  }
  ev.push_back(idb_event("accept", 10, 9, 0, /*origin=*/2,
                         chan::kDexProposalIdb));
  const auto res =
      trace::check_causal_invariants(std::move(ev), {.n = kN, .t = kT});
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.violations.front().find("I4"), std::string::npos)
      << res.violations.front();
}

TEST(CheckerNegative, WellFormedTracePasses) {
  // The lawful counterpart: full proposal quorum, init + echo quorum, then
  // echo, accept and decide — nothing trips.
  std::vector<trace::Event> ev;
  std::uint64_t seq = 1;
  for (ProcessId p = 1; p <= 5; ++p) {
    ev.push_back(deliver(10, seq++, 0, p, MsgKind::kPlain, chan::kCrashProp));
  }
  ev.push_back(deliver(11, seq++, 0, 2, MsgKind::kIdbInit,
                       chan::kDexProposalIdb));
  ev.push_back(idb_event("echo", 12, seq++, 0, 2, chan::kDexProposalIdb));
  for (ProcessId p = 1; p <= 5; ++p) {
    ev.push_back(deliver(13, seq++, 0, p, MsgKind::kIdbEcho,
                         chan::kDexProposalIdb, /*origin=*/2));
  }
  ev.push_back(idb_event("accept", 14, seq++, 0, 2, chan::kDexProposalIdb));
  ev.push_back(decide(20, seq++, 0, DecisionPath::kOneStep));
  const auto res =
      trace::check_causal_invariants(std::move(ev), {.n = kN, .t = kT});
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? ""
                                                 : res.violations.front());
  EXPECT_EQ(res.decides_checked, 1u);
  EXPECT_EQ(res.echoes_checked, 1u);
  EXPECT_EQ(res.accepts_checked, 1u);
}

// ---------------------------------------------------------------------------
// Simulator fault injection via the harness
// ---------------------------------------------------------------------------

harness::ExperimentConfig base_config(std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(cfg.n, 1);
  cfg.seed = seed;
  cfg.stop_when_all_decided = true;
  return cfg;
}

TEST(FaultInjection, DropAllSuppressesEveryCrossDelivery) {
  auto cfg = base_config(21);
  cfg.link_faults.drop = 1.0;
  cfg.max_events = 100'000;
  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.stats.faults.dropped, 0u);
  // Self-addressed packets bypass the link; no cross traffic ever arrives, so
  // no quorum can fill and nobody decides.
  EXPECT_EQ(r.decided, 0u) << "decision without any cross traffic";
}

TEST(FaultInjection, DuplicatesIncreaseDeliveries) {
  auto cfg = base_config(22);
  const auto clean = harness::run_experiment(cfg);
  cfg.link_faults.duplicate = 0.5;
  const auto doubled = harness::run_experiment(cfg);
  EXPECT_GT(doubled.stats.faults.duplicated, 0u);
  EXPECT_GT(doubled.stats.packets_delivered, clean.stats.packets_delivered);
  EXPECT_TRUE(doubled.agreement());
}

TEST(FaultInjection, ZeroKnobsPreserveTheHistoricalSchedule) {
  // The fault RNG is consulted only when a knob is non-zero: a default
  // LinkFaults must reproduce the historical schedule bit-for-bit.
  auto cfg = base_config(23);
  const auto a = harness::run_experiment(cfg);
  cfg.link_faults = sim::LinkFaults{};
  cfg.partitions.clear();
  cfg.crashes.clear();
  const auto b = harness::run_experiment(cfg);
  EXPECT_EQ(a.stats.wire_packets, b.stats.wire_packets);
  EXPECT_EQ(a.stats.packets_delivered, b.stats.packets_delivered);
  EXPECT_EQ(a.stats.end_time, b.stats.end_time);
  EXPECT_EQ(a.stats.faults.total(), 0u);
}

TEST(FaultInjection, PartitionCutsCrossGroupTraffic) {
  auto cfg = base_config(24);
  sim::Partition p;
  p.from = 0;
  p.until = 5'000'000;  // 5 ms
  p.group.assign(cfg.n, 0);
  p.group[0] = p.group[1] = 1;
  cfg.partitions.push_back(p);
  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.stats.faults.partitioned, 0u);
  EXPECT_TRUE(r.agreement());
}

TEST(FaultInjection, CrashWindowDropsInboundTraffic) {
  auto cfg = base_config(25);
  sim::CrashWindow w;
  w.who = 3;
  w.from = 0;
  w.until = 5'000'000;
  cfg.crashes.push_back(w);
  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.stats.faults.crashed, 0u);
  EXPECT_TRUE(r.agreement());
}

}  // namespace
}  // namespace dex
