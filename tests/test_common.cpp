// Unit tests for the common substrate: RNG, serde, hashing, histograms,
// logging environment contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"

namespace dex {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Mix64, InjectiveOnSamples) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Serde, RoundTripScalars) {
  Writer w;
  w.u8(250);
  w.u16(65500);
  w.u32(4000000000u);
  w.u64(0x0123456789abcdefULL);
  w.i32(-12345);
  w.i64(-9876543210LL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  const auto bytes = std::move(w).take();

  Reader r(bytes);
  EXPECT_EQ(r.u8(), 250);
  EXPECT_EQ(r.u16(), 65500);
  EXPECT_EQ(r.u32(), 4000000000u);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.i64(), -9876543210LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serde, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {0,    1,        127,        128,
                                 300,  16383,    16384,      (1ULL << 32),
                                 ~0ULL, (1ULL << 63), 0x7fffffffffffffffULL};
  for (const auto v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.view());
    EXPECT_EQ(r.varint(), v) << v;
  }
}

TEST(Serde, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string(1000, 'x'));
  Reader r(w.view());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Serde, TruncatedInputThrows) {
  Writer w;
  w.u64(7);
  const auto bytes = std::move(w).take();
  Reader r(std::span<const std::byte>(bytes).subspan(0, 4));
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Serde, MalformedVarintThrows) {
  // 11 continuation bytes exceed the 64-bit capacity.
  std::vector<std::byte> bad(11, std::byte{0x80});
  Reader r(bad);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serde, InvalidBooleanThrows) {
  std::vector<std::byte> bad{std::byte{2}};
  Reader r(bad);
  EXPECT_THROW(r.boolean(), DecodeError);
}

TEST(Serde, StringLengthBeyondInputThrows) {
  Writer w;
  w.varint(100);  // claims 100 bytes, provides none
  Reader r(w.view());
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(Hash, Fnv1a64KnownValue) {
  // FNV-1a("") is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view{}), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Hash, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const std::string s = "123456789";
  EXPECT_EQ(crc32(std::as_bytes(std::span(s.data(), s.size()))), 0xCBF43926u);
}

TEST(Hash, Crc32DetectsBitFlip) {
  std::vector<std::byte> data(64, std::byte{0x5a});
  const auto before = crc32(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(before, crc32(data));
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.quantile(0.5), 50, 1);
  EXPECT_NEAR(h.quantile(0.99), 99, 1);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, EmptyStatsAreZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileClampsOutOfRange) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(std::nan("")), h.quantile(0.0));
}

TEST(Histogram, ReservePreservesStats) {
  Histogram h;
  h.reserve(1000);
  h.add(4);
  h.add(6);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(Counter, FractionsAndTotals) {
  Counter c;
  c.add("one-step", 3);
  c.add("two-step");
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.get("one-step"), 3u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_DOUBLE_EQ(c.fraction("one-step"), 0.75);
}

TEST(Logging, LevelFromNameEdgeCases) {
  EXPECT_EQ(log_level_from_name("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_name("DEBUG"), LogLevel::kDebug);  // case-blind
  EXPECT_EQ(log_level_from_name("WaRn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_name("trace"), LogLevel::kTrace);
  EXPECT_EQ(log_level_from_name("off"), LogLevel::kOff);
  EXPECT_EQ(log_level_from_name(""), std::nullopt);
  EXPECT_EQ(log_level_from_name("debugg"), std::nullopt);
  EXPECT_EQ(log_level_from_name(" debug"), std::nullopt);  // no trimming
  EXPECT_EQ(log_level_from_name("3"), std::nullopt);
}

TEST(Logging, FormatFromNameEdgeCases) {
  EXPECT_EQ(log_format_from_name("text"), LogFormat::kText);
  EXPECT_EQ(log_format_from_name("json"), LogFormat::kJson);
  EXPECT_EQ(log_format_from_name("JSON"), LogFormat::kJson);
  EXPECT_EQ(log_format_from_name(""), std::nullopt);
  EXPECT_EQ(log_format_from_name("jsonl"), std::nullopt);
  EXPECT_EQ(log_format_from_name("yaml"), std::nullopt);
}

TEST(Logging, BadEnvValuesWarnOnceAndLeaveStateUntouched) {
  const LogLevel level_before = log_level();
  const LogFormat format_before = log_format();
  std::vector<std::string> lines;
  set_log_sink([&](std::string_view l) { lines.emplace_back(l); });

  ::setenv("DEX_LOG_LEVEL", "loudest", 1);
  EXPECT_EQ(init_log_level_from_env(), std::nullopt);
  ::setenv("DEX_LOG_FORMAT", "xml", 1);
  EXPECT_EQ(init_log_format_from_env(), std::nullopt);
  ::unsetenv("DEX_LOG_LEVEL");
  ::unsetenv("DEX_LOG_FORMAT");
  set_log_sink(nullptr);

  EXPECT_EQ(log_level(), level_before);
  EXPECT_EQ(log_format(), format_before);
  ASSERT_EQ(lines.size(), 2u);  // exactly one warning per bad value
  EXPECT_NE(lines[0].find("DEX_LOG_LEVEL"), std::string::npos);
  EXPECT_NE(lines[0].find("loudest"), std::string::npos);
  EXPECT_NE(lines[1].find("DEX_LOG_FORMAT"), std::string::npos);
}

TEST(Logging, GoodEnvValuesApply) {
  const LogLevel level_before = log_level();
  const LogFormat format_before = log_format();
  ::setenv("DEX_LOG_LEVEL", "ERROR", 1);
  ::setenv("DEX_LOG_FORMAT", "json", 1);
  EXPECT_EQ(init_log_level_from_env(), LogLevel::kError);
  EXPECT_EQ(init_log_format_from_env(), LogFormat::kJson);
  EXPECT_EQ(log_level(), LogLevel::kError);
  EXPECT_EQ(log_format(), LogFormat::kJson);
  ::unsetenv("DEX_LOG_LEVEL");
  ::unsetenv("DEX_LOG_FORMAT");
  set_log_level(level_before);
  set_log_format(format_before);
}

TEST(Logging, ParseTraceLevelAliases) {
  EXPECT_EQ(parse_trace_level("0"), 0);
  EXPECT_EQ(parse_trace_level("on"), 1);
  EXPECT_EQ(parse_trace_level("VERBOSE"), 2);
  EXPECT_EQ(parse_trace_level("maybe"), std::nullopt);
  EXPECT_EQ(parse_trace_level(nullptr), std::nullopt);
}

TEST(Logging, JsonLinesCarryCorrelationFields) {
  const LogLevel level_before = log_level();
  const LogFormat format_before = log_format();
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kJson);
  std::vector<std::string> lines;
  set_log_sink([&](std::string_view l) { lines.emplace_back(l); });

  DEX_LOG(kInfo, "unit") << "plain \"quoted\" message";
  DEX_LOG_CTX(kInfo, "unit",
              {.proc = 3, .instance = 7, .slot = 7, .path = "one_step",
               .span = "p3/i7/t0/instance"})
      << "correlated";

  set_log_sink(nullptr);
  set_log_format(format_before);
  set_log_level(level_before);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"msg\":\"plain \\\"quoted\\\" message\""),
            std::string::npos);
  EXPECT_EQ(lines[0].find("\"proc\""), std::string::npos);  // ctx-free line
  EXPECT_NE(lines[1].find("\"proc\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"instance_id\":7"), std::string::npos);
  EXPECT_NE(lines[1].find("\"slot\":7"), std::string::npos);
  EXPECT_NE(lines[1].find("\"path\":\"one_step\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"span_id\":\"p3/i7/t0/instance\""),
            std::string::npos);
  EXPECT_EQ(lines[1].back(), '\n');  // one framed object per line
}

TEST(Json, EscapeCoversControlsAndBackslash) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\\b\"c"), "a\\\\b\\\"c");
  EXPECT_EQ(json_escape("n\nt\tr\r"), "n\\nt\\tr\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_quote("x"), "\"x\"");
}

}  // namespace
}  // namespace dex
