// Randomized end-to-end safety sweep: Agreement, Unanimity and Termination
// (Lemmas 1-3) for DEX under every Byzantine strategy, input shape, delay
// skew and seed — the property-test core of the suite.
#include <gtest/gtest.h>

#include <sstream>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"

namespace dex {
namespace {

using harness::ExperimentConfig;
using harness::FaultKind;
using harness::run_experiment;

struct SafetyCase {
  Algorithm algorithm;
  std::size_t n;
  std::size_t t;
  std::size_t faults;
  FaultKind kind;
  int input_shape;  // 0 unanimous, 1 margin, 2 split, 3 random, 4 privileged
  std::uint64_t seed;

  [[nodiscard]] std::string label() const {
    std::ostringstream os;
    os << algorithm_name(algorithm) << "_n" << n << "t" << t << "f" << faults
       << "_k" << static_cast<int>(kind) << "_in" << input_shape << "_s" << seed;
    std::string s = os.str();
    for (auto& c : s) {
      if (c == '-') c = '_';
    }
    return s;
  }
};

InputVector make_input(const SafetyCase& c, Rng& rng) {
  switch (c.input_shape) {
    case 0:
      return unanimous_input(c.n, static_cast<Value>(rng.next_below(5)));
    case 1: {
      std::size_t margin = 1 + rng.next_below(c.n);
      if (margin == c.n - 1) margin = c.n;
      return margin_input(c.n, margin, static_cast<Value>(rng.next_below(5)), rng);
    }
    case 2:
      return split_input(c.n, 1, c.n / 2, 2);
    case 3:
      return random_input(c.n, rng, {.domain = 4});
    default:
      return privileged_input(c.n, 0, rng.next_below(c.n + 1), rng);
  }
}

class SafetySweep : public ::testing::TestWithParam<SafetyCase> {};

TEST_P(SafetySweep, AgreementUnanimityTermination) {
  const auto& c = GetParam();
  Rng rng(mix64(c.seed));
  ExperimentConfig cfg;
  cfg.algorithm = c.algorithm;
  cfg.n = c.n;
  cfg.t = c.t;
  cfg.privileged = 0;
  cfg.input = make_input(c, rng);
  cfg.seed = c.seed;
  cfg.faults.count = c.faults;
  cfg.faults.kind = c.kind;
  cfg.faults.random_placement = (c.seed % 2 == 0);
  cfg.start_jitter = 3'000'000;
  // Alternate between jittery and heavy-tailed delays.
  if (c.seed % 3 == 0) {
    cfg.delay = std::make_shared<sim::ExponentialDelay>(500'000, 4'000'000.0);
  }

  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided()) << "termination violated";
  EXPECT_TRUE(r.agreement()) << "agreement violated";
  if (const auto u = harness::unanimous_correct_value(cfg.input, r.faulty)) {
    ASSERT_TRUE(r.decided_value().has_value());
    EXPECT_EQ(*r.decided_value(), *u) << "unanimity violated";
  }
  EXPECT_FALSE(r.stats.hit_event_limit);
}

std::vector<SafetyCase> sweep_cases() {
  std::vector<SafetyCase> cases;
  std::uint64_t seed = 1000;
  const FaultKind kinds[] = {FaultKind::kSilent,     FaultKind::kCrashMid,
                             FaultKind::kEquivocate, FaultKind::kFixedValue,
                             FaultKind::kNoise,      FaultKind::kUcSaboteur};
  // DEX with the frequency pair at n = 6t+1 (the tight bound).
  for (const auto kind : kinds) {
    for (int shape = 0; shape <= 3; ++shape) {
      cases.push_back({Algorithm::kDexFreq, 13, 2, 2, kind, shape, seed++});
    }
  }
  // DEX with the privileged pair at n = 5t+1.
  for (const auto kind : kinds) {
    for (int shape : {0, 2, 4}) {
      cases.push_back({Algorithm::kDexPrv, 11, 2, 2, kind, shape, seed++});
    }
  }
  // BOSCO weak at its bound; fewer shapes (covered further in test_baselines).
  for (const auto kind : kinds) {
    cases.push_back({Algorithm::kBoscoWeak, 11, 2, 2, kind, 0, seed++});
    cases.push_back({Algorithm::kBoscoWeak, 11, 2, 2, kind, 3, seed++});
  }
  // Larger systems, t = 3.
  for (const auto kind : {FaultKind::kSilent, FaultKind::kEquivocate}) {
    cases.push_back({Algorithm::kDexFreq, 19, 3, 3, kind, 1, seed++});
    cases.push_back({Algorithm::kDexPrv, 16, 3, 3, kind, 4, seed++});
    cases.push_back({Algorithm::kBoscoStrong, 22, 3, 3, kind, 0, seed++});
  }
  // Fewer faults than the bound (adaptive sweet spot).
  for (std::size_t f = 0; f <= 2; ++f) {
    cases.push_back(
        {Algorithm::kDexFreq, 13, 2, f, FaultKind::kSilent, 1, seed++});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SafetySweep, ::testing::ValuesIn(sweep_cases()),
                         [](const ::testing::TestParamInfo<SafetyCase>& info) {
                           return info.param.label();
                         });

// Degenerate configuration: a single process (n=1, t=0) is its own quorum
// and must one-step decide its own proposal.
TEST(SafetyTargeted, SingleProcessDecidesItself) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 1;
  cfg.t = 0;
  cfg.input = unanimous_input(1, 9);
  cfg.seed = 1;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.all_one_step());
  EXPECT_EQ(r.decided_value(), 9);
}

// Large-system stress: n=31, t=5 with maximal equivocation and heavy-tailed
// delays — the biggest configuration in the suite.
TEST(SafetyTargeted, LargeSystemStress) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 31;
  cfg.t = 5;
  Rng rng(3);
  cfg.input = margin_input(31, 2 * 5 + 1, 4, rng);
  cfg.faults.count = 5;
  cfg.faults.kind = FaultKind::kEquivocate;
  cfg.seed = 3;
  cfg.delay = std::make_shared<sim::ExponentialDelay>(500'000, 4'000'000.0);
  cfg.start_jitter = 5'000'000;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.agreement());
  EXPECT_FALSE(r.stats.hit_event_limit);
}

// Targeted adversarial scenario: the Byzantine processes aim their proposals
// at the runner-up value to shrink the frequency margin below the one-step
// threshold at some processes but not others — the classic split between a
// one-step decider and fallback deciders. Agreement must hold regardless.
TEST(SafetyTargeted, MarginBoundaryWithHostileProposers) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kDexFreq;
    cfg.n = 13;
    cfg.t = 2;
    // Correct margin sits exactly at the P1 boundary 4t+1 = 9.
    cfg.input = margin_input(13, 9, 5, rng);
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kEquivocate;
    cfg.faults.equivocate_a = 5;   // top value to half...
    cfg.faults.equivocate_b = 0;   // ...runner-up-ish to the rest
    cfg.seed = seed;
    cfg.start_jitter = 5'000'000;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.agreement()) << "seed " << seed;
  }
}

// The saboteur drives the underlying consensus directly: conflicting EST/AUX
// broadcasts plus forged echoes, on inputs with no fast path so the fallback
// is guaranteed to matter.
TEST(SafetyTargeted, UcSaboteurCannotBreakTheFallback) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kDexFreq;
    cfg.n = 13;
    cfg.t = 2;
    cfg.input = split_input(13, 1, 7, 2);  // margin 1: fallback territory
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kUcSaboteur;
    cfg.faults.equivocate_a = 1;
    cfg.faults.equivocate_b = 2;
    cfg.seed = seed;
    cfg.start_jitter = 4'000'000;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.agreement()) << "seed " << seed;
    const auto v = r.decided_value();
    ASSERT_TRUE(v.has_value()) << "seed " << seed;
    EXPECT_TRUE(*v == 1 || *v == 2) << "seed " << seed << " decided " << *v;
  }
}

// Ablation sanity: the single-shot and one-step-only variants stay safe (they
// only trade away fast-path coverage).
TEST(SafetyTargeted, AblationVariantsPreserveSafety) {
  for (int variant = 0; variant < 2; ++variant) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ExperimentConfig cfg;
      cfg.algorithm = Algorithm::kDexFreq;
      cfg.n = 13;
      cfg.t = 2;
      Rng rng(seed);
      cfg.input = margin_input(13, 9, 5, rng);
      cfg.faults.count = 2;
      cfg.faults.kind = FaultKind::kEquivocate;
      cfg.seed = seed;
      if (variant == 0) {
        cfg.dex_continuous_reevaluation = false;
      } else {
        cfg.dex_enable_two_step = false;
      }
      const auto r = run_experiment(cfg);
      EXPECT_TRUE(r.all_decided()) << "variant " << variant << " seed " << seed;
      EXPECT_TRUE(r.agreement()) << "variant " << variant << " seed " << seed;
      if (variant == 1) {
        EXPECT_EQ(r.two_step, 0u) << "two-step disabled but fired";
      }
    }
  }
}

// Slow-quorum schedule: t correct processes are an order of magnitude slower,
// so early views at fast processes exclude them entirely.
TEST(SafetyTargeted, SlowCorrectProcessesDoNotBreakAgreement) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kDexFreq;
    cfg.n = 13;
    cfg.t = 2;
    cfg.input = split_input(13, 1, 9, 2);
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kEquivocate;
    cfg.seed = seed;
    cfg.delay = std::make_shared<sim::SkewedDelay>(
        sim::default_delay_model(), std::set<ProcessId>{0, 1}, 20.0);
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.agreement()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dex
