// Tests for the Identical Broadcast engine (Figure 3 / Theorem 4):
// Termination, Agreement, Validity — including under equivocation and
// injected Byzantine echo traffic.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>

#include "common/rng.hpp"
#include "consensus/idb/idb_engine.hpp"

namespace dex {
namespace {

std::vector<std::byte> payload_of(Value v) { return ValuePayload{v}.to_bytes(); }

/// A tiny synchronous network of IDB engines: FIFO delivery, optional drop
/// filter and direct injection — enough to script any Figure-2 scenario.
class IdbNet {
 public:
  IdbNet(std::size_t n, std::size_t t) : n_(n), t_(t) {
    for (std::size_t i = 0; i < n; ++i) {
      outboxes_.push_back(std::make_unique<Outbox>());
      engines_.push_back(std::make_unique<IdbEngine>(
          n, t, static_cast<ProcessId>(i), 0, outboxes_.back().get()));
    }
  }

  IdbEngine& engine(std::size_t i) { return *engines_[i]; }

  /// Packets (src → dst) for which this returns false are dropped.
  std::function<bool(ProcessId, ProcessId, const Message&)> filter =
      [](ProcessId, ProcessId, const Message&) { return true; };

  void inject(ProcessId src, ProcessId dst, Message msg) {
    queue_.push_back({src, dst, std::move(msg)});
  }

  /// Drains outboxes and delivers until quiescent.
  void run() {
    for (;;) {
      collect();
      if (queue_.empty()) return;
      auto [src, dst, msg] = std::move(queue_.front());
      queue_.pop_front();
      engines_[static_cast<std::size_t>(dst)]->on_message(src, msg);
      for (auto& d : engines_[static_cast<std::size_t>(dst)]->take_deliveries()) {
        delivered_[dst].push_back(std::move(d));
      }
    }
  }

  const std::vector<IdbDelivery>& delivered(ProcessId i) { return delivered_[i]; }

 private:
  void collect() {
    for (std::size_t i = 0; i < n_; ++i) {
      for (Outgoing& out : outboxes_[i]->drain()) {
        const auto src = static_cast<ProcessId>(i);
        if (out.dst == kBroadcastDst) {
          for (std::size_t d = 0; d < n_; ++d) {
            const auto dst = static_cast<ProcessId>(d);
            if (filter(src, dst, out.msg)) queue_.push_back({src, dst, out.msg});
          }
        } else if (filter(src, out.dst, out.msg)) {
          queue_.push_back({src, out.dst, std::move(out.msg)});
        }
      }
    }
  }

  struct Pending {
    ProcessId src;
    ProcessId dst;
    Message msg;
  };

  std::size_t n_;
  std::size_t t_;
  std::vector<std::unique_ptr<Outbox>> outboxes_;
  std::vector<std::unique_ptr<IdbEngine>> engines_;
  std::deque<Pending> queue_;
  std::map<ProcessId, std::vector<IdbDelivery>> delivered_;
};

Message init_msg(ProcessId origin, std::uint64_t tag, Value v) {
  Message m;
  m.kind = MsgKind::kIdbInit;
  m.tag = tag;
  m.origin = origin;
  m.payload = payload_of(v);
  return m;
}

Message echo_msg(ProcessId origin, std::uint64_t tag, Value v) {
  Message m;
  m.kind = MsgKind::kIdbEcho;
  m.tag = tag;
  m.origin = origin;
  m.payload = payload_of(v);
  return m;
}

TEST(Idb, RequiresFourTPlusOne) {
  Outbox ob;
  EXPECT_THROW(IdbEngine(8, 2, 0, 0, &ob), ContractViolation);
  EXPECT_NO_THROW(IdbEngine(9, 2, 0, 0, &ob));
}

TEST(Idb, CorrectBroadcastDeliversToAll) {
  IdbNet net(5, 1);
  net.engine(0).id_send(7, payload_of(99));
  net.run();
  for (ProcessId i = 0; i < 5; ++i) {
    ASSERT_EQ(net.delivered(i).size(), 1u) << "process " << i;
    EXPECT_EQ(net.delivered(i)[0].origin, 0);
    EXPECT_EQ(net.delivered(i)[0].tag, 7u);
    EXPECT_EQ(ValuePayload::from_bytes(net.delivered(i)[0].payload).v, 99);
  }
}

TEST(Idb, TwoStepsOfPlainCommunication) {
  // One IDB broadcast costs exactly one init broadcast plus (at most) one
  // echo broadcast per process: n + n*n plain messages for n correct.
  IdbNet net(5, 1);
  net.engine(0).id_send(1, payload_of(5));
  net.run();
  std::uint64_t echoes = 0;
  for (std::size_t i = 0; i < 5; ++i) echoes += net.engine(i).echoes_sent();
  EXPECT_EQ(echoes, 5u);  // every process echoes exactly once
}

TEST(Idb, EquivocatingInitSplitMinorityDeliversNothing) {
  // Byzantine p4 sends value 1 to {0,1} and value 2 to {2,3}: neither echo
  // group can reach n−t = 4, so no correct process accepts anything — but
  // none accept *different* messages (Agreement).
  IdbNet net(5, 1);
  for (ProcessId dst = 0; dst < 2; ++dst) net.inject(4, dst, init_msg(4, 3, 1));
  for (ProcessId dst = 2; dst < 4; ++dst) net.inject(4, dst, init_msg(4, 3, 2));
  net.run();
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_TRUE(net.delivered(i).empty()) << "process " << i;
  }
}

TEST(Idb, EquivocatingInitMajoritySideWins) {
  // Value 1 reaches three correct processes: their echoes (3 >= n−2t) pull
  // the fourth across, and everyone accepts value 1. Figure 2's scenario.
  IdbNet net(5, 1);
  for (ProcessId dst = 0; dst < 3; ++dst) net.inject(4, dst, init_msg(4, 3, 1));
  net.inject(4, 3, init_msg(4, 3, 2));
  net.run();
  for (ProcessId i = 0; i < 4; ++i) {
    ASSERT_EQ(net.delivered(i).size(), 1u) << "process " << i;
    EXPECT_EQ(ValuePayload::from_bytes(net.delivered(i)[0].payload).v, 1);
  }
}

TEST(Idb, LateProcessAcceptsViaEchoAmplification) {
  // Process 3 never sees the init but collects echoes from the others.
  IdbNet net(5, 1);
  net.filter = [](ProcessId, ProcessId dst, const Message& m) {
    return !(m.kind == MsgKind::kIdbInit && dst == 3);
  };
  net.engine(0).id_send(9, payload_of(42));
  net.run();
  ASSERT_EQ(net.delivered(3).size(), 1u);
  EXPECT_EQ(ValuePayload::from_bytes(net.delivered(3)[0].payload).v, 42);
}

TEST(Idb, FirstEchoSticksOnConflictingInits) {
  // A second init with different content from the same origin must not
  // produce a second echo from a correct process.
  Outbox ob;
  IdbEngine e(5, 1, 0, 0, &ob);
  e.on_message(4, init_msg(4, 1, 10));
  e.on_message(4, init_msg(4, 1, 20));
  EXPECT_EQ(e.echoes_sent(), 1u);
  const auto out = ob.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(ValuePayload::from_bytes(out[0].msg.payload).v, 10);
}

TEST(Idb, DuplicateEchoesFromOneSenderCountOnce) {
  Outbox ob;
  IdbEngine e(5, 1, 0, 0, &ob);
  // Three distinct senders short of the n−t = 4 acceptance quorum; repeats
  // from the same sender must not close the gap.
  for (int rep = 0; rep < 5; ++rep) {
    e.on_message(1, echo_msg(4, 2, 7));
    e.on_message(2, echo_msg(4, 2, 7));
    e.on_message(3, echo_msg(4, 2, 7));
  }
  EXPECT_TRUE(e.take_deliveries().empty());
  e.on_message(0, echo_msg(4, 2, 7));
  EXPECT_EQ(e.take_deliveries().size(), 1u);
}

TEST(Idb, AcceptsOncePerOriginTag) {
  Outbox ob;
  IdbEngine e(5, 1, 0, 0, &ob);
  for (ProcessId s = 0; s < 5; ++s) e.on_message(s, echo_msg(4, 2, 7));
  EXPECT_EQ(e.take_deliveries().size(), 1u);
  // More echoes change nothing.
  for (ProcessId s = 0; s < 5; ++s) e.on_message(s, echo_msg(4, 2, 7));
  EXPECT_TRUE(e.take_deliveries().empty());
  EXPECT_EQ(e.accepted_count(), 1u);
}

TEST(Idb, TagsAreIndependentSlots) {
  IdbNet net(5, 1);
  net.engine(2).id_send(100, payload_of(1));
  net.engine(2).id_send(200, payload_of(2));
  net.run();
  ASSERT_EQ(net.delivered(0).size(), 2u);
  std::map<std::uint64_t, Value> got;
  for (const auto& d : net.delivered(0)) {
    got[d.tag] = ValuePayload::from_bytes(d.payload).v;
  }
  EXPECT_EQ(got[100], 1);
  EXPECT_EQ(got[200], 2);
}

TEST(Idb, IgnoresForeignInstanceAndBadFields) {
  Outbox ob;
  IdbEngine e(5, 1, 0, /*instance=*/3, &ob);
  Message wrong_instance = echo_msg(4, 2, 7);
  wrong_instance.instance = 9;
  e.on_message(1, wrong_instance);

  Message bad_origin = echo_msg(77, 2, 7);
  bad_origin.instance = 3;
  e.on_message(1, bad_origin);

  Message huge = echo_msg(4, 2, 7);
  huge.instance = 3;
  huge.payload.assign((1u << 20) + 1, std::byte{0});
  e.on_message(1, huge);

  EXPECT_TRUE(e.take_deliveries().empty());
  EXPECT_EQ(e.echoes_sent(), 0u);
}

TEST(Idb, InitOriginComesFromTransportSender) {
  // A Byzantine process cannot initiate a broadcast on another's behalf: the
  // engine uses the transport-level src, not the claimed origin field.
  Outbox ob;
  IdbEngine e(5, 1, 0, 0, &ob);
  Message forged = init_msg(/*origin=*/2, 5, 9);
  e.on_message(/*src=*/4, forged);
  const auto out = ob.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].msg.origin, 4);  // echo names the true sender
}

// Agreement property under randomized Byzantine echo/init injection:
// no two correct processes ever accept different payloads for one slot.
class IdbAgreementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdbAgreementProperty, HoldsUnderRandomInjection) {
  Rng rng(GetParam());
  const std::size_t n = 9, t = 2;  // two Byzantine injectors: 7 and 8
  IdbNet net(n, t);
  net.filter = [](ProcessId src, ProcessId, const Message&) {
    return src < 7;  // Byzantine engines stay silent; we inject for them
  };
  // A correct broadcast in the background.
  net.engine(0).id_send(50, payload_of(123));
  // Byzantine storm: random inits/echoes on the same and other slots.
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<ProcessId>(7 + rng.next_below(2));
    const auto dst = static_cast<ProcessId>(rng.next_below(7));
    const auto origin = static_cast<ProcessId>(rng.next_below(n));
    const auto tag = 50 + rng.next_below(3);
    const auto v = static_cast<Value>(rng.next_below(4));
    net.inject(src, dst,
               rng.next_bool() ? init_msg(origin, tag, v) : echo_msg(origin, tag, v));
  }
  net.run();

  // Agreement per slot across correct processes.
  std::map<std::pair<ProcessId, std::uint64_t>, std::vector<std::byte>> seen;
  for (ProcessId i = 0; i < 7; ++i) {
    for (const auto& d : net.delivered(i)) {
      const auto key = std::make_pair(d.origin, d.tag);
      const auto it = seen.find(key);
      if (it == seen.end()) {
        seen.emplace(key, d.payload.vec());
      } else {
        EXPECT_EQ(it->second, d.payload.vec())
            << "disagreement on origin " << d.origin << " tag " << d.tag;
      }
    }
  }
  // Termination for the correct broadcast.
  for (ProcessId i = 0; i < 7; ++i) {
    bool got = false;
    for (const auto& d : net.delivered(i)) {
      if (d.origin == 0 && d.tag == 50) {
        got = true;
        EXPECT_EQ(ValuePayload::from_bytes(d.payload).v, 123);
      }
    }
    EXPECT_TRUE(got) << "process " << i << " missed the correct broadcast";
  }
  // Totality holds for CORRECT origins (Termination: everyone delivers).
  // Note it deliberately does NOT hold for Byzantine origins: the paper's
  // identical broadcast is weaker than Bracha reliable broadcast (no READY
  // phase), so a Byzantine sender can get accepted at some correct processes
  // and not others — all that is promised is that nobody accepts a DIFFERENT
  // message. DEX's two-step agreement (LA4) is proven over sibling views for
  // exactly this reason.
  for (const auto slot_tag : {std::uint64_t{50}}) {
    for (ProcessId origin = 0; origin < 7; ++origin) {
      std::size_t acceptors = 0;
      for (ProcessId i = 0; i < 7; ++i) {
        for (const auto& d : net.delivered(i)) {
          if (d.origin == origin && d.tag == slot_tag) ++acceptors;
        }
      }
      EXPECT_TRUE(acceptors == 0 || acceptors == 7)
          << "correct-origin totality violated for origin " << origin;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdbAgreementProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace dex
