// Property tests of the legality criteria (§3.2): randomized searches for
// counterexamples to LT1/LT2/LA3/LA4/LU5 on both pairs — the empirical
// counterpart of the paper's Theorems 1 and 2 — plus checks that the checker
// itself can detect an illegal pair.
#include <gtest/gtest.h>

#include "consensus/condition/legality.hpp"

namespace dex {
namespace {

struct LegalityCase {
  std::string label;
  std::size_t n;
  std::size_t t;
  bool privileged;
};

class LegalityTest : public ::testing::TestWithParam<LegalityCase> {};

TEST_P(LegalityTest, NoViolationFound) {
  const auto& p = GetParam();
  std::shared_ptr<const ConditionPair> pair =
      p.privileged ? make_privileged_pair(p.n, p.t, 0)
                   : make_frequency_pair(p.n, p.t);
  LegalityCheckOptions opts;
  opts.samples_per_criterion = 3000;
  LegalityChecker checker(*pair, Rng(0xbeef + p.n), opts);
  const auto violation = checker.check_all();
  EXPECT_FALSE(violation.has_value())
      << violation->criterion << ": " << violation->detail;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, LegalityTest,
    ::testing::Values(LegalityCase{"freq_n7_t1", 7, 1, false},
                      LegalityCase{"freq_n13_t2", 13, 2, false},
                      LegalityCase{"freq_n19_t3", 19, 3, false},
                      LegalityCase{"freq_n25_t4", 25, 4, false},
                      LegalityCase{"prv_n6_t1", 6, 1, true},
                      LegalityCase{"prv_n11_t2", 11, 2, true},
                      LegalityCase{"prv_n16_t3", 16, 3, true},
                      LegalityCase{"prv_n21_t4", 21, 4, true}),
    [](const ::testing::TestParamInfo<LegalityCase>& info) {
      return info.param.label;
    });

// A deliberately broken pair: P1 accepts everything, so LA3 must fail —
// verifies the checker has teeth.
class BogusPair final : public ConditionPair {
 public:
  BogusPair(std::size_t n, std::size_t t) : ConditionPair(n, t) {
    std::vector<std::shared_ptr<const Condition>> cs;
    for (std::size_t k = 0; k <= t; ++k) {
      cs.push_back(std::make_shared<const FreqCondition>(0));
    }
    set_sequences(ConditionSequence(cs), ConditionSequence(cs));
  }
  bool p1(const View& j) const override { return j.known_count() > 0; }
  bool p2(const View& j) const override { return j.known_count() > 0; }
  Value f(const View& j) const override {
    const auto s = j.freq();
    return s.empty() ? 0 : *s.first();
  }
  std::size_t min_processes(std::size_t) const override { return 1; }
  std::string name() const override { return "bogus"; }
};

TEST(LegalityChecker, DetectsIllegalPair) {
  const BogusPair pair(13, 2);
  LegalityCheckOptions opts;
  opts.samples_per_criterion = 5000;
  LegalityChecker checker(pair, Rng(77), opts);
  // An everything-accepting P1 cannot satisfy agreement across divergent
  // views: LA3 (or LA4) must produce a counterexample.
  const bool found = checker.check_la3().has_value() ||
                     checker.check_la4().has_value();
  EXPECT_TRUE(found);
}

TEST(LegalityChecker, IndividualCriteriaPassOnFreqPair) {
  const FrequencyPair pair(13, 2);
  LegalityChecker checker(pair, Rng(123));
  EXPECT_FALSE(checker.check_lt1().has_value());
  EXPECT_FALSE(checker.check_lt2().has_value());
  EXPECT_FALSE(checker.check_la3().has_value());
  EXPECT_FALSE(checker.check_la4().has_value());
  EXPECT_FALSE(checker.check_lu5().has_value());
}

TEST(LegalityChecker, IndividualCriteriaPassOnPrvPair) {
  const PrivilegedPair pair(11, 2, 3);
  LegalityChecker checker(pair, Rng(321));
  EXPECT_FALSE(checker.check_lt1().has_value());
  EXPECT_FALSE(checker.check_lt2().has_value());
  EXPECT_FALSE(checker.check_la3().has_value());
  EXPECT_FALSE(checker.check_la4().has_value());
  EXPECT_FALSE(checker.check_lu5().has_value());
}

}  // namespace
}  // namespace dex
