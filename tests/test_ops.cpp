// Tests for the ops plane: HTTP parsing/rendering, AdminServer routing
// (socket-free via handle()), a live loopback server exercised through the
// shared http::fetch client, env-variable parsing, and the acceptance demo —
// one decide event joined across the JSON log line, the "sim"/"decide" trace
// instant and the dex_decide_latency_ms{path} metrics series.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "consensus/condition/input_gen.hpp"
#include "consensus/decision.hpp"
#include "harness/experiment.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "ops/admin.hpp"
#include "ops/http.hpp"
#include "trace/trace.hpp"

namespace dex::ops {
namespace {

using http::Request;
using http::RequestParser;
using http::Response;

// ---------------------------------------------------------------- HTTP layer

TEST(RequestParser, ParsesGetAcrossFeeds) {
  RequestParser p;
  EXPECT_EQ(p.feed("GET /metrics?x=1 HT"), RequestParser::State::kHeaders);
  EXPECT_EQ(p.feed("TP/1.0\r\nHost: localhost\r\nX-Thing: v\r\n"),
            RequestParser::State::kHeaders);
  EXPECT_EQ(p.feed("\r\n"), RequestParser::State::kDone);
  const Request& r = p.request();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/metrics?x=1");
  EXPECT_EQ(r.path(), "/metrics");
  EXPECT_EQ(r.version, "HTTP/1.0");
  ASSERT_TRUE(r.headers.count("host"));       // keys lower-cased
  ASSERT_TRUE(r.headers.count("x-thing"));
  EXPECT_EQ(r.headers.at("host"), "localhost");
}

TEST(RequestParser, ParsesPutBodyByContentLength) {
  RequestParser p;
  const auto st =
      p.feed("PUT /logs/level HTTP/1.1\r\nContent-Length: 5\r\n\r\ndebug");
  ASSERT_EQ(st, RequestParser::State::kDone);
  EXPECT_EQ(p.request().method, "PUT");
  EXPECT_EQ(p.request().body, "debug");
}

TEST(RequestParser, MalformedRequestLineIs400) {
  RequestParser p;
  EXPECT_EQ(p.feed("NONSENSE\r\n\r\n"), RequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 400);
}

TEST(RequestParser, OversizeRequestIs413) {
  RequestParser p(/*max_bytes=*/64);
  const std::string big(256, 'a');
  EXPECT_EQ(p.feed("GET /" + big + " HTTP/1.0\r\n"),
            RequestParser::State::kError);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpRender, CarriesStatusLengthAndClose) {
  Response resp;
  resp.status = 404;
  resp.body = "nope";
  const std::string wire = http::render(resp);
  EXPECT_NE(wire.find("HTTP/1.0 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 4), "nope");
}

// ------------------------------------------------------------ env contracts

TEST(AdminEnv, ParsePort) {
  EXPECT_EQ(parse_admin_port("8080"), std::uint16_t{8080});
  EXPECT_EQ(parse_admin_port("0"), std::uint16_t{0});
  EXPECT_EQ(parse_admin_port("65535"), std::uint16_t{65535});
  EXPECT_EQ(parse_admin_port("65536"), std::nullopt);
  EXPECT_EQ(parse_admin_port(""), std::nullopt);
  EXPECT_EQ(parse_admin_port("80x"), std::nullopt);
  EXPECT_EQ(parse_admin_port("-1"), std::nullopt);
}

TEST(AdminEnv, BadDexAdminWarnsOnceAndIsIgnored) {
  std::vector<std::string> lines;
  set_log_sink([&](std::string_view l) { lines.emplace_back(l); });
  ::setenv("DEX_ADMIN", "not-a-port", 1);
  EXPECT_EQ(admin_port_from_env(), std::nullopt);
  ::unsetenv("DEX_ADMIN");
  set_log_sink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("DEX_ADMIN"), std::string::npos);
  EXPECT_NE(lines[0].find("not-a-port"), std::string::npos);
}

// ------------------------------------------------- routing (no sockets)

Request get(const std::string& target) {
  Request r;
  r.method = "GET";
  r.target = target;
  r.version = "HTTP/1.0";
  return r;
}

TEST(AdminRouting, HealthVarsMetricsAndErrors) {
  metrics::MetricsRegistry reg;
  reg.counter("widget_total", {{"kind", "gear"}}).inc(3);
  AdminConfig cfg;
  cfg.registry = &reg;
  AdminServer srv(cfg);  // never started: handle() works socket-free

  EXPECT_EQ(srv.handle(get("/healthz")).status, 200);
  EXPECT_EQ(srv.handle(get("/healthz")).body, "ok\n");

  const Response metrics_resp = srv.handle(get("/metrics"));
  EXPECT_EQ(metrics_resp.status, 200);
  EXPECT_NE(metrics_resp.content_type.find("version=0.0.4"),
            std::string::npos);
  const auto flat = metrics::flatten_prometheus(metrics_resp.body);
  EXPECT_EQ(flat.at("widget_total{kind=\"gear\"}"), 3.0);
  EXPECT_EQ(flat.count("dex_build_info{rev=\"" + build_info().rev +
                       "\",version=\"" + build_info().version + "\"}"),
            1u);
  EXPECT_TRUE(flat.count("dex_uptime_seconds"));

  srv.set_var("answer", "42");
  const Response vars = srv.handle(get("/vars"));
  EXPECT_EQ(vars.status, 200);
  EXPECT_NE(vars.body.find("\"build\""), std::string::npos);
  EXPECT_NE(vars.body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(vars.body.find("\"answer\": 42"), std::string::npos);
  srv.register_var("answer", [] { return std::string("43"); });
  EXPECT_NE(srv.handle(get("/vars")).body.find("\"answer\": 43"),
            std::string::npos);  // provider overrides the static var

  EXPECT_EQ(srv.handle(get("/no/such")).status, 404);
  Request post = get("/metrics");
  post.method = "POST";
  const Response not_allowed = srv.handle(post);
  EXPECT_EQ(not_allowed.status, 405);
  EXPECT_TRUE(not_allowed.extra_headers.count("Allow"));
}

TEST(AdminRouting, ReadyzFollowsCallback) {
  bool ready = false;
  AdminConfig cfg;
  cfg.ready = [&] { return ready; };
  AdminServer srv(cfg);
  EXPECT_EQ(srv.handle(get("/readyz")).status, 503);
  ready = true;
  EXPECT_EQ(srv.handle(get("/readyz")).status, 200);
}

TEST(AdminRouting, LogLevelRoundTrip) {
  const LogLevel before = log_level();
  AdminServer srv(AdminConfig{});

  Request put = get("/logs/level");
  put.method = "PUT";
  put.body = "debug\n";  // trailing whitespace tolerated
  EXPECT_EQ(srv.handle(put).status, 200);
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  const Response now = srv.handle(get("/logs/level"));
  EXPECT_EQ(now.status, 200);
  EXPECT_NE(now.body.find("\"level\":\"DEBUG\""), std::string::npos);

  put.body = "{\"level\": \"warn\"}";  // JSON body form
  EXPECT_EQ(srv.handle(put).status, 200);
  EXPECT_EQ(log_level(), LogLevel::kWarn);

  put.body = "loudest";
  EXPECT_EQ(srv.handle(put).status, 400);
  EXPECT_EQ(log_level(), LogLevel::kWarn);  // unchanged on bad input

  set_log_level(before);
}

// ------------------------------------------------------------- live server

TEST(AdminServerLive, ServesOverLoopback) {
  metrics::MetricsRegistry reg;
  reg.counter("live_total").inc(7);
  AdminConfig cfg;
  cfg.registry = &reg;
  AdminServer srv(cfg);
  EXPECT_FALSE(srv.running());
  srv.start();
  ASSERT_TRUE(srv.running());
  ASSERT_NE(srv.port(), 0);  // ephemeral port resolved

  const auto health = http::fetch("127.0.0.1", srv.port(), "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  const auto scrape = http::fetch("localhost", srv.port(), "GET", "/metrics");
  ASSERT_TRUE(scrape.has_value());
  ASSERT_TRUE(scrape->ok());
  EXPECT_EQ(metrics::flatten_prometheus(scrape->body).at("live_total"), 7.0);

  const auto missing = http::fetch("127.0.0.1", srv.port(), "GET", "/gone");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  EXPECT_GE(srv.requests_served(), 3u);
  srv.stop();
  EXPECT_FALSE(srv.running());
}

TEST(AdminServerLive, ServesTraceSnapshots) {
  trace::Tracer::global().reset();
  trace::Tracer::global().set_level(trace::kOn);
  trace::instant("sim", "decide", {.proc = 1, .a = 9});
  trace::Tracer::global().set_level(trace::kOff);

  AdminServer srv(AdminConfig{});
  srv.start();
  const auto jsonl =
      http::fetch("127.0.0.1", srv.port(), "GET", "/trace/jsonl");
  ASSERT_TRUE(jsonl.has_value());
  ASSERT_TRUE(jsonl->ok());
  EXPECT_NE(jsonl->body.find("\"decide\""), std::string::npos);
  const auto chrome =
      http::fetch("127.0.0.1", srv.port(), "GET", "/trace/chrome");
  ASSERT_TRUE(chrome.has_value());
  ASSERT_TRUE(chrome->ok());
  EXPECT_NE(chrome->body.find("\"traceEvents\""), std::string::npos);
  srv.stop();
  trace::Tracer::global().reset();
}

// ------------------------------------- the three-surface correlation demo

/// Runs one unanimous experiment with JSON logs, trace capture and a metrics
/// registry, then joins a single decide across all three surfaces on the
/// shared (proc, instance, path) identity.
TEST(Correlation, DecideJoinsLogTraceAndMetrics) {
  std::vector<std::string> lines;
  const LogLevel level_before = log_level();
  const LogFormat format_before = log_format();
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kJson);
  set_log_sink([&](std::string_view l) { lines.emplace_back(l); });

  metrics::MetricsRegistry reg;
  harness::ExperimentConfig cfg;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(cfg.n, 7);
  cfg.seed = 11;
  cfg.capture_trace = true;
  cfg.metrics = &reg;
  const auto result = harness::run_experiment(cfg);

  set_log_sink(nullptr);
  set_log_format(format_before);
  set_log_level(level_before);
  ASSERT_TRUE(result.all_decided());

  // Surface 1: the JSON log line. Pick the first decide and read its
  // correlation fields.
  std::string decide_line;
  for (const auto& l : lines) {
    if (l.find("decided value=7") != std::string::npos) {
      decide_line = l;
      break;
    }
  }
  ASSERT_FALSE(decide_line.empty()) << "no decide log line captured";
  const auto extract_int = [&](const std::string& key) {
    const auto pos = decide_line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << key << " missing: " << decide_line;
    return std::atoll(decide_line.c_str() + pos + key.size() + 3);
  };
  const auto proc = static_cast<ProcessId>(extract_int("proc"));
  const auto instance = static_cast<InstanceId>(extract_int("instance_id"));
  const auto path_pos = decide_line.find("\"path\":\"");
  ASSERT_NE(path_pos, std::string::npos);
  const std::string path = decide_line.substr(
      path_pos + 8, decide_line.find('"', path_pos + 8) - (path_pos + 8));
  const std::string span_id = "p" + std::to_string(proc) + "/i" +
                              std::to_string(instance) + "/t0/instance";
  EXPECT_NE(decide_line.find("\"span_id\":\"" + span_id + "\""),
            std::string::npos);
  EXPECT_NE(decide_line.find("\"component\":\"sim\""), std::string::npos);

  // Surface 2: the trace. The same process has a "sim"/"decide" instant with
  // the same instance and path, and a "dex"/"instance" span the log line's
  // span_id names.
  bool trace_decide = false, trace_span = false;
  for (const auto& e : result.trace_events) {
    if (std::string_view(e.cat) == "sim" &&
        std::string_view(e.name) == "decide" && e.proc == proc &&
        e.instance == instance &&
        decision_path_metric_label(static_cast<DecisionPath>(e.b)) == path) {
      trace_decide = true;
    }
    if (std::string_view(e.cat) == "dex" &&
        std::string_view(e.name) == "instance" && e.proc == proc &&
        e.instance == instance && e.tag == 0) {
      trace_span = true;
    }
  }
  EXPECT_TRUE(trace_decide) << "no matching sim/decide trace instant";
  EXPECT_TRUE(trace_span) << "span_id " << span_id << " names no trace span";

  // Surface 3: the metrics series keyed by the same path label.
  const auto flat = metrics::flatten(reg.snapshot());
  const auto it =
      flat.find("dex_decide_latency_ms_count{path=\"" + path + "\"}");
  ASSERT_NE(it, flat.end());
  EXPECT_GE(it->second, 1.0);
}

}  // namespace
}  // namespace dex::ops
