// Tests for the DEX engine and stack (Figure 1): the one-step and two-step
// decision rules, the underlying-consensus handoff, Lemmas 4 and 5
// (adaptive fast termination), and the continuous re-evaluation that
// distinguishes DEX from BOSCO.
#include <gtest/gtest.h>

#include "consensus/condition/input_gen.hpp"
#include "consensus/dex/dex_stack.hpp"
#include "consensus/underlying/oracle.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"

namespace dex {
namespace {

using harness::ExperimentConfig;
using harness::FaultKind;
using harness::run_experiment;

// --- direct engine tests with an oracle underlying consensus ---

struct EngineFixture {
  static constexpr std::size_t kN = 13, kT = 2;
  Outbox outbox;
  IdbEngine idb{kN, kT, 0, 0, &outbox};
  std::shared_ptr<OracleHub> hub = std::make_shared<OracleHub>(kN - kT);
  OracleConsensus uc{0, hub};
  DexEngine engine{DexConfig{kN, kT, 0, 0}, make_frequency_pair(kN, kT), &idb,
                   &uc, &outbox};
};

TEST(DexEngine, ProposeSendsOnBothChannels) {
  EngineFixture fx;
  fx.engine.propose(5);
  const auto out = fx.outbox.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].msg.kind, MsgKind::kPlain);
  EXPECT_EQ(chan::channel(out[0].msg.tag), chan::kDexProposalPlain);
  EXPECT_EQ(out[1].msg.kind, MsgKind::kIdbInit);
  EXPECT_EQ(chan::channel(out[1].msg.tag), chan::kDexProposalIdb);
  // Own entries are set in both views.
  EXPECT_EQ(fx.engine.j1().get(0), 5);
  EXPECT_EQ(fx.engine.j2().get(0), 5);
}

TEST(DexEngine, OneStepDecisionAtLine8) {
  EngineFixture fx;
  fx.engine.propose(5);
  // n−t−1 = 10 more identical proposals: view reaches 11 known, margin 11 > 4t.
  for (ProcessId p = 1; p <= 10; ++p) fx.engine.on_plain_proposal(p, 5);
  ASSERT_TRUE(fx.engine.decision().has_value());
  EXPECT_EQ(fx.engine.decision()->path, DecisionPath::kOneStep);
  EXPECT_EQ(fx.engine.decision()->value, 5);
}

TEST(DexEngine, NoDecisionBelowQuorum) {
  EngineFixture fx;
  fx.engine.propose(5);
  for (ProcessId p = 1; p <= 9; ++p) fx.engine.on_plain_proposal(p, 5);
  // |J1| = 10 < n−t = 11: predicate must not even be consulted.
  EXPECT_FALSE(fx.engine.decision().has_value());
}

TEST(DexEngine, ContinuousReEvaluationBeyondQuorum) {
  // The DEX hallmark (§4): P1 keeps being re-checked as the view grows past
  // n−t. 9×5 + 2×3 at the quorum point fails P1 (margin 7 ≤ 8), but two more
  // 5s later it fires.
  EngineFixture fx;
  fx.engine.propose(5);
  for (ProcessId p = 1; p <= 8; ++p) fx.engine.on_plain_proposal(p, 5);
  fx.engine.on_plain_proposal(9, 3);
  fx.engine.on_plain_proposal(10, 3);  // |J1| = 11 = n−t, margin 9−2=7 ≤ 8
  EXPECT_FALSE(fx.engine.decision().has_value());
  fx.engine.on_plain_proposal(11, 5);  // margin 10−2=8 ≤ 8
  EXPECT_FALSE(fx.engine.decision().has_value());
  fx.engine.on_plain_proposal(12, 5);  // margin 11−2=9 > 8 → decide
  ASSERT_TRUE(fx.engine.decision().has_value());
  EXPECT_EQ(fx.engine.decision()->path, DecisionPath::kOneStep);
}

TEST(DexEngine, FirstProposalPerSenderWins) {
  EngineFixture fx;
  fx.engine.propose(5);
  fx.engine.on_plain_proposal(1, 7);
  fx.engine.on_plain_proposal(1, 9);  // equivocating rewrite ignored
  EXPECT_EQ(fx.engine.j1().get(1), 7);
}

TEST(DexEngine, UcProposalAtQuorumOnIdbChannel) {
  EngineFixture fx;
  fx.engine.propose(5);
  EXPECT_FALSE(fx.engine.has_proposed_to_uc());
  for (ProcessId p = 1; p <= 10; ++p) fx.engine.on_idb_proposal(p, 5);
  // |J2| = 11 = n−t → UC_propose(F(J2)) exactly once (line 12-14).
  EXPECT_TRUE(fx.engine.has_proposed_to_uc());
}

TEST(DexEngine, TwoStepDecisionAtLine17) {
  EngineFixture fx;
  fx.engine.propose(5);
  // 8×5 + 3×3: margin 9−3... build margin exactly 2t+1 = 5: 8×5, 3×3 →
  // margin 5 > 4 = 2t ⇒ P2 fires; margin ≤ 4t ⇒ P1 would not.
  for (ProcessId p = 1; p <= 7; ++p) fx.engine.on_idb_proposal(p, 5);
  for (ProcessId p = 8; p <= 10; ++p) fx.engine.on_idb_proposal(p, 3);
  ASSERT_TRUE(fx.engine.decision().has_value());
  EXPECT_EQ(fx.engine.decision()->path, DecisionPath::kTwoStep);
  EXPECT_EQ(fx.engine.decision()->value, 5);
}

TEST(DexEngine, UcDecisionAdoptedAtLine21) {
  EngineFixture fx;
  fx.engine.propose(5);
  fx.engine.on_uc_decided(9, 3);
  ASSERT_TRUE(fx.engine.decision().has_value());
  EXPECT_EQ(fx.engine.decision()->path, DecisionPath::kUnderlying);
  EXPECT_EQ(fx.engine.decision()->value, 9);
  EXPECT_EQ(fx.engine.decision()->uc_rounds, 3u);
}

TEST(DexEngine, DecisionIsSticky) {
  EngineFixture fx;
  fx.engine.propose(5);
  for (ProcessId p = 1; p <= 10; ++p) fx.engine.on_plain_proposal(p, 5);
  ASSERT_TRUE(fx.engine.decision().has_value());
  const Decision first = *fx.engine.decision();
  fx.engine.on_uc_decided(9, 1);  // later UC decision must not overwrite
  EXPECT_EQ(*fx.engine.decision(), first);
}

TEST(DexEngine, SingleShotAblationIgnoresLateArrivals) {
  // Same schedule as ContinuousReEvaluationBeyondQuorum, but with the
  // re-evaluation ablated: the engine must stay undecided forever.
  Outbox outbox;
  IdbEngine idb(13, 2, 0, 0, &outbox);
  auto hub = std::make_shared<OracleHub>(11);
  OracleConsensus uc(0, hub);
  DexConfig cfg{13, 2, 0, 0};
  cfg.continuous_reevaluation = false;
  DexEngine engine(cfg, make_frequency_pair(13, 2), &idb, &uc, &outbox);

  engine.propose(5);
  for (ProcessId p = 1; p <= 8; ++p) engine.on_plain_proposal(p, 5);
  engine.on_plain_proposal(9, 3);
  engine.on_plain_proposal(10, 3);  // evaluation point: margin 7 <= 8 → no
  engine.on_plain_proposal(11, 5);
  engine.on_plain_proposal(12, 5);  // would decide with re-evaluation
  EXPECT_FALSE(engine.decision().has_value());
}

TEST(DexEngine, TwoStepAblationStillProposesToUc) {
  Outbox outbox;
  IdbEngine idb(13, 2, 0, 0, &outbox);
  auto hub = std::make_shared<OracleHub>(11);
  OracleConsensus uc(0, hub);
  DexConfig cfg{13, 2, 0, 0};
  cfg.enable_two_step = false;
  DexEngine engine(cfg, make_frequency_pair(13, 2), &idb, &uc, &outbox);

  engine.propose(5);
  for (ProcessId p = 1; p <= 10; ++p) engine.on_idb_proposal(p, 5);
  // P2 would fire (margin 11 > 4) but the scheme is disabled; the UC proposal
  // (line 12-14) must still have happened.
  EXPECT_FALSE(engine.decision().has_value());
  EXPECT_TRUE(engine.has_proposed_to_uc());
}

TEST(DexEngine, RejectsMismatchedPair) {
  Outbox ob;
  IdbEngine idb(13, 2, 0, 0, &ob);
  auto hub = std::make_shared<OracleHub>(11);
  OracleConsensus uc(0, hub);
  // Pair built for (19, 3) against an engine config of (13, 2).
  EXPECT_THROW(DexEngine(DexConfig{13, 2, 0, 0}, make_frequency_pair(19, 3), &idb,
                         &uc, &ob),
               ContractViolation);
}

// --- end-to-end stack tests over the simulator ---

TEST(DexStack, UnanimousNoFaultsDecidesOneStepEverywhere) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 7);
  cfg.seed = 3;
  // A constant delay keeps the physical arrival order aligned with logical
  // steps: all plain proposals land before any 2-hop IDB delivery, so the
  // one-step rule fires first.
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.all_one_step());
  EXPECT_EQ(r.decided_value(), 7);
  // One-step decisions are logical step 1.
  for (const auto& rec : r.stats.decisions) {
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->steps, 1u);
  }
}

// Lemma 4: input in C1_k + at most k Byzantine ⇒ one-step decision.
TEST(DexStack, Lemma4OneStepWithinConditionBudget) {
  // n=13, t=2: C1_1 = margin > 10. Unanimous margin 13 covers k ≤ 2, but use
  // margin 11 (∈ C1_1, ∉ C1_2) with exactly 1 silent fault.
  Rng rng(9);
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = margin_input(13, 11, 5, rng);
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  cfg.faults.count = 1;
  cfg.faults.kind = FaultKind::kSilent;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.all_one_step()) << "seed " << seed;
  }
}

// Lemma 5: input in C2_k + at most k Byzantine ⇒ at most two steps.
TEST(DexStack, Lemma5TwoStepWithinConditionBudget) {
  // C2_2 = margin > 8; margin 9 with 2 silent faults ⇒ two-step guaranteed
  // (one-step not: C1 needs margin > 8+... margin 9 ≤ 4t+2k for k=2).
  Rng rng(11);
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = margin_input(13, 9, 5, rng);
  cfg.faults.count = 2;
  cfg.faults.kind = FaultKind::kSilent;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.all_within_two_steps()) << "seed " << seed;
  }
}

TEST(DexStack, OutOfConditionFallsBackAndStillAgrees) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = split_input(13, 1, 7, 2);  // margin 1: far out of C2_0
  cfg.seed = 21;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.agreement());
}

TEST(DexStack, PrivilegedPairFastPathOnPrivilegedValue) {
  const Value m = 42;
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexPrv;
  cfg.privileged = m;
  cfg.n = 11;
  cfg.t = 2;
  cfg.input = unanimous_input(11, m);
  cfg.seed = 4;
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.all_one_step());
  EXPECT_EQ(r.decided_value(), m);
}

TEST(DexStack, PrivilegedPairNoFastPathOnUnprivilegedUnanimity) {
  // All correct propose a NON-privileged value: #m(J) = 0, so neither P1 nor
  // P2 can fire — the complementary weakness of P_prv vs P_freq. Agreement
  // and unanimity must still hold via the fallback.
  const Value m = 42;
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexPrv;
  cfg.privileged = m;
  cfg.n = 11;
  cfg.t = 2;
  cfg.input = unanimous_input(11, 7);
  cfg.seed = 6;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_EQ(r.one_step, 0u);
  EXPECT_EQ(r.two_step, 0u);
  EXPECT_EQ(r.decided_value(), 7);  // unanimity through the UC
}

// The abstract's headline trade: "DEX takes four steps at worst in
// well-behaved runs while existing one-step algorithms take only three."
// With an idealized zero-degrading underlying consensus (2 steps), a
// fast-path-free input costs DEX 2 (Id-broadcast) + 2 (UC) = 4 steps and
// BOSCO 1 (vote) + 2 (UC) = 3 steps.
TEST(DexStack, WorstCaseFourStepsInWellBehavedRuns) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = split_input(13, 1, 7, 2);  // margin 1: no fast path anywhere
  cfg.seed = 17;
  cfg.use_oracle_uc = true;
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.agreement());
  for (const auto& rec : r.stats.decisions) {
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->decision.path, DecisionPath::kUnderlying);
    EXPECT_EQ(rec->steps, 4u);
  }

  cfg.algorithm = Algorithm::kBoscoWeak;
  cfg.n = 11;
  cfg.input = split_input(11, 1, 6, 2);
  const auto b = run_experiment(cfg);
  EXPECT_TRUE(b.all_decided());
  for (const auto& rec : b.stats.decisions) {
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->steps, 3u);
  }
}

TEST(DexStack, HaltsAfterDecisionEverywhere) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 1);
  cfg.seed = 8;
  sim::SimOptions unused;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  // The run ends because every stack halted (UC included), not because the
  // event queue starved.
  EXPECT_FALSE(r.stats.hit_event_limit);
}

}  // namespace
}  // namespace dex
