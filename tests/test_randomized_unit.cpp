// White-box unit tests of the RandomizedConsensus state machine: phase
// thresholds, candidate selection, ⊥-vote handling, decide/adopt/coin rules,
// DECIDE relay and halting — driven by hand-crafted IDB deliveries, no
// network.
#include <gtest/gtest.h>

#include "consensus/underlying/randomized.hpp"

namespace dex {
namespace {

constexpr std::size_t kN = 11, kT = 2;  // quorum n-t = 9, decide c >= n-2t = 7

struct UcFixture {
  Outbox outbox;
  IdbEngine idb{kN, kT, 0, 0, &outbox};
  RandomizedConsensus uc;

  UcFixture()
      : uc(RandomizedConsensusConfig{kN, kT, 0, 0, 100},
           make_common_coin(42, kN), &idb, &outbox) {}

  /// Simulates an Id-Receive of a UC phase message from `sender`.
  void deliver(ProcessId sender, std::uint32_t round, std::uint8_t phase,
               std::optional<Value> v) {
    IdbDelivery d;
    d.origin = sender;
    d.tag = chan::uc_phase_tag(round, phase);
    d.payload = UcPhasePayload{round, phase, v.has_value(), v.value_or(0)}.to_bytes();
    uc.on_idb(d);
  }

  /// Collects the UcPhasePayloads this process Id-sent since last drain.
  std::vector<UcPhasePayload> sent_phases() {
    std::vector<UcPhasePayload> out;
    for (const auto& o : outbox.drain()) {
      if (o.msg.kind == MsgKind::kIdbInit &&
          chan::channel(o.msg.tag) == chan::kUcPhase) {
        out.push_back(UcPhasePayload::from_bytes(o.msg.payload));
      }
    }
    return out;
  }

  void deliver_decide(ProcessId src, Value v) {
    Message m;
    m.kind = MsgKind::kPlain;
    m.tag = chan::kUcDecide;
    m.payload = ValuePayload{v}.to_bytes();
    uc.on_plain(src, m);
  }
};

TEST(RandomizedUnit, ProposeSendsRoundOneEst) {
  UcFixture fx;
  fx.uc.propose(5);
  const auto sent = fx.sent_phases();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].round, 1u);
  EXPECT_EQ(sent[0].phase, 1);
  EXPECT_TRUE(sent[0].has_value);
  EXPECT_EQ(sent[0].v, 5);
}

TEST(RandomizedUnit, NoAuxBelowQuorum) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  for (ProcessId p = 0; p < 8; ++p) fx.deliver(p, 1, 1, 5);  // 8 < 9
  EXPECT_TRUE(fx.sent_phases().empty());
}

TEST(RandomizedUnit, AuxCarriesCandidateWhenMajority) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  // 9 ESTs, 8×5 and 1×3: 8 > (n+t)/2 = 6.5 → candidate 5.
  for (ProcessId p = 0; p < 8; ++p) fx.deliver(p, 1, 1, 5);
  fx.deliver(8, 1, 1, 3);
  const auto sent = fx.sent_phases();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].phase, 2);
  EXPECT_TRUE(sent[0].has_value);
  EXPECT_EQ(sent[0].v, 5);
}

TEST(RandomizedUnit, AuxIsBottomWithoutMajority) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  // 5×5 + 4×3: no value above 6.5 → AUX ⊥.
  for (ProcessId p = 0; p < 5; ++p) fx.deliver(p, 1, 1, 5);
  for (ProcessId p = 5; p < 9; ++p) fx.deliver(p, 1, 1, 3);
  const auto sent = fx.sent_phases();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].phase, 2);
  EXPECT_FALSE(sent[0].has_value);
}

TEST(RandomizedUnit, DecidesOnStrongAuxSupport) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  for (ProcessId p = 0; p < 9; ++p) fx.deliver(p, 1, 1, 5);
  (void)fx.sent_phases();
  // 9 AUX for 5 >= n-2t = 7 → decide in round 1.
  for (ProcessId p = 0; p < 9; ++p) fx.deliver(p, 1, 2, 5);
  ASSERT_TRUE(fx.uc.decision().has_value());
  EXPECT_EQ(*fx.uc.decision(), 5);
  EXPECT_EQ(fx.uc.rounds_used(), 1u);
  // A DECIDE broadcast went out.
  bool saw_decide = false;
  for (const auto& o : fx.outbox.drain()) {
    if (o.msg.kind == MsgKind::kPlain && chan::channel(o.msg.tag) == chan::kUcDecide) {
      saw_decide = true;
      EXPECT_EQ(ValuePayload::from_bytes(o.msg.payload).v, 5);
    }
  }
  EXPECT_TRUE(saw_decide);
}

TEST(RandomizedUnit, AdoptsCandidateOnWeakSupportAndContinues) {
  UcFixture fx;
  fx.uc.propose(3);
  (void)fx.sent_phases();
  for (ProcessId p = 0; p < 8; ++p) fx.deliver(p, 1, 1, 5);
  fx.deliver(8, 1, 1, 3);
  (void)fx.sent_phases();
  // AUX: 3×5 (>= t+1 = 3 but < 7) + 6×⊥ → adopt 5, move to round 2.
  for (ProcessId p = 0; p < 3; ++p) fx.deliver(p, 1, 2, 5);
  for (ProcessId p = 3; p < 9; ++p) fx.deliver(p, 1, 2, std::nullopt);
  EXPECT_FALSE(fx.uc.decision().has_value());
  const auto sent = fx.sent_phases();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].round, 2u);
  EXPECT_EQ(sent[0].phase, 1);
  EXPECT_EQ(sent[0].v, 5);  // adopted the candidate, not its own 3
  EXPECT_EQ(fx.uc.current_round(), 2u);
}

TEST(RandomizedUnit, CoinAdoptionUsesRoundOneEstOfIndex) {
  UcFixture fx;
  fx.uc.propose(3);
  (void)fx.sent_phases();
  // Distinct ESTs per sender so the coin's choice is identifiable.
  for (ProcessId p = 0; p < 9; ++p) {
    fx.deliver(p, 1, 1, 100 + p);
  }
  (void)fx.sent_phases();
  // All-⊥ AUX round → est := round-1 EST of the coin index (if held).
  for (ProcessId p = 0; p < 9; ++p) fx.deliver(p, 1, 2, std::nullopt);
  const auto sent = fx.sent_phases();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].round, 2u);
  const auto idx = make_common_coin(42, kN)->pick_index(0, 1);
  if (idx < 9) {
    EXPECT_EQ(sent[0].v, 100 + idx);
  } else {
    EXPECT_EQ(sent[0].v, 3);  // coin index not held → keep own estimate
  }
}

TEST(RandomizedUnit, BufferedFutureRoundsApplyAfterCatchUp) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  // Round-2 traffic arrives before round 1 completes: must be buffered.
  for (ProcessId p = 0; p < 9; ++p) fx.deliver(p, 2, 1, 7);
  EXPECT_TRUE(fx.sent_phases().empty());
  EXPECT_EQ(fx.uc.current_round(), 1u);
  // Now complete round 1 with weak support for 7; the buffered round-2 view
  // immediately carries the engine through round 2's phase 1.
  for (ProcessId p = 0; p < 9; ++p) fx.deliver(p, 1, 1, 7);
  std::vector<UcPhasePayload> sent = fx.sent_phases();
  ASSERT_EQ(sent.size(), 1u);  // AUX for round 1
  for (ProcessId p = 0; p < 9; ++p) fx.deliver(p, 1, 2, 7);
  // Decides in round 1 AND has already processed round 2 phase 1.
  ASSERT_TRUE(fx.uc.decision().has_value());
  EXPECT_EQ(*fx.uc.decision(), 7);
}

TEST(RandomizedUnit, MalformedAndMismatchedPayloadsIgnored) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  // Tag/payload mismatch.
  IdbDelivery d;
  d.origin = 1;
  d.tag = chan::uc_phase_tag(1, 1);
  d.payload = UcPhasePayload{2, 1, true, 9}.to_bytes();  // claims round 2
  fx.uc.on_idb(d);
  // EST with ⊥ (only AUX may be ⊥).
  d.payload = UcPhasePayload{1, 1, false, 0}.to_bytes();
  fx.uc.on_idb(d);
  // Garbage bytes.
  d.payload.assign(3, std::byte{0x7f});
  fx.uc.on_idb(d);
  // Absurd round number.
  d.tag = chan::uc_phase_tag(5000, 1);
  d.payload = UcPhasePayload{5000, 1, true, 9}.to_bytes();
  fx.uc.on_idb(d);
  // None of it counts toward the quorum.
  for (ProcessId p = 0; p < 8; ++p) fx.deliver(p, 1, 1, 5);
  EXPECT_TRUE(fx.sent_phases().empty());  // still 8 valid < 9
}

TEST(RandomizedUnit, FastForwardOnTPlusOneDecides) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  fx.deliver_decide(3, 9);
  fx.deliver_decide(4, 9);
  EXPECT_FALSE(fx.uc.decision().has_value());  // 2 = t < t+1
  fx.deliver_decide(5, 9);
  ASSERT_TRUE(fx.uc.decision().has_value());
  EXPECT_EQ(*fx.uc.decision(), 9);
}

TEST(RandomizedUnit, MixedValueDecidesDoNotFastForward) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  fx.deliver_decide(1, 7);
  fx.deliver_decide(2, 8);
  fx.deliver_decide(3, 9);
  EXPECT_FALSE(fx.uc.decision().has_value());
}

TEST(RandomizedUnit, HaltsAfterQuorumOfMatchingDecides) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  for (ProcessId p = 1; p <= 3; ++p) fx.deliver_decide(p, 9);
  ASSERT_TRUE(fx.uc.decision().has_value());
  EXPECT_FALSE(fx.uc.halted());
  for (ProcessId p = 4; p <= 9; ++p) fx.deliver_decide(p, 9);
  EXPECT_TRUE(fx.uc.halted());  // 9 = n-t matching DECIDEs
}

TEST(RandomizedUnit, DuplicateDecideSendersCountOnce) {
  UcFixture fx;
  fx.uc.propose(5);
  (void)fx.sent_phases();
  fx.deliver_decide(1, 9);
  fx.deliver_decide(1, 9);
  fx.deliver_decide(1, 9);
  EXPECT_FALSE(fx.uc.decision().has_value());
}

TEST(RandomizedUnit, GivesUpAtMaxRoundsWithoutDeciding) {
  Outbox outbox;
  IdbEngine idb(kN, kT, 0, 0, &outbox);
  RandomizedConsensus uc(RandomizedConsensusConfig{kN, kT, 0, 0, /*max_rounds=*/2},
                         make_common_coin(1, kN), &idb, &outbox);
  uc.propose(1);
  // Drive two full rounds with hopeless splits and ⊥ AUX.
  for (std::uint32_t r = 1; r <= 2; ++r) {
    for (ProcessId p = 0; p < 9; ++p) {
      IdbDelivery d;
      d.origin = p;
      d.tag = chan::uc_phase_tag(r, 1);
      d.payload = UcPhasePayload{r, 1, true, static_cast<Value>(p)}.to_bytes();
      uc.on_idb(d);
    }
    for (ProcessId p = 0; p < 9; ++p) {
      IdbDelivery d;
      d.origin = p;
      d.tag = chan::uc_phase_tag(r, 2);
      d.payload = UcPhasePayload{r, 2, false, 0}.to_bytes();
      uc.on_idb(d);
    }
  }
  EXPECT_TRUE(uc.gave_up());
  EXPECT_FALSE(uc.decision().has_value());  // never decides wrongly
}

}  // namespace
}  // namespace dex
