// Unit and integration tests for the metrics subsystem: instrument
// semantics, label handling, snapshot merge, exporter golden strings, the
// JSON/Prometheus round-trip contract, and agreement between registry counts
// and the simulator's trace for a seeded run.
#include <gtest/gtest.h>

#include <string>

#include "common/assert.hpp"
#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "sim/delay_model.hpp"
#include "sim/trace.hpp"

namespace dex::metrics {
namespace {

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddRead) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(7.0);  // last writer wins over accumulated adds
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(HistogramMetricTest, ObserveAndSnapshot) {
  HistogramMetric h;
  h.reserve(3);
  h.observe(1.0);
  h.observe(2.0);
  h.observe(3.0);
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap.sum(), 6.0);
}

TEST(LabelKey, CanonicalSortedForm) {
  EXPECT_EQ(label_key({}), "");
  EXPECT_EQ(label_key({{"b", "2"}, {"a", "1"}}), "a=1,b=2");
}

TEST(Registry, SameSeriesResolvesToSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", {{"k", "v"}});
  Counter& b = reg.counter("x_total", {{"k", "v"}});
  Counter& other = reg.counter("x_total", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Registry, NameBoundToOneKind) {
  MetricsRegistry reg;
  reg.counter("x_total");
  EXPECT_THROW(reg.gauge("x_total"), ContractViolation);
  EXPECT_THROW(reg.histogram("x_total", {{"k", "v"}}), ContractViolation);
}

TEST(Registry, SnapshotSortedByNameThenLabels) {
  MetricsRegistry reg;
  reg.counter("b_total").inc(2);
  reg.counter("a_total", {{"p", "1"}}).inc(1);
  reg.counter("a_total", {{"p", "0"}}).inc(1);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples().size(), 3u);
  EXPECT_EQ(snap.samples()[0].name, "a_total");
  EXPECT_EQ(snap.samples()[0].labels.at("p"), "0");
  EXPECT_EQ(snap.samples()[1].labels.at("p"), "1");
  EXPECT_EQ(snap.samples()[2].name, "b_total");
}

TEST(Scope, DisabledScopeResolvesNullAndHelpersNoOp) {
  const MetricsScope scope;
  EXPECT_FALSE(scope.enabled());
  Counter* c = scope.counter("x_total");
  Gauge* g = scope.gauge("y");
  HistogramMetric* h = scope.histogram("z");
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(g, nullptr);
  EXPECT_EQ(h, nullptr);
  inc(c);          // must not crash
  set(g, 1.0);     // must not crash
  observe(h, 1.0); // must not crash
}

TEST(Scope, InheritsAndMergesLabels) {
  MetricsRegistry reg;
  const MetricsScope root(&reg, {{"process", "p0"}});
  const MetricsScope child = root.with({{"instance", "7"}});
  child.counter("x_total", {{"extra", "e"}})->inc();
  // Extra labels win over inherited ones on collision.
  root.with({{"process", "override"}}).counter("y_total")->inc();
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* x = snap.find(
      "x_total", {{"process", "p0"}, {"instance", "7"}, {"extra", "e"}});
  ASSERT_NE(x, nullptr);
  EXPECT_DOUBLE_EQ(x->value, 1.0);
  EXPECT_NE(snap.find("y_total", {{"process", "override"}}), nullptr);
}

TEST(Snapshot, MergeAddsCountersOverwritesGaugesConcatenatesHistograms) {
  MetricsRegistry a, b;
  a.counter("c_total").inc(2);
  b.counter("c_total").inc(3);
  b.counter("only_b_total").inc(1);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h").observe(1.0);
  b.histogram("h").observe(3.0);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_DOUBLE_EQ(merged.value("c_total"), 5.0);
  EXPECT_DOUBLE_EQ(merged.value("only_b_total"), 1.0);
  EXPECT_DOUBLE_EQ(merged.value("g"), 9.0);  // last writer
  const Histogram* h = merged.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->mean(), 2.0);
}

TEST(Snapshot, CounterTotalAggregatesAcrossLabels) {
  MetricsRegistry reg;
  reg.counter("d_total", {{"process", "p0"}, {"path", "one_step"}}).inc(2);
  reg.counter("d_total", {{"process", "p1"}, {"path", "one_step"}}).inc(3);
  reg.counter("d_total", {{"process", "p0"}, {"path", "two_step"}}).inc(7);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_total("d_total"), 12.0);
  EXPECT_DOUBLE_EQ(snap.counter_total("d_total", {{"path", "one_step"}}), 5.0);
  EXPECT_DOUBLE_EQ(snap.counter_total("d_total", {{"process", "p0"}}), 9.0);
  EXPECT_DOUBLE_EQ(snap.counter_total("absent_total"), 0.0);
}

TEST(Export, JsonGoldenString) {
  MetricsRegistry reg;
  reg.counter("a_total", {{"k", "v"}}).inc(2);
  reg.gauge("g").set(1.5);
  const std::string json = to_json(reg.snapshot());
  const std::string expected =
      "{\n"
      "  \"schema\": \"dex-metrics/v1\",\n"
      "  \"metrics\": [\n"
      "    {\"name\":\"a_total\",\"type\":\"counter\",\"labels\":{\"k\":\"v\"},"
      "\"value\":2},\n"
      "    {\"name\":\"g\",\"type\":\"gauge\",\"labels\":{},\"value\":1.5}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(Export, PrometheusGoldenString) {
  MetricsRegistry reg;
  reg.counter("a_total", {{"k", "v"}}).inc(2);
  reg.counter("a_total", {{"k", "w"}}).inc(3);
  auto& h = reg.histogram("lat_ms");
  h.observe(1.0);
  h.observe(2.0);
  const std::string text = to_prometheus(reg.snapshot());
  const std::string expected =
      "# TYPE a_total counter\n"
      "a_total{k=\"v\"} 2\n"
      "a_total{k=\"w\"} 3\n"
      "# TYPE lat_ms summary\n"
      "lat_ms{quantile=\"0.5\"} 2\n"
      "lat_ms{quantile=\"0.9\"} 2\n"
      "lat_ms{quantile=\"0.99\"} 2\n"
      "lat_ms_sum 3\n"
      "lat_ms_count 2\n";
  EXPECT_EQ(text, expected);
}

TEST(Export, EmptyHistogramExportsCountAndSumOnly) {
  MetricsRegistry reg;
  reg.histogram("empty_ms");
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_EQ(text,
            "# TYPE empty_ms summary\n"
            "empty_ms_sum 0\n"
            "empty_ms_count 0\n");
}

TEST(Export, RoundTripFlattensIdentically) {
  MetricsRegistry reg;
  reg.counter("msgs_total", {{"msg_kind", "plain"}, {"process", "p0"}}).inc(17);
  reg.gauge("end_ms").set(12.34375);  // exact in binary; survives %.17g
  auto& h = reg.histogram("lat_ms", {{"process", "p0"}});
  h.observe(0.125);
  h.observe(2.5);
  h.observe(100.0);
  const MetricsSnapshot snap = reg.snapshot();

  const auto direct = flatten(snap);
  const auto via_json = flatten_json(to_json(snap));
  const auto via_prom = flatten_prometheus(to_prometheus(snap));
  EXPECT_EQ(direct, via_json);
  EXPECT_EQ(direct, via_prom);
  EXPECT_DOUBLE_EQ(
      direct.at("msgs_total{msg_kind=\"plain\",process=\"p0\"}"), 17.0);
  EXPECT_DOUBLE_EQ(direct.at("lat_ms_count{process=\"p0\"}"), 3.0);
}

TEST(Export, HostileLabelValuesRoundTrip) {
  // Label values may carry arbitrary bytes; the exporters must escape them
  // so both text formats parse back to the same flat map.
  MetricsRegistry reg;
  reg.counter("evil_total", {{"v", "a\\b\"c\nd\te"}}).inc(1);
  reg.counter("evil_total", {{"v", "trailing\\"}}).inc(2);
  reg.gauge("evil_gauge", {{"v", "\"\"quoted\"\""}}).set(3.0);
  const MetricsSnapshot snap = reg.snapshot();

  const auto direct = flatten(snap);
  EXPECT_EQ(direct, flatten_json(to_json(snap)));
  EXPECT_EQ(direct, flatten_prometheus(to_prometheus(snap)));
  EXPECT_EQ(direct.size(), 3u);

  // The Prometheus text itself stays one-series-per-line: escaping leaves no
  // raw newline or unescaped quote inside a label value.
  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("a\\\\b\\\"c\\nd"), std::string::npos);
  EXPECT_EQ(prom.find("c\nd"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integration: the registry and the trace recorder must agree on a seeded run.
// ---------------------------------------------------------------------------

harness::ExperimentConfig seeded_config(std::size_t faults,
                                        MetricsRegistry* reg,
                                        sim::TraceRecorder* trace) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  Rng rng(0x5eed);
  cfg.input = margin_input(cfg.n, 4 * cfg.t + 1, 0, rng);
  cfg.faults.count = faults;
  cfg.faults.kind = harness::FaultKind::kSilent;
  cfg.seed = 99;
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  cfg.metrics = reg;
  cfg.trace = trace;
  return cfg;
}

TEST(Integration, RegistryDecisionCountsMatchTrace) {
  MetricsRegistry reg;
  sim::TraceRecorder trace;
  const auto r = harness::run_experiment(seeded_config(0, &reg, &trace));
  ASSERT_TRUE(r.all_decided());

  const MetricsSnapshot snap = reg.snapshot();
  const double sim_decisions = snap.counter_total("sim_decisions_total");
  const double dex_decisions = snap.counter_total("dex_decisions_total");
  EXPECT_EQ(static_cast<std::size_t>(sim_decisions),
            trace.count(sim::TraceKind::kDecide));
  // Every correct process runs one DexEngine, so the per-process engine
  // counters sum to the simulator's decision count.
  EXPECT_DOUBLE_EQ(dex_decisions, sim_decisions);
  // Packet counters see exactly what the trace saw delivered.
  EXPECT_EQ(static_cast<std::size_t>(snap.counter_total("sim_packets_total")),
            trace.count(sim::TraceKind::kDeliver));
}

TEST(Integration, OneStepFractionDegradesWithFaults) {
  // The paper's adaptiveness claim, read purely from exported metrics: with a
  // 4t+1 margin every decision is one-step at f=0, and the one-step fraction
  // at f=0 is at least the fraction at f=t.
  auto fraction = [](std::size_t faults) {
    MetricsRegistry reg;
    const auto r =
        harness::run_experiment(seeded_config(faults, &reg, nullptr));
    EXPECT_TRUE(r.agreement());
    const MetricsSnapshot snap = reg.snapshot();
    const double total = snap.counter_total("dex_decisions_total");
    EXPECT_GT(total, 0.0);
    return snap.counter_total("dex_decisions_total",
                              {{"path", "one_step"}}) / total;
  };
  const double at_zero = fraction(0);
  const double at_t = fraction(2);
  EXPECT_DOUBLE_EQ(at_zero, 1.0);
  EXPECT_GE(at_zero, at_t);
}

TEST(Integration, IdbCountersObeyProtocolShape) {
  MetricsRegistry reg;
  const auto r = harness::run_experiment(seeded_config(0, &reg, nullptr));
  ASSERT_TRUE(r.all_decided());
  const MetricsSnapshot snap = reg.snapshot();
  // Each of the 13 correct processes Id-Sends its DEX proposal once; the
  // underlying consensus rides the same IDB channel with per-round tags, so
  // n is a floor, not an exact count.
  const double inits = snap.counter_total("idb_inits_total");
  EXPECT_GE(inits, 13.0);
  // With reliable links every correct process echoes every origin's
  // proposal, so the proposal round alone yields n^2 echoes.
  const double echoes = snap.counter_total("idb_echoes_total");
  EXPECT_GE(echoes, 13.0 * 13.0);
  // Acceptance happens at most once per (origin, tag) per process, and every
  // echo belongs to some slot that at most n processes echo.
  EXPECT_LE(snap.counter_total("idb_accepts_total"), echoes);
}

}  // namespace
}  // namespace dex::metrics
