// Tests for the underlying consensus primitives: the randomized Ben-Or-style
// protocol over IDB (Termination, Agreement, Unanimity — §2.2's contract) and
// the oracle test double.
#include <gtest/gtest.h>

#include "consensus/condition/input_gen.hpp"
#include "consensus/factory.hpp"
#include "consensus/underlying/oracle.hpp"
#include "harness/experiment.hpp"

namespace dex {
namespace {

using harness::ExperimentConfig;
using harness::FaultKind;
using harness::run_experiment;

ExperimentConfig base_config(std::size_t n, std::size_t t) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kUnderlyingOnly;
  cfg.n = n;
  cfg.t = t;
  return cfg;
}

TEST(OracleHub, FixesMostFrequentProposal) {
  OracleHub hub(3);
  std::vector<Value> seen;
  hub.on_decision([&](Value v) { seen.push_back(v); });
  hub.submit(0, 5);
  hub.submit(1, 7);
  EXPECT_FALSE(hub.fixed().has_value());
  hub.submit(2, 5);
  ASSERT_TRUE(hub.fixed().has_value());
  EXPECT_EQ(*hub.fixed(), 5);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 5);
  // Further submissions are ignored.
  hub.submit(3, 7);
  EXPECT_EQ(*hub.fixed(), 5);
}

TEST(OracleHub, DuplicateSubmitterCountsOnce) {
  OracleHub hub(2);
  hub.submit(0, 1);
  hub.submit(0, 1);
  EXPECT_FALSE(hub.fixed().has_value());
  hub.submit(1, 1);
  EXPECT_TRUE(hub.fixed().has_value());
}

TEST(RandomizedUc, RequiresFiveTPlusOne) {
  RandomizedConsensusConfig cfg;
  cfg.n = 10;
  cfg.t = 2;
  cfg.self = 0;
  Outbox ob;
  IdbEngine idb(11, 2, 0, 0, &ob);
  EXPECT_THROW(
      RandomizedConsensus(cfg, make_common_coin(1, 10), &idb, &ob),
      ContractViolation);
}

TEST(RandomizedUc, UnanimousDecidesRoundOneNoFaults) {
  auto cfg = base_config(11, 2);
  cfg.input = unanimous_input(11, 9);
  cfg.seed = 5;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.agreement());
  EXPECT_EQ(r.decided_value(), 9);
  // Every correct process decided inside the randomized protocol's round 1.
  for (std::size_t i = 0; i < cfg.n; ++i) {
    const auto& rec = r.stats.decisions[i];
    ASSERT_TRUE(rec.has_value());
    EXPECT_LE(rec->decision.uc_rounds, 1u);
  }
}

struct UcCase {
  std::string label;
  std::size_t n;
  std::size_t t;
  std::size_t faults;
  FaultKind kind;
  std::uint64_t seed;
};

class RandomizedUcProperty : public ::testing::TestWithParam<UcCase> {};

TEST_P(RandomizedUcProperty, SafetyAndTermination) {
  const auto& p = GetParam();
  auto cfg = base_config(p.n, p.t);
  Rng rng(p.seed);
  cfg.input = random_input(p.n, rng, {.domain = 3});
  cfg.seed = p.seed;
  cfg.faults.kind = p.kind;
  cfg.faults.count = p.faults;
  cfg.start_jitter = 2'000'000;  // 2ms proposal skew
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided()) << "undecided correct processes";
  EXPECT_TRUE(r.agreement());
  // Unanimity: if all correct proposed the same value, that must be it.
  if (const auto u = harness::unanimous_correct_value(cfg.input, r.faulty)) {
    EXPECT_EQ(r.decided_value(), *u);
  }
}

std::vector<UcCase> uc_cases() {
  std::vector<UcCase> cases;
  std::uint64_t seed = 100;
  for (const auto kind :
       {FaultKind::kSilent, FaultKind::kEquivocate, FaultKind::kNoise}) {
    for (std::size_t rep = 0; rep < 4; ++rep) {
      cases.push_back({"n11t2f2_k" + std::to_string(static_cast<int>(kind)) + "_r" +
                           std::to_string(rep),
                       11, 2, 2, kind, seed++});
      cases.push_back({"n6t1f1_k" + std::to_string(static_cast<int>(kind)) + "_r" +
                           std::to_string(rep),
                       6, 1, 1, kind, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, RandomizedUcProperty,
                         ::testing::ValuesIn(uc_cases()),
                         [](const ::testing::TestParamInfo<UcCase>& info) {
                           return info.param.label;
                         });

TEST(RandomizedUc, SplitVotesStillTerminate) {
  // Perfectly split inputs force the coin path.
  auto cfg = base_config(12, 2);
  cfg.input = split_input(12, 1, 6, 2);
  cfg.seed = 77;
  cfg.start_jitter = 5'000'000;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.agreement());
  const auto v = r.decided_value();
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(*v == 1 || *v == 2);
}

TEST(RandomizedUc, ManySeedsSplitInputsAgree) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto cfg = base_config(11, 2);
    cfg.input = split_input(11, 4, 5, 9);
    cfg.seed = seed;
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kSilent;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.agreement()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dex
