// Tests for the process-wide tracing subsystem (src/trace): flight-recorder
// ring semantics, the runtime gate, multi-threaded recording, exporter output
// and the causal-invariant checker — plus byte-level trace determinism of
// simulated runs across n ∈ {4, 7, 13} under an adversary.
//
// The tracer is process-global, so every test goes through the Quiesced
// fixture: it resets the recorder to a known state and restores the
// disabled/default configuration on exit, keeping tests order-independent.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "trace/check.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace dex {
namespace {

class Quiesced : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Tracer::global().set_level(trace::kOff);
    trace::Tracer::global().set_clock(trace::Tracer::Clock::kWall);
    trace::Tracer::global().reset(trace::Tracer::kDefaultThreadCapacity);
  }
  void TearDown() override { SetUp(); }
};

using TracerTest = Quiesced;
using ExportTest = Quiesced;
using CheckerTest = Quiesced;
using DeterminismTest = Quiesced;

TEST_F(TracerTest, DisabledRecordsNothing) {
  trace::instant("test", "noop", {.proc = 1});
  EXPECT_FALSE(trace::on());
  EXPECT_TRUE(trace::Tracer::global().snapshot().empty());
}

TEST_F(TracerTest, LevelsGateVerboseEvents) {
  trace::Tracer::global().set_level(trace::kOn);
  EXPECT_TRUE(trace::on());
  EXPECT_FALSE(trace::on(trace::kVerbose));
  trace::Tracer::global().set_level(trace::kVerbose);
  EXPECT_TRUE(trace::on(trace::kVerbose));
}

TEST_F(TracerTest, RecordsInSequenceOrder) {
  trace::Tracer::global().set_level(trace::kOn);
  trace::span_begin("test", "outer", {.proc = 0, .instance = 9});
  trace::instant("test", "tick", {.proc = 0, .a = 1});
  trace::span_end("test", "outer", {.proc = 0, .instance = 9});
  const auto events = trace::Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, trace::EventKind::kSpanBegin);
  EXPECT_EQ(events[1].kind, trace::EventKind::kInstant);
  EXPECT_EQ(events[2].kind, trace::EventKind::kSpanEnd);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].instance, 9);
}

TEST_F(TracerTest, RingWrapKeepsNewestAndCountsDrops) {
  trace::Tracer::global().reset(/*thread_capacity=*/16);
  trace::Tracer::global().set_level(trace::kOn);
  for (int i = 0; i < 40; ++i) {
    trace::instant("test", "tick", {.a = i});
  }
  const auto events = trace::Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(trace::Tracer::global().dropped(), 24u);
  // Flight recorder: the *oldest* events were overwritten.
  EXPECT_EQ(events.front().a, 24);
  EXPECT_EQ(events.back().a, 39);
}

TEST_F(TracerTest, VirtualClockStampsEvents) {
  trace::Tracer::global().set_level(trace::kOn);
  trace::Tracer::global().set_clock(trace::Tracer::Clock::kVirtual);
  trace::Tracer::global().set_virtual_now(12345);
  trace::instant("test", "tick", {});
  trace::instant_at(777, "test", "tock", {});
  const auto events = trace::Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is (t, seq)-sorted: the explicit 777 sorts first.
  EXPECT_EQ(events[0].t, 777u);
  EXPECT_EQ(events[1].t, 12345u);
}

TEST_F(TracerTest, ThreadsRecordConcurrentlyWithoutLoss) {
  trace::Tracer::global().set_level(trace::kOn);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::instant("test", "worker", {.proc = w, .a = i});
      }
    });
  }
  for (auto& th : workers) th.join();
  const auto events = trace::Tracer::global().snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(trace::Tracer::global().dropped(), 0u);
  std::set<std::uint32_t> tids;
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) {
    tids.insert(e.tid);
    seqs.insert(e.seq);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // The global sequence is collision-free across threads.
  EXPECT_EQ(seqs.size(), events.size());
}

TEST_F(ExportTest, ChromeJsonCarriesSpansInstantsAndMetadata) {
  trace::Tracer::global().set_level(trace::kOn);
  trace::span_begin("dex", "instance", {.proc = 2, .instance = 0, .a = 7});
  trace::instant("sim", "decide",
                 {.proc = 2, .instance = 0, .a = 7, .b = 0, .c = 0});
  trace::span_end("dex", "instance",
                  {.proc = 2, .instance = 0, .a = 7, .b = 0, .c = 1});
  const auto json = trace::to_chrome_json(trace::Tracer::global().snapshot());
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // instant scope
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("replica 2"), std::string::npos);
  // Matching async-span ids and per-name arg labels.
  EXPECT_NE(json.find("\"id\":\"p2/i0/t0/instance\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
}

TEST_F(ExportTest, JsonlIsOneValidObjectPerEvent) {
  trace::Tracer::global().set_level(trace::kOn);
  for (int i = 0; i < 5; ++i) trace::instant("test", "tick", {.a = i});
  const auto events = trace::Tracer::global().snapshot();
  const auto jsonl = trace::to_jsonl(events);
  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, events.size());
  EXPECT_EQ(jsonl.find("{\"t\":"), 0u);
  EXPECT_NE(jsonl.find("\"name\":\"tick\""), std::string::npos);
}

harness::ExperimentResult adversarial_run(Algorithm algo, std::size_t n,
                                          std::size_t t, std::size_t faults,
                                          harness::FaultKind kind,
                                          std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = algo;
  cfg.n = n;
  cfg.t = t;
  cfg.input = split_input(n, 0, n / 2, 1);
  cfg.seed = seed;
  cfg.faults.count = faults;
  cfg.faults.kind = kind;
  cfg.capture_trace = true;
  return harness::run_experiment(cfg);
}

TEST_F(CheckerTest, AdversarialRunSatisfiesCausalInvariants) {
  const auto r = adversarial_run(Algorithm::kDexFreq, 13, 2, 2,
                                 harness::FaultKind::kEquivocate, 33);
  ASSERT_FALSE(r.trace_events.empty());
  const auto check =
      trace::check_causal_invariants(r.trace_events, {.n = 13, .t = 2});
  EXPECT_TRUE(check.ok) << (check.violations.empty()
                                ? ""
                                : check.violations.front());
  EXPECT_GE(check.decides_checked, r.correct);
  EXPECT_GT(check.accepts_checked, 0u);
  EXPECT_GT(check.echoes_checked, 0u);
}

TEST_F(CheckerTest, FlagsDecideWithoutQuorum) {
  // Synthetic trace: a decide with no deliveries behind it violates I1.
  std::vector<trace::Event> events;
  trace::Event decide;
  decide.t = 10;
  decide.seq = 1;
  decide.kind = trace::EventKind::kInstant;
  decide.cat = "sim";
  decide.name = "decide";
  decide.proc = 0;
  decide.a = 7;
  decide.b = static_cast<std::int64_t>(DecisionPath::kTwoStep);
  events.push_back(decide);
  const auto check = trace::check_causal_invariants(events, {.n = 7, .t = 1});
  EXPECT_FALSE(check.ok);
  ASSERT_EQ(check.violations.size(), 1u);
  EXPECT_NE(check.violations.front().find("I1"), std::string::npos);
}

TEST_F(CheckerTest, FlagsUnjustifiedEcho) {
  // An echo with no init delivery and no amplification quorum violates I3.
  std::vector<trace::Event> events;
  trace::Event echo;
  echo.t = 5;
  echo.seq = 1;
  echo.kind = trace::EventKind::kInstant;
  echo.cat = "idb";
  echo.name = "echo";
  echo.proc = 1;
  echo.peer = 2;  // claimed origin
  echo.c = 2;
  events.push_back(echo);
  const auto check = trace::check_causal_invariants(events, {.n = 7, .t = 1});
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.violations.empty());
  EXPECT_NE(check.violations.front().find("I3"), std::string::npos);
}

// Same seed ⇒ byte-identical JSONL export, across system sizes and under an
// adversary. This is the tracer-level determinism contract: virtual-clock
// timestamps plus the single-threaded event loop make (t, seq) — and hence
// the whole export — reproducible.
void expect_deterministic(Algorithm algo, std::size_t n, std::size_t t,
                          std::size_t faults, harness::FaultKind kind,
                          std::uint64_t seed) {
  const auto a = adversarial_run(algo, n, t, faults, kind, seed);
  const auto b = adversarial_run(algo, n, t, faults, kind, seed);
  ASSERT_FALSE(a.trace_events.empty());
  EXPECT_EQ(trace::to_jsonl(a.trace_events), trace::to_jsonl(b.trace_events));
  const auto c = adversarial_run(algo, n, t, faults, kind, seed + 1);
  EXPECT_NE(trace::to_jsonl(a.trace_events), trace::to_jsonl(c.trace_events));
}

TEST_F(DeterminismTest, N4FaultFree) {
  // No algorithm admits a fault at n = 4 (the underlying-consensus bound
  // needs n ≥ 5t+1), so the smallest size runs fault-free; the adversarial
  // cases are covered at n ∈ {7, 13}.
  expect_deterministic(Algorithm::kDexFreq, 4, 0, 0,
                       harness::FaultKind::kSilent, 101);
}

TEST_F(DeterminismTest, N7Equivocate) {
  expect_deterministic(Algorithm::kDexFreq, 7, 1, 1,
                       harness::FaultKind::kEquivocate, 102);
}

TEST_F(DeterminismTest, N13Equivocate) {
  expect_deterministic(Algorithm::kDexFreq, 13, 2, 2,
                       harness::FaultKind::kEquivocate, 103);
}

}  // namespace
}  // namespace dex
