// Tests for the comparison baselines: BOSCO (weak/strong) and the
// Brasileiro-style one-step crash consensus.
#include <gtest/gtest.h>

#include "consensus/bosco/bosco.hpp"
#include "consensus/condition/input_gen.hpp"
#include "consensus/crash/onestep_crash.hpp"
#include "consensus/underlying/oracle.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"

namespace dex {
namespace {

using harness::ExperimentConfig;
using harness::FaultKind;
using harness::run_experiment;

TEST(Bosco, ResilienceBounds) {
  StackConfig cfg;
  cfg.n = 11;
  cfg.t = 2;
  cfg.self = 0;
  EXPECT_NO_THROW(BoscoStack(cfg, BoscoMode::kWeak));
  EXPECT_THROW(BoscoStack(cfg, BoscoMode::kStrong), ContractViolation);
  cfg.n = 15;
  EXPECT_NO_THROW(BoscoStack(cfg, BoscoMode::kStrong));
}

// Direct engine test: BOSCO evaluates exactly once at the n−t threshold.
TEST(Bosco, SingleShotEvaluationIgnoresLateVotes) {
  constexpr std::size_t kN = 11, kT = 2;
  Outbox ob;
  IdbEngine idb(kN, kT, 0, 0, &ob);
  auto hub = std::make_shared<OracleHub>(kN - kT);
  OracleConsensus uc(0, hub);
  BoscoEngine engine(kN, kT, 0, 0, BoscoMode::kWeak, &uc, &ob);

  engine.propose(5);
  // 8 more votes: 6×5 and 2×3 → at the n−t = 9 threshold the top count is 7;
  // one-step needs > (n+t)/2 = 6.5, i.e. >= 7 → decides. Rebuild so it does
  // NOT decide: 5×5 + 3×3 + own 5 → top 6 < 7.
  for (ProcessId p = 1; p <= 5; ++p) engine.on_vote(p, 5);
  for (ProcessId p = 6; p <= 8; ++p) engine.on_vote(p, 3);
  EXPECT_FALSE(engine.decision().has_value());
  // Two late 5-votes would have pushed the count to 8 > 6.5 — but BOSCO
  // already evaluated and must ignore them (the contrast with DEX).
  engine.on_vote(9, 5);
  engine.on_vote(10, 5);
  EXPECT_FALSE(engine.decision().has_value());
}

TEST(Bosco, OneStepAtThresholdWhenVotesAgree) {
  constexpr std::size_t kN = 11, kT = 2;
  Outbox ob;
  IdbEngine idb(kN, kT, 0, 0, &ob);
  auto hub = std::make_shared<OracleHub>(kN - kT);
  OracleConsensus uc(0, hub);
  BoscoEngine engine(kN, kT, 0, 0, BoscoMode::kWeak, &uc, &ob);
  engine.propose(5);
  for (ProcessId p = 1; p <= 8; ++p) engine.on_vote(p, 5);
  ASSERT_TRUE(engine.decision().has_value());
  EXPECT_EQ(engine.decision()->path, DecisionPath::kOneStep);
  EXPECT_EQ(engine.decision()->value, 5);
}

TEST(Bosco, UnanimousNoFaultsOneStepEndToEnd) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kBoscoWeak;
  cfg.n = 11;
  cfg.t = 2;
  cfg.input = unanimous_input(11, 4);
  cfg.seed = 2;
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.all_one_step());
  EXPECT_EQ(r.decided_value(), 4);
}

TEST(Bosco, SafetyUnderEquivocation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kBoscoWeak;
    cfg.n = 11;
    cfg.t = 2;
    cfg.input = unanimous_input(11, 4);
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kEquivocate;
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.agreement()) << "seed " << seed;
    EXPECT_EQ(r.decided_value(), 4) << "seed " << seed;  // unanimity
  }
}

TEST(Bosco, StrongModeOneStepDespiteFaults) {
  // n > 7t: all correct propose the same value; t Byzantine equivocate; the
  // strongly one-step regime still decides in one step at every correct
  // process (n−t = 13 votes, >= 11 of them for the common value > (n+t)/2 = 8.5).
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kBoscoStrong;
  cfg.n = 15;
  cfg.t = 2;
  cfg.input = unanimous_input(15, 9);
  cfg.faults.count = 2;
  cfg.faults.kind = FaultKind::kEquivocate;
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.all_one_step()) << "seed " << seed;
    EXPECT_EQ(r.decided_value(), 9) << "seed " << seed;
  }
}

TEST(Bosco, WeakModeNotOneStepUnderFaultsAtBoundary) {
  // The same unanimous-correct input with t equivocators: at n = 5t+1 the
  // weak regime cannot guarantee one-step (that is what "weak" means).
  // We only check safety here; the step comparison lives in bench_table1.
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kBoscoWeak;
  cfg.n = 11;
  cfg.t = 2;
  cfg.input = unanimous_input(11, 9);
  cfg.faults.count = 2;
  cfg.faults.kind = FaultKind::kEquivocate;
  cfg.seed = 13;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_EQ(r.decided_value(), 9);
}

TEST(CrashOneStep, ResilienceBound) {
  Outbox ob;
  auto hub = std::make_shared<OracleHub>(3);
  OracleConsensus uc(0, hub);
  EXPECT_THROW(OneStepCrashEngine(6, 2, 0, 0, &uc, &ob), ContractViolation);
  EXPECT_NO_THROW(OneStepCrashEngine(7, 2, 0, 0, &uc, &ob));
}

TEST(CrashOneStep, DecidesWhenAllReceivedAgree) {
  constexpr std::size_t kN = 11, kT = 2;
  Outbox ob;
  auto hub = std::make_shared<OracleHub>(kN - kT);
  OracleConsensus uc(0, hub);
  OneStepCrashEngine engine(kN, kT, 0, 0, &uc, &ob);
  engine.propose(8);
  for (ProcessId p = 1; p <= 8; ++p) engine.on_prop(p, 8);
  ASSERT_TRUE(engine.decision().has_value());
  EXPECT_EQ(engine.decision()->path, DecisionPath::kOneStep);
}

TEST(CrashOneStep, MixedValuesAdoptMajorityForFallback) {
  constexpr std::size_t kN = 11, kT = 2;
  Outbox ob;
  auto hub = std::make_shared<OracleHub>(1);
  OracleConsensus uc(0, hub);
  OneStepCrashEngine engine(kN, kT, 0, 0, &uc, &ob);
  engine.propose(1);
  for (ProcessId p = 1; p <= 7; ++p) engine.on_prop(p, 8);  // 7 >= n−2t
  engine.on_prop(8, 1);
  EXPECT_FALSE(engine.decision().has_value());
  // The hub received the adopted value 8, not our own 1.
  ASSERT_TRUE(hub->fixed().has_value());
  EXPECT_EQ(*hub->fixed(), 8);
}

TEST(CrashOneStep, EndToEndUnderCrashFaults) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kCrashOneStep;
    cfg.n = 11;
    cfg.t = 2;
    cfg.input = unanimous_input(11, 3);
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kCrashMid;
    cfg.faults.crash_reach = 4;
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.agreement()) << "seed " << seed;
    EXPECT_EQ(r.decided_value(), 3) << "seed " << seed;
  }
}

TEST(CrashOneStep, UnanimousNoFaultsIsOneStep) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kCrashOneStep;
  cfg.n = 11;
  cfg.t = 2;
  cfg.input = unanimous_input(11, 6);
  cfg.seed = 1;
  cfg.delay = std::make_shared<sim::ConstantDelay>(1'000'000);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_decided());
  EXPECT_TRUE(r.all_one_step());
}

}  // namespace
}  // namespace dex
