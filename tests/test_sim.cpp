// Tests for the discrete-event simulator: determinism, delay models, event
// ordering, stats, and the experiment harness plumbing.
#include <gtest/gtest.h>

#include "consensus/condition/input_gen.hpp"
#include "harness/experiment.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulation.hpp"

namespace dex {
namespace {

using harness::ExperimentConfig;
using harness::FaultKind;
using harness::run_experiment;

TEST(DelayModels, ConstantIsConstant) {
  sim::ConstantDelay d(5);
  Rng rng(1);
  Message m;
  EXPECT_EQ(d.delay(0, 0, 1, m, rng), 5u);
  EXPECT_EQ(d.delay(0, 3, 2, m, rng), 5u);
}

TEST(DelayModels, UniformWithinBounds) {
  sim::UniformDelay d(10, 20);
  Rng rng(2);
  Message m;
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.delay(0, 0, 1, m, rng);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(DelayModels, ExponentialAboveMin) {
  sim::ExponentialDelay d(100, 50.0);
  Rng rng(3);
  Message m;
  for (int i = 0; i < 100; ++i) EXPECT_GE(d.delay(0, 0, 1, m, rng), 100u);
}

TEST(DelayModels, GstClampsPreGstChaos) {
  auto pre = std::make_shared<sim::ConstantDelay>(1'000'000'000);  // 1s chaos
  auto post = std::make_shared<sim::ConstantDelay>(1'000'000);     // 1ms
  sim::GstDelay d(pre, post, /*gst=*/100'000'000);  // GST at 100ms
  Rng rng(5);
  Message m;
  // Sent at t=0 (pre-GST): clamped to GST - now + post = 101ms, not 1s.
  EXPECT_EQ(d.delay(0, 0, 1, m, rng), 101'000'000u);
  // Sent at t=99ms: clamp is 1ms + 1ms.
  EXPECT_EQ(d.delay(99'000'000, 0, 1, m, rng), 2'000'000u);
  // Sent after GST: post model only.
  EXPECT_EQ(d.delay(200'000'000, 0, 1, m, rng), 1'000'000u);
}

TEST(DelayModels, GstConsensusTerminatesThroughChaoticStart) {
  // A chaotic first 50ms (heavy random delays) followed by stability: DEX
  // must still decide — asynchronous safety plus post-GST liveness.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kDexFreq;
    cfg.n = 13;
    cfg.t = 2;
    cfg.input = split_input(13, 1, 7, 2);
    cfg.seed = seed;
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kEquivocate;
    cfg.delay = std::make_shared<sim::GstDelay>(
        std::make_shared<sim::UniformDelay>(1'000'000, 500'000'000),
        std::make_shared<sim::UniformDelay>(1'000'000, 5'000'000),
        /*gst=*/50'000'000);
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.all_decided()) << "seed " << seed;
    EXPECT_TRUE(r.agreement()) << "seed " << seed;
  }
}

TEST(DelayModels, SkewedMultipliesSelectedSources) {
  auto base = std::make_shared<sim::ConstantDelay>(10);
  sim::SkewedDelay d(base, {2}, 5.0);
  Rng rng(4);
  Message m;
  EXPECT_EQ(d.delay(0, 0, 1, m, rng), 10u);
  EXPECT_EQ(d.delay(0, 2, 1, m, rng), 50u);
}

// A probe actor that records delivery order.
class ProbeActor final : public sim::Actor {
 public:
  explicit ProbeActor(std::vector<std::pair<ProcessId, std::uint64_t>>* log)
      : log_(log) {}
  void on_packet(ProcessId src, const Message& msg) override {
    log_->push_back({src, msg.tag});
  }
  std::vector<Outgoing> drain() override { return {}; }

 private:
  std::vector<std::pair<ProcessId, std::uint64_t>>* log_;
};

TEST(Simulation, InjectedPacketsArriveInTimeOrder) {
  sim::SimOptions opts;
  sim::Simulation s(2, opts);
  std::vector<std::pair<ProcessId, std::uint64_t>> log;
  s.attach(0, std::make_unique<ProbeActor>(&log));
  s.attach(1, std::make_unique<ProbeActor>(&log));
  Message m;
  m.tag = 30;
  s.inject(1, 0, m, 300);
  m.tag = 10;
  s.inject(1, 0, m, 100);
  m.tag = 20;
  s.inject(1, 0, m, 200);
  const auto stats = s.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].second, 10u);
  EXPECT_EQ(log[1].second, 20u);
  EXPECT_EQ(log[2].second, 30u);
  EXPECT_EQ(stats.packets_delivered, 3u);
  EXPECT_EQ(stats.end_time, 300u);
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  sim::SimOptions opts;
  sim::Simulation s(2, opts);
  std::vector<std::pair<ProcessId, std::uint64_t>> log;
  s.attach(0, std::make_unique<ProbeActor>(&log));
  s.attach(1, std::make_unique<ProbeActor>(&log));
  Message m;
  for (std::uint64_t tag = 0; tag < 5; ++tag) {
    m.tag = tag;
    s.inject(1, 0, m, 100);
  }
  s.run();
  for (std::uint64_t tag = 0; tag < 5; ++tag) EXPECT_EQ(log[tag].second, tag);
}

TEST(Simulation, ScheduleAtRunsCallback) {
  sim::Simulation s(1, {});
  std::vector<std::pair<ProcessId, std::uint64_t>> log;
  s.attach(0, std::make_unique<ProbeActor>(&log));
  bool ran = false;
  s.schedule_at(50, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Simulation, IdenticalSeedsGiveIdenticalRuns) {
  auto once = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.algorithm = Algorithm::kDexFreq;
    cfg.n = 13;
    cfg.t = 2;
    Rng rng(99);
    cfg.input = random_input(13, rng, {.domain = 3});
    cfg.seed = seed;
    cfg.faults.count = 2;
    cfg.faults.kind = FaultKind::kEquivocate;
    return run_experiment(cfg);
  };
  const auto a = once(7), b = once(7), c = once(8);
  EXPECT_EQ(a.stats.events, b.stats.events);
  EXPECT_EQ(a.stats.end_time, b.stats.end_time);
  EXPECT_EQ(a.stats.packets_delivered, b.stats.packets_delivered);
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_EQ(a.stats.decisions[i].has_value(), b.stats.decisions[i].has_value());
    if (a.stats.decisions[i]) {
      EXPECT_EQ(a.stats.decisions[i]->at, b.stats.decisions[i]->at);
      EXPECT_EQ(a.stats.decisions[i]->decision, b.stats.decisions[i]->decision);
    }
  }
  // A different seed almost surely differs somewhere.
  EXPECT_NE(a.stats.events, c.stats.events);
}

TEST(Simulation, EventLimitStopsRunaway) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 1);
  cfg.seed = 1;
  cfg.max_events = 50;  // far below what a full run needs
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.stats.hit_event_limit);
}

TEST(Simulation, AttachTwiceThrows) {
  sim::Simulation s(2, {});
  std::vector<std::pair<ProcessId, std::uint64_t>> log;
  s.attach(0, std::make_unique<ProbeActor>(&log));
  EXPECT_THROW(s.attach(0, std::make_unique<ProbeActor>(&log)),
               ContractViolation);
}

TEST(Simulation, MissingActorThrowsOnRun) {
  sim::Simulation s(2, {});
  std::vector<std::pair<ProcessId, std::uint64_t>> log;
  s.attach(0, std::make_unique<ProbeActor>(&log));
  EXPECT_THROW(s.run(), ContractViolation);
}

TEST(Harness, FaultCountAboveTRejected) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 1);
  cfg.faults.count = 3;
  EXPECT_THROW(run_experiment(cfg), ContractViolation);
}

TEST(Harness, TooSmallNRejected) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;  // needs 6t+1 = 13
  cfg.n = 12;
  cfg.t = 2;
  cfg.input = unanimous_input(12, 1);
  EXPECT_THROW(run_experiment(cfg), ContractViolation);
}

TEST(Harness, RandomPlacementRespectsCount) {
  ExperimentConfig cfg;
  cfg.algorithm = Algorithm::kDexFreq;
  cfg.n = 13;
  cfg.t = 2;
  cfg.input = unanimous_input(13, 1);
  cfg.faults.count = 2;
  cfg.faults.random_placement = true;
  cfg.seed = 31;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.faulty.size(), 2u);
  EXPECT_EQ(r.correct, 11u);
}

TEST(Harness, UnanimousCorrectValueHelper) {
  const auto input = split_input(5, 1, 3, 2);  // [1,1,1,2,2]
  EXPECT_FALSE(harness::unanimous_correct_value(input, {}).has_value());
  EXPECT_EQ(harness::unanimous_correct_value(input, {3, 4}), 1);
}

}  // namespace
}  // namespace dex
