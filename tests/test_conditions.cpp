// Tests for conditions, condition sequences, the two legal pairs (§3.3-3.4)
// and the input generators / coverage analytics that feed the benches.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "consensus/condition/analytics.hpp"
#include "consensus/condition/input_gen.hpp"
#include "consensus/condition/pair.hpp"

namespace dex {
namespace {

TEST(FreqCondition, MembershipByMargin) {
  const FreqCondition c(4);
  // margin 5 > 4: in. n=13: 9 of value 1, 4 of value 0.
  EXPECT_TRUE(c.contains(split_input(13, 1, 9, 0)));
  // margin 3: out.
  EXPECT_FALSE(c.contains(split_input(13, 1, 8, 0)));
}

TEST(FreqCondition, UnanimousAlwaysInForDBelowN) {
  const FreqCondition c(10);
  EXPECT_TRUE(c.contains(unanimous_input(11, 5)));
  const FreqCondition too_strict(11);
  EXPECT_FALSE(too_strict.contains(unanimous_input(11, 5)));
}

TEST(PrivilegedCondition, MembershipByCount) {
  const PrivilegedCondition c(7, 6);  // needs #7 > 6
  EXPECT_TRUE(c.contains(split_input(11, 7, 7, 0)));
  EXPECT_FALSE(c.contains(split_input(11, 7, 6, 0)));
  // Counts of other values are irrelevant.
  EXPECT_FALSE(c.contains(unanimous_input(11, 3)));
}

TEST(ConditionSequence, MaxValidFaultsMonotone) {
  // Frequency pair at n=13, t=2: C1_k = C^freq_{8+2k}.
  const FrequencyPair pair(13, 2);
  // margin 11 > 8+2*1=10 but not > 12 ⇒ max k = 1.
  const auto in_margin_11 = split_input(13, 1, 12, 0);  // margin 12-1=11
  const auto k = pair.s1().max_valid_faults(in_margin_11);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, 1u);
  // Unanimous: margin 13 > 12 ⇒ k = t = 2.
  EXPECT_EQ(pair.s1().max_valid_faults(unanimous_input(13, 4)), 2u);
  // margin 8: not even in C1_0.
  EXPECT_FALSE(pair.s1().max_valid_faults(split_input(13, 1, 10, 0)).has_value());
}

TEST(FrequencyPair, RequiresSixTPlusOne) {
  EXPECT_NO_THROW(FrequencyPair(13, 2));
  EXPECT_THROW(FrequencyPair(12, 2), ContractViolation);
}

TEST(FrequencyPair, PredicatesMatchDefinitions) {
  const FrequencyPair pair(13, 2);
  View j(13);
  // 10 × 5, 1 × 3 → margin 9 > 4t = 8 ⇒ P1.
  for (int i = 0; i < 10; ++i) j.set(static_cast<std::size_t>(i), 5);
  j.set(10, 3);
  EXPECT_TRUE(pair.p1(j));
  EXPECT_TRUE(pair.p2(j));
  EXPECT_EQ(pair.f(j), 5);
  // Reduce margin to 8: P1 fails, P2 (margin > 4) holds.
  j.set(11, 3);
  EXPECT_FALSE(pair.p1(j));
  EXPECT_TRUE(pair.p2(j));
}

TEST(FrequencyPair, P2Boundary) {
  const FrequencyPair pair(13, 2);
  View j(13);
  // margin exactly 2t = 4 → P2 false; margin 5 → true.
  for (int i = 0; i < 8; ++i) j.set(static_cast<std::size_t>(i), 1);
  for (int i = 8; i < 12; ++i) j.set(static_cast<std::size_t>(i), 0);
  EXPECT_FALSE(pair.p2(j));
  j.set(12, 1);
  EXPECT_TRUE(pair.p2(j));
}

TEST(FrequencyPair, FIsUndefinedOnEmptyView) {
  const FrequencyPair pair(13, 2);
  EXPECT_THROW((void)pair.f(View(13)), ContractViolation);
}

TEST(PrivilegedPair, RequiresFiveTPlusOne) {
  EXPECT_NO_THROW(PrivilegedPair(11, 2, 0));
  EXPECT_THROW(PrivilegedPair(10, 2, 0), ContractViolation);
}

TEST(PrivilegedPair, PredicatesMatchDefinitions) {
  const Value m = 42;
  const PrivilegedPair pair(11, 2, m);
  View j(11);
  for (int i = 0; i < 7; ++i) j.set(static_cast<std::size_t>(i), m);
  EXPECT_TRUE(pair.p1(j));  // 7 > 3t = 6
  EXPECT_TRUE(pair.p2(j));
  EXPECT_EQ(pair.f(j), m);
  j.clear(6);
  EXPECT_FALSE(pair.p1(j));  // 6 not > 6
  EXPECT_TRUE(pair.p2(j));   // 6 > 4
}

TEST(PrivilegedPair, FFallsBackToMostFrequent) {
  const Value m = 42;
  const PrivilegedPair pair(11, 2, m);
  View j(11);
  // #m = 2 <= t ⇒ F is the most frequent non-⊥ value.
  j.set(0, m);
  j.set(1, m);
  for (int i = 2; i < 8; ++i) j.set(static_cast<std::size_t>(i), 7);
  EXPECT_EQ(pair.f(j), 7);
  // #m = 3 > t ⇒ F = m even though 7 is more frequent.
  j.set(8, m);
  EXPECT_EQ(pair.f(j), m);
}

TEST(PrivilegedPair, SequencesUseDocumentedThresholds) {
  const PrivilegedPair pair(11, 2, 0);
  // C1_k = C^prv_{3t+k}: #m must exceed 6+k.
  EXPECT_TRUE(pair.s1().contains(split_input(11, 0, 7, 1), 0));
  EXPECT_FALSE(pair.s1().contains(split_input(11, 0, 7, 1), 1));
  // C2_k = C^prv_{2t+k}: #m must exceed 4+k.
  EXPECT_TRUE(pair.s2().contains(split_input(11, 0, 5, 1), 0));
  EXPECT_FALSE(pair.s2().contains(split_input(11, 0, 5, 1), 1));
}

// --- input generators ---

TEST(InputGen, MarginInputHasExactMargin) {
  Rng rng(1);
  for (std::size_t margin : {1u, 2u, 5u, 9u, 11u}) {
    if (margin == 12) continue;
    const auto in = margin_input(13, margin, 3, rng);
    const auto s = in.as_view().freq();
    EXPECT_EQ(s.margin(), margin) << "margin " << margin;
    EXPECT_EQ(s.first(), 3);
  }
}

TEST(InputGen, MarginNIsUnanimous) {
  Rng rng(2);
  const auto in = margin_input(9, 9, 5, rng);
  EXPECT_EQ(in, unanimous_input(9, 5));
}

TEST(InputGen, MarginNMinusOneRejected) {
  Rng rng(3);
  EXPECT_THROW(margin_input(9, 8, 5, rng), ContractViolation);
}

TEST(InputGen, PrivilegedInputHasExactCount) {
  Rng rng(4);
  for (std::size_t c : {0u, 1u, 5u, 11u}) {
    const auto in = privileged_input(11, 42, c, rng);
    EXPECT_EQ(in.as_view().count_of(42), c);
  }
}

TEST(InputGen, PerturbedViewRespectsDistance) {
  Rng rng(5);
  const auto in = unanimous_input(13, 9);
  for (int trial = 0; trial < 200; ++trial) {
    const View j = perturbed_view(in, 3, rng);
    EXPECT_LE(View::dist(j, in), 3u);
    EXPECT_LE(j.bottom_count(), 3u);
  }
}

TEST(InputGen, MaskedViewBottomsExact) {
  Rng rng(6);
  const auto in = unanimous_input(10, 1);
  const View j = masked_view(in, 4, rng);
  EXPECT_EQ(j.bottom_count(), 4u);
  EXPECT_TRUE(j.contained_in(in.as_view()));
}

TEST(InputGen, MutatedInputBoundedChanges) {
  Rng rng(7);
  const auto in = unanimous_input(12, 3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto mut = mutated_input(in, 2, rng);
    std::size_t diff = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (in[i] != mut[i]) ++diff;
    }
    EXPECT_LE(diff, 2u);
  }
}

// --- coverage analytics ---

TEST(Analytics, CoverageMonotoneInK) {
  const FrequencyPair pair(13, 2);
  Rng rng(8);
  const auto cov = estimate_pair_coverage(
      pair, skewed_source(13, 0.9, 7, 8), 4000, rng);
  ASSERT_EQ(cov.one_step.coverage.size(), 3u);
  // Larger k ⇒ stricter condition ⇒ lower coverage.
  EXPECT_GE(cov.one_step.coverage[0], cov.one_step.coverage[1]);
  EXPECT_GE(cov.one_step.coverage[1], cov.one_step.coverage[2]);
  // The two-step condition is weaker than the one-step one.
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_GE(cov.two_step.coverage[k], cov.one_step.coverage[k]);
  }
}

TEST(Analytics, HighCommonalityYieldsHighCoverage) {
  const FrequencyPair pair(13, 2);
  Rng rng(9);
  const auto high = estimate_pair_coverage(pair, skewed_source(13, 0.99, 7, 8),
                                           2000, rng);
  const auto low = estimate_pair_coverage(pair, uniform_source(13, 8), 2000, rng);
  EXPECT_GT(high.one_step.coverage[0], 0.8);
  EXPECT_LT(low.one_step.coverage[0], 0.1);
}

TEST(Analytics, UnanimousSourceFullCoverage) {
  const FrequencyPair pair(13, 2);
  Rng rng(10);
  const auto cov = estimate_pair_coverage(
      pair, [](Rng&) { return unanimous_input(13, 4); }, 100, rng);
  for (const double c : cov.one_step.coverage) EXPECT_DOUBLE_EQ(c, 1.0);
}

}  // namespace
}  // namespace dex
