// Tests for the replicated-state-machine substrate (§1.1's motivating
// application): identical logs, contention handling, no-op participation,
// fault tolerance and the one-step fast path on contention-free slots.
#include <gtest/gtest.h>

#include "byz/strategies.hpp"
#include "byz/strategy.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulation.hpp"
#include "smr/replica.hpp"

namespace dex {
namespace {

using smr::Command;
using smr::Replica;
using smr::ReplicaConfig;

struct Cluster {
  static constexpr std::size_t kN = 13, kT = 2;
  sim::Simulation simulation;
  std::vector<Replica*> replicas;

  explicit Cluster(std::uint64_t seed, std::size_t byzantine = 0,
                   std::shared_ptr<sim::DelayModel> delay = nullptr,
                   std::size_t window = 1)
      : simulation(kN, make_options(seed, std::move(delay))) {
    auto pair = make_frequency_pair(kN, kT);
    for (std::size_t i = 0; i < kN - byzantine; ++i) {
      ReplicaConfig rc;
      rc.n = kN;
      rc.t = kT;
      rc.self = static_cast<ProcessId>(i);
      rc.window = window;
      auto replica = std::make_unique<Replica>(rc, pair);
      replicas.push_back(replica.get());
      simulation.attach(static_cast<ProcessId>(i), std::move(replica));
    }
    for (std::size_t i = kN - byzantine; i < kN; ++i) {
      simulation.attach(static_cast<ProcessId>(i),
                        std::make_unique<byz::ByzantineActor>(
                            kN, kT, static_cast<ProcessId>(i), 0, seed + i, 0,
                            std::make_unique<byz::SilentStrategy>()));
    }
  }

  static sim::SimOptions make_options(std::uint64_t seed,
                                      std::shared_ptr<sim::DelayModel> delay) {
    sim::SimOptions opts;
    opts.seed = seed;
    opts.delay = std::move(delay);
    return opts;
  }

  /// Schedule a client broadcast: the command reaches replica r at
  /// base + r * skew.
  void client_submit(const Command& cmd, SimTime base, SimTime skew = 0) {
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      Replica* rep = replicas[r];
      simulation.schedule_at(base + r * skew, [rep, cmd] { rep->submit(cmd); });
    }
  }
};

std::vector<Value> committed_digests(const Replica& r) {
  std::vector<Value> out;
  for (const auto& e : r.log()) out.push_back(e.digest);
  return out;
}

TEST(Command, DigestStableAndDistinct) {
  const Command a{1, 1, "SET x 1"};
  const Command b{1, 2, "SET x 1"};
  const Command a2{1, 1, "SET x 1"};
  EXPECT_EQ(a.digest(), a2.digest());
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), smr::kNoopDigest);
}

TEST(Command, RoundTrip) {
  const Command c{7, 42, "APPEND log hello world"};
  EXPECT_EQ(Command::from_bytes(c.to_bytes()), c);
}

TEST(Smr, SingleCommandCommitsEverywhere) {
  Cluster cluster(1);
  const Command cmd{1, 1, "SET a 1"};
  cluster.client_submit(cmd, 0);
  cluster.simulation.run();
  for (Replica* r : cluster.replicas) {
    ASSERT_GE(r->log().size(), 1u);
    EXPECT_EQ(r->log()[0].digest, cmd.digest());
    ASSERT_TRUE(r->log()[0].command.has_value());
    EXPECT_EQ(r->log()[0].command->op, "SET a 1");
  }
}

TEST(Smr, ContentionFreeSlotDecidesOneStep) {
  // All replicas see the command at the same instant and propose the same
  // digest — the paper's §1.1 story: the slot commits on the fast path.
  Cluster cluster(2, 0, std::make_shared<sim::ConstantDelay>(1'000'000));
  const Command cmd{1, 1, "SET a 1"};
  cluster.client_submit(cmd, 0, /*skew=*/0);
  cluster.simulation.run();
  for (Replica* r : cluster.replicas) {
    ASSERT_GE(r->log().size(), 1u);
    EXPECT_EQ(r->log()[0].path, DecisionPath::kOneStep);
  }
}

TEST(Smr, SequentialCommandsKeepLogsIdentical) {
  Cluster cluster(3);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    cluster.client_submit(Command{1, s, "OP " + std::to_string(s)},
                          s * 40'000'000);  // 40ms apart: no contention
  }
  cluster.simulation.run();
  const auto reference = committed_digests(*cluster.replicas[0]);
  EXPECT_EQ(reference.size(), 5u);
  for (Replica* r : cluster.replicas) {
    EXPECT_EQ(committed_digests(*r), reference);
  }
}

TEST(Smr, ContendingClientsSerializeBothCommands) {
  // Two commands race: replicas see them in different orders. Both must end
  // up committed, in the same order everywhere.
  Cluster cluster(4);
  const Command a{1, 1, "SET x A"};
  const Command b{2, 1, "SET x B"};
  cluster.client_submit(a, 0, /*skew=*/2'000'000);
  // b arrives in reverse order: last replica first.
  for (std::size_t r = 0; r < cluster.replicas.size(); ++r) {
    Replica* rep = cluster.replicas[r];
    const SimTime at = (cluster.replicas.size() - r) * 2'000'000;
    cluster.simulation.schedule_at(at, [rep, b] { rep->submit(b); });
  }
  cluster.simulation.run();

  const auto reference = committed_digests(*cluster.replicas[0]);
  for (Replica* r : cluster.replicas) {
    EXPECT_EQ(committed_digests(*r), reference);
  }
  // Both commands are in the log (possibly with interleaved no-ops).
  std::set<Value> committed(reference.begin(), reference.end());
  EXPECT_TRUE(committed.count(a.digest()) == 1);
  EXPECT_TRUE(committed.count(b.digest()) == 1);
}

TEST(Smr, ToleratesSilentByzantineReplicas) {
  Cluster cluster(5, /*byzantine=*/2);
  const Command cmd{1, 1, "SET a 1"};
  cluster.client_submit(cmd, 0, 1'000'000);
  cluster.simulation.run();
  for (Replica* r : cluster.replicas) {
    ASSERT_GE(r->log().size(), 1u) << "replica " << r->next_slot();
    EXPECT_EQ(r->log()[0].digest, cmd.digest());
  }
}

TEST(Smr, DuplicateSubmitCommitsOnce) {
  Cluster cluster(6);
  const Command cmd{1, 1, "SET a 1"};
  cluster.client_submit(cmd, 0);
  cluster.client_submit(cmd, 10'000'000);  // client retry
  cluster.simulation.run();
  for (Replica* r : cluster.replicas) {
    std::size_t hits = 0;
    for (const auto& e : r->log()) {
      if (e.digest == cmd.digest()) ++hits;
    }
    EXPECT_EQ(hits, 1u);
  }
}

/// Asserts that every replica's committed digest sequence is a prefix of the
/// longest one (Byzantine runs may leave some replicas behind, but never on a
/// different history).
void expect_prefix_agreement(const std::vector<Replica*>& replicas) {
  const Replica* longest = replicas[0];
  for (const Replica* r : replicas) {
    if (r->log().size() > longest->log().size()) longest = r;
  }
  for (const Replica* r : replicas) {
    for (std::size_t s = 0; s < r->log().size(); ++s) {
      ASSERT_EQ(r->log()[s].digest, longest->log()[s].digest)
          << "replica " << r->next_slot() << " diverges at slot " << s;
    }
  }
}

TEST(Smr, SameCommandToDisjointSubsetsCommitsOnce) {
  // The same digest reaches two disjoint replica subsets at different times
  // (a client retrying against a different quorum). It must commit in exactly
  // one slot everywhere.
  Cluster cluster(8);
  const Command cmd{1, 1, "SET a 1"};
  for (std::size_t r = 0; r < cluster.replicas.size(); ++r) {
    Replica* rep = cluster.replicas[r];
    const SimTime at = r < 6 ? 0 : 5'000'000;
    cluster.simulation.schedule_at(at, [rep, cmd] { rep->submit(cmd); });
  }
  cluster.simulation.run();
  expect_prefix_agreement(cluster.replicas);
  for (Replica* r : cluster.replicas) {
    std::size_t hits = 0;
    for (const auto& e : r->log()) {
      if (e.digest == cmd.digest()) ++hits;
    }
    EXPECT_EQ(hits, 1u);
  }
}

/// Delays command-body dissemination toward the last two replicas until long
/// after the slot decides, while consensus traffic flows normally.
class DissemStarver final : public sim::DelayModel {
 public:
  SimTime delay(SimTime, ProcessId, ProcessId dst, const Message& msg,
                Rng&) override {
    const bool dissem = msg.kind == MsgKind::kPlain &&
                        chan::channel(msg.tag) == chan::kSmrDissem;
    if (dissem && dst >= 11) return 3'000'000'000;  // 3 s: long past commit
    return 1'000'000;
  }
};

TEST(Smr, UnknownDigestCommitsAsHole) {
  // Replicas 11 and 12 never receive the command body before the slot
  // decides: they must commit the digest as a hole (no command) rather than
  // stall, and the digest sequence must still agree everywhere.
  Cluster cluster(9, 0, std::make_shared<DissemStarver>());
  const Command cmd{1, 1, "SET a 1"};
  for (std::size_t r = 0; r < 11; ++r) {
    Replica* rep = cluster.replicas[r];
    cluster.simulation.schedule_at(0, [rep, cmd] { rep->submit(cmd); });
  }
  cluster.simulation.run();
  expect_prefix_agreement(cluster.replicas);
  for (std::size_t r = 0; r < cluster.replicas.size(); ++r) {
    const auto& log = cluster.replicas[r]->log();
    ASSERT_GE(log.size(), 1u) << "replica " << r;
    EXPECT_EQ(log[0].digest, cmd.digest()) << "replica " << r;
  }
  // The starved replicas hold the digest but not the body — a hole.
  for (std::size_t r = 11; r < cluster.replicas.size(); ++r) {
    EXPECT_FALSE(cluster.replicas[r]->log()[0].command.has_value())
        << "replica " << r;
  }
  // The others applied the command.
  EXPECT_TRUE(cluster.replicas[0]->log()[0].command.has_value());
}

TEST(Smr, PipelinedWindowCommitsInOrder) {
  // W = 4: commands submitted back-to-back ride concurrent slots but commit
  // strictly in submission-independent slot order on every replica.
  Cluster cluster(10, 0, nullptr, /*window=*/4);
  constexpr std::uint64_t kCmds = 8;
  for (std::uint64_t s = 1; s <= kCmds; ++s) {
    cluster.client_submit(Command{1, s, "OP " + std::to_string(s)},
                          s * 1'000'000);  // 1 ms apart: the window stays full
  }
  cluster.simulation.run();
  expect_prefix_agreement(cluster.replicas);
  for (Replica* r : cluster.replicas) {
    std::set<Value> digests;
    std::size_t commands = 0;
    for (const auto& e : r->log()) {
      if (e.command.has_value()) ++commands;
      EXPECT_TRUE(digests.insert(e.digest).second || e.digest == smr::kNoopDigest)
          << "duplicate digest in one log";
    }
    EXPECT_EQ(commands, kCmds);
    EXPECT_GE(r->live_instances_peak(), 2u);  // the window actually pipelined
  }
}

TEST(Smr, PipelinedWindowToleratesEquivocatingProposer) {
  // An equivocating proposer attacks slot 0 while correct replicas drive a
  // W = 4 pipelined log. Correct replicas must stay on one history.
  constexpr std::size_t kN = Cluster::kN, kT = Cluster::kT;
  sim::SimOptions opts;
  opts.seed = 11;
  sim::Simulation simulation(kN, opts);
  auto pair = make_frequency_pair(kN, kT);
  std::vector<Replica*> replicas;
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    ReplicaConfig rc;
    rc.n = kN;
    rc.t = kT;
    rc.self = static_cast<ProcessId>(i);
    rc.window = 4;
    auto rep = std::make_unique<Replica>(rc, pair);
    replicas.push_back(rep.get());
    simulation.attach(static_cast<ProcessId>(i), std::move(rep));
  }
  // The last process equivocates two fabricated digests on slot 0.
  simulation.attach(static_cast<ProcessId>(kN - 1),
                    std::make_unique<byz::ByzantineActor>(
                        kN, kT, static_cast<ProcessId>(kN - 1), 0, 99, 0,
                        byz::make_equivocator(0x6666, 0x7777)));
  std::uint64_t seq = 1;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    const Command cmd{1, seq++, "OP " + std::to_string(s)};
    for (Replica* rep : replicas) {
      simulation.schedule_at(s * 1'000'000, [rep, cmd] { rep->submit(cmd); });
    }
  }
  simulation.run();
  expect_prefix_agreement(replicas);
  for (Replica* r : replicas) {
    std::size_t commands = 0;
    for (const auto& e : r->log()) {
      if (e.command.has_value()) ++commands;
    }
    EXPECT_EQ(commands, 6u) << "correct commands lost";
  }
}

TEST(Smr, DecidedSlotEnginesAreReleased) {
  // The GC acceptance property: a long sequential log never holds more than
  // a handful of live instances — decided slots are reduced to echo husks
  // once their stacks halt.
  Cluster cluster(12);
  for (std::uint64_t s = 1; s <= 6; ++s) {
    cluster.client_submit(Command{1, s, "OP " + std::to_string(s)},
                          s * 40'000'000);
  }
  cluster.simulation.run();
  for (Replica* r : cluster.replicas) {
    EXPECT_EQ(r->log().size(), 6u);
    EXPECT_EQ(r->live_instances(), 0u)
        << "every decided slot should have been retired";
    EXPECT_LT(r->live_instances_peak(), 6u);
  }
}

TEST(Smr, IdleClusterStaysQuiet) {
  Cluster cluster(7);
  const auto stats = cluster.simulation.run();
  EXPECT_EQ(stats.packets_delivered, 0u);
  for (Replica* r : cluster.replicas) EXPECT_TRUE(r->log().empty());
}

}  // namespace
}  // namespace dex
