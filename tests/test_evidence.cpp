// Tests for Byzantine-evidence collection: the collector's detection rules
// and an end-to-end run where equivocators are caught (and nobody else is).
#include <gtest/gtest.h>

#include "byz/strategies.hpp"
#include "byz/strategy.hpp"
#include "consensus/dex/dex_stack.hpp"
#include "consensus/evidence.hpp"
#include "sim/simulation.hpp"

namespace dex {
namespace {

TEST(Evidence, DoublePlainClaimDetected) {
  EvidenceCollector c(5);
  c.note_plain_claim(2, 7);
  c.note_plain_claim(2, 7);  // repeat of the same value: fine
  EXPECT_TRUE(c.clean());
  c.note_plain_claim(2, 9);
  ASSERT_EQ(c.evidence().size(), 1u);
  EXPECT_EQ(c.evidence()[0].kind, EvidenceKind::kDoublePlainClaim);
  EXPECT_EQ(c.evidence()[0].suspect, 2);
  EXPECT_EQ(c.evidence()[0].first_value, 7);
  EXPECT_EQ(c.evidence()[0].second_value, 9);
}

TEST(Evidence, CrossChannelMismatchDetected) {
  EvidenceCollector c(5);
  c.note_plain_claim(3, 1);
  EXPECT_TRUE(c.clean());
  c.note_idb_claim(3, 2);
  ASSERT_EQ(c.evidence().size(), 1u);
  EXPECT_EQ(c.evidence()[0].kind, EvidenceKind::kCrossChannelMismatch);
  EXPECT_EQ(c.suspects(), std::set<ProcessId>{3});
}

TEST(Evidence, MatchingChannelsAreClean) {
  EvidenceCollector c(5);
  c.note_idb_claim(1, 4);
  c.note_plain_claim(1, 4);
  EXPECT_TRUE(c.clean());
}

TEST(Evidence, MalformedPayloadDedupedPerSuspect) {
  EvidenceCollector c(5);
  c.note_malformed(4);
  c.note_malformed(4);
  EXPECT_EQ(c.evidence().size(), 1u);
  c.note_malformed(1);
  EXPECT_EQ(c.evidence().size(), 2u);
  EXPECT_EQ(c.suspects().size(), 2u);
}

TEST(Evidence, OutOfRangeIdsIgnored) {
  EvidenceCollector c(5);
  c.note_plain_claim(-1, 1);
  c.note_plain_claim(5, 1);
  c.note_malformed(99);
  EXPECT_TRUE(c.clean());
}

TEST(Evidence, ToStringNamesKindAndValues) {
  EvidenceCollector c(5);
  c.note_plain_claim(2, 7);
  c.note_idb_claim(2, 9);
  const auto s = c.evidence()[0].to_string();
  EXPECT_NE(s.find("cross-channel-mismatch"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("9"), std::string::npos);
}

// End-to-end: equivocators split their plain claims across destinations while
// IDB forces one global claim — at least the correct processes on the losing
// side of the split must record cross-channel evidence, and NOBODY may accuse
// a correct process.
TEST(Evidence, EquivocatorsCaughtEndToEnd) {
  constexpr std::size_t kN = 13, kT = 2;
  sim::SimOptions opts;
  opts.seed = 99;
  sim::Simulation simulation(kN, opts);
  std::vector<DexStack*> stacks;
  auto pair = make_frequency_pair(kN, kT);
  for (std::size_t i = 0; i < kN - kT; ++i) {
    StackConfig sc;
    sc.n = kN;
    sc.t = kT;
    sc.self = static_cast<ProcessId>(i);
    auto stack = std::make_unique<DexStack>(sc, pair);
    stacks.push_back(stack.get());
    simulation.attach(static_cast<ProcessId>(i),
                      std::make_unique<sim::ProcessActor>(std::move(stack), 5));
  }
  // Cross-channel equivocation: a consistent identical-broadcast story (100
  // to everyone, so IDB delivers it) while the plain channel tells the odd
  // destinations 200 — exactly the lie the audit trail exists to catch.
  for (std::size_t i = kN - kT; i < kN; ++i) {
    auto script = std::make_unique<byz::ScriptedProposalStrategy>(
        [](ProcessId dst) { return dst % 2 == 0 ? Value{100} : Value{200}; },
        [](ProcessId) { return Value{100}; });
    simulation.attach(
        static_cast<ProcessId>(i),
        std::make_unique<byz::ByzantineActor>(kN, kT, static_cast<ProcessId>(i), 0,
                                              1000 + i, 5, std::move(script)));
  }
  simulation.run();

  std::set<ProcessId> all_suspects;
  for (const DexStack* s : stacks) {
    for (const ProcessId p : s->evidence().suspects()) all_suspects.insert(p);
  }
  // No correct process is ever accused (evidence rules are sound).
  for (const ProcessId p : all_suspects) {
    EXPECT_GE(p, static_cast<ProcessId>(kN - kT)) << "correct process accused";
  }
  // The equivocation is actually caught: odd processes were told 200 on the
  // plain channel while IDB delivered the globally consistent 100.
  EXPECT_FALSE(all_suspects.empty());
}

// A clean run yields a clean audit trail everywhere.
TEST(Evidence, NoFalsePositivesInCleanRuns) {
  constexpr std::size_t kN = 13, kT = 2;
  sim::SimOptions opts;
  opts.seed = 7;
  sim::Simulation simulation(kN, opts);
  std::vector<DexStack*> stacks;
  auto pair = make_frequency_pair(kN, kT);
  for (std::size_t i = 0; i < kN; ++i) {
    StackConfig sc;
    sc.n = kN;
    sc.t = kT;
    sc.self = static_cast<ProcessId>(i);
    auto stack = std::make_unique<DexStack>(sc, pair);
    stacks.push_back(stack.get());
    simulation.attach(static_cast<ProcessId>(i),
                      std::make_unique<sim::ProcessActor>(
                          std::move(stack), static_cast<Value>(i % 3)));
  }
  simulation.run();
  for (const DexStack* s : stacks) {
    EXPECT_TRUE(s->evidence().clean())
        << "false positive: " << s->evidence().evidence()[0].to_string();
  }
}

}  // namespace
}  // namespace dex
