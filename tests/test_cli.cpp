// Tests for the command-line argument parser.
#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace dex {
namespace {

std::vector<const char*> args(std::initializer_list<const char*> list) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), list);
  return v;
}

TEST(Cli, ParsesKeyValueForms) {
  Cli cli;
  auto a = args({"--n", "13", "--t=2", "--name", "dex"});
  cli.parse(static_cast<int>(a.size()), a.data(), /*strict=*/false);
  EXPECT_EQ(cli.num("n", 0), 13);
  EXPECT_EQ(cli.num("t", 0), 2);
  EXPECT_EQ(cli.str("name", ""), "dex");
}

TEST(Cli, FlagsWithoutValues) {
  Cli cli;
  auto a = args({"--verbose", "--n", "5"});
  cli.parse(static_cast<int>(a.size()), a.data(), false);
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_FALSE(cli.flag("quiet"));
  EXPECT_EQ(cli.num("n", 0), 5);
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli cli;
  auto a = args({});
  cli.parse(static_cast<int>(a.size()), a.data(), false);
  EXPECT_EQ(cli.num("n", 42), 42);
  EXPECT_EQ(cli.str("s", "x"), "x");
  EXPECT_DOUBLE_EQ(cli.real("r", 1.5), 1.5);
  EXPECT_EQ(cli.unsigned_num("u", 7u), 7u);
}

TEST(Cli, PositionalArguments) {
  Cli cli;
  auto a = args({"alpha", "--k", "1", "beta"});
  cli.parse(static_cast<int>(a.size()), a.data(), false);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
}

TEST(Cli, StrictModeRejectsUnknown) {
  Cli cli;
  cli.option("known", "a known option");
  auto a = args({"--unknown", "1"});
  EXPECT_THROW(cli.parse(static_cast<int>(a.size()), a.data(), true), CliError);
}

TEST(Cli, StrictModeAcceptsDeclared) {
  Cli cli;
  cli.option("known", "a known option");
  auto a = args({"--known", "1"});
  EXPECT_NO_THROW(cli.parse(static_cast<int>(a.size()), a.data(), true));
}

TEST(Cli, MalformedNumberThrows) {
  Cli cli;
  auto a = args({"--n", "12x"});
  cli.parse(static_cast<int>(a.size()), a.data(), false);
  EXPECT_THROW((void)cli.num("n", 0), CliError);
}

TEST(Cli, NegativeRejectedByUnsigned) {
  Cli cli;
  auto a = args({"--n", "-3"});
  cli.parse(static_cast<int>(a.size()), a.data(), false);
  EXPECT_EQ(cli.num("n", 0), -3);
  EXPECT_THROW((void)cli.unsigned_num("n", 0), CliError);
}

TEST(Cli, RealParsing) {
  Cli cli;
  auto a = args({"--p", "0.75"});
  cli.parse(static_cast<int>(a.size()), a.data(), false);
  EXPECT_DOUBLE_EQ(cli.real("p", 0), 0.75);
}

TEST(Cli, NegativeNumberAsValue) {
  // "--k -3": the "-3" does not start with "--" so it is consumed as a value.
  Cli cli;
  auto a = args({"--k", "-3"});
  cli.parse(static_cast<int>(a.size()), a.data(), false);
  EXPECT_EQ(cli.num("k", 0), -3);
}

TEST(Cli, UsageListsDeclaredOptions) {
  Cli cli;
  cli.option("alpha", "the alpha option", "int");
  cli.option("beta", "the beta flag");
  const auto u = cli.usage("tool");
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("the beta flag"), std::string::npos);
  EXPECT_NE(u.find("usage: tool"), std::string::npos);
}

TEST(Cli, EmptyOptionNameThrows) {
  Cli cli;
  auto a = args({"--"});
  EXPECT_THROW(cli.parse(static_cast<int>(a.size()), a.data(), false), CliError);
}

}  // namespace
}  // namespace dex
