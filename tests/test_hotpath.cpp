// Differential tests for the hot-path optimisations: the incremental View
// statistics, the direct-on-InputVector condition membership, the
// digest-keyed IDB echo slots, and the shared-payload / encode-once Message.
//
// Every optimised path is checked against the from-scratch reference it
// replaced — same decisions, same decision paths, same wire packets and
// bytes — so the perf work is provably behaviour-preserving.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "consensus/condition/condition.hpp"
#include "consensus/condition/input_gen.hpp"
#include "consensus/condition/pair.hpp"
#include "consensus/dex/dex_stack.hpp"
#include "consensus/idb/idb_engine.hpp"
#include "sim/simulation.hpp"

namespace dex {
namespace {

// ---------------------------------------------------------------------------
// 1. Incremental View statistics vs from-scratch recompute.
// ---------------------------------------------------------------------------

void expect_stats_equal(const View& view, const char* ctx) {
  const FreqStats recomputed = view.freq_recompute();
  ASSERT_EQ(view.freq(), recomputed)
      << ctx << ": view " << view.to_string() << "\n cached first="
      << (view.freq().first() ? std::to_string(*view.freq().first()) : "⊥")
      << " count=" << view.freq().first_count() << " second="
      << (view.freq().second() ? std::to_string(*view.freq().second()) : "⊥")
      << " count=" << view.freq().second_count();
}

class ViewStatsFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ViewStatsFuzz, RandomOpSequencesMatchRecompute) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(0xFA57 + seed * 131 + n);
    View view(n);
    // Small domains force dense ties; include a width that makes values
    // mostly distinct too.
    const std::size_t domain = 1 + rng.next_below(n + 2);
    for (int op = 0; op < 400; ++op) {
      const auto i = static_cast<std::size_t>(rng.next_below(n));
      const auto roll = rng.next_below(10);
      if (roll < 6 || !view.has(i)) {
        // set — fresh entry or overwrite (possibly with the same value).
        view.set(i, static_cast<Value>(rng.next_below(domain)));
      } else if (roll < 8) {
        view.clear(i);
      } else {
        // Same-value overwrite (the no-op path).
        view.set(i, *view.get(i));
      }
      expect_stats_equal(view, "after op");
      // count_of must agree with the recomputed counts for sampled values.
      const auto v = static_cast<Value>(rng.next_below(domain));
      ASSERT_EQ(view.count_of(v), view.freq_recompute().count_of(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ViewStatsFuzz,
                         ::testing::Values(4u, 7u, 13u, 64u));

TEST(ViewStats, EmptyViewHasEmptyStats) {
  View view(7);
  EXPECT_TRUE(view.freq().empty());
  EXPECT_FALSE(view.freq().first().has_value());
  EXPECT_FALSE(view.freq().second().has_value());
  EXPECT_EQ(view.freq().margin(), 0u);
  expect_stats_equal(view, "empty");
}

TEST(ViewStats, SingleDistinctValueHasNoSecond) {
  // 2nd(J) with one distinct value: nullopt, count 0, margin = first_count.
  View view(7);
  for (std::size_t i = 0; i < 5; ++i) view.set(i, 3);
  EXPECT_EQ(view.freq().first(), std::optional<Value>(3));
  EXPECT_EQ(view.freq().first_count(), 5u);
  EXPECT_FALSE(view.freq().second().has_value());
  EXPECT_EQ(view.freq().second_count(), 0u);
  EXPECT_EQ(view.freq().margin(), 5u);
  expect_stats_equal(view, "single value");

  // Collapsing two values back to one must drop second() again.
  view.set(5, 9);
  EXPECT_EQ(view.freq().second(), std::optional<Value>(9));
  view.clear(5);
  EXPECT_FALSE(view.freq().second().has_value());
  EXPECT_EQ(view.freq().second_count(), 0u);
  expect_stats_equal(view, "collapsed back");
}

TEST(ViewStats, TiesBreakTowardLargerValue) {
  // The paper's 1st(J) tie-break: equal counts → larger value wins, both for
  // first and for second.
  View view(6);
  view.set(0, 1);
  view.set(1, 5);
  EXPECT_EQ(view.freq().first(), std::optional<Value>(5));
  EXPECT_EQ(view.freq().second(), std::optional<Value>(1));
  EXPECT_EQ(view.freq().margin(), 0u);
  expect_stats_equal(view, "two-way tie");

  view.set(2, 3);  // three-way tie at count 1: first=5, second=3
  EXPECT_EQ(view.freq().first(), std::optional<Value>(5));
  EXPECT_EQ(view.freq().second(), std::optional<Value>(3));
  expect_stats_equal(view, "three-way tie");

  view.set(3, 1);  // 1 overtakes: first=1 (count 2), second=5 (tie-break)
  EXPECT_EQ(view.freq().first(), std::optional<Value>(1));
  EXPECT_EQ(view.freq().first_count(), 2u);
  EXPECT_EQ(view.freq().second(), std::optional<Value>(5));
  expect_stats_equal(view, "overtake");
}

// ---------------------------------------------------------------------------
// 2. Condition membership directly on InputVector vs via a materialized View.
// ---------------------------------------------------------------------------

TEST(ConditionContains, MatchesViewBasedEvaluation) {
  Rng rng(0xC04D);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 4 + rng.next_below(61);
    const InputVector input = random_input(n, rng, {.domain = 1 + rng.next_below(6)});
    const View view = input.as_view();
    const FreqStats direct = FreqStats::of(input);
    ASSERT_EQ(direct, view.freq_recompute()) << input.to_string();

    for (const std::size_t d : {0u, 1u, 2u, 5u, 17u}) {
      const FreqCondition cond(d);
      const bool via_view = !view.freq().empty() && view.freq().margin() > d;
      ASSERT_EQ(cond.contains(input), via_view)
          << "C^freq_" << d << " on " << input.to_string();
    }
    for (const Value m : {Value{0}, Value{2}, Value{7}}) {
      for (const std::size_t d : {0u, 1u, 3u, 9u}) {
        const PrivilegedCondition cond(m, d);
        ASSERT_EQ(cond.contains(input), view.count_of(m) > d)
            << "C^prv(" << m << ")_" << d << " on " << input.to_string();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Full-simulation differential: production FrequencyPair (cached stats)
//    vs a recomputing reference pair. Decisions, paths, step counts, wire
//    packets and wire bytes must be identical for fixed seeds.
// ---------------------------------------------------------------------------

/// P1/P2/F of the paper's frequency pair evaluated via the from-scratch
/// recount — the pre-optimisation semantics, kept as a reference.
class RecomputingFrequencyPair final : public ConditionPair {
 public:
  RecomputingFrequencyPair(std::size_t n, std::size_t t) : ConditionPair(n, t) {}

  [[nodiscard]] bool p1(const View& j) const override {
    const FreqStats s = j.freq_recompute();
    return !s.empty() && s.margin() > 4 * t_;
  }
  [[nodiscard]] bool p2(const View& j) const override {
    const FreqStats s = j.freq_recompute();
    return !s.empty() && s.margin() > 2 * t_;
  }
  [[nodiscard]] Value f(const View& j) const override {
    const FreqStats s = j.freq_recompute();
    EXPECT_FALSE(s.empty());
    return s.first().value_or(0);
  }
  [[nodiscard]] std::size_t min_processes(std::size_t t) const override {
    return 6 * t + 1;
  }
  [[nodiscard]] std::string name() const override { return "freq-recompute"; }
};

struct SimOutcome {
  std::vector<std::optional<sim::DecisionRecord>> decisions;
  std::uint64_t events = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t wire_packets = 0;
  std::uint64_t wire_bytes = 0;
  SimTime end_time = 0;
};

SimOutcome run_dex_sim(const std::shared_ptr<const ConditionPair>& pair,
                       const InputVector& input, std::size_t n, std::size_t t,
                       std::uint64_t seed, bool batch) {
  sim::SimOptions opts;
  opts.seed = seed;
  opts.batch = batch;
  opts.start_jitter = 3'000'000;
  sim::Simulation simulation(n, opts);
  for (std::size_t i = 0; i < n; ++i) {
    StackConfig sc;
    sc.n = n;
    sc.t = t;
    sc.self = static_cast<ProcessId>(i);
    simulation.attach(static_cast<ProcessId>(i),
                      std::make_unique<sim::ProcessActor>(
                          std::make_unique<DexStack>(sc, pair), input[i]));
  }
  const auto stats = simulation.run();
  SimOutcome out;
  out.decisions = stats.decisions;
  out.events = stats.events;
  out.packets_delivered = stats.packets_delivered;
  out.wire_packets = stats.wire_packets;
  out.wire_bytes = stats.wire_bytes;
  out.end_time = stats.end_time;
  return out;
}

void expect_outcomes_identical(const SimOutcome& a, const SimOutcome& b,
                               const std::string& ctx) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size()) << ctx;
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    ASSERT_EQ(a.decisions[i].has_value(), b.decisions[i].has_value())
        << ctx << " p" << i;
    if (!a.decisions[i].has_value()) continue;
    EXPECT_EQ(a.decisions[i]->decision, b.decisions[i]->decision) << ctx << " p" << i;
    EXPECT_EQ(a.decisions[i]->steps, b.decisions[i]->steps) << ctx << " p" << i;
    EXPECT_EQ(a.decisions[i]->at, b.decisions[i]->at) << ctx << " p" << i;
  }
  EXPECT_EQ(a.events, b.events) << ctx;
  EXPECT_EQ(a.packets_delivered, b.packets_delivered) << ctx;
  EXPECT_EQ(a.wire_packets, b.wire_packets) << ctx;
  EXPECT_EQ(a.wire_bytes, b.wire_bytes) << ctx;
  EXPECT_EQ(a.end_time, b.end_time) << ctx;
}

class DexDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DexDifferential, CachedAndRecomputingPairsProduceIdenticalRuns) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 13, t = 2;
  const auto cached = make_frequency_pair(n, t);
  const auto recompute = std::make_shared<const RecomputingFrequencyPair>(n, t);

  Rng rng(0xD1FF + seed);
  // One-step regime, two-step regime, and a contended mixed input.
  const InputVector inputs[] = {
      margin_input(n, 4 * t + 1, 5, rng),
      margin_input(n, 2 * t + 1, 5, rng),
      random_input(n, rng, {.domain = 3}),
  };
  for (const auto& input : inputs) {
    for (const bool batch : {false, true}) {
      const auto a = run_dex_sim(cached, input, n, t, seed, batch);
      const auto b = run_dex_sim(recompute, input, n, t, seed, batch);
      expect_outcomes_identical(
          a, b,
          "seed=" + std::to_string(seed) + " batch=" + std::to_string(batch) +
              " input=" + input.to_string());
      // Sanity: the runs actually decide (a vacuous differential would pass).
      ASSERT_TRUE(a.decisions[0].has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DexDifferential,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// 4. IDB engine vs the pre-refactor map<bytes, set<sender>> reference model:
//    identical outbox traffic and identical deliveries under a random storm.
// ---------------------------------------------------------------------------

/// The old slot layout with the old logic, as an executable specification.
class RefIdbEngine {
 public:
  RefIdbEngine(std::size_t n, std::size_t t, ProcessId self, InstanceId instance,
               Outbox* outbox)
      : n_(n), t_(t), self_(self), instance_(instance), outbox_(outbox) {}

  void on_message(ProcessId src, const Message& msg) {
    if (msg.instance != instance_) return;
    if (msg.payload.size() > (1u << 20)) return;
    if (src < 0 || static_cast<std::size_t>(src) >= n_) return;
    if (msg.kind == MsgKind::kIdbInit) {
      Slot& s = slots_[{src, msg.tag}];
      if (s.echoed) return;
      s.echoed = true;
      send_echo(src, msg.tag, msg.payload.vec());
      return;
    }
    if (msg.kind != MsgKind::kIdbEcho) return;
    const ProcessId origin = msg.origin;
    if (origin < 0 || static_cast<std::size_t>(origin) >= n_) return;
    Slot& s = slots_[{origin, msg.tag}];
    auto& senders = s.echoes[msg.payload.vec()];
    senders.insert(src);
    const std::size_t num = senders.size();
    if (num >= n_ - 2 * t_ && !s.echoed) {
      s.echoed = true;
      send_echo(origin, msg.tag, msg.payload.vec());
    }
    if (num >= n_ - t_ && !s.accepted) {
      s.accepted = true;
      deliveries_.push_back({origin, msg.tag, msg.payload.vec()});
    }
  }

  struct Delivery {
    ProcessId origin;
    std::uint64_t tag;
    std::vector<std::byte> payload;
  };
  std::vector<Delivery> take_deliveries() {
    std::vector<Delivery> out;
    out.swap(deliveries_);
    return out;
  }

 private:
  struct Slot {
    bool echoed = false;
    bool accepted = false;
    std::map<std::vector<std::byte>, std::set<ProcessId>> echoes;
  };
  void send_echo(ProcessId origin, std::uint64_t tag,
                 const std::vector<std::byte>& payload) {
    Message m;
    m.kind = MsgKind::kIdbEcho;
    m.instance = instance_;
    m.tag = tag;
    m.origin = origin;
    m.payload = payload;
    outbox_->broadcast(std::move(m));
  }

  std::size_t n_, t_;
  ProcessId self_;
  InstanceId instance_;
  Outbox* outbox_;
  std::map<std::pair<ProcessId, std::uint64_t>, Slot> slots_;
  std::vector<Delivery> deliveries_;
};

TEST(IdbDifferential, MatchesReferenceModelUnderRandomStorm) {
  const std::size_t n = 9, t = 2;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(0x1DB + seed * 7);
    Outbox ob_new, ob_ref;
    IdbEngine engine(n, t, 0, 0, &ob_new);
    RefIdbEngine ref(n, t, 0, 0, &ob_ref);

    for (int step = 0; step < 600; ++step) {
      Message m;
      m.kind = rng.next_bool() ? MsgKind::kIdbEcho : MsgKind::kIdbInit;
      m.instance = rng.next_below(20) == 0 ? 9 : 0;  // occasional foreign instance
      m.tag = rng.next_below(4);
      m.origin = static_cast<ProcessId>(rng.next_below(n + 1));  // may be invalid
      m.payload = ValuePayload{static_cast<Value>(rng.next_below(3))}.to_bytes();
      const auto src = static_cast<ProcessId>(rng.next_below(n));
      engine.on_message(src, m);
      ref.on_message(src, m);

      // Outboxes must match message for message, in order.
      const auto out_new = ob_new.drain();
      const auto out_ref = ob_ref.drain();
      ASSERT_EQ(out_new.size(), out_ref.size()) << "seed " << seed;
      for (std::size_t i = 0; i < out_new.size(); ++i) {
        ASSERT_EQ(out_new[i].dst, out_ref[i].dst);
        ASSERT_EQ(out_new[i].msg, out_ref[i].msg) << "seed " << seed;
      }
      // Deliveries likewise.
      const auto d_new = engine.take_deliveries();
      const auto d_ref = ref.take_deliveries();
      ASSERT_EQ(d_new.size(), d_ref.size()) << "seed " << seed;
      for (std::size_t i = 0; i < d_new.size(); ++i) {
        ASSERT_EQ(d_new[i].origin, d_ref[i].origin);
        ASSERT_EQ(d_new[i].tag, d_ref[i].tag);
        ASSERT_EQ(d_new[i].payload.vec(), d_ref[i].payload);
      }
    }
  }
}

TEST(IdbDifferential, DigestCollisionKeepsContentsSeparate) {
  // Two different payloads must never pool their echo counts, digest filter
  // or not. (FNV collisions are hard to construct; this verifies the exact
  // byte comparison path by sending distinct same-length contents.)
  const std::size_t n = 5, t = 1;
  Outbox ob;
  IdbEngine e(n, t, 0, 0, &ob);
  Message a, b;
  a.kind = b.kind = MsgKind::kIdbEcho;
  a.tag = b.tag = 4;
  a.origin = b.origin = 3;
  a.payload = ValuePayload{1}.to_bytes();
  b.payload = ValuePayload{2}.to_bytes();
  // Two senders for content a, two for content b: neither reaches n−t = 4.
  e.on_message(0, a);
  e.on_message(1, a);
  e.on_message(2, b);
  e.on_message(3, b);
  EXPECT_TRUE(e.take_deliveries().empty());
  EXPECT_EQ(e.accepted_count(), 0u);
}

// ---------------------------------------------------------------------------
// 5. Shared payload + encode-once frame semantics.
// ---------------------------------------------------------------------------

TEST(PayloadSharing, FanOutSharesBytesAndCowDetaches) {
  Message m;
  m.payload = std::vector<std::byte>(1024, std::byte{0x7e});
  std::vector<Message> fan;
  for (int i = 0; i < 9; ++i) fan.push_back(m);
  EXPECT_EQ(m.payload.use_count(), 10);  // one buffer, ten holders

  // Copy-on-write: mutating one copy detaches it and leaves the rest intact.
  fan[3].payload[0] = std::byte{0x00};
  EXPECT_EQ(m.payload.use_count(), 9);
  EXPECT_EQ(fan[3].payload.use_count(), 1);
  EXPECT_EQ(m.payload[0], std::byte{0x7e});
  EXPECT_EQ(fan[3].payload[0], std::byte{0x00});
  EXPECT_NE(fan[3].payload, m.payload);
  EXPECT_EQ(fan[4].payload, m.payload);
}

TEST(PayloadSharing, WireFrameMatchesToBytesAndIsCached) {
  Message m;
  m.kind = MsgKind::kIdbEcho;
  m.instance = 7;
  m.tag = chan::kDexProposalIdb | 3;
  m.origin = 2;
  m.payload = ValuePayload{42}.to_bytes();

  const auto frame = m.wire_frame();
  EXPECT_EQ(*frame, m.to_bytes());                  // identical bytes
  EXPECT_EQ(m.wire_frame().get(), frame.get());     // cached, not re-encoded
  EXPECT_EQ(Message::from_bytes(*frame), m);        // round-trips

  // The frame cache is invisible to logical equality.
  Message fresh = Message::from_bytes(m.to_bytes());
  EXPECT_EQ(fresh, m);
}

}  // namespace
}  // namespace dex
