// Tests for the real runtimes: in-process threaded cluster and the TCP mesh.
#include <gtest/gtest.h>

#include <thread>

#include "consensus/condition/input_gen.hpp"
#include "consensus/factory.hpp"
#include "transport/inproc.hpp"
#include "transport/runner.hpp"
#include "transport/tcp.hpp"

namespace dex {
namespace {

TEST(Mailbox, PushPopOrder) {
  transport::Mailbox mb;
  Message m;
  m.tag = 1;
  mb.push({0, m});
  m.tag = 2;
  mb.push({1, m});
  const auto a = mb.pop(std::chrono::milliseconds(10));
  const auto b = mb.pop(std::chrono::milliseconds(10));
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->msg.tag, 1u);
  EXPECT_EQ(b->msg.tag, 2u);
}

TEST(Mailbox, PopTimesOutWhenEmpty) {
  transport::Mailbox mb;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(mb.pop(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(Mailbox, CloseUnblocksWaiter) {
  transport::Mailbox mb;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.close();
  });
  EXPECT_FALSE(mb.pop(std::chrono::seconds(5)).has_value());
  closer.join();
}

TEST(Mailbox, PushAfterCloseDropped) {
  transport::Mailbox mb;
  mb.close();
  mb.push({0, Message{}});
  EXPECT_FALSE(mb.pop(std::chrono::milliseconds(5)).has_value());
}

TEST(Mailbox, TracksDepthAndHighWater) {
  transport::Mailbox mb;
  for (int i = 0; i < 4; ++i) mb.push({0, Message{}});
  EXPECT_EQ(mb.stats().depth, 4u);
  EXPECT_EQ(mb.stats().high_water, 4u);
  (void)mb.pop(std::chrono::milliseconds(5));
  (void)mb.pop(std::chrono::milliseconds(5));
  EXPECT_EQ(mb.stats().depth, 2u);
  EXPECT_EQ(mb.stats().high_water, 4u);  // high water never recedes
}

TEST(Mailbox, SoftCapCountsButNeverRejects) {
  transport::Mailbox mb(/*soft_cap=*/2);
  for (int i = 0; i < 5; ++i) mb.push({0, Message{}});
  // The cap is advisory back-pressure telemetry: everything is still queued.
  EXPECT_EQ(mb.stats().depth, 5u);
  EXPECT_EQ(mb.stats().soft_cap_exceeded, 3u);  // pushes 3, 4 and 5
  EXPECT_EQ(mb.stats().dropped, 0u);
}

TEST(Mailbox, CountsDropsAfterClose) {
  transport::Mailbox mb;
  mb.push({0, Message{}});
  mb.close();
  mb.push({0, Message{}});
  mb.push({0, Message{}});
  EXPECT_EQ(mb.stats().dropped, 2u);
}

TEST(InProcTransport, SendBatchPreservesOrder) {
  transport::InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);

  std::vector<Message> msgs;
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.kind = MsgKind::kPlain;
    m.tag = chan::kBoscoVote;
    m.payload = ValuePayload{i}.to_bytes();
    msgs.push_back(std::move(m));
  }
  a->send_batch(1, msgs);

  for (int i = 0; i < 3; ++i) {
    const auto got = b->recv(std::chrono::seconds(1));
    ASSERT_TRUE(got.has_value()) << "message " << i;
    EXPECT_EQ(got->src, 0);
    EXPECT_EQ(ValuePayload::from_bytes(got->msg.payload).v, i);
  }
}

TEST(InProcNetwork, DeliverWireDecodesBatchFrames) {
  transport::InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);
  (void)a;

  BatchFrame frame;
  for (int i = 0; i < 2; ++i) {
    Message m;
    m.kind = MsgKind::kIdbInit;
    m.tag = chan::kDexProposalIdb;
    m.payload = ValuePayload{10 + i}.to_bytes();
    frame.messages.push_back(std::move(m));
  }
  net.deliver_wire(0, 1, frame.to_bytes());

  for (int i = 0; i < 2; ++i) {
    const auto got = b->recv(std::chrono::seconds(1));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(ValuePayload::from_bytes(got->msg.payload).v, 10 + i);
  }
  // Malformed wire bytes are dropped, not fatal.
  std::vector<std::byte> junk = {std::byte{BatchFrame::kMarker}, std::byte{9}};
  net.deliver_wire(0, 1, junk);
  EXPECT_FALSE(b->recv(std::chrono::milliseconds(20)).has_value());
}

TEST(TcpTransport, BatchedMessagesAcrossLoopback) {
  constexpr std::size_t kN = 2;
  std::vector<std::unique_ptr<transport::TcpTransport>> nodes;
  for (std::size_t i = 0; i < kN; ++i) {
    transport::TcpConfig cfg;
    cfg.n = kN;
    cfg.self = static_cast<ProcessId>(i);
    cfg.base_port = 19700;
    nodes.push_back(std::make_unique<transport::TcpTransport>(cfg));
  }
  std::vector<std::thread> starters;
  for (auto& node : nodes) starters.emplace_back([&node] { node->start(); });
  for (auto& th : starters) th.join();

  std::vector<Message> msgs;
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.kind = MsgKind::kPlain;
    m.tag = chan::kBoscoVote;
    m.payload = ValuePayload{100 + i}.to_bytes();
    msgs.push_back(std::move(m));
  }
  nodes[0]->send_batch(1, msgs);

  for (int i = 0; i < 4; ++i) {
    const auto got = nodes[1]->recv(std::chrono::seconds(5));
    ASSERT_TRUE(got.has_value()) << "message " << i;
    EXPECT_EQ(got->src, 0);
    EXPECT_EQ(ValuePayload::from_bytes(got->msg.payload).v, 100 + i);
  }
  for (auto& node : nodes) node->shutdown();
}

std::vector<std::unique_ptr<ConsensusProcess>> make_cluster(Algorithm algo,
                                                            std::size_t n,
                                                            std::size_t t) {
  std::vector<std::unique_ptr<ConsensusProcess>> procs;
  for (std::size_t i = 0; i < n; ++i) {
    StackConfig sc;
    sc.n = n;
    sc.t = t;
    sc.self = static_cast<ProcessId>(i);
    sc.coin_seed = 0xfeed;
    procs.push_back(make_stack(algo, sc));
  }
  return procs;
}

TEST(InProcCluster, UnanimousConsensusAcrossThreads) {
  constexpr std::size_t kN = 7, kT = 1;
  transport::InProcNetwork net(kN);
  auto procs = make_cluster(Algorithm::kDexFreq, kN, kT);
  std::vector<std::unique_ptr<transport::Transport>> transports;
  for (std::size_t i = 0; i < kN; ++i) {
    transports.push_back(net.endpoint(static_cast<ProcessId>(i)));
  }
  const std::vector<Value> proposals(kN, 9);
  const auto result = transport::run_cluster(procs, transports, proposals);
  EXPECT_TRUE(result.all_decided());
  EXPECT_TRUE(result.agreement());
  ASSERT_TRUE(result.decisions[0].has_value());
  EXPECT_EQ(result.decisions[0]->value, 9);
}

TEST(InProcCluster, MixedProposalsStillAgree) {
  constexpr std::size_t kN = 7, kT = 1;
  transport::InProcNetwork net(kN);
  auto procs = make_cluster(Algorithm::kDexFreq, kN, kT);
  std::vector<std::unique_ptr<transport::Transport>> transports;
  for (std::size_t i = 0; i < kN; ++i) {
    transports.push_back(net.endpoint(static_cast<ProcessId>(i)));
  }
  const std::vector<Value> proposals{1, 2, 1, 2, 1, 2, 1};
  const auto result = transport::run_cluster(procs, transports, proposals);
  EXPECT_TRUE(result.all_decided());
  EXPECT_TRUE(result.agreement());
}

TEST(InProcCluster, CrashedProcessTolerated) {
  // One endpoint never runs (its mailbox fills silently): the other n−1 must
  // still decide since n−t are enough.
  constexpr std::size_t kN = 7, kT = 1;
  transport::InProcNetwork net(kN);
  auto procs = make_cluster(Algorithm::kDexFreq, kN, kT);
  std::vector<std::unique_ptr<transport::Transport>> transports;
  for (std::size_t i = 0; i < kN; ++i) {
    transports.push_back(net.endpoint(static_cast<ProcessId>(i)));
  }
  transport::RunnerOptions opts;
  opts.deadline = std::chrono::milliseconds(8000);

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i + 1 < kN; ++i) {  // skip the last process
    threads.emplace_back([&, i] {
      transport::drive_process(*procs[i], *transports[i], 4, opts);
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    ASSERT_TRUE(procs[i]->decision().has_value()) << "process " << i;
    EXPECT_EQ(procs[i]->decision()->value, 4);
  }
}

TEST(TcpTransport, FramedMessagesAcrossLoopback) {
  constexpr std::size_t kN = 3;
  std::vector<std::unique_ptr<transport::TcpTransport>> nodes;
  for (std::size_t i = 0; i < kN; ++i) {
    transport::TcpConfig cfg;
    cfg.n = kN;
    cfg.self = static_cast<ProcessId>(i);
    cfg.base_port = 19500;
    nodes.push_back(std::make_unique<transport::TcpTransport>(cfg));
  }
  std::vector<std::thread> starters;
  for (auto& node : nodes) starters.emplace_back([&node] { node->start(); });
  for (auto& th : starters) th.join();

  Message m;
  m.kind = MsgKind::kPlain;
  m.tag = chan::kBoscoVote;
  m.payload = ValuePayload{77}.to_bytes();
  nodes[0]->send(1, m);
  nodes[0]->send(0, m);  // self-delivery path

  const auto got = nodes[1]->recv(std::chrono::seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 0);
  EXPECT_EQ(got->msg, m);

  const auto self_got = nodes[0]->recv(std::chrono::seconds(1));
  ASSERT_TRUE(self_got.has_value());
  EXPECT_EQ(self_got->src, 0);

  for (auto& node : nodes) node->shutdown();
}

TEST(TcpCluster, EndToEndConsensusOverSockets) {
  constexpr std::size_t kN = 6, kT = 1;
  std::vector<std::unique_ptr<transport::Transport>> transports;
  std::vector<transport::TcpTransport*> raw;
  for (std::size_t i = 0; i < kN; ++i) {
    transport::TcpConfig cfg;
    cfg.n = kN;
    cfg.self = static_cast<ProcessId>(i);
    cfg.base_port = 19600;
    auto node = std::make_unique<transport::TcpTransport>(cfg);
    raw.push_back(node.get());
    transports.push_back(std::move(node));
  }
  std::vector<std::thread> starters;
  for (auto* node : raw) starters.emplace_back([node] { node->start(); });
  for (auto& th : starters) th.join();

  auto procs = make_cluster(Algorithm::kDexPrv, kN, kT);
  const std::vector<Value> proposals(kN, 0);  // the privileged value
  transport::RunnerOptions opts;
  opts.deadline = std::chrono::milliseconds(15'000);
  const auto result = transport::run_cluster(procs, transports, proposals, opts);
  EXPECT_TRUE(result.all_decided());
  EXPECT_TRUE(result.agreement());
  ASSERT_TRUE(result.decisions[0].has_value());
  EXPECT_EQ(result.decisions[0]->value, 0);
  for (auto* node : raw) node->shutdown();
}

}  // namespace
}  // namespace dex
