// Unit tests for views, input vectors and frequency statistics (§3.1).
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "consensus/view.hpp"

namespace dex {
namespace {

TEST(InputVector, UniformAndIndexing) {
  const auto v = InputVector::uniform(5, 7);
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 7);
}

TEST(InputVector, AsViewIsFull) {
  const InputVector v({1, 2, 3});
  const View j = v.as_view();
  EXPECT_EQ(j.known_count(), 3u);
  EXPECT_EQ(j.get(1), 2);
}

TEST(View, StartsAllBottom) {
  const View j(4);
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.known_count(), 0u);
  EXPECT_EQ(j.bottom_count(), 4u);
  EXPECT_FALSE(j.has(0));
}

TEST(View, SetAndClearMaintainCounts) {
  View j(3);
  j.set(0, 5);
  j.set(2, 9);
  EXPECT_EQ(j.known_count(), 2u);
  j.set(0, 6);  // overwrite does not change the count
  EXPECT_EQ(j.known_count(), 2u);
  EXPECT_EQ(j.get(0), 6);
  j.clear(0);
  EXPECT_EQ(j.known_count(), 1u);
  j.clear(0);  // idempotent
  EXPECT_EQ(j.known_count(), 1u);
}

TEST(View, OutOfRangeSetThrows) {
  View j(2);
  EXPECT_THROW(j.set(2, 1), ContractViolation);
}

TEST(View, CountOf) {
  View j(5);
  j.set(0, 1);
  j.set(1, 1);
  j.set(2, 2);
  EXPECT_EQ(j.count_of(1), 2u);
  EXPECT_EQ(j.count_of(2), 1u);
  EXPECT_EQ(j.count_of(99), 0u);
}

TEST(FreqStats, FirstSecondAndMargin) {
  View j(7);
  j.set(0, 5);
  j.set(1, 5);
  j.set(2, 5);
  j.set(3, 2);
  j.set(4, 2);
  j.set(5, 9);
  const FreqStats s = j.freq();
  EXPECT_EQ(s.first(), 5);
  EXPECT_EQ(s.first_count(), 3u);
  EXPECT_EQ(s.second(), 2);
  EXPECT_EQ(s.second_count(), 2u);
  EXPECT_EQ(s.margin(), 1u);
  EXPECT_EQ(s.count_of(9), 1u);
  EXPECT_EQ(s.distinct_values(), 3u);
}

TEST(FreqStats, TieBreaksTowardLargerValue) {
  // "If two or more values appear most often, the largest one is selected."
  View j(4);
  j.set(0, 3);
  j.set(1, 3);
  j.set(2, 8);
  j.set(3, 8);
  const FreqStats s = j.freq();
  EXPECT_EQ(s.first(), 8);
  EXPECT_EQ(s.second(), 3);
  EXPECT_EQ(s.margin(), 0u);
}

TEST(FreqStats, SingleValueHasNoSecond) {
  View j(3);
  j.set(0, 4);
  j.set(1, 4);
  const FreqStats s = j.freq();
  EXPECT_EQ(s.first(), 4);
  EXPECT_FALSE(s.second().has_value());
  EXPECT_EQ(s.second_count(), 0u);
  EXPECT_EQ(s.margin(), 2u);  // degenerates to first_count
}

TEST(FreqStats, EmptyView) {
  const View j(3);
  const FreqStats s = j.freq();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.margin(), 0u);
}

TEST(View, ContainmentHoldsForSubview) {
  View big(4);
  big.set(0, 1);
  big.set(1, 2);
  big.set(2, 3);
  View small(4);
  small.set(1, 2);
  EXPECT_TRUE(small.contained_in(big));
  EXPECT_FALSE(big.contained_in(small));
  small.set(3, 9);
  EXPECT_FALSE(small.contained_in(big));  // big[3] is ⊥
}

TEST(View, ContainmentRequiresEqualValues) {
  View a(2), b(2);
  a.set(0, 1);
  b.set(0, 2);
  EXPECT_FALSE(a.contained_in(b));
}

TEST(View, DistBetweenViews) {
  View a(4), b(4);
  a.set(0, 1);
  b.set(0, 1);
  a.set(1, 2);   // b[1] = ⊥ → differs
  b.set(2, 3);   // a[2] = ⊥ → differs
  EXPECT_EQ(View::dist(a, b), 2u);
  EXPECT_EQ(View::dist(a, a), 0u);
}

TEST(View, DistToInputVectorCountsBottoms) {
  const InputVector i({1, 2, 3, 4});
  View j(4);
  j.set(0, 1);
  j.set(1, 9);  // wrong value
  // j[2], j[3] are ⊥ → mismatches
  EXPECT_EQ(View::dist(j, i), 3u);
}

TEST(View, DimensionMismatchThrows) {
  View a(2), b(3);
  EXPECT_THROW(View::dist(a, b), ContractViolation);
}

TEST(View, ToStringShowsBottom) {
  View j(2);
  j.set(0, 7);
  EXPECT_EQ(j.to_string(), "[7, ⊥]");
}

}  // namespace
}  // namespace dex
